//! Future-work demo (paper §V): composite-event mining and failure
//! prediction on top of the stored event streams — "models for failure
//! prediction ... leverage trends of non-fatal events preceding failures".
//!
//! Run with: `cargo run --release --example failure_forecast`

use hpclog_core::analytics::composite::{mine_from_store, Scope};
use hpclog_core::analytics::prediction::{train_and_evaluate, PredictorConfig};
use hpclog_core::analytics::profiles::{anomalous_runs, application_profile};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};
use rand::Rng;

fn main() {
    let topo = Topology::scaled(2, 2);
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 6,
        replication_factor: 3,
        vnodes: 16,
        topology: topo.clone(),
        ..Default::default()
    })
    .expect("framework boot");

    // Background day plus an injected failure chain: GPU_DBE storms precede
    // GPU_OFF_BUS failures by ~2 minutes on the same node.
    let cfg = ScenarioConfig {
        rate_scale: 4.0,
        ..ScenarioConfig::quiet_day(24)
    };
    let scenario = Scenario::generate(&topo, &cfg, 2026);
    fw.batch_import(&scenario.lines).expect("import");
    let t0 = cfg.start_ms;
    let t1 = t0 + 24 * HOUR_MS;

    let mut r = loggen::failure::rng(8);
    let mut injected = 0;
    for _ in 0..120 {
        let ts = t0 + r.gen_range(0..23 * HOUR_MS);
        let node = r.gen_range(0..topo.node_count());
        for k in 0..3i64 {
            fw.insert_event(&EventRecord {
                ts_ms: ts + k * 20_000,
                event_type: "GPU_DBE".into(),
                source: topo.node(node).cname.clone(),
                amount: 1,
                raw: "NVRM: Xid (0000:02:00): 48, Double Bit ECC Error".into(),
            })
            .expect("insert");
        }
        fw.insert_event(&EventRecord {
            ts_ms: ts + 120_000,
            event_type: "GPU_OFF_BUS".into(),
            source: topo.node(node).cname.clone(),
            amount: 1,
            raw: "NVRM: Xid (0000:02:00): 79, GPU has fallen off the bus.".into(),
        })
        .expect("insert");
        injected += 1;
    }
    println!("injected {injected} GPU failure chains into a 24h background day");

    // 1. Composite-event mining surfaces the chain as a high-lift rule.
    println!("\ntop mined rules (same-node, 5-minute window):");
    let rules = mine_from_store(&fw, t0, t1, 5 * 60_000, Scope::Node, 10).expect("mine");
    for rule in rules.iter().take(5) {
        println!(
            "  {} => {}  support={} confidence={:.2} lift={:.1}",
            rule.antecedent, rule.consequent, rule.support, rule.confidence, rule.lift
        );
    }
    assert!(
        rules
            .iter()
            .take(3)
            .any(|r| r.antecedent == "GPU_DBE" && r.consequent == "GPU_OFF_BUS"),
        "the injected chain must be a top rule"
    );

    // 2. Failure prediction: train on 70% of the day, evaluate on the rest.
    let cfg_pred = PredictorConfig {
        bin_ms: 60_000,
        lead_bins: 4,
        horizon_bins: 4,
    };
    let (predictor, metrics) =
        train_and_evaluate(&fw, "GPU_OFF_BUS", t0, t1, cfg_pred, 0.7).expect("train");
    println!("\nGPU_OFF_BUS predictor (1-min bins, 4-min lead/horizon):");
    let mut weights: Vec<_> = predictor.weights.iter().collect();
    weights.sort_by(|a, b| b.1.total_cmp(a.1));
    for (t, w) in weights.iter().take(4) {
        println!("  weight {w:+.2}  {t}");
    }
    println!(
        "  held-out: {} alarms, precision {:.2}, recall {:.2} over {} failures",
        metrics.alarms, metrics.precision, metrics.recall, metrics.failures
    );

    // 3. Application profiles: who suffers the most Lustre noise per
    // node-hour, and which runs were anomalous?
    println!("\napplication profiles (LUSTRE_ERR per node-hour):");
    let mut rows = Vec::new();
    for app in loggen::jobs::APPLICATIONS.iter().take(6) {
        let p = application_profile(&fw, app).expect("profile");
        if p.runs > 0 {
            rows.push((
                app.to_string(),
                p.runs,
                p.rates.get("LUSTRE_ERR").copied().unwrap_or(0.0),
            ));
        }
    }
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (app, runs, rate) in &rows {
        println!("  {rate:>8.3}  {app} ({runs} runs)");
    }
    if let Some((app, _, _)) = rows.first() {
        let anomalies = anomalous_runs(&fw, app, 2.0).expect("anomalies");
        println!(
            "  anomalous {app} runs (>2σ total event rate): {:?}",
            anomalies.iter().map(|(apid, _)| apid).collect::<Vec<_>>()
        );
    }
}
