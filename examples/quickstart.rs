//! Quickstart: boot the framework, ingest a synthetic day of Titan logs,
//! and run a few queries — the fastest tour of the whole stack.
//!
//! Run with: `cargo run --release --example quickstart`

use hpclog_core::analytics::histogram::event_histogram;
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::keys::HOUR_MS;
use hpclog_core::server::QueryEngine;
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};
use rasdb::types::{Key, Value};
use std::sync::Arc;

fn main() {
    // A scaled-down Titan (4×2 cabinets = 768 nodes) on an 8-node
    // co-located storage/compute cluster, mirroring the paper's CADES
    // deployment shape.
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 8,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(4, 2),
        ..Default::default()
    })
    .expect("framework boot");
    println!(
        "framework up: {} storage nodes (RF 3), {} executors, {} tables, {} compute nodes",
        fw.cluster().node_count(),
        fw.engine().workers(),
        fw.cluster().table_names().len(),
        fw.topology().node_count(),
    );

    // One synthetic day: background failures + jobs.
    let cfg = ScenarioConfig {
        rate_scale: 6.0,
        ..ScenarioConfig::quiet_day(24)
    };
    let scenario = Scenario::generate(fw.topology(), &cfg, 2017);
    println!(
        "\ngenerated {} raw log lines ({} ground-truth events, {} jobs)",
        scenario.lines.len(),
        scenario.truth.len(),
        scenario.jobs.len()
    );

    // Batch ETL: regex parse + parallel upload (paper §III-D).
    let t = std::time::Instant::now();
    let report = fw.batch_import(&scenario.lines).expect("batch import");
    println!(
        "batch import in {:?}: parsed={} events_rows={} jobs={} skipped={}",
        t.elapsed(),
        report.parsed,
        report.event_rows,
        report.jobs,
        report.skipped
    );

    // Fig 4: where do (hour, type) partitions live on the ring?
    println!("\npartition placement by (hour, type) hash (paper Fig 4):");
    for hour in 0..4i64 {
        let key = Key(vec![
            Value::BigInt(cfg.start_ms / HOUR_MS + hour),
            Value::text("MCE"),
        ]);
        let owners: Vec<usize> = fw.cluster().owners(&key).iter().map(|n| n.0).collect();
        println!("  hour+{hour} type=MCE -> replicas {owners:?}");
    }

    // Time-series query through the dual schema (paper Fig 1).
    let t0 = cfg.start_ms;
    let mce = fw
        .events_by_type("MCE", t0, t0 + 24 * HOUR_MS)
        .expect("query");
    println!("\nMCE events stored: {}", mce.len());
    if let Some(first) = mce.first() {
        let by_src = fw
            .events_by_source(&first.source, t0, t0 + 24 * HOUR_MS)
            .expect("query");
        println!(
            "dual view: node {} reported {} events of any type",
            first.source,
            by_src.len()
        );
    }

    // Hourly histogram (temporal map).
    let hist = event_histogram(&fw, "LUSTRE_ERR", t0, t0 + 24 * HOUR_MS, HOUR_MS).expect("hist");
    let labels: Vec<String> = (0..hist.bins.len()).map(|h| format!("{h:02}")).collect();
    println!(
        "\n{}",
        viz::ascii_histogram("LUSTRE_ERR per hour", &labels, &hist.bins, 40)
    );

    // A CQL query, exactly as the analytics server would relay it.
    let cql = format!(
        "SELECT * FROM event_by_time WHERE hour = {} AND type = 'MCE' LIMIT 3",
        t0 / HOUR_MS
    );
    println!("CQL> {cql}");
    match fw.cluster().execute(&cql, fw.consistency()).expect("cql") {
        rasdb::cluster::ExecResult::Rows(rows) => {
            for row in rows {
                println!("  {:?} {:?}", row.clustering.0, row.cell("amount"));
            }
        }
        rasdb::cluster::ExecResult::Applied => {}
    }

    // And the JSON protocol the frontend speaks.
    let engine = QueryEngine::new(Arc::new(fw));
    let request = format!(
        r#"{{"op":"distribution","type":"LUSTRE_ERR","from":{t0},"to":{},"by":"cabinet"}}"#,
        t0 + 24 * HOUR_MS
    );
    println!("\nJSON> {request}");
    println!("JSON< {}", engine.handle(&request));
}
