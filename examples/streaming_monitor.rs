//! Real-time ingestion (paper §III-D): raw lines flow through the message
//! bus into two cooperating stream ingesters that window them at one
//! second, coalesce duplicates, and upload to the store — while a monitor
//! watches the freshly ingested stream for an anomaly.
//!
//! Run with: `cargo run --release --example streaming_monitor`

use hpclog_core::analytics::histogram::event_histogram;
use hpclog_core::etl::stream::{publish_lines, StreamIngester};
use hpclog_core::framework::{Framework, FrameworkConfig};
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};

fn main() {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 6,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(3, 2),
        ..Default::default()
    })
    .expect("framework boot");

    // Two hours with a Lustre storm in the middle — arriving as a stream.
    let cfg = ScenarioConfig::storm_day(2, 0x2a);
    let scenario = Scenario::generate(fw.topology(), &cfg, 31);
    let published = publish_lines(&fw, &scenario.lines).expect("publish");
    println!("published {published} raw lines to the bus (keyed by source)");

    // Two consumer-group members share the partitions.
    let mut a = StreamIngester::new(&fw, "ingesters", 60_000).expect("join");
    let mut b = StreamIngester::new(&fw, "ingesters", 60_000).expect("join");
    let t = std::time::Instant::now();
    let mut rounds = 0u32;
    let registry = telemetry::global();
    loop {
        let n = a.step(512).expect("step") + b.step(512).expect("step");
        rounds += 1;
        // Live telemetry: last coalescing window + how far we lag the bus.
        if rounds.is_multiple_of(8) {
            println!(
                "  [{rounds:>4} polls] window {} -> {} events, ingest lag {} records, {} stored so far",
                registry.gauge("etl.stream.window_events_in").get(),
                registry.gauge("etl.stream.window_events_out").get(),
                registry.gauge("etl.stream.ingest_lag").get(),
                registry.counter("etl.stream.events_out").get(),
            );
        }
        if n == 0 {
            break;
        }
    }
    let ra = a.finish().expect("finish");
    let rb = b.finish().expect("finish");
    println!(
        "drained in {:?} over {rounds} polls: member A polled {} / member B polled {}",
        t.elapsed(),
        ra.polled,
        rb.polled
    );
    println!(
        "events in: {}   events stored after 1s-window coalescing: {}   ({}x reduction)",
        ra.events_in + rb.events_in,
        ra.events_out + rb.events_out,
        (ra.events_in + rb.events_in).max(1) / (ra.events_out + rb.events_out).max(1)
    );

    // Online-style anomaly check over what just landed in the store.
    let t0 = cfg.start_ms;
    let hist = event_histogram(&fw, "LUSTRE_ERR", t0, t0 + 2 * 3_600_000, 60_000).expect("hist");
    let mean = hist.total() / hist.bins.len() as f64;
    let (peak_bin, peak) = hist.peak().expect("bins");
    println!(
        "\nmonitor: LUSTRE_ERR rate mean {:.1}/min, peak {:.0}/min at minute {}",
        mean,
        peak,
        (hist.bin_start(peak_bin) - t0) / 60_000
    );
    if peak > 10.0 * mean.max(1.0) {
        println!("ALERT: system-wide Lustre event storm detected in the live stream");
    } else {
        println!("no anomaly detected");
    }

    println!("\ntelemetry after the run:\n{}", fw.telemetry_report());
}
