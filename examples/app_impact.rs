//! The Fig 6 / end-user scenario: overlay application placements with
//! system events so a user can "visually inspect trends among the system
//! events and contention on shared resources that occur during the run of
//! their applications".
//!
//! Run with: `cargo run --release --example app_impact`
//! Writes `artifacts/app_placement.svg`.

use hpclog_core::context::Context;
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::keys::HOUR_MS;
use loggen::topology::{Topology, NODES_PER_CABINET};
use loggen::trace::{Scenario, ScenarioConfig};
use viz::{render_cabinet_heatmap, SystemMapSpec};

fn main() {
    let topo = Topology::scaled(4, 2);
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 6,
        replication_factor: 3,
        vnodes: 16,
        topology: topo.clone(),
        ..Default::default()
    })
    .expect("framework boot");

    let cfg = ScenarioConfig {
        rate_scale: 8.0,
        ..ScenarioConfig::quiet_day(12)
    };
    let scenario = Scenario::generate(&topo, &cfg, 424_242);
    let report = fw.batch_import(&scenario.lines).expect("import");
    println!(
        "imported {} lines, {} application runs",
        report.parsed, report.jobs
    );

    // Pick the heaviest user of the day.
    let mut by_user: std::collections::HashMap<&str, usize> = Default::default();
    for j in &scenario.jobs {
        *by_user.entry(&j.user).or_default() += 1;
    }
    let (user, runs) = by_user
        .iter()
        .max_by_key(|(u, n)| (**n, std::cmp::Reverse(*u)))
        .expect("jobs exist");
    println!("\nbusiest user: {user} with {runs} runs");

    // Their runs, via the application_by_user view.
    let mine = fw.apps_by_user(user).expect("apps_by_user");
    for run in mine.iter().take(5) {
        println!(
            "  apid {} app={} nodes {}..{} exit={} ({} min)",
            run.apid,
            run.app,
            run.node_first,
            run.node_last,
            run.exit_code,
            (run.end_ms - run.start_ms) / 60_000
        );
    }

    // Events that overlapped this user's allocations, via a user context.
    let ctx = Context::window(cfg.start_ms, cfg.start_ms + 12 * HOUR_MS).with_user(*user);
    let events = ctx.fetch_events(&fw).expect("context fetch");
    println!(
        "\n{} system events overlapped {user}'s allocations during their runs",
        events.len()
    );
    let mut by_type: std::collections::HashMap<&str, usize> = Default::default();
    for e in &events {
        *by_type.entry(e.event_type.as_str()).or_default() += 1;
    }
    let mut pairs: Vec<_> = by_type.into_iter().collect();
    pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (t, n) in &pairs {
        println!("  {n:>5}  {t}");
    }

    // Application placement snapshot at mid-day (Fig 6 bottom): nodes per
    // cabinet occupied by any running application.
    let snapshot_ts = cfg.start_ms + 6 * HOUR_MS;
    let running = fw
        .apps_by_time(cfg.start_ms - 24 * HOUR_MS, snapshot_ts + 1)
        .expect("apps")
        .into_iter()
        .filter(|r| r.running_at(snapshot_ts))
        .collect::<Vec<_>>();
    let mut occupancy = vec![0.0f64; topo.cabinet_count()];
    for run in &running {
        for node in run.node_first..=run.node_last {
            occupancy[(node as usize) / NODES_PER_CABINET] += 1.0;
        }
    }
    println!(
        "\n{} applications running at the snapshot; occupancy per cabinet: {:?}",
        running.len(),
        occupancy.iter().map(|c| *c as i64).collect::<Vec<_>>()
    );
    let spec = SystemMapSpec {
        rows: topo.rows,
        cols: topo.cols,
        title: "Application placement (occupied nodes per cabinet)".to_owned(),
    };
    std::fs::create_dir_all("artifacts").expect("mkdir");
    std::fs::write(
        "artifacts/app_placement.svg",
        render_cabinet_heatmap(&spec, &occupancy),
    )
    .expect("write svg");
    println!("wrote artifacts/app_placement.svg");
}
