//! The Fig 7 (bottom) scenario: a system-wide Lustre storm floods the logs
//! with tens of thousands of error messages; word-count / TF-IDF text
//! analytics over the raw lines identify the unresponsive OST.
//!
//! Run with: `cargo run --release --example lustre_storm`
//! Writes `artifacts/lustre_storm_bubbles.svg`,
//! `artifacts/lustre_storm_timeline.svg`, and
//! `artifacts/telemetry_snapshot.json` (the full metrics registry after
//! the run).

use hpclog_core::analytics::histogram::event_histogram;
use hpclog_core::analytics::text::{self, top_k};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::keys::HOUR_MS;
use loggen::lustre::ost_label;
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};
use viz::{render_timeseries, render_word_bubbles, Series};

fn main() {
    let dead_ost: u16 = 0x41;
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 8,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(4, 2),
        ..Default::default()
    })
    .expect("framework boot");

    // A day whose middle hour hides the storm.
    let cfg = ScenarioConfig::storm_day(6, dead_ost);
    let scenario = Scenario::generate(fw.topology(), &cfg, 7777);
    let report = fw.batch_import(&scenario.lines).expect("import");
    println!(
        "imported {} lines ({} Lustre storm messages hidden inside)",
        report.parsed,
        scenario
            .lines
            .iter()
            .filter(|l| l.text.contains(&ost_label(dead_ost)))
            .count()
    );

    // Step 1 — the temporal map shows a system-wide spike.
    let t0 = cfg.start_ms;
    let t1 = t0 + 6 * HOUR_MS;
    let hist = event_histogram(&fw, "LUSTRE_ERR", t0, t1, 10 * 60_000).expect("hist");
    let (peak_bin, peak) = hist.peak().expect("bins");
    let storm_start = hist.bin_start(peak_bin);
    println!(
        "temporal map: LUSTRE_ERR peaks at {} events in the 10-minute bin starting {}ms",
        peak, storm_start
    );

    let series = Series {
        name: "LUSTRE_ERR / 10min".to_owned(),
        points: hist
            .bins
            .iter()
            .enumerate()
            .map(|(i, c)| (((hist.bin_start(i) - t0) / 60_000) as f64, *c))
            .collect(),
    };
    save(
        "artifacts/lustre_storm_timeline.svg",
        &render_timeseries("Lustre storm timeline (minutes into day)", &[series]),
    );

    // Step 2 — zoom into the storm window and run word count on raw text
    // ("a simple word counts ... can locate the source of the problem").
    let win0 = storm_start - 10 * 60_000;
    let win1 = storm_start + 30 * 60_000;
    let counts = text::word_count_events(&fw, "LUSTRE_ERR", win0, win1).expect("wordcount");
    let top = top_k(&counts, 15);
    println!("\ntop terms in the storm window:");
    for (term, count) in &top {
        println!("  {count:>6}  {term}");
    }

    // Step 3 — word bubbles (the Fig 7 visualization).
    let bubbles: Vec<(String, f64)> = top.iter().map(|(w, c)| (w.clone(), *c as f64)).collect();
    save(
        "artifacts/lustre_storm_bubbles.svg",
        &render_word_bubbles("Word bubbles over raw Lustre messages", &bubbles),
    );

    // Step 4 — the verdict: the dead OST must dominate the OST-shaped terms.
    let ost_terms: Vec<&(String, u64)> = top.iter().filter(|(w, _)| w.starts_with("OST")).collect();
    match ost_terms.first() {
        Some((label, count)) if *label == ost_label(dead_ost) => println!(
            "\nDIAGNOSIS: {} is not responding ({} mentions — next OST has {})",
            label,
            count,
            ost_terms.get(1).map(|(_, c)| *c).unwrap_or(0)
        ),
        Some((label, _)) => println!("\nunexpected dominant OST {label}"),
        None => println!("\nno OST term surfaced — storm too small?"),
    }

    // Step 5 — dump the telemetry registry accumulated by the whole
    // pipeline (ETL spans, coordinator latencies, scheduler locality).
    save(
        "artifacts/telemetry_snapshot.json",
        &hpclog_core::server::telemetry_export::metrics_json().to_string(),
    );
}

fn save(path: &str, svg: &str) {
    std::fs::create_dir_all("artifacts").expect("mkdir artifacts");
    std::fs::write(path, svg).expect("write svg");
    println!("wrote {path}");
}
