//! The Fig 5 scenario: a spatially concentrated MCE/GPU hotspot shows up
//! as an anomaly on the physical-system-map heat map, then gets localized
//! by cabinet/blade/node distributions.
//!
//! Run with: `cargo run --release --example gpu_failure_analysis`
//! Writes `artifacts/heatmap_cabinets.svg` and `artifacts/heatmap_nodes.svg`.

use hpclog_core::analytics::distribution::{distribution, GroupBy};
use hpclog_core::analytics::heatmap::{cabinet_heatmap, node_heatmap};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::keys::HOUR_MS;
use loggen::topology::{Topology, NODES_PER_CABINET};
use loggen::trace::{Scenario, ScenarioConfig};
use viz::{ascii_cabinet_heatmap, render_cabinet_heatmap, render_node_heatmap, SystemMapSpec};

fn main() {
    let topo = Topology::scaled(5, 4); // 20 cabinets, 1920 nodes
    let hot_cabinet = 13;
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 8,
        replication_factor: 3,
        vnodes: 16,
        topology: topo.clone(),
        ..Default::default()
    })
    .expect("framework boot");

    let cfg = ScenarioConfig::mce_hotspot(12, hot_cabinet);
    let scenario = Scenario::generate(&topo, &cfg, 55);
    fw.batch_import(&scenario.lines).expect("import");
    println!("imported a 12-hour day with an injected MCE burst in cabinet {hot_cabinet}");

    let t0 = cfg.start_ms;
    let t1 = t0 + 12 * HOUR_MS;
    let hm = cabinet_heatmap(&fw, "MCE", t0, t1).expect("heatmap");
    println!(
        "\nheat map: total={} mean={:.1} stddev={:.1} hottest=cab{}",
        hm.total, hm.mean, hm.stddev, hm.hottest
    );
    let spec = SystemMapSpec {
        rows: topo.rows,
        cols: topo.cols,
        title: "MCE occurrences per cabinet".to_owned(),
    };
    println!("\n{}", ascii_cabinet_heatmap(&spec, &hm.cabinets));
    let outliers = hm.outliers(2.0);
    println!("cabinets above mean + 2σ: {outliers:?}");
    assert!(
        outliers.contains(&hot_cabinet),
        "the injected hotspot must be flagged"
    );

    save(
        "artifacts/heatmap_cabinets.svg",
        &render_cabinet_heatmap(&spec, &hm.cabinets),
    );
    let nodes = node_heatmap(&fw, "MCE", t0, t1).expect("node heatmap");
    save(
        "artifacts/heatmap_nodes.svg",
        &render_node_heatmap(&spec, &nodes, NODES_PER_CABINET),
    );

    // Complementary distributions (paper: "heat map and distributions offer
    // complementary insights").
    for by in [GroupBy::Cabinet, GroupBy::Blade, GroupBy::Node] {
        let d = distribution(&fw, "MCE", t0, t1, by).expect("distribution");
        let top: Vec<String> = d
            .top(3)
            .iter()
            .map(|(l, c)| format!("{l}={c:.0}"))
            .collect();
        println!("top by {by:?}: {}", top.join("  "));
    }

    // Which applications were hit? (Fig 6's question.)
    let d = distribution(&fw, "MCE", t0, t1, GroupBy::Application).expect("distribution");
    println!("\napplications overlapping the MCE events:");
    for (app, count) in d.top(5) {
        println!("  {count:>6.0}  {app}");
    }
    println!("  (unattributed: {:.0})", d.unattributed);
}

fn save(path: &str, svg: &str) {
    std::fs::create_dir_all("artifacts").expect("mkdir artifacts");
    std::fs::write(path, svg).expect("write svg");
    println!("wrote {path}");
}
