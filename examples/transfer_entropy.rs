//! The Fig 7 (top) scenario: transfer entropy between two event types over
//! a selected interval exposes a *directed* relationship — here, Gemini
//! link failures driving Lustre errors, not the other way around.
//!
//! Run with: `cargo run --release --example transfer_entropy`
//! Writes `artifacts/transfer_entropy.svg`.

use hpclog_core::analytics::correlation::event_cross_correlation;
use hpclog_core::analytics::transfer_entropy::te_lag_sweep;
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use loggen::events::Occurrence;
use loggen::failure::{self, rng};
use loggen::topology::Topology;
use rand::Rng;
use viz::{render_timeseries, Series};

fn main() {
    let topo = Topology::scaled(3, 3);
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 6,
        replication_factor: 3,
        vnodes: 16,
        topology: topo.clone(),
        ..Default::default()
    })
    .expect("framework boot");

    // Build a causally coupled trace: NET_LINK failures each trigger a
    // cascade of LUSTRE_ERR events 1–2 minutes later.
    let mut r = rng(99);
    let t0: i64 = 1_500_000_000_000;
    let mut events: Vec<Occurrence> = Vec::new();
    for _ in 0..200 {
        // Poisson-like arrivals avoid a periodic echo in the TE estimate.
        let seed = Occurrence {
            ts_ms: t0 + r.gen_range(0..10 * HOUR_MS),
            event_type: "NET_LINK",
            node: r.gen_range(0..topo.node_count()),
            count: 1,
        };
        let kids = failure::cascade(&topo, &seed, "LUSTRE_ERR", 90_000, 2.5, &mut r);
        events.push(seed);
        events.extend(kids);
    }
    for occ in &events {
        fw.insert_event(&EventRecord {
            ts_ms: occ.ts_ms,
            event_type: occ.event_type.to_owned(),
            source: topo.node(occ.node).cname,
            amount: occ.count as i32,
            raw: String::new(),
        })
        .expect("insert");
    }
    let t1 = t0 + 11 * HOUR_MS;
    println!(
        "inserted {} coupled NET_LINK / LUSTRE_ERR events",
        events.len()
    );

    // TE sweep over lags (1-minute bins).
    let sweep = te_lag_sweep(&fw, "NET_LINK", "LUSTRE_ERR", t0, t1, 60_000, 8).expect("te");
    println!("\nlag  TE(NET→LUSTRE)  TE(LUSTRE→NET)");
    for (lag, te) in &sweep {
        println!("{lag:>3}  {:>14.4}  {:>14.4}", te.x_to_y, te.y_to_x);
    }
    let fwd: Vec<(f64, f64)> = sweep.iter().map(|(l, t)| (*l as f64, t.x_to_y)).collect();
    let bwd: Vec<(f64, f64)> = sweep.iter().map(|(l, t)| (*l as f64, t.y_to_x)).collect();
    std::fs::create_dir_all("artifacts").expect("mkdir");
    std::fs::write(
        "artifacts/transfer_entropy.svg",
        render_timeseries(
            "Transfer entropy vs lag (1-min bins)",
            &[
                Series {
                    name: "TE(NET_LINK -> LUSTRE_ERR)".to_owned(),
                    points: fwd,
                },
                Series {
                    name: "TE(LUSTRE_ERR -> NET_LINK)".to_owned(),
                    points: bwd,
                },
            ],
        ),
    )
    .expect("write svg");
    println!("wrote artifacts/transfer_entropy.svg");

    let best = sweep
        .iter()
        .max_by(|a, b| a.1.x_to_y.total_cmp(&b.1.x_to_y))
        .expect("sweep");
    println!(
        "\nDIAGNOSIS: strongest information flow NET_LINK -> LUSTRE_ERR at lag {} min \
         (TE {:.4} vs reverse {:.4})",
        best.0, best.1.x_to_y, best.1.y_to_x
    );

    // Symmetric cross-correlation for comparison.
    let xc =
        event_cross_correlation(&fw, "NET_LINK", "LUSTRE_ERR", t0, t1, 60_000, 5).expect("xcorr");
    let peak = xc.iter().max_by(|a, b| a.1.total_cmp(&b.1)).expect("xc");
    println!(
        "cross-correlation peaks at lag {} min (r = {:.3}) — symmetric, no direction",
        peak.0, peak.1
    );
}
