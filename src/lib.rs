//! `hpc-log-analytics` — umbrella crate re-exporting the whole framework.
//!
//! A Rust reproduction of *"Big Data Meets HPC Log Analytics: Scalable
//! Approach to Understanding Systems at Extreme Scale"* (Park, Hukerikar,
//! Adamson, Engelmann — IEEE CLUSTER 2017), including from-scratch
//! substitutes for every substrate the paper relies on:
//!
//! * [`rasdb`] — the Cassandra-style distributed NoSQL store
//! * [`sparklet`] — the Spark-style in-memory processing engine
//! * [`logbus`] — the Kafka-style message bus
//! * [`loggen`] — the synthetic Titan (topology, failures, raw logs, jobs)
//! * [`rex`] — the regex engine behind the ETL patterns
//! * [`jsonlite`] — the JSON codec behind the server protocol
//! * [`viz`] — SVG/ASCII renderers for the frontend's figures
//! * [`core`] — the framework itself (data model, ETL, analytics, server)
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and DESIGN.md /
//! EXPERIMENTS.md for the reproduction index.

pub use hpclog_core as core;
pub use jsonlite;
pub use logbus;
pub use loggen;
pub use rasdb;
pub use rex;
pub use sparklet;
pub use viz;
