//! Scenario-level regression: the two headline analyses of the paper must
//! reach the right diagnosis on generated data, end to end.

use hpc_log_analytics::core::analytics::heatmap::cabinet_heatmap;
use hpc_log_analytics::core::analytics::histogram::event_histogram;
use hpc_log_analytics::core::analytics::text::{top_k, word_count_events};
use hpc_log_analytics::core::analytics::transfer_entropy::te_lag_sweep;
use hpc_log_analytics::core::framework::{Framework, FrameworkConfig};
use hpc_log_analytics::core::model::event::EventRecord;
use hpc_log_analytics::core::model::keys::HOUR_MS;
use loggen::lustre::ost_label;
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};

#[test]
fn lustre_storm_word_count_identifies_the_dead_ost() {
    let dead_ost = 0x7b;
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .expect("boot");
    let cfg = ScenarioConfig::storm_day(4, dead_ost);
    let scenario = Scenario::generate(fw.topology(), &cfg, 99);
    fw.batch_import(&scenario.lines).expect("import");

    // Find the storm on the temporal map.
    let t0 = cfg.start_ms;
    let t1 = t0 + cfg.duration_ms;
    let hist = event_histogram(&fw, "LUSTRE_ERR", t0, t1, 10 * 60_000).expect("hist");
    let (peak_bin, peak) = hist.peak().expect("bins");
    let mean = hist.total() / hist.bins.len() as f64;
    assert!(
        peak > 5.0 * mean,
        "storm must stand out: peak={peak} mean={mean}"
    );

    // Word count in the storm window pins the OST.
    let w0 = hist.bin_start(peak_bin) - 10 * 60_000;
    let w1 = hist.bin_start(peak_bin) + 30 * 60_000;
    let counts = word_count_events(&fw, "LUSTRE_ERR", w0, w1).expect("wordcount");
    let top = top_k(&counts, 10);
    let top_ost = top
        .iter()
        .find(|(w, _)| w.starts_with("OST"))
        .expect("an OST term in the top 10");
    assert_eq!(top_ost.0, ost_label(dead_ost));
}

#[test]
fn hotspot_heatmap_flags_the_injected_cabinet() {
    let hot = 3;
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 3),
        ..Default::default()
    })
    .expect("boot");
    let cfg = ScenarioConfig::mce_hotspot(6, hot);
    let scenario = Scenario::generate(fw.topology(), &cfg, 5);
    fw.batch_import(&scenario.lines).expect("import");
    let hm =
        cabinet_heatmap(&fw, "MCE", cfg.start_ms, cfg.start_ms + cfg.duration_ms).expect("heatmap");
    assert_eq!(hm.hottest, hot);
    assert!(hm.outliers(2.0).contains(&hot));
}

#[test]
fn causal_injection_shows_directed_transfer_entropy() {
    let topo = Topology::scaled(2, 2);
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 2,
        vnodes: 8,
        topology: topo.clone(),
        ..Default::default()
    })
    .expect("boot");
    // NET_LINK at random times; LUSTRE_ERR exactly one minute later.
    let mut r = loggen::failure::rng(17);
    let t0 = 1_500_000_000_000i64;
    use rand::Rng;
    for _ in 0..300 {
        let ts = t0 + r.gen_range(0..6 * HOUR_MS);
        let node = r.gen_range(0..topo.node_count());
        for (etype, at) in [("NET_LINK", ts), ("LUSTRE_ERR", ts + 60_000)] {
            fw.insert_event(&EventRecord {
                ts_ms: at,
                event_type: etype.into(),
                source: topo.node(node).cname.clone(),
                amount: 1,
                raw: String::new(),
            })
            .expect("insert");
        }
    }
    let sweep = te_lag_sweep(
        &fw,
        "NET_LINK",
        "LUSTRE_ERR",
        t0,
        t0 + 7 * HOUR_MS,
        60_000,
        3,
    )
    .expect("te");
    let at_lag_1 = sweep.iter().find(|(l, _)| *l == 1).expect("lag 1").1;
    assert!(
        at_lag_1.x_to_y > 2.0 * at_lag_1.y_to_x,
        "forward {} must dominate backward {}",
        at_lag_1.x_to_y,
        at_lag_1.y_to_x
    );
}
