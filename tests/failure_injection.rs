//! Failure injection across the stack: node outages during ingest and
//! query, hinted handoff, commit-log recovery — the paper's claim that the
//! backend stays available "with no single point of failure".

use hpc_log_analytics::core::framework::{Framework, FrameworkConfig};
use hpc_log_analytics::core::model::event::EventRecord;
use hpc_log_analytics::core::model::keys::HOUR_MS;
use loggen::topology::Topology;
use rasdb::query::Consistency;
use rasdb::ring::NodeId;
use rasdb::types::{Key, Value};

fn boot(nodes: usize, rf: usize) -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: nodes,
        replication_factor: rf,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        consistency: Consistency::Quorum,
        ..Default::default()
    })
    .expect("boot")
}

fn ev(ts: i64, src: &str) -> EventRecord {
    EventRecord {
        ts_ms: ts,
        event_type: "MCE".into(),
        source: src.into(),
        amount: 1,
        raw: "Machine Check Exception: bank 0".into(),
    }
}

#[test]
fn ingest_continues_with_one_node_down_and_recovers_it() {
    let fw = boot(5, 3);
    // Take a node down mid-ingest.
    for i in 0..50 {
        if i == 25 {
            fw.cluster().take_node_down(NodeId(2));
        }
        fw.insert_event(&ev(i * 1000, "c0-0c0s0n0"))
            .expect("quorum write");
    }
    // Everything is readable at quorum with the node still down.
    let got = fw.events_by_type("MCE", 0, HOUR_MS).expect("read");
    assert_eq!(got.len(), 50);

    // Bring the node back: hints replay, then reads at ALL succeed too.
    fw.cluster().bring_node_up(NodeId(2));
    let key = Key(vec![Value::BigInt(0), Value::text("MCE")]);
    let rows = fw
        .cluster()
        .select("event_by_time")
        .partition(key.0.clone())
        .run(Consistency::All)
        .expect("read at ALL after recovery");
    assert_eq!(rows.len(), 50);
}

#[test]
fn reads_fail_cleanly_beyond_the_consistency_budget() {
    let fw = boot(3, 3);
    fw.insert_event(&ev(0, "c0-0c0s0n0")).expect("write");
    let key = Key(vec![Value::BigInt(0), Value::text("MCE")]);
    let owners = fw.cluster().owners(&key);
    fw.cluster().take_node_down(owners[0]);
    fw.cluster().take_node_down(owners[1]);
    // One replica left: ONE works, QUORUM doesn't.
    let one = fw
        .cluster()
        .select("event_by_time")
        .partition(key.0.clone())
        .run(Consistency::One);
    assert!(one.is_ok());
    let quorum = fw
        .cluster()
        .select("event_by_time")
        .partition(key.0.clone())
        .run(Consistency::Quorum);
    assert!(matches!(
        quorum,
        Err(rasdb::error::DbError::Unavailable { .. })
    ));
}

#[test]
fn node_crash_restart_replays_commit_log() {
    let fw = boot(4, 3);
    for i in 0..30 {
        fw.insert_event(&ev(i * 1000, "c1-0c0s0n0")).expect("write");
    }
    // Crash-restart every node (memtables wiped, commit logs replayed).
    for n in 0..fw.cluster().node_count() {
        fw.cluster().node(NodeId(n)).restart();
    }
    let got = fw
        .events_by_type("MCE", 0, HOUR_MS)
        .expect("read after restart");
    assert_eq!(got.len(), 30);
}

#[test]
fn flushed_data_survives_restart_via_sstables() {
    let fw = boot(4, 2);
    for i in 0..40 {
        fw.insert_event(&ev(i * 1000, "c1-1c0s0n0")).expect("write");
    }
    fw.cluster().flush_all();
    for n in 0..fw.cluster().node_count() {
        fw.cluster().node(NodeId(n)).restart();
    }
    let got = fw.events_by_type("MCE", 0, HOUR_MS).expect("read");
    assert_eq!(got.len(), 40);
}

#[test]
fn streaming_ingest_tolerates_a_node_outage() {
    use hpc_log_analytics::core::etl::stream::{publish_lines, StreamIngester};
    use loggen::trace::{Facility, RawLine};
    let fw = boot(5, 3);
    let t0 = 1_500_000_000_000i64;
    let lines: Vec<RawLine> = (0..100)
        .map(|i| RawLine {
            ts_ms: t0 + i * 100,
            facility: Facility::Console,
            source: format!("c0-0c0s{}n0", i % 8),
            text: "Machine Check Exception: bank 2: b2 addr 3f cpu 1".into(),
        })
        .collect();
    publish_lines(&fw, &lines).expect("publish");
    fw.cluster().take_node_down(NodeId(1));
    let report = StreamIngester::new(&fw, "g", 60_000)
        .unwrap()
        .run_to_completion(64)
        .expect("stream with node down");
    assert_eq!(report.events_in, 100);
    fw.cluster().bring_node_up(NodeId(1));
    let mass: i32 = fw
        .events_by_type("MCE", t0, t0 + HOUR_MS)
        .expect("read")
        .iter()
        .map(|e| e.amount)
        .sum();
    assert_eq!(mass, 100);
}
