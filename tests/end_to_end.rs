//! End-to-end integration: raw synthetic logs → batch ETL → dual-view
//! queries → analytics → JSON server (paper Fig 3's full architecture).

use hpc_log_analytics::core::analytics::distribution::{distribution, GroupBy};
use hpc_log_analytics::core::analytics::heatmap::cabinet_heatmap;
use hpc_log_analytics::core::analytics::histogram::event_histogram;
use hpc_log_analytics::core::analytics::synopsis;
use hpc_log_analytics::core::framework::{Framework, FrameworkConfig};
use hpc_log_analytics::core::model::keys::{hour_of, HOUR_MS};
use hpc_log_analytics::core::server::QueryEngine;
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn boot() -> (Framework, Scenario, ScenarioConfig) {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 6,
        replication_factor: 3,
        vnodes: 12,
        topology: Topology::scaled(3, 2),
        ..Default::default()
    })
    .expect("boot");
    let cfg = ScenarioConfig {
        rate_scale: 8.0,
        ..ScenarioConfig::quiet_day(6)
    };
    let scenario = Scenario::generate(fw.topology(), &cfg, 1234);
    (fw, scenario, cfg)
}

#[test]
fn ingest_then_every_query_path_agrees_with_ground_truth() {
    let (fw, scenario, cfg) = boot();
    let report = fw.batch_import(&scenario.lines).expect("import");
    assert_eq!(report.parsed, scenario.lines.len());
    assert_eq!(report.skipped, 0);

    let t0 = cfg.start_ms;
    let t1 = t0 + cfg.duration_ms;

    // Per-type counts match the generator's ground truth exactly.
    let mut truth: HashMap<&str, usize> = HashMap::new();
    for o in &scenario.truth {
        *truth.entry(o.event_type).or_default() += 1;
    }
    for (etype, want) in &truth {
        let got = fw.events_by_type(etype, t0, t1).expect("query");
        assert_eq!(got.len(), *want, "type {etype}");
    }

    // The dual location view holds the same events, node by node.
    let sample_node = fw.topology().node(17).cname;
    let want_for_node = scenario.truth.iter().filter(|o| o.node == 17).count();
    let got_for_node = fw
        .events_by_source(&sample_node, t0, t1)
        .expect("query")
        .len();
    assert_eq!(got_for_node, want_for_node);

    // Histogram total == total events of that type.
    let hist = event_histogram(&fw, "LUSTRE_ERR", t0, t1, HOUR_MS).expect("hist");
    assert_eq!(
        hist.total() as usize,
        truth.get("LUSTRE_ERR").copied().unwrap_or(0)
    );

    // Heat map totals match too, and every cabinet is nonnegative.
    let hm = cabinet_heatmap(&fw, "LUSTRE_ERR", t0, t1).expect("heatmap");
    assert_eq!(hm.total as usize, truth["LUSTRE_ERR"]);
    assert_eq!(hm.cabinets.len(), fw.topology().cabinet_count());

    // Application runs are queryable through all four views.
    assert_eq!(report.jobs, scenario.jobs.len());
    let some_job = &scenario.jobs[0];
    let by_user = fw.apps_by_user(&some_job.user).expect("by user");
    assert!(by_user.iter().any(|r| r.apid == some_job.apid as i64));
    let by_name = fw.apps_by_name(&some_job.app).expect("by name");
    assert!(by_name.iter().any(|r| r.apid == some_job.apid as i64));
}

#[test]
fn synopsis_summarizes_what_was_ingested() {
    let (fw, scenario, cfg) = boot();
    fw.batch_import(&scenario.lines).expect("import");
    let t0 = cfg.start_ms;
    let t1 = t0 + cfg.duration_ms;
    let written = synopsis::build_synopsis(&fw, t0, t1).expect("synopsis");
    assert!(written > 0);
    let day = hour_of(t0) * HOUR_MS / (24 * HOUR_MS);
    let rows = synopsis::read_synopsis(&fw, day).expect("read");
    let total: i64 = rows.iter().map(|r| r.events).sum();
    assert_eq!(total as usize, scenario.truth.len());
}

#[test]
fn json_server_serves_the_full_protocol_over_ingested_data() {
    let (fw, scenario, cfg) = boot();
    fw.batch_import(&scenario.lines).expect("import");
    let t0 = cfg.start_ms;
    let t1 = t0 + cfg.duration_ms;
    let engine = QueryEngine::new(Arc::new(fw));

    let ops = [
        format!(r#"{{"op":"events","type":"MCE","from":{t0},"to":{t1}}}"#),
        format!(r#"{{"op":"heatmap","type":"LUSTRE_ERR","from":{t0},"to":{t1}}}"#),
        format!(
            r#"{{"op":"histogram","type":"LUSTRE_ERR","from":{t0},"to":{t1},"bin_ms":3600000}}"#
        ),
        format!(
            r#"{{"op":"distribution","type":"LUSTRE_ERR","from":{t0},"to":{t1},"by":"cabinet"}}"#
        ),
        format!(
            r#"{{"op":"transfer_entropy","x":"NET_LINK","y":"LUSTRE_ERR","from":{t0},"to":{t1},"bin_ms":60000,"max_lag":4}}"#
        ),
        format!(r#"{{"op":"wordcount","type":"LUSTRE_ERR","from":{t0},"to":{t1},"top":10}}"#),
        format!(r#"{{"op":"apps","from":{t0},"to":{t1}}}"#),
        r#"{"op":"nodeinfo","cname":"c0-0c0s0n0"}"#.to_owned(),
    ];
    for op in &ops {
        let resp = jsonlite::parse(&engine.handle(op)).expect("valid JSON");
        assert_eq!(resp["status"].as_str(), Some("ok"), "op {op}");
    }
}

#[test]
fn telemetry_surfaces_ingest_query_and_analytics() {
    let (fw, scenario, cfg) = boot();
    fw.batch_import(&scenario.lines).expect("import");
    let t0 = cfg.start_ms;
    let t1 = t0 + cfg.duration_ms;
    let engine = QueryEngine::new(Arc::new(fw));

    // Drive a read and two RDD analytics jobs through the server surface so
    // coordinator, scheduler, and request spans all fire. The heatmap op
    // reaches scan_events_rdd, whose partitions are pinned to data owners
    // (locality hits); wordcount parallelizes with no preference (misses).
    let events_op = format!(r#"{{"op":"events","type":"MCE","from":{t0},"to":{t1}}}"#);
    for op in [
        events_op.clone(),
        format!(r#"{{"op":"heatmap","type":"LUSTRE_ERR","from":{t0},"to":{t1}}}"#),
        format!(r#"{{"op":"wordcount","type":"LUSTRE_ERR","from":{t0},"to":{t1},"top":5}}"#),
    ] {
        let resp = jsonlite::parse(&engine.handle(&op)).expect("valid JSON");
        assert_eq!(resp["status"].as_str(), Some("ok"), "op {op}");
    }

    let metrics = jsonlite::parse(&engine.handle(r#"{"op":"metrics"}"#)).expect("valid JSON");
    assert_eq!(metrics["status"].as_str(), Some("ok"));
    let read_count = metrics["data"]["histograms"]["rasdb.coordinator.read"]["count"]
        .as_i64()
        .expect("read histogram present");
    assert!(read_count > 0, "coordinator reads recorded");
    let write_count = metrics["data"]["histograms"]["rasdb.coordinator.write"]["count"]
        .as_i64()
        .expect("write histogram present");
    assert!(write_count > 0, "coordinator writes recorded");
    // Scheduler tasks split by locality: scan_events_rdd pins partitions
    // to data owners (hits); batch import spreads with no preference
    // (misses).
    let hits = metrics["data"]["counters"]["sparklet.scheduler.task.locality_hit"]
        .as_i64()
        .unwrap_or(0);
    let misses = metrics["data"]["counters"]["sparklet.scheduler.task.locality_miss"]
        .as_i64()
        .unwrap_or(0);
    assert!(hits > 0, "no locality hits recorded");
    assert!(misses > 0, "no locality misses recorded");
    assert!(
        metrics["data"]["histograms"]["sparklet.scheduler.task"]["count"]
            .as_i64()
            .unwrap()
            > 0
    );

    // The trace must contain at least one span tree rooted at a server
    // request. Other tests in this binary can flood the bounded ring
    // buffer between our query and the read, so retry the pair.
    let mut rooted_tree = false;
    for _ in 0..5 {
        engine.handle(&events_op);
        let trace = jsonlite::parse(&engine.handle(r#"{"op":"trace"}"#)).expect("valid JSON");
        assert_eq!(trace["status"].as_str(), Some("ok"));
        let spans = trace["data"]["spans"].as_array().expect("span array");
        let roots: Vec<i64> = spans
            .iter()
            .filter(|s| {
                s["name"].as_str() == Some("server.engine.request")
                    && s["parent"].as_i64().is_none()
            })
            .filter_map(|s| s["id"].as_i64())
            .collect();
        rooted_tree = spans
            .iter()
            .any(|s| s["parent"].as_i64().is_some_and(|p| roots.contains(&p)));
        if rooted_tree {
            break;
        }
    }
    assert!(rooted_tree, "no span tree rooted at a server request");
}

#[test]
fn context_drilldown_matches_manual_filtering() {
    use hpc_log_analytics::core::context::Context;
    let (fw, scenario, cfg) = boot();
    fw.batch_import(&scenario.lines).expect("import");
    let t0 = cfg.start_ms;
    let mid = t0 + cfg.duration_ms / 2;

    // Narrowing a context halves the window like a temporal-map zoom.
    let full = Context::window(t0, t0 + cfg.duration_ms).with_type("LUSTRE_ERR");
    let narrowed = full.narrow(t0, mid);
    let all = full.fetch_events(&fw).expect("fetch");
    let first_half = narrowed.fetch_events(&fw).expect("fetch");
    let manual = all.iter().filter(|e| e.ts_ms < mid).count();
    assert_eq!(first_half.len(), manual);

    // Cabinet context equals filtering by topology.
    let cab = Context::window(t0, t0 + cfg.duration_ms)
        .with_type("LUSTRE_ERR")
        .with_cabinet(2);
    let got = cab.fetch_events(&fw).expect("fetch");
    let want = scenario
        .truth
        .iter()
        .filter(|o| o.event_type == "LUSTRE_ERR" && o.node / 96 == 2)
        .count();
    assert_eq!(got.len(), want);
}

#[test]
fn distribution_by_application_attributes_to_running_jobs() {
    let (fw, scenario, cfg) = boot();
    fw.batch_import(&scenario.lines).expect("import");
    let t0 = cfg.start_ms;
    let t1 = t0 + cfg.duration_ms;
    let d = distribution(&fw, "LUSTRE_ERR", t0, t1, GroupBy::Application).expect("dist");
    let attributed: f64 = d.entries.iter().map(|(_, c)| c).sum();
    let total = scenario
        .truth
        .iter()
        .filter(|o| o.event_type == "LUSTRE_ERR")
        .count() as f64;
    assert_eq!(attributed + d.unattributed, total, "mass conserved");
    // App labels come from the generated catalog.
    for (app, _) in &d.entries {
        assert!(
            loggen::jobs::APPLICATIONS.contains(&app.as_str()),
            "unknown app {app}"
        );
    }
}
