#!/usr/bin/env bash
# Doc-link checker: fails on broken intra-repo links in the top-level
# markdown docs. External links (http/https/mailto) and pure anchors are
# ignored; `path#anchor` links are checked for the path part only.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md)
broken=0

for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || continue
  # Inline markdown links: [text](target). Reference-style and autolinks
  # are out of scope — the repo docs use inline links throughout.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -n "$path" ]] || continue
    # Links are repo-root-relative (the docs live at the root).
    if [[ ! -e "$path" ]]; then
      echo "BROKEN: $doc -> $target"
      broken=$((broken + 1))
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ "$broken" -gt 0 ]]; then
  echo "doc-link check failed: $broken broken link(s)"
  exit 1
fi
echo "doc-link check passed."
