#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), and the
# tier-1 test suite. Run from anywhere; it cds to the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> golden envelope suite"
cargo test -q -p hpclog-core --test golden_envelope

echo "==> ETL fast-path equivalence suite"
cargo test -q -p hpclog-core --test etl_equivalence

echo "==> doc-link check (README/DESIGN/EXPERIMENTS intra-repo links)"
scripts/check_doc_links.sh

echo "==> query cache bench (smoke mode)"
QUERY_CACHE_SMOKE=1 cargo bench -q -p hpclog-bench --bench query_cache

echo "==> rebalance bench (smoke mode)"
REBALANCE_SMOKE=1 cargo bench -q -p hpclog-bench --bench rebalance

echo "==> observability bench (smoke mode)"
OBSERVABILITY_SMOKE=1 cargo bench -q -p hpclog-bench --bench observability

echo "==> loadgen bench (smoke mode, asserts the goodput-under-overload gate)"
LOADGEN_SMOKE=1 cargo bench -q -p hpclog-bench --bench loadgen

echo "==> ETL fast-path bench (smoke mode, speedup gate relaxed to >=3x)"
ETL_FASTPATH_SMOKE=1 cargo bench -q -p hpclog-bench --bench etl_fastpath

echo "==> columnar analytics bench (smoke mode, speedup gate relaxed to >=2x)"
ANALYTICS_COLUMNAR_SMOKE=1 cargo bench -q -p hpclog-bench --bench analytics_columnar

echo "All checks passed."
