//! F7b/C6: "a simple word counts, which is rapidly executed by Spark, can
//! locate the source of the problem" — serial vs engine-parallel word
//! count over raw Lustre messages, plus TF-IDF.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpclog_core::analytics::text::{tf_idf, top_k, word_count_parallel, word_count_serial};
use hpclog_core::framework::{Framework, FrameworkConfig};
use loggen::events::Occurrence;
use loggen::failure::rng;
use loggen::lustre::render_error;
use loggen::topology::Topology;

fn storm_messages(n: usize) -> Vec<String> {
    let mut r = rng(42);
    let occ = Occurrence {
        ts_ms: 0,
        event_type: "LUSTRE_ERR",
        node: 0,
        count: 1,
    };
    (0..n)
        .map(|i| {
            // 80% of the storm blames the dead OST, 20% is background noise.
            let forced = if i % 5 != 0 { Some(0x41) } else { None };
            render_error(&occ, forced, &mut r)
        })
        .collect()
}

fn bench_wordcount(c: &mut Criterion) {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 8,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(1, 1),
        ..Default::default()
    })
    .expect("boot");
    let mut group = c.benchmark_group("wordcount_tfidf");
    group.sample_size(10);

    for n in [10_000usize, 50_000] {
        let messages = storm_messages(n);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                let counts = word_count_serial(&messages);
                let top = top_k(&counts, 10);
                assert!(top.iter().any(|(w, _)| w == "OST0041"));
                top.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_8_workers", n), &n, |b, _| {
            b.iter(|| {
                let counts = word_count_parallel(&fw, messages.clone());
                let top = top_k(&counts, 10);
                assert!(top.iter().any(|(w, _)| w == "OST0041"));
                top.len()
            })
        });
    }

    let messages = storm_messages(10_000);
    group.bench_function("tf_idf_10k", |b| b.iter(|| tf_idf(&messages).len()));
    group.finish();
}

criterion_group!(benches, bench_wordcount);
criterion_main!(benches);
