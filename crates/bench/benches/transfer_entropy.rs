//! F7a: transfer-entropy estimation cost vs series length and lag sweep —
//! what a frontend pays when the user selects a window on the TE view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpclog_core::analytics::transfer_entropy::{te_lag_sweep, transfer_entropy_binary};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use loggen::topology::Topology;

fn coupled_series(n: usize) -> (Vec<bool>, Vec<bool>) {
    let mut state = 0xfeed_beefu64;
    let mut x = Vec::with_capacity(n);
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x.push((state >> 62) & 1 == 1);
    }
    let y: Vec<bool> = (0..n).map(|t| t >= 2 && x[t - 2]).collect();
    (x, y)
}

fn bench_te(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_entropy");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        let (x, y) = coupled_series(n);
        group.bench_with_input(BenchmarkId::new("binary_te", n), &n, |b, _| {
            b.iter(|| transfer_entropy_binary(&x, &y, 2))
        });
    }

    // Full pipeline: events out of the store, binned, swept over lags.
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .expect("boot");
    let evs: Vec<EventRecord> = (0..20_000)
        .map(|i| EventRecord {
            ts_ms: (i as i64 * 613) % (6 * HOUR_MS),
            event_type: if i % 3 == 0 { "NET_LINK" } else { "LUSTRE_ERR" }.into(),
            source: "c0-0c0s0n0".into(),
            amount: 1,
            raw: String::new(),
        })
        .collect();
    fw.insert_events(&evs).expect("seed");
    fw.cluster().flush_all();
    group.bench_function("event_te_sweep_6h_10lags", |b| {
        b.iter(|| {
            te_lag_sweep(&fw, "NET_LINK", "LUSTRE_ERR", 0, 6 * HOUR_MS, 60_000, 10)
                .expect("sweep")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_te);
criterion_main!(benches);
