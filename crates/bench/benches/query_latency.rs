//! C2/F3: interactive query latency — point and range reads through the
//! builder, CQL text, and the full JSON server round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use hpclog_core::server::QueryEngine;
use loggen::topology::Topology;
use rasdb::types::Value;
use std::sync::Arc;

fn seeded() -> Framework {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 8,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .expect("boot");
    let evs: Vec<EventRecord> = (0..20_000)
        .map(|i| EventRecord {
            // Spread over all four hours (coprime stride > 4h/20k).
            ts_ms: (i as i64 * 977) % (4 * HOUR_MS),
            event_type: "LUSTRE_ERR".into(),
            source: format!("c{}-{}c0s{}n0", i % 2, i % 2, i % 8),
            amount: 1,
            raw: "LustreError: timeout".into(),
        })
        .collect();
    fw.insert_events(&evs).expect("seed");
    fw.cluster().flush_all();
    fw
}

fn bench_query_latency(c: &mut Criterion) {
    let fw = seeded();
    let engine = QueryEngine::new(Arc::new(seeded()));
    let mut group = c.benchmark_group("query_latency");
    group.sample_size(20);

    group.bench_function("point_partition_read", |b| {
        b.iter(|| {
            let rows = fw
                .cluster()
                .select("event_by_time")
                .partition(vec![Value::BigInt(1), Value::text("LUSTRE_ERR")])
                .limit(100)
                .run(fw.consistency())
                .expect("read");
            assert!(!rows.is_empty());
            rows.len()
        })
    });

    group.bench_function("clustering_range_read", |b| {
        b.iter(|| {
            fw.cluster()
                .select("event_by_time")
                .partition(vec![Value::BigInt(1), Value::text("LUSTRE_ERR")])
                .from_inclusive(Value::Timestamp(HOUR_MS + 600_000))
                .to_exclusive(Value::Timestamp(HOUR_MS + 1_800_000))
                .run(fw.consistency())
                .expect("read")
                .len()
        })
    });

    group.bench_function("cql_text_query", |b| {
        b.iter(|| {
            fw.cluster()
                .execute(
                    "SELECT * FROM event_by_time WHERE hour = 1 AND type = 'LUSTRE_ERR' LIMIT 50",
                    fw.consistency(),
                )
                .expect("cql")
        })
    });

    group.bench_function("json_server_round_trip", |b| {
        let req = format!(
            r#"{{"op":"events","type":"LUSTRE_ERR","from":{},"to":{}}}"#,
            HOUR_MS,
            HOUR_MS + 600_000
        );
        b.iter(|| {
            let resp = engine.handle(&req);
            assert!(resp.contains("\"ok\""));
            resp.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_latency);
criterion_main!(benches);
