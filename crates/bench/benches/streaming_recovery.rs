//! Streaming recovery under failure: a replica outage mid-storm (store
//! retries → dead-letter → heal → requeue) and an ingester crash mid-storm
//! (checkpoint replay). The contract being measured: **zero events lost**,
//! with the cost of absorbing replayed duplicates reported as overhead
//! against a fault-free ingest of the same storm.
//!
//! Emits `BENCH_streaming_recovery.json` at the workspace root so the
//! recovery-path trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use hpclog_core::etl::stream::{dlq_requeue, publish_lines, StreamConfig, StreamIngester};
use hpclog_core::framework::{Framework, FrameworkConfig};
use loggen::topology::Topology;
use loggen::trace::{Facility, RawLine};
use rasdb::ring::NodeId;
use std::time::Instant;

const EVENTS: i64 = 4000;
const T0: i64 = 1_500_000_000_000;

fn boot() -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: 3,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .unwrap()
}

fn storm() -> Vec<RawLine> {
    (0..EVENTS)
        .map(|i| RawLine {
            ts_ms: T0 + i * 50,
            facility: Facility::Console,
            source: format!("c0-0c0s{}n0", i % 8),
            text: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".to_owned(),
        })
        .collect()
}

fn cfg() -> StreamConfig {
    StreamConfig {
        lateness_ms: 300_000,
        max_store_attempts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        ..StreamConfig::default()
    }
}

fn stored_mass(fw: &Framework) -> i64 {
    fw.events_by_type("MCE", T0, T0 + 600_000)
        .unwrap()
        .iter()
        .map(|e| i64::from(e.amount))
        .sum()
}

/// Fault-free ingest: the baseline the recovery paths are charged against.
fn clean_ingest(lines: &[RawLine]) -> (Framework, f64) {
    let fw = boot();
    publish_lines(&fw, lines).unwrap();
    let t = Instant::now();
    StreamIngester::with_config(&fw, "g", cfg())
        .unwrap()
        .run_to_completion(256)
        .unwrap();
    (fw, t.elapsed().as_secs_f64() * 1000.0)
}

/// Replica outage mid-storm: 2 of 3 nodes die under the ingester, quorum
/// writes fail, windows retry then dead-letter; the cluster heals and a
/// requeue pass restores every event. Returns (elapsed ms, retries,
/// dlq_events, events_lost).
fn outage_recovery(lines: &[RawLine]) -> (f64, u64, usize, i64) {
    let fw = boot();
    publish_lines(&fw, lines).unwrap();
    let t = Instant::now();
    let mut ingester = StreamIngester::with_config(&fw, "g", cfg()).unwrap();
    // Half the storm lands cleanly...
    for _ in 0..(EVENTS as usize / 2 / 256) {
        ingester.step(256).unwrap();
    }
    // ...then the outage: quorum (2) becomes unreachable.
    fw.cluster().take_node_down(NodeId(1));
    fw.cluster().take_node_down(NodeId(2));
    let report = ingester.run_to_completion(256).unwrap();
    // Heal and drain the dead-letter queue back into the tables.
    fw.cluster().bring_node_up(NodeId(1));
    fw.cluster().bring_node_up(NodeId(2));
    let rq = dlq_requeue(&fw, usize::MAX).unwrap();
    assert_eq!(rq.remaining, 0, "requeue drained the DLQ");
    let elapsed = t.elapsed().as_secs_f64() * 1000.0;
    let lost = EVENTS - stored_mass(&fw);
    (elapsed, report.retries, report.dlq_events, lost)
}

/// Ingester crash mid-storm: first life dies cold after half the storm,
/// second life replays from the checkpointed offsets + watermark. Returns
/// (elapsed ms, records replayed, events_lost).
fn crash_replay(lines: &[RawLine]) -> (f64, usize, i64) {
    let fw = boot();
    publish_lines(&fw, lines).unwrap();
    let t = Instant::now();
    let first_polled;
    {
        let mut first = StreamIngester::with_config(&fw, "g", cfg()).unwrap();
        for _ in 0..(EVENTS as usize / 2 / 256) {
            first.step(256).unwrap();
        }
        first_polled = first.report().polled;
    }
    let second = StreamIngester::with_config(&fw, "g", cfg())
        .unwrap()
        .run_to_completion(256)
        .unwrap();
    let elapsed = t.elapsed().as_secs_f64() * 1000.0;
    let replayed = (first_polled + second.polled).saturating_sub(EVENTS as usize);
    let lost = EVENTS - stored_mass(&fw);
    (elapsed, replayed, lost)
}

fn bench_streaming_recovery(c: &mut Criterion) {
    let lines = storm();

    let (clean_fw, clean_ms) = clean_ingest(&lines);
    assert_eq!(stored_mass(&clean_fw), EVENTS, "baseline stores everything");
    let (outage_ms, retries, dlq_events, outage_lost) = outage_recovery(&lines);
    assert_eq!(outage_lost, 0, "outage + requeue must lose nothing");
    let (replay_ms, replayed, replay_lost) = crash_replay(&lines);
    assert_eq!(replay_lost, 0, "crash + replay must lose nothing");

    let overhead_pct = (replay_ms - clean_ms) / clean_ms * 100.0;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"streaming_recovery\",\n",
            "  \"events\": {},\n",
            "  \"nodes\": 3,\n",
            "  \"replication_factor\": 2,\n",
            "  \"clean_ingest_ms\": {:.3},\n",
            "  \"outage_recovery_ms\": {:.3},\n",
            "  \"outage_store_retries\": {},\n",
            "  \"outage_dlq_events\": {},\n",
            "  \"outage_events_lost\": {},\n",
            "  \"crash_replay_ms\": {:.3},\n",
            "  \"crash_records_replayed\": {},\n",
            "  \"crash_events_lost\": {},\n",
            "  \"duplicate_absorption_overhead_pct\": {:.1}\n",
            "}}\n"
        ),
        EVENTS,
        clean_ms,
        outage_ms,
        retries,
        dlq_events,
        outage_lost,
        replay_ms,
        replayed,
        replay_lost,
        overhead_pct
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_streaming_recovery.json"
    );
    std::fs::write(path, &json).expect("write BENCH_streaming_recovery.json");
    println!(
        "clean {clean_ms:.1} ms, outage+requeue {outage_ms:.1} ms \
         ({retries} retries, {dlq_events} dead-lettered), crash+replay \
         {replay_ms:.1} ms ({replayed} replayed, {overhead_pct:.1}% overhead)"
    );

    let mut group = c.benchmark_group("streaming_recovery");
    group.sample_size(10);
    group.bench_function("clean_ingest", |b| b.iter(|| clean_ingest(&lines)));
    group.bench_function("crash_replay", |b| b.iter(|| crash_replay(&lines)));
    group.finish();
}

criterion_group!(benches, bench_streaming_recovery);
criterion_main!(benches);
