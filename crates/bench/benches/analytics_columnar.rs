//! Cold analytics through the columnar block layer vs the row path: the
//! same five-panel analytics sweep (heatmap, distribution, histogram,
//! wordcount, cross_correlation) over a fixed 24-hour closed window, with
//! the result cache disabled on both sides so every refresh re-runs the
//! kernels. The row engine has every cache tier off (the pre-columnar
//! cold path, paying the simulated replica read per hour partition every
//! time); the columnar engine builds its blocks lazily on the priming
//! pass and then scans the resident columns with predicate pushdown.
//!
//! Per-read replica service latency is simulated (as in the query_cache
//! bench) to stand in for the RPC + disk time a networked ring pays per
//! partition read — the cost the columnar layer amortizes to one build
//! per closed hour.
//!
//! Emits `BENCH_analytics_columnar.json` at the workspace root (skipped
//! in smoke mode: `ANALYTICS_COLUMNAR_SMOKE=1` runs a fast correctness +
//! speedup check without touching the committed artifact or criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::server::QueryEngine;
use loggen::topology::Topology;
use rasdb::ring::NodeId;
use std::sync::Arc;
use std::time::Instant;

const T0: i64 = 1_500_000_000_000;
const HOURS: i64 = 24;
const HOUR_MS: i64 = 3_600_000;
/// Simulated per-read replica service time (RPC + disk) in microseconds.
const READ_LATENCY_US: u64 = 200;

fn smoke() -> bool {
    std::env::var("ANALYTICS_COLUMNAR_SMOKE").as_deref() == Ok("1")
}

fn seeded(columnar_on: bool) -> QueryEngine {
    let block = if columnar_on { 32 << 20 } else { 0 };
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(2, 2),
        block_cache_bytes: block,
        // The result cache stays off on both sides: this bench times the
        // kernels, not response memoization (query_cache covers that).
        result_cache_bytes: 0,
        ..Default::default()
    })
    .unwrap();
    let topo = fw.topology().clone();
    let mut events = Vec::new();
    for hour in 0..HOURS {
        for i in 0..40i64 {
            let (etype, raw) = if i % 3 == 0 {
                ("MCE", "Machine Check Exception: bank 1: b2 addr 3f cpu 0")
            } else {
                (
                    "LUSTRE_ERR",
                    "LustreError: 11-0: atlas1-OST0041-osc: operation failed",
                )
            };
            events.push(EventRecord {
                ts_ms: T0 + hour * HOUR_MS + i * 90_000 % HOUR_MS,
                event_type: etype.into(),
                source: topo
                    .node(((hour * 40 + i) as usize) % topo.node_count())
                    .cname,
                amount: 1,
                raw: raw.into(),
            });
        }
    }
    fw.insert_events(&events).unwrap();
    // Batch inserts do not move the ingest watermark; commit it past the
    // window so every hour is closed and eligible for columnar blocks.
    fw.note_ingest_commit(T0 + HOURS * HOUR_MS);
    // Simulated service latency goes on AFTER seeding so the writes above
    // stay fast.
    for n in 0..fw.cluster().node_count() {
        fw.cluster()
            .node(NodeId(n))
            .set_read_latency_us(READ_LATENCY_US);
    }
    QueryEngine::new(Arc::new(fw))
}

fn panels() -> Vec<String> {
    let (a, b) = (T0, T0 + HOURS * HOUR_MS);
    vec![
        format!(r#"{{"op":"heatmap","type":"LUSTRE_ERR","from":{a},"to":{b}}}"#),
        format!(
            r#"{{"op":"distribution","type":"LUSTRE_ERR","from":{a},"to":{b},"by":"cabinet"}}"#
        ),
        format!(
            r#"{{"op":"histogram","type":"LUSTRE_ERR","from":{a},"to":{b},"bin_ms":{HOUR_MS}}}"#
        ),
        format!(r#"{{"op":"wordcount","type":"LUSTRE_ERR","from":{a},"to":{b},"top":10}}"#),
        format!(
            r#"{{"op":"cross_correlation","x":"MCE","y":"LUSTRE_ERR","from":{a},"to":{b},"bin_ms":{HOUR_MS},"max_lag":3}}"#
        ),
    ]
}

fn sweep(engine: &QueryEngine, panels: &[String]) -> usize {
    panels.iter().map(|q| engine.handle(q).len()).sum()
}

fn measure(mut f: impl FnMut() -> usize, iters: u32) -> f64 {
    let t = Instant::now();
    let mut total = 0;
    for _ in 0..iters {
        total += f();
    }
    assert!(total > 0);
    t.elapsed().as_secs_f64() * 1000.0 / f64::from(iters)
}

fn bench_analytics_columnar(c: &mut Criterion) {
    let row = seeded(false);
    let col = seeded(true);
    let queries = panels();

    // Correctness before timing: every panel must be byte-identical row
    // vs columnar (modulo the per-request trace id) — on the priming pass
    // that builds the blocks and again on the resident-block pass.
    let sans_trace = |resp: String| {
        let mut v = jsonlite::parse(&resp).expect("valid response JSON");
        v.remove("trace_id");
        v.to_string()
    };
    for pass in ["build", "resident"] {
        for q in &queries {
            assert_eq!(
                sans_trace(row.handle(q)),
                sans_trace(col.handle(q)),
                "{pass}: {q}"
            );
        }
    }
    let stats = col.framework().columnar().stats();
    assert!(
        stats.blocks_built >= HOURS as u64,
        "priming must build a block per closed hour (built {})",
        stats.blocks_built
    );
    assert!(
        stats.hits > 0,
        "the second pass must scan resident columnar blocks"
    );

    let iters = if smoke() { 3 } else { 10 };
    let row_ms = measure(|| sweep(&row, &queries), iters);
    let col_ms = measure(|| sweep(&col, &queries), iters);
    let speedup = row_ms / col_ms;
    println!(
        "24h analytics sweep: row {row_ms:.3} ms, columnar {col_ms:.3} ms, speedup {speedup:.1}x"
    );
    let floor = if smoke() { 2.0 } else { 5.0 };
    assert!(
        speedup >= floor,
        "columnar analytics must be at least {floor}x faster than the row path (got {speedup:.1}x)"
    );

    if smoke() {
        return;
    }

    let stats = col.framework().columnar().stats();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analytics_columnar\",\n",
            "  \"panels\": [\"heatmap\", \"distribution\", \"histogram\", \"wordcount\", \"cross_correlation\"],\n",
            "  \"window_hours\": {},\n",
            "  \"events_seeded\": {},\n",
            "  \"nodes\": 4,\n",
            "  \"replication_factor\": 3,\n",
            "  \"read_latency_us\": {},\n",
            "  \"row_sweep_ms\": {:.3},\n",
            "  \"columnar_sweep_ms\": {:.3},\n",
            "  \"speedup\": {:.2},\n",
            "  \"blocks_built\": {},\n",
            "  \"bytes_resident\": {},\n",
            "  \"dict_compression\": {:.2},\n",
            "  \"zone_skips\": {}\n",
            "}}\n"
        ),
        HOURS,
        HOURS * 40,
        READ_LATENCY_US,
        row_ms,
        col_ms,
        speedup,
        stats.blocks_built,
        stats.bytes_resident,
        stats.dict_compression(),
        stats.zone_skips,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_analytics_columnar.json"
    );
    std::fs::write(path, &json).expect("write BENCH_analytics_columnar.json");

    let mut group = c.benchmark_group("analytics_columnar");
    group.sample_size(10);
    group.bench_function("sweep_row_24h", |b| b.iter(|| sweep(&row, &queries)));
    group.bench_function("sweep_columnar_24h", |b| b.iter(|| sweep(&col, &queries)));
    group.finish();
}

criterion_group!(benches, bench_analytics_columnar);
criterion_main!(benches);
