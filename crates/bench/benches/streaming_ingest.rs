//! C5: streaming ingestion — bus → 1 s windows → coalesce → store, and the
//! coalescing ablation (how many store writes the window rule saves when
//! a storm repeats events within the same second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpclog_core::etl::stream::{publish_lines, StreamIngester};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use loggen::topology::Topology;
use loggen::trace::{Facility, RawLine};

fn fw() -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: 6,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .expect("boot")
}

/// A bursty stream: every node repeats the same error a few times per
/// second (exactly what the 1 s coalescing window is for).
fn bursty_lines(n: usize) -> Vec<RawLine> {
    let t0 = 1_500_000_000_000i64;
    (0..n)
        .map(|i| RawLine {
            ts_ms: t0 + (i as i64 / 40) * 250, // 4 repeats per node-second
            facility: Facility::Console,
            source: format!("c0-0c0s{}n{}", (i % 32) / 4, i % 4),
            text: "Machine Check Exception: bank 2: b2 addr 3f cpu 1".into(),
        })
        .collect()
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_ingest");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let lines = bursty_lines(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("bus_window_coalesce_store", n),
            &n,
            |b, _| {
                b.iter_with_setup(
                    || {
                        let fw = fw();
                        publish_lines(&fw, &lines).expect("publish");
                        fw
                    },
                    |fw| {
                        let report = StreamIngester::new(&fw, "bench", 60_000)
                            .expect("join")
                            .run_to_completion(1024)
                            .expect("drain");
                        assert_eq!(report.events_in, lines.len());
                        assert!(report.events_out < report.events_in);
                        report.events_out
                    },
                );
            },
        );

        // Ablation: no coalescing — every raw event becomes a store write.
        group.bench_with_input(
            BenchmarkId::new("no_coalescing_direct_store", n),
            &n,
            |b, _| {
                b.iter_with_setup(fw, |fw| {
                    let evs: Vec<EventRecord> = lines
                        .iter()
                        .map(|l| EventRecord {
                            ts_ms: l.ts_ms,
                            event_type: "MCE".into(),
                            source: l.source.clone(),
                            amount: 1,
                            raw: l.text.clone(),
                        })
                        .collect();
                    fw.insert_events(&evs).expect("insert")
                });
            },
        );
    }
    group.finish();

    // Telemetry overhead: the identical drain with the global registry on
    // vs off. Span guards and counters stay at every call site; "off"
    // reduces each to a relaxed atomic load and branch.
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let n = 20_000usize;
    let lines = bursty_lines(n);
    group.throughput(Throughput::Elements(n as u64));
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        group.bench_with_input(BenchmarkId::new("streaming_ingest", label), &n, |b, _| {
            b.iter_with_setup(
                || {
                    telemetry::set_enabled(enabled);
                    let fw = fw();
                    publish_lines(&fw, &lines).expect("publish");
                    fw
                },
                |fw| {
                    let report = StreamIngester::new(&fw, "bench", 60_000)
                        .expect("join")
                        .run_to_completion(1024)
                        .expect("drain");
                    assert_eq!(report.events_in, lines.len());
                    report.events_out
                },
            );
        });
    }
    telemetry::set_enabled(true);
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
