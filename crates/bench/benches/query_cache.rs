//! Warm vs cold dashboard refresh through the two-tier query cache: the
//! same four-panel analytics dashboard (heatmap, distribution, histogram,
//! wordcount) over a fixed 24-hour window, repeated the way a frontend
//! polls it. Cold runs against a framework with both cache tiers disabled;
//! warm runs against the default framework after one priming pass, so
//! every request is a validated result-cache hit.
//!
//! Per-read replica service latency is simulated (as in the
//! scatter_gather bench) to stand in for the RPC + disk time a networked
//! ring pays per partition read — the cost the cache exists to avoid.
//!
//! Emits `BENCH_query_cache.json` at the workspace root (skipped in smoke
//! mode: `QUERY_CACHE_SMOKE=1` runs a fast correctness + speedup check
//! without touching the committed artifact or criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::server::QueryEngine;
use loggen::topology::Topology;
use rasdb::ring::NodeId;
use std::sync::Arc;
use std::time::Instant;

const T0: i64 = 1_500_000_000_000;
const HOURS: i64 = 24;
const HOUR_MS: i64 = 3_600_000;
/// Simulated per-read replica service time (RPC + disk) in microseconds.
const READ_LATENCY_US: u64 = 200;

fn smoke() -> bool {
    std::env::var("QUERY_CACHE_SMOKE").as_deref() == Ok("1")
}

fn seeded(caches_on: bool) -> QueryEngine {
    let (block, result) = if caches_on {
        (32 << 20, 8 << 20)
    } else {
        (0, 0)
    };
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(2, 2),
        block_cache_bytes: block,
        result_cache_bytes: result,
        ..Default::default()
    })
    .unwrap();
    let topo = fw.topology().clone();
    let mut events = Vec::new();
    for hour in 0..HOURS {
        for i in 0..40i64 {
            let (etype, raw) = if i % 3 == 0 {
                ("MCE", "Machine Check Exception: bank 1: b2 addr 3f cpu 0")
            } else {
                (
                    "LUSTRE_ERR",
                    "LustreError: 11-0: atlas1-OST0041-osc: operation failed",
                )
            };
            events.push(EventRecord {
                ts_ms: T0 + hour * HOUR_MS + i * 90_000 % HOUR_MS,
                event_type: etype.into(),
                source: topo
                    .node(((hour * 40 + i) as usize) % topo.node_count())
                    .cname,
                amount: 1,
                raw: raw.into(),
            });
        }
    }
    fw.insert_events(&events).unwrap();
    // Simulated service latency goes on AFTER seeding so the writes above
    // stay fast.
    for n in 0..fw.cluster().node_count() {
        fw.cluster()
            .node(NodeId(n))
            .set_read_latency_us(READ_LATENCY_US);
    }
    QueryEngine::new(Arc::new(fw))
}

fn dashboard() -> Vec<String> {
    let (a, b) = (T0, T0 + HOURS * HOUR_MS);
    vec![
        format!(r#"{{"op":"heatmap","type":"LUSTRE_ERR","from":{a},"to":{b}}}"#),
        format!(
            r#"{{"op":"distribution","type":"LUSTRE_ERR","from":{a},"to":{b},"by":"cabinet"}}"#
        ),
        format!(
            r#"{{"op":"histogram","type":"LUSTRE_ERR","from":{a},"to":{b},"bin_ms":{HOUR_MS}}}"#
        ),
        format!(r#"{{"op":"wordcount","type":"LUSTRE_ERR","from":{a},"to":{b},"top":10}}"#),
    ]
}

fn refresh(engine: &QueryEngine, panels: &[String]) -> usize {
    panels.iter().map(|q| engine.handle(q).len()).sum()
}

fn measure(mut f: impl FnMut() -> usize, iters: u32) -> f64 {
    let t = Instant::now();
    let mut total = 0;
    for _ in 0..iters {
        total += f();
    }
    assert!(total > 0);
    t.elapsed().as_secs_f64() * 1000.0 / f64::from(iters)
}

fn bench_query_cache(c: &mut Criterion) {
    let cold = seeded(false);
    let warm = seeded(true);
    let panels = dashboard();

    // Correctness before timing: every panel must be byte-identical cold
    // vs warm (modulo the per-request trace id), on the priming pass and
    // again on the all-hits pass.
    let sans_trace = |resp: String| {
        let mut v = jsonlite::parse(&resp).expect("valid response JSON");
        v.remove("trace_id");
        v.to_string()
    };
    for pass in ["prime", "hits"] {
        for q in &panels {
            assert_eq!(
                sans_trace(cold.handle(q)),
                sans_trace(warm.handle(q)),
                "{pass}: {q}"
            );
        }
    }
    let stats = warm.framework().result_cache().stats();
    assert_eq!(
        stats.hits(),
        panels.len() as u64,
        "second pass must be all result-cache hits"
    );

    let iters = if smoke() { 3 } else { 10 };
    let cold_ms = measure(|| refresh(&cold, &panels), iters);
    let warm_ms = measure(|| refresh(&warm, &panels), iters);
    let speedup = cold_ms / warm_ms;
    println!(
        "dashboard refresh: cold {cold_ms:.3} ms, warm {warm_ms:.3} ms, speedup {speedup:.1}x"
    );
    assert!(
        speedup >= 5.0,
        "warm dashboard must be at least 5x faster than cold (got {speedup:.1}x)"
    );

    if smoke() {
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"query_cache\",\n",
            "  \"panels\": [\"heatmap\", \"distribution\", \"histogram\", \"wordcount\"],\n",
            "  \"window_hours\": {},\n",
            "  \"events_seeded\": {},\n",
            "  \"nodes\": 4,\n",
            "  \"replication_factor\": 3,\n",
            "  \"read_latency_us\": {},\n",
            "  \"cold_dashboard_ms\": {:.3},\n",
            "  \"warm_dashboard_ms\": {:.3},\n",
            "  \"speedup\": {:.2},\n",
            "  \"result_cache_hits\": {},\n",
            "  \"result_cache_misses\": {}\n",
            "}}\n"
        ),
        HOURS,
        HOURS * 40,
        READ_LATENCY_US,
        cold_ms,
        warm_ms,
        speedup,
        stats.hits(),
        stats.misses(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_cache.json");
    std::fs::write(path, &json).expect("write BENCH_query_cache.json");

    let mut group = c.benchmark_group("query_cache");
    group.sample_size(10);
    group.bench_function("dashboard_cold_24h", |b| b.iter(|| refresh(&cold, &panels)));
    group.bench_function("dashboard_warm_24h", |b| b.iter(|| refresh(&warm, &panels)));
    group.finish();
}

criterion_group!(benches, bench_query_cache);
criterion_main!(benches);
