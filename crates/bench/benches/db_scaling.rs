//! C1: backend scalability — write and read throughput as the cluster
//! grows (fixed work), plus the bloom-filter read ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rasdb::cluster::{Cluster, ClusterConfig};
use rasdb::node::NodeConfig;
use rasdb::query::Consistency;
use rasdb::schema::{ColumnType, TableSchema};
use rasdb::types::Value;

fn schema() -> TableSchema {
    TableSchema::builder("event_by_time")
        .partition_key("hour", ColumnType::BigInt)
        .partition_key("type", ColumnType::Text)
        .clustering_key("ts", ColumnType::Timestamp)
        .clustering_key("source", ColumnType::Text)
        .column("amount", ColumnType::Int)
        .build()
        .expect("schema")
}

fn cluster(nodes: usize, use_bloom: bool) -> Cluster {
    let c = Cluster::with_node_config(
        ClusterConfig {
            nodes,
            replication_factor: 3.min(nodes),
            vnodes: 16,
        },
        NodeConfig {
            use_bloom,
            ..Default::default()
        },
    );
    c.create_table(schema()).expect("create");
    c
}

fn write_n(c: &Cluster, n: usize) {
    for i in 0..n {
        c.insert(
            "event_by_time",
            vec![
                ("hour", Value::BigInt((i % 48) as i64)),
                ("type", Value::text("MCE")),
                ("ts", Value::Timestamp(i as i64)),
                ("source", Value::text("c0-0c0s0n0")),
                ("amount", Value::Int(1)),
            ],
            Consistency::Quorum,
        )
        .expect("insert");
    }
}

fn bench_db_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_scaling");
    group.sample_size(10);
    const N: usize = 5_000;
    group.throughput(Throughput::Elements(N as u64));
    for nodes in [4usize, 8, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("write_5k_quorum", nodes),
            &nodes,
            |b, &nodes| {
                b.iter_with_setup(|| cluster(nodes, true), |c| write_n(&c, N));
            },
        );
    }

    // Read throughput at two cluster sizes.
    group.throughput(Throughput::Elements(100));
    for nodes in [4usize, 32] {
        let c100 = cluster(nodes, true);
        write_n(&c100, 20_000);
        c100.flush_all();
        group.bench_with_input(
            BenchmarkId::new("read_100_partitions", nodes),
            &nodes,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for h in 0..48i64 {
                        total += c100
                            .select("event_by_time")
                            .partition(vec![Value::BigInt(h), Value::text("MCE")])
                            .limit(50)
                            .run(Consistency::One)
                            .expect("read")
                            .len();
                    }
                    total
                })
            },
        );
    }

    // Ablation: bloom filters off — absent-partition probes get costly.
    group.throughput(Throughput::Elements(1000));
    for (label, bloom) in [("bloom_on", true), ("bloom_off", false)] {
        let cl = cluster(8, bloom);
        write_n(&cl, 10_000);
        cl.flush_all();
        group.bench_function(BenchmarkId::new("absent_partition_reads", label), |b| {
            b.iter(|| {
                let mut none = 0usize;
                for h in 1000..2000i64 {
                    let rows = cl
                        .select("event_by_time")
                        .partition(vec![Value::BigInt(h), Value::text("MCE")])
                        .run(Consistency::One)
                        .expect("read");
                    none += rows.len();
                }
                assert_eq!(none, 0);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_db_scaling);
criterion_main!(benches);
