//! F4: partitions mapped to nodes by the (hour, type) hash. Measures the
//! placement computation and reports the load-balance statistics the
//! figure illustrates (printed once as `partition_balance` summary lines).

use criterion::{criterion_group, criterion_main, Criterion};
use loggen::events::EVENT_CATALOG;
use rasdb::cluster::{Cluster, ClusterConfig};
use rasdb::types::{Key, Value};
use std::sync::Once;

fn week_of_partition_keys() -> Vec<Key> {
    let mut keys = Vec::new();
    for hour in 0..(7 * 24) {
        for etype in EVENT_CATALOG {
            keys.push(Key(vec![Value::BigInt(hour), Value::text(etype.name)]));
        }
    }
    keys
}

fn balance_report(cluster: &Cluster, keys: &[Key]) -> (f64, usize, usize) {
    let mut counts = vec![0usize; cluster.node_count()];
    for key in keys {
        counts[cluster.owners(key)[0].0] += 1;
    }
    let mean = keys.len() as f64 / counts.len() as f64;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / counts.len() as f64;
    let cv = var.sqrt() / mean;
    (
        cv,
        *counts.iter().min().expect("nodes"),
        *counts.iter().max().expect("nodes"),
    )
}

fn bench_partition_balance(c: &mut Criterion) {
    static PRINT: Once = Once::new();
    let keys = week_of_partition_keys();

    // The paper's deployment: 32 nodes. Report the figure's content once.
    PRINT.call_once(|| {
        println!(
            "\npartition_balance: one week of (hour,type) partitions = {} keys",
            keys.len()
        );
        for nodes in [4usize, 8, 16, 32] {
            let cluster = Cluster::new(ClusterConfig {
                nodes,
                replication_factor: 3.min(nodes),
                vnodes: 64,
            });
            let (cv, min, max) = balance_report(&cluster, &keys);
            println!(
                "partition_balance: nodes={nodes:>2} primary-load cv={cv:.3} min={min} max={max}"
            );
        }
    });

    let mut group = c.benchmark_group("partition_balance");
    group.sample_size(10);
    let cluster = Cluster::new(ClusterConfig {
        nodes: 32,
        replication_factor: 3,
        vnodes: 64,
    });
    group.bench_function("placement_week_32_nodes", |b| {
        b.iter(|| {
            let (cv, _, _) = balance_report(&cluster, &keys);
            assert!(cv < 0.6);
            cv
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partition_balance);
criterion_main!(benches);
