//! C4: batch ETL throughput — regex parse + upload with 1 executor
//! (serial baseline) vs the full co-located pool, at growing log volumes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpclog_core::etl::batch::import_rendered;
use hpclog_core::framework::{Framework, FrameworkConfig};
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};

fn raw_lines(hours: i64) -> Vec<String> {
    let topo = Topology::scaled(2, 2);
    let cfg = ScenarioConfig {
        rate_scale: 30.0,
        ..ScenarioConfig::quiet_day(hours)
    };
    Scenario::generate(&topo, &cfg, 7)
        .lines
        .iter()
        .map(|l| l.render())
        .collect()
}

fn fw(workers: usize) -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: 8,
        replication_factor: 2,
        vnodes: 8,
        workers: Some(workers),
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .expect("boot")
}

fn bench_etl(c: &mut Criterion) {
    let mut group = c.benchmark_group("etl_throughput");
    group.sample_size(10);
    let lines = raw_lines(12);
    group.throughput(Throughput::Elements(lines.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch_import", workers),
            &workers,
            |b, &w| {
                b.iter_with_setup(
                    || (fw(w), lines.clone()),
                    |(fw, lines)| {
                        let report = import_rendered(&fw, lines).expect("import");
                        assert_eq!(report.skipped, 0);
                        report.parsed
                    },
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_etl);
criterion_main!(benches);
