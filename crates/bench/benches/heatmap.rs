//! F5: heat-map + distribution computation cost as the selected interval
//! grows — the interactivity claim behind the physical-system-map view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpclog_core::analytics::distribution::{distribution, GroupBy};
use hpclog_core::analytics::heatmap::cabinet_heatmap;
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use loggen::topology::Topology;

fn seeded(hours: i64, per_hour: usize) -> Framework {
    let topo = Topology::scaled(3, 2);
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 6,
        replication_factor: 2,
        vnodes: 8,
        topology: topo.clone(),
        ..Default::default()
    })
    .expect("boot");
    let evs: Vec<EventRecord> = (0..hours as usize * per_hour)
        .map(|i| EventRecord {
            ts_ms: (i / per_hour) as i64 * HOUR_MS + (i % per_hour) as i64,
            event_type: "MCE".into(),
            source: topo.node((i * 31) % topo.node_count()).cname,
            amount: 1,
            raw: String::new(),
        })
        .collect();
    fw.insert_events(&evs).expect("seed");
    fw.cluster().flush_all();
    fw
}

fn bench_heatmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("heatmap");
    group.sample_size(10);
    let fw = seeded(24, 2000);
    for hours in [1i64, 6, 24] {
        group.bench_with_input(
            BenchmarkId::new("cabinet_heatmap", hours),
            &hours,
            |b, &h| {
                b.iter(|| {
                    let hm = cabinet_heatmap(&fw, "MCE", 0, h * HOUR_MS).expect("heatmap");
                    assert_eq!(hm.total as i64, h * 2000);
                    hm.hottest
                })
            },
        );
    }
    group.bench_function("distribution_by_blade_24h", |b| {
        b.iter(|| {
            distribution(&fw, "MCE", 0, 24 * HOUR_MS, GroupBy::Blade)
                .expect("dist")
                .entries
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_heatmap);
criterion_main!(benches);
