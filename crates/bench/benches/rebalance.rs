//! Query latency while the ring rebalances: a four-node cluster serves
//! QUORUM partition reads as a fifth node joins and streams its ranges in.
//! Three phases: a stable baseline, a join under load (the stream is
//! throttled so the query workload genuinely overlaps it), and a faulted
//! join whose stream must retry dropped chunks and resume after a receiver
//! crash. The gate is sub-linear degradation: p95 during streaming must
//! stay under 4x the stable p95, and the faulted phase must show real
//! recovery work (resumes and retries above zero).
//!
//! Per-read replica service latency is simulated (as in scatter_gather)
//! to stand in for the RPC + disk time a networked ring pays per read.
//!
//! Emits `BENCH_rebalance.json` at the workspace root (skipped in smoke
//! mode: `REBALANCE_SMOKE=1` runs a fast assertion pass without touching
//! the committed artifact or criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use rasdb::cluster::{Cluster, ClusterConfig};
use rasdb::query::Consistency;
use rasdb::ring::NodeId;
use rasdb::schema::{ColumnType, TableSchema};
use rasdb::topology::TopologyFaultPlan;
use rasdb::types::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simulated per-read replica service time (RPC + disk) in microseconds.
const READ_LATENCY_US: u64 = 150;

fn smoke() -> bool {
    std::env::var("REBALANCE_SMOKE").as_deref() == Ok("1")
}

fn partitions() -> i64 {
    if smoke() {
        16
    } else {
        64
    }
}

fn rows_per_partition() -> i64 {
    if smoke() {
        8
    } else {
        32
    }
}

fn seeded() -> Arc<Cluster> {
    let c = Cluster::new(ClusterConfig {
        nodes: 4,
        replication_factor: 3,
        vnodes: 16,
    });
    c.create_table(
        TableSchema::builder("t")
            .partition_key("hour", ColumnType::BigInt)
            .clustering_key("ts", ColumnType::Timestamp)
            .column("v", ColumnType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    for h in 0..partitions() {
        for ts in 0..rows_per_partition() {
            c.insert(
                "t",
                vec![
                    ("hour", Value::BigInt(h)),
                    ("ts", Value::Timestamp(ts)),
                    ("v", Value::Int((h * 1000 + ts) as i32)),
                ],
                Consistency::Quorum,
            )
            .unwrap();
        }
    }
    c.flush_all();
    // The block cache would absorb the reads below and hide the
    // coordinator path this bench measures.
    c.set_block_cache_budget(0);
    for n in 0..c.node_count() {
        c.node(NodeId(n)).set_read_latency_us(READ_LATENCY_US);
    }
    Arc::new(c)
}

/// One QUORUM partition read; returns its latency in microseconds.
fn query_once(c: &Cluster, h: i64) -> f64 {
    let t = Instant::now();
    let rows = c
        .select("t")
        .partition(vec![Value::BigInt(h % partitions())])
        .run(Consistency::Quorum)
        .unwrap();
    assert_eq!(rows.len(), rows_per_partition() as usize);
    t.elapsed().as_secs_f64() * 1e6
}

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

fn bench_rebalance(c: &mut Criterion) {
    let cluster = seeded();

    // Phase 1: stable baseline.
    let baseline_n = if smoke() { 40 } else { 400 };
    let mut baseline: Vec<f64> = (0..baseline_n)
        .map(|i| query_once(&cluster, i as i64))
        .collect();
    let base_p50 = percentile(&mut baseline, 0.50);
    let base_p95 = percentile(&mut baseline, 0.95);

    // Phase 2: join under load. The stream is chunked small and throttled
    // so queries genuinely overlap it.
    cluster.set_stream_chunk_rows(if smoke() { 4 } else { 8 });
    let stall = Duration::from_millis(if smoke() { 1 } else { 2 });
    let join = {
        let c = Arc::clone(&cluster);
        let plan = TopologyFaultPlan::none().slow_chunk_every(1, stall);
        std::thread::spawn(move || c.join_node_with(plan).unwrap())
    };
    let mut during: Vec<f64> = Vec::new();
    let mut i = 0i64;
    while !join.is_finished() {
        during.push(query_once(&cluster, i));
        i += 1;
    }
    let clean_report = join.join().unwrap();
    assert!(clean_report.rows_streamed > 0, "the join must move data");
    assert!(
        during.len() >= 4,
        "need overlap samples, got {}",
        during.len()
    );
    let during_p50 = percentile(&mut during, 0.50);
    let during_p95 = percentile(&mut during, 0.95);
    let degradation = during_p95 / base_p95;
    println!(
        "rebalance: baseline p50 {base_p50:.0}us p95 {base_p95:.0}us | during-join p50 \
         {during_p50:.0}us p95 {during_p95:.0}us ({degradation:.2}x) | {} rows streamed",
        clean_report.rows_streamed
    );
    assert!(
        degradation < 4.0,
        "p95 under streaming must stay sub-linear vs baseline (got {degradation:.2}x)"
    );

    // Phase 3: faulted join — every 7th chunk attempt drops (retry) and
    // the receiver crashes after 3 acked chunks (resume from last ack).
    let faulted_report = cluster
        .join_node_with(
            TopologyFaultPlan::none()
                .drop_chunk_every(7)
                .joiner_crash_at(3),
        )
        .unwrap();
    assert!(
        faulted_report.chunk_retries > 0,
        "dropped chunks must be retried"
    );
    assert!(
        faulted_report.stream_resumes > 0,
        "the receiver crash must force a resume"
    );
    println!(
        "faulted join: {} rows streamed, {} retries, {} resumes",
        faulted_report.rows_streamed, faulted_report.chunk_retries, faulted_report.stream_resumes
    );

    if smoke() {
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"rebalance\",\n",
            "  \"nodes_initial\": 4,\n",
            "  \"replication_factor\": 3,\n",
            "  \"partitions\": {},\n",
            "  \"rows_per_partition\": {},\n",
            "  \"read_latency_us\": {},\n",
            "  \"baseline_query_p50_us\": {:.1},\n",
            "  \"baseline_query_p95_us\": {:.1},\n",
            "  \"during_join_query_p50_us\": {:.1},\n",
            "  \"during_join_query_p95_us\": {:.1},\n",
            "  \"during_join_samples\": {},\n",
            "  \"p95_degradation\": {:.2},\n",
            "  \"clean_join_rows_streamed\": {},\n",
            "  \"clean_join_chunks_streamed\": {},\n",
            "  \"faulted_join_rows_streamed\": {},\n",
            "  \"faulted_join_chunk_retries\": {},\n",
            "  \"faulted_join_stream_resumes\": {}\n",
            "}}\n"
        ),
        partitions(),
        rows_per_partition(),
        READ_LATENCY_US,
        base_p50,
        base_p95,
        during_p50,
        during_p95,
        during.len(),
        degradation,
        clean_report.rows_streamed,
        clean_report.chunks_streamed,
        faulted_report.rows_streamed,
        faulted_report.chunk_retries,
        faulted_report.stream_resumes,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rebalance.json");
    std::fs::write(path, &json).expect("write BENCH_rebalance.json");

    let mut group = c.benchmark_group("rebalance");
    group.sample_size(10);
    group.bench_function("quorum_read_stable", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            query_once(&cluster, i)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rebalance);
criterion_main!(benches);
