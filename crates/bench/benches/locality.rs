//! C3: the co-location claim — a scan+aggregate job with locality-aware
//! task placement vs round-robin placement. Remote placement pays the
//! marshalling round trip per row that co-located execution avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use loggen::topology::Topology;

fn seeded() -> Framework {
    let topo = Topology::scaled(2, 2);
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 8,
        replication_factor: 2,
        vnodes: 16,
        topology: topo.clone(),
        ..Default::default()
    })
    .expect("boot");
    // 48 hour-partitions × 2,000 events with fat raw payloads: the data
    // that either stays local or crosses the "network".
    let evs: Vec<EventRecord> = (0..96_000usize)
        .map(|i| EventRecord {
            ts_ms: (i / 2000) as i64 * HOUR_MS + (i % 2000) as i64,
            event_type: "LUSTRE_ERR".into(),
            source: topo.node(i % topo.node_count()).cname,
            amount: 1,
            raw: format!(
                "LustreError: 11-0: atlas1-OST0041-osc-ffff{:012x}: Communicating with \
                 10.36.226.77@o2ib, operation ost_read failed with -110 (attempt {i})",
                i
            ),
        })
        .collect();
    fw.insert_events(&evs).expect("seed");
    fw.cluster().flush_all();
    fw
}

fn scan_and_aggregate(fw: &Framework) -> usize {
    // Count events per source across 48 hours (a typical heat-map job).
    fw.scan_events_rdd("LUSTRE_ERR", 0, 48 * HOUR_MS)
        .map(|e| (e.source, e.amount as u64))
        .reduce_by_key(8, |a, b| a + b)
        .collect()
        .len()
}

fn bench_locality(c: &mut Criterion) {
    let fw = seeded();
    let mut group = c.benchmark_group("locality");
    group.sample_size(10);
    for (label, locality) in [("locality_aware", true), ("round_robin", false)] {
        group.bench_with_input(
            BenchmarkId::new("scan_aggregate_48h", label),
            &locality,
            |b, &loc| {
                fw.engine().set_locality(loc);
                b.iter(|| {
                    let distinct = scan_and_aggregate(&fw);
                    assert!(distinct > 0);
                    distinct
                });
            },
        );
    }
    fw.engine().set_locality(true);
    group.finish();
}

criterion_group!(benches, bench_locality);
criterion_main!(benches);
