//! Zero-copy byte-scanner fast path vs the regex reference oracle on the
//! Titan-scale loggen corpus (C11 in EXPERIMENTS.md).
//!
//! Three measurements:
//!
//! 1. **parse stage** — the headline number: per-line pattern matching
//!    over the rendered corpus, `FastParser::parse_line` (byte scanner)
//!    vs `EventParser::parse` (the `rex` Pike VM). The ≥10× acceptance
//!    gate applies here: both paths do identical work per line (same
//!    `ParsedLine` out), so the ratio isolates the scanner itself.
//! 2. **end-to-end import** — `import_bytes` with the Fast vs Regex
//!    backend on identical frameworks; smaller ratio because store
//!    writes are common to both.
//! 3. **predicate pushdown** — fast-path scan with a 1-hour window over
//!    the full corpus; filtered lines cost only a timestamp parse.
//!
//! Correctness rides along: before timing, every line's fast-path result
//! is asserted equal to the oracle's, and the two import reports must
//! match. Emits `BENCH_etl_fastpath.json` at the workspace root (skipped
//! in smoke mode: `ETL_FASTPATH_SMOKE=1` runs a smaller corpus with the
//! speedup gate relaxed to ≥3×, without touching the committed artifact
//! or criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use hpclog_core::etl::batch::{ImportOptions, ParserBackend};
use hpclog_core::etl::fastpath::{FastParser, LineOutcome, Lines, ScanPredicate, ScanStats};
use hpclog_core::etl::parsers::EventParser;
use hpclog_core::framework::{Framework, FrameworkConfig};
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("ETL_FASTPATH_SMOKE").as_deref() == Ok("1")
}

fn corpus(topo: &Topology, hours: i64, rate_scale: f64) -> Vec<u8> {
    let cfg = ScenarioConfig {
        rate_scale,
        ..ScenarioConfig::storm_day(hours, 41)
    };
    Scenario::generate(topo, &cfg, 1977).render_corpus()
}

fn fw(topo: Topology) -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 2,
        vnodes: 8,
        topology: topo,
        ..Default::default()
    })
    .unwrap()
}

/// Milliseconds per pass over `f`, best-of-`iters` to shed scheduler
/// noise on the shared runner.
fn measure(mut f: impl FnMut() -> usize, iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let n = f();
        assert!(n > 0);
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

fn bench_etl_fastpath(c: &mut Criterion) {
    // Smoke keeps the corpus small enough for CI; full mode runs the
    // Titan-scale shape the acceptance gate is defined on.
    let topo = if smoke() {
        Topology::scaled(4, 4)
    } else {
        Topology::titan()
    };
    let (hours, rate) = if smoke() { (2, 4.0) } else { (4, 3.0) };
    let corpus = corpus(&topo, hours, rate);
    let n_lines = Lines::new(&corpus).count();
    let mb = corpus.len() as f64 / (1024.0 * 1024.0);
    println!("corpus: {n_lines} lines, {mb:.1} MiB");

    let fast = FastParser::new();
    let oracle = EventParser::new();

    // Correctness before timing: the fast path must agree with the
    // oracle on every single line of the corpus, with zero fallbacks.
    let mut stats = ScanStats::default();
    let pred = ScanPredicate::default();
    for line in Lines::new(&corpus) {
        let f = fast.scan_line(line, &pred, &mut stats);
        let o = oracle.parse(std::str::from_utf8(line).unwrap());
        match (&f, &o) {
            (LineOutcome::Event(a), Some(hpclog_core::etl::parsers::ParsedLine::Event(b))) => {
                assert_eq!(a, b)
            }
            (LineOutcome::Job(a), Some(b)) => assert_eq!(a, b),
            (LineOutcome::Skipped, None) => {}
            other => panic!("fast/oracle divergence: {other:?}"),
        }
    }
    assert_eq!(stats.fallbacks, 0, "loggen corpus is pure ASCII");

    // 1. Parse stage.
    let iters = if smoke() { 3 } else { 5 };
    let parse_pass = |use_fast: bool| {
        let mut parsed = 0usize;
        for line in Lines::new(&corpus) {
            let got = if use_fast {
                fast.parse_line(line).is_some()
            } else {
                oracle.parse(std::str::from_utf8(line).unwrap()).is_some()
            };
            parsed += usize::from(got);
        }
        parsed
    };
    let regex_ms = measure(|| parse_pass(false), iters);
    let fast_ms = measure(|| parse_pass(true), iters);
    let speedup = regex_ms / fast_ms;
    let fast_mlps = n_lines as f64 / fast_ms / 1000.0;
    let regex_mlps = n_lines as f64 / regex_ms / 1000.0;
    let fast_mbps = mb / (fast_ms / 1000.0);
    println!(
        "parse stage: regex {regex_ms:.1} ms ({regex_mlps:.3} Mlines/s), \
         fast {fast_ms:.1} ms ({fast_mlps:.3} Mlines/s, {fast_mbps:.0} MiB/s), \
         speedup {speedup:.1}x"
    );
    let gate = if smoke() { 3.0 } else { 10.0 };
    assert!(
        speedup >= gate,
        "fast path must be at least {gate}x the regex path (got {speedup:.1}x)"
    );

    // 2. End-to-end import (fresh framework per run so table state and
    // LWW overwrites are identical across backends).
    let import_ms = |backend: ParserBackend| {
        let f = fw(topo.clone());
        let t = Instant::now();
        let report = f
            .batch_import_bytes(
                corpus.clone(),
                &ImportOptions {
                    backend,
                    ..Default::default()
                },
            )
            .unwrap();
        (t.elapsed().as_secs_f64() * 1000.0, report)
    };
    let (regex_import_ms, regex_report) = import_ms(ParserBackend::Regex);
    let (fast_import_ms, fast_report) = import_ms(ParserBackend::Fast);
    assert_eq!(fast_report.parsed, regex_report.parsed);
    assert_eq!(fast_report.event_rows, regex_report.event_rows);
    assert_eq!(fast_report.jobs, regex_report.jobs);
    let import_speedup = regex_import_ms / fast_import_ms;
    println!(
        "end-to-end import: regex {regex_import_ms:.0} ms, fast {fast_import_ms:.0} ms, \
         speedup {import_speedup:.1}x ({} events)",
        fast_report.event_rows / 2
    );

    // 3. Pushdown scan: a 1-hour window over the whole corpus.
    let t0 = 1_500_000_000_000i64;
    let narrow = ScanPredicate::default().with_window(t0, t0 + 3_600_000);
    let pushdown_ms = measure(
        || {
            let mut s = ScanStats::default();
            let mut kept = 0usize;
            for line in Lines::new(&corpus) {
                if matches!(fast.scan_line(line, &narrow, &mut s), LineOutcome::Event(_)) {
                    kept += 1;
                }
            }
            kept.max(1)
        },
        iters,
    );
    let pushdown_mlps = n_lines as f64 / pushdown_ms / 1000.0;
    println!("pushdown scan (1h window): {pushdown_ms:.1} ms ({pushdown_mlps:.3} Mlines/s)");

    if smoke() {
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"etl_fastpath\",\n",
            "  \"topology\": \"titan\",\n",
            "  \"corpus_lines\": {},\n",
            "  \"corpus_mib\": {:.1},\n",
            "  \"parse_regex_ms\": {:.1},\n",
            "  \"parse_fast_ms\": {:.1},\n",
            "  \"parse_regex_mlines_per_s\": {:.3},\n",
            "  \"parse_fast_mlines_per_s\": {:.3},\n",
            "  \"parse_fast_mib_per_s\": {:.0},\n",
            "  \"parse_speedup\": {:.1},\n",
            "  \"import_regex_ms\": {:.0},\n",
            "  \"import_fast_ms\": {:.0},\n",
            "  \"import_speedup\": {:.2},\n",
            "  \"pushdown_scan_ms\": {:.1},\n",
            "  \"pushdown_mlines_per_s\": {:.3},\n",
            "  \"fallbacks\": {}\n",
            "}}\n"
        ),
        n_lines,
        mb,
        regex_ms,
        fast_ms,
        regex_mlps,
        fast_mlps,
        fast_mbps,
        speedup,
        regex_import_ms,
        fast_import_ms,
        import_speedup,
        pushdown_ms,
        pushdown_mlps,
        stats.fallbacks,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_etl_fastpath.json");
    std::fs::write(path, &json).expect("write BENCH_etl_fastpath.json");

    let mut group = c.benchmark_group("etl_fastpath");
    group.sample_size(10);
    group.bench_function("parse_regex", |b| b.iter(|| parse_pass(false)));
    group.bench_function("parse_fast", |b| b.iter(|| parse_pass(true)));
    group.finish();
}

criterion_group!(benches, bench_etl_fastpath);
criterion_main!(benches);
