//! Scatter-gather vs sequential hour-loop: a 24-hour window on a 4-node
//! cluster, with simulated per-read replica service latency standing in
//! for the RPC + disk time a networked Cassandra ring pays per partition
//! read. Sequential coordination serializes those waits; `read_multi`
//! overlaps them across the per-node worker queues.
//!
//! Emits `BENCH_scatter_gather.json` at the workspace root so the perf
//! trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use rasdb::cluster::{full_range, Cluster, ClusterConfig};
use rasdb::node::NodeConfig;
use rasdb::query::{Consistency, ReadPlan};
use rasdb::ring::NodeId;
use rasdb::schema::{ColumnType, TableSchema};
use rasdb::types::{Key, Value};
use std::time::Instant;

const HOURS: i64 = 24;
/// Simulated per-read replica service time (RPC + disk) in microseconds.
const READ_LATENCY_US: u64 = 500;

fn seeded() -> Cluster {
    let cluster = Cluster::with_node_config(
        ClusterConfig {
            nodes: 4,
            replication_factor: 3,
            vnodes: 16,
        },
        NodeConfig::default(),
    );
    cluster
        .create_table(
            TableSchema::builder("event_by_time")
                .partition_key("hour", ColumnType::BigInt)
                .partition_key("type", ColumnType::Text)
                .clustering_key("ts", ColumnType::Timestamp)
                .column("source", ColumnType::Text)
                .column("amount", ColumnType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
    for hour in 0..HOURS {
        for i in 0..50 {
            cluster
                .insert(
                    "event_by_time",
                    vec![
                        ("hour", Value::BigInt(hour)),
                        ("type", Value::text("LUSTRE_ERR")),
                        ("ts", Value::Timestamp(hour * 3_600_000 + i * 1000)),
                        ("source", Value::text(format!("c0-0c0s{}n0", i % 8))),
                        ("amount", Value::Int(1)),
                    ],
                    Consistency::Quorum,
                )
                .unwrap();
        }
    }
    cluster.flush_all();
    // This bench measures coordination strategy, not caching: disable the
    // partition-block cache so every iteration pays the simulated replica
    // service time (the cache has its own bench, query_cache).
    cluster.set_block_cache_budget(0);
    // Simulated service latency goes on AFTER seeding so the writes above
    // stay fast.
    for n in 0..cluster.node_count() {
        cluster.node(NodeId(n)).set_read_latency_us(READ_LATENCY_US);
    }
    cluster
}

fn window_plans() -> Vec<ReadPlan> {
    (0..HOURS)
        .map(|hour| ReadPlan {
            table: "event_by_time".into(),
            partition: Key(vec![Value::BigInt(hour), Value::text("LUSTRE_ERR")]),
            range: full_range(),
            limit: None,
            descending: false,
        })
        .collect()
}

fn sequential(cluster: &Cluster, plans: &[ReadPlan]) -> usize {
    plans
        .iter()
        .map(|p| cluster.read(p, Consistency::Quorum).unwrap().len())
        .sum()
}

fn scatter(cluster: &Cluster, plans: &[ReadPlan]) -> usize {
    cluster
        .read_multi(plans, Consistency::Quorum)
        .unwrap()
        .iter()
        .map(Vec::len)
        .sum()
}

fn measure(mut f: impl FnMut() -> usize, iters: u32) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        assert_eq!(f(), (HOURS * 50) as usize);
    }
    t.elapsed().as_secs_f64() * 1000.0 / f64::from(iters)
}

fn bench_scatter_gather(c: &mut Criterion) {
    let cluster = seeded();
    let plans = window_plans();

    // Equivalence before timing: both paths must return identical rows.
    let seq: Vec<_> = plans
        .iter()
        .map(|p| cluster.read(p, Consistency::Quorum).unwrap())
        .collect();
    let par = cluster.read_multi(&plans, Consistency::Quorum).unwrap();
    assert_eq!(seq, par, "scatter-gather must match the sequential loop");

    // Steady-state timings for the JSON artifact (criterion's warm-up
    // handles the pool spawn; here we hand-measure after one warm call).
    let sequential_ms = measure(|| sequential(&cluster, &plans), 10);
    let read_multi_ms = measure(|| scatter(&cluster, &plans), 10);
    let speedup = sequential_ms / read_multi_ms;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scatter_gather\",\n",
            "  \"hours\": {},\n",
            "  \"nodes\": 4,\n",
            "  \"replication_factor\": 3,\n",
            "  \"consistency\": \"quorum\",\n",
            "  \"read_latency_us\": {},\n",
            "  \"sequential_ms\": {:.3},\n",
            "  \"read_multi_ms\": {:.3},\n",
            "  \"speedup\": {:.2}\n",
            "}}\n"
        ),
        HOURS, READ_LATENCY_US, sequential_ms, read_multi_ms, speedup
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scatter_gather.json"
    );
    std::fs::write(path, &json).expect("write BENCH_scatter_gather.json");
    println!(
        "sequential {sequential_ms:.3} ms, read_multi {read_multi_ms:.3} ms, speedup {speedup:.2}x"
    );

    let mut group = c.benchmark_group("scatter_gather");
    group.sample_size(10);
    group.bench_function("sequential_hour_loop_24h", |b| {
        b.iter(|| sequential(&cluster, &plans))
    });
    group.bench_function("read_multi_24h", |b| b.iter(|| scatter(&cluster, &plans)));
    group.finish();
}

criterion_group!(benches, bench_scatter_gather);
criterion_main!(benches);
