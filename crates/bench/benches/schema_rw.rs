//! F1/F2 + schema ablation: write/read costs of the dual event schemas,
//! and what the `event_by_location` view buys over filtering
//! `event_by_time` for a single node's history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use loggen::topology::Topology;

fn fw() -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .expect("boot")
}

fn events(n: usize, topo: &Topology) -> Vec<EventRecord> {
    (0..n)
        .map(|i| EventRecord {
            ts_ms: (i as i64) * 997 % HOUR_MS,
            event_type: "MCE".into(),
            source: topo.node(i % topo.node_count()).cname,
            amount: 1,
            raw: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".into(),
        })
        .collect()
}

fn bench_schema_rw(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_rw");
    group.sample_size(10);

    // Write path: dual-view insert throughput.
    for n in [500usize, 2000] {
        group.bench_with_input(BenchmarkId::new("insert_dual_views", n), &n, |b, &n| {
            b.iter_with_setup(
                || (fw(), events(n, &Topology::scaled(2, 2))),
                |(fw, evs)| fw.insert_events(&evs).expect("insert"),
            );
        });
    }

    // Read path: one node's history via the location view vs filtering the
    // full hour of every type through the time view.
    let fw = fw();
    let evs = events(4000, &Topology::scaled(2, 2));
    fw.insert_events(&evs).expect("seed");
    fw.cluster().flush_all();
    let node = Topology::scaled(2, 2).node(3).cname;

    group.bench_function("node_history_via_event_by_location", |b| {
        b.iter(|| {
            let got = fw.events_by_source(&node, 0, HOUR_MS).expect("read");
            assert!(!got.is_empty());
            got.len()
        })
    });
    group.bench_function("node_history_via_event_by_time_filter", |b| {
        b.iter(|| {
            // The ablation: no location view — fetch the type partition and
            // filter client-side.
            let got: usize = fw
                .events_by_type("MCE", 0, HOUR_MS)
                .expect("read")
                .into_iter()
                .filter(|e| e.source == node)
                .count();
            assert!(got > 0);
            got
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schema_rw);
criterion_main!(benches);
