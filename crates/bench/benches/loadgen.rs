//! Serving concurrency under a dashboard session mix: N keep-alive HTTP
//! clients (OS threads, one connection each) replay cache-warm pans, cold
//! zooms, a streaming tail, and profile requests against the thread-pool
//! frontend, first at a sustainable per-client rate and then at 2× that
//! rate to force admission-control shedding.
//!
//! What the artifact (`BENCH_serving_concurrency.json`) captures:
//! - p50/p95/p99 request latency per phase (send → full response);
//! - goodput (200s per second) per phase;
//! - the shed mix under overload (429 `RATE_LIMITED` / 503 `OVERLOADED`).
//!
//! The gate, asserted here in both modes: under 2× overload the server
//! sheds excess load with typed 429 envelopes carrying `Retry-After`
//! while goodput stays at ≥ 80% of the pre-overload baseline. That is the
//! point of cheap sheds — a token-bucket refusal costs no engine work, so
//! admitted requests are served at full speed while the excess bounces.
//!
//! `LOADGEN_SMOKE=1` runs the same phases and gates with 64 clients and
//! short phases, touching neither the committed artifact nor stdout noise;
//! the full run drives 1000 concurrent clients.

use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::apprun::AppRun;
use hpclog_core::model::event::EventRecord;
use hpclog_core::server::{HttpConfig, HttpServer, QueryEngine};
use loggen::topology::Topology;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const T0: i64 = 1_500_000_000_000;
const HOURS: i64 = 6;
const HOUR_MS: i64 = 3_600_000;
const T_END: i64 = T0 + HOURS * HOUR_MS;

/// Per-client token-bucket rate the server is configured with.
const BUCKET_RATE: f64 = 6.0;
/// Baseline per-client request rate (below the bucket rate, so the
/// baseline phase sees no shedding).
const BASE_RATE: f64 = 5.0;

fn smoke() -> bool {
    std::env::var("LOADGEN_SMOKE").as_deref() == Ok("1")
}

fn seeded() -> Arc<QueryEngine> {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .unwrap();
    let topo = fw.topology().clone();
    let mut events = Vec::new();
    for hour in 0..HOURS {
        for i in 0..40i64 {
            let (etype, raw) = if i % 3 == 0 {
                ("MCE", "Machine Check Exception: bank 1: b2 addr 3f cpu 0")
            } else {
                (
                    "LUSTRE_ERR",
                    "LustreError: 11-0: atlas1-OST0041-osc: operation failed",
                )
            };
            events.push(EventRecord {
                ts_ms: T0 + hour * HOUR_MS + i * 90_000 % HOUR_MS,
                event_type: etype.into(),
                source: topo
                    .node(((hour * 40 + i) as usize) % topo.node_count())
                    .cname,
                amount: 1,
                raw: raw.into(),
            });
        }
    }
    fw.insert_events(&events).unwrap();
    fw.insert_app_run(&AppRun {
        apid: 1,
        user: "usr0001".into(),
        app: "VASP".into(),
        start_ms: T0,
        end_ms: T_END,
        node_first: 0,
        node_last: 3,
        exit_code: 0,
        other_info: Default::default(),
    })
    .unwrap();
    Arc::new(QueryEngine::new(Arc::new(fw)))
}

/// The repeated (result-cache-warm after priming) dashboard pans.
fn warm_panels() -> Vec<String> {
    vec![
        format!(r#"{{"op":"heatmap","type":"MCE","from":{T0},"to":{T_END}}}"#),
        format!(
            r#"{{"op":"distribution","type":"LUSTRE_ERR","from":{T0},"to":{T_END},"by":"cabinet"}}"#
        ),
        format!(r#"{{"op":"histogram","type":"MCE","from":{T0},"to":{T_END},"bin_ms":{HOUR_MS}}}"#),
        format!(r#"{{"op":"wordcount","type":"LUSTRE_ERR","from":{T0},"to":{T_END},"top":10}}"#),
    ]
}

/// One request body from the session mix: mostly warm pans, plus the
/// streaming tail, an app profile, and a cache-defeating cold zoom whose
/// window end is unique per (client, seq).
fn pick_query(warm: &[String], client: usize, seq: u64) -> String {
    match (seq as usize + client) % 10 {
        8 => {
            let to = T_END - (client as i64 * 100_000 + seq as i64) % 1_000_000 - 1;
            format!(r#"{{"op":"heatmap","type":"MCE","from":{T0},"to":{to}}}"#)
        }
        9 => format!(
            r#"{{"op":"events","type":"MCE","from":{},"to":{T_END},"limit":20}}"#,
            T_END - 10 * 60_000
        ),
        7 => r#"{"op":"profile","app":"VASP"}"#.to_owned(),
        other => warm[other % 4].clone(),
    }
}

#[derive(Default)]
struct PhaseOut {
    lat_us: Vec<u64>,
    ok: u64,
    shed_429: u64,
    shed_503: u64,
    other: u64,
    retry_after_on_429: u64,
}

impl PhaseOut {
    fn merge(&mut self, mut o: PhaseOut) {
        self.lat_us.append(&mut o.lat_us);
        self.ok += o.ok;
        self.shed_429 += o.shed_429;
        self.shed_503 += o.shed_503;
        self.other += o.other;
        self.retry_after_on_429 += o.retry_after_on_429;
    }

    fn total(&self) -> u64 {
        self.ok + self.shed_429 + self.shed_503 + self.other
    }

    fn percentile_ms(&mut self, p: f64) -> f64 {
        if self.lat_us.is_empty() {
            return 0.0;
        }
        self.lat_us.sort_unstable();
        let idx = ((self.lat_us.len() as f64 - 1.0) * p).round() as usize;
        self.lat_us[idx] as f64 / 1000.0
    }
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    // The accept backlog can overflow while hundreds of clients dial in at
    // once; retry briefly instead of failing the run.
    for _ in 0..200 {
        if let Ok(s) = TcpStream::connect(addr) {
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let _ = s.set_nodelay(true);
            return s;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("could not connect to {addr}");
}

/// Reads one Content-Length-framed response; returns (status, saw
/// Retry-After header).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, bool) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    let mut retry_after = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        } else if line.starts_with("retry-after:") {
            retry_after = true;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, retry_after)
}

/// Runs one phase: `clients` keep-alive connections each pacing requests
/// at `rate` per second for `dur`, all released together by a barrier.
fn run_phase(addr: std::net::SocketAddr, clients: usize, rate: f64, dur: Duration) -> PhaseOut {
    let warm = Arc::new(warm_panels());
    let barrier = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let warm = Arc::clone(&warm);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let stream = connect(addr);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                let mut out = PhaseOut::default();
                let interval = Duration::from_secs_f64(1.0 / rate);
                barrier.wait();
                let phase_end = Instant::now() + dur;
                let mut next = Instant::now();
                let mut seq = 0u64;
                while Instant::now() < phase_end {
                    let body = pick_query(&warm, client, seq);
                    seq += 1;
                    let raw = format!(
                        "POST /v1/query HTTP/1.1\r\nHost: x\r\nX-Client-Id: c{}\r\nContent-Length: {}\r\n\r\n{}",
                        client,
                        body.len(),
                        body
                    );
                    let t = Instant::now();
                    stream.write_all(raw.as_bytes()).expect("send");
                    let (status, retry_after) = read_response(&mut reader);
                    out.lat_us.push(t.elapsed().as_micros() as u64);
                    match status {
                        200 => out.ok += 1,
                        429 => {
                            out.shed_429 += 1;
                            out.retry_after_on_429 += u64::from(retry_after);
                        }
                        503 => out.shed_503 += 1,
                        _ => out.other += 1,
                    }
                    next += interval;
                    let now = Instant::now();
                    if next > now {
                        std::thread::sleep(next - now);
                    } else {
                        next = now; // don't bank a backlog we'd burst later
                    }
                }
                out
            })
        })
        .collect();
    barrier.wait();
    let mut merged = PhaseOut::default();
    for h in handles {
        merged.merge(h.join().expect("client thread"));
    }
    merged
}

fn main() {
    let clients: usize = if smoke() { 64 } else { 1000 };
    let phase = Duration::from_secs(if smoke() { 2 } else { 6 });

    let engine = seeded();
    // Prime the warm pans so phase one runs against a hot result cache,
    // like a dashboard that has been open for a while.
    for q in &warm_panels() {
        assert!(engine.handle(q).contains(r#""status":"ok""#), "{q}");
    }
    let server = HttpServer::start_with(
        Arc::clone(&engine),
        0,
        HttpConfig {
            workers: 8,
            queue_depth: 1024,
            max_inflight: 64,
            header_read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            rate_per_sec: BUCKET_RATE,
            rate_burst: BUCKET_RATE,
            ..HttpConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    println!("loadgen: {clients} clients, {}s phases", phase.as_secs());
    let mut baseline = run_phase(addr, clients, BASE_RATE, phase);
    let base_goodput = baseline.ok as f64 / phase.as_secs_f64();
    println!(
        "baseline  ({BASE_RATE}/s/client): {} reqs, goodput {base_goodput:.0}/s, \
         p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, shed {}",
        baseline.total(),
        baseline.percentile_ms(0.50),
        baseline.percentile_ms(0.95),
        baseline.percentile_ms(0.99),
        baseline.shed_429 + baseline.shed_503,
    );

    let mut overload = run_phase(addr, clients, BASE_RATE * 2.0, phase);
    let over_goodput = overload.ok as f64 / phase.as_secs_f64();
    println!(
        "overload  ({}/s/client): {} reqs, goodput {over_goodput:.0}/s, \
         p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, shed 429={} 503={}",
        BASE_RATE * 2.0,
        overload.total(),
        overload.percentile_ms(0.50),
        overload.percentile_ms(0.95),
        overload.percentile_ms(0.99),
        overload.shed_429,
        overload.shed_503,
    );

    // --- gates -------------------------------------------------------------
    let base_shed = (baseline.shed_429 + baseline.shed_503) as f64 / baseline.total() as f64;
    assert!(
        base_shed < 0.05,
        "baseline must run below the admission limits (shed {:.1}%)",
        base_shed * 100.0
    );
    assert!(
        overload.shed_429 > 0,
        "2x overload must trip the per-client rate limiter"
    );
    assert_eq!(
        overload.retry_after_on_429, overload.shed_429,
        "every 429 must carry a Retry-After header"
    );
    let retention = over_goodput / base_goodput * 100.0;
    println!("goodput retention under 2x overload: {retention:.1}%");
    assert!(
        retention >= 80.0,
        "goodput under overload must stay at >= 80% of baseline (got {retention:.1}%)"
    );

    if smoke() {
        println!("loadgen smoke: gates passed");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serving_concurrency\",\n",
            "  \"mix\": [\"warm_pans\", \"cold_zooms\", \"streaming_tail\", \"profile\"],\n",
            "  \"clients\": {},\n",
            "  \"phase_secs\": {},\n",
            "  \"workers\": 8,\n",
            "  \"max_inflight\": 64,\n",
            "  \"bucket_rate_per_client\": {:.1},\n",
            "  \"baseline\": {{\n",
            "    \"offered_rps_per_client\": {:.1},\n",
            "    \"goodput_rps\": {:.0},\n",
            "    \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3},\n",
            "    \"shed_429\": {}, \"shed_503\": {}\n",
            "  }},\n",
            "  \"overload_2x\": {{\n",
            "    \"offered_rps_per_client\": {:.1},\n",
            "    \"goodput_rps\": {:.0},\n",
            "    \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3},\n",
            "    \"shed_429\": {}, \"shed_503\": {}\n",
            "  }},\n",
            "  \"goodput_retention_pct\": {:.1},\n",
            "  \"gate\": \"retention >= 80% with typed 429 + Retry-After sheds\"\n",
            "}}\n"
        ),
        clients,
        phase.as_secs(),
        BUCKET_RATE,
        BASE_RATE,
        base_goodput,
        baseline.percentile_ms(0.50),
        baseline.percentile_ms(0.95),
        baseline.percentile_ms(0.99),
        baseline.shed_429,
        baseline.shed_503,
        BASE_RATE * 2.0,
        over_goodput,
        overload.percentile_ms(0.50),
        overload.percentile_ms(0.95),
        overload.percentile_ms(0.99),
        overload.shed_429,
        overload.shed_503,
        retention,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serving_concurrency.json"
    );
    std::fs::write(path, &json).expect("write BENCH_serving_concurrency.json");
    println!("wrote {path}");
}
