//! Cost of always-on observability: the same warm/cold dashboard mix
//! (four cached panels plus two cache-defeating rotating-window queries)
//! is timed with telemetry enabled (spans, trace propagation, exemplars,
//! flight recorder, SLO accounting) and with telemetry disabled. The two
//! modes run against identically seeded engines, alternating per round to
//! decorrelate machine drift, and the median refresh must stay within 5%.
//!
//! As in the scatter_gather and query_cache benches, per-read replica
//! service latency is simulated to stand in for the RPC + disk time a
//! networked ring pays per partition read — without it the in-process
//! "cluster" answers reads in microseconds, a denominator no deployment
//! of the paper's architecture ever sees.
//!
//! Emits `BENCH_observability.json` at the workspace root (skipped in
//! smoke mode: `OBSERVABILITY_SMOKE=1` runs the same overhead check but
//! touches neither the committed artifact nor criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::server::QueryEngine;
use loggen::topology::Topology;
use std::sync::Arc;
use std::time::Instant;

const T0: i64 = 1_500_000_000_000;
const HOURS: i64 = 24;
const HOUR_MS: i64 = 3_600_000;
/// Simulated per-read replica service time (RPC + disk) in microseconds.
const READ_LATENCY_US: u64 = 100;

fn smoke() -> bool {
    std::env::var("OBSERVABILITY_SMOKE").as_deref() == Ok("1")
}

fn seeded() -> QueryEngine {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 3,
        vnodes: 16,
        topology: Topology::scaled(2, 2),
        // The rotating cold panels re-read the same hour partitions every
        // round, so the coordinator block cache would absorb them after
        // round one and the simulated replica latency would never be paid.
        // Disabling it keeps the cold path cold: every refresh pays the
        // scatter-gather fan-out a networked deployment pays.
        block_cache_bytes: 0,
        ..Default::default()
    })
    .unwrap();
    let topo = fw.topology().clone();
    let mut events = Vec::new();
    for hour in 0..HOURS {
        for i in 0..40i64 {
            let (etype, raw) = if i % 3 == 0 {
                ("MCE", "Machine Check Exception: bank 1: b2 addr 3f cpu 0")
            } else {
                (
                    "LUSTRE_ERR",
                    "LustreError: 11-0: atlas1-OST0041-osc: operation failed",
                )
            };
            events.push(EventRecord {
                ts_ms: T0 + hour * HOUR_MS + i * 90_000 % HOUR_MS,
                event_type: etype.into(),
                source: topo
                    .node(((hour * 40 + i) as usize) % topo.node_count())
                    .cname,
                amount: 1,
                raw: raw.into(),
            });
        }
    }
    fw.insert_events(&events).unwrap();
    // Simulated service latency goes on AFTER seeding so the writes above
    // stay fast.
    for n in 0..fw.cluster().node_count() {
        fw.cluster()
            .node(rasdb::ring::NodeId(n))
            .set_read_latency_us(READ_LATENCY_US);
    }
    QueryEngine::new(Arc::new(fw))
}

/// The repeated (result-cache-warm after priming) dashboard panels.
fn warm_panels() -> Vec<String> {
    let (a, b) = (T0, T0 + HOURS * HOUR_MS);
    vec![
        format!(r#"{{"op":"heatmap","type":"LUSTRE_ERR","from":{a},"to":{b}}}"#),
        format!(
            r#"{{"op":"distribution","type":"LUSTRE_ERR","from":{a},"to":{b},"by":"cabinet"}}"#
        ),
        format!(
            r#"{{"op":"histogram","type":"LUSTRE_ERR","from":{a},"to":{b},"bin_ms":{HOUR_MS}}}"#
        ),
        format!(r#"{{"op":"wordcount","type":"LUSTRE_ERR","from":{a},"to":{b},"top":10}}"#),
    ]
}

/// Two cache-defeating queries: the window end rotates every round so the
/// result cache never serves them and the full scatter-gather + analytics
/// path (where span coverage is densest) is always exercised.
fn cold_panels(round: u32) -> Vec<String> {
    let a = T0;
    let b = T0 + HOURS * HOUR_MS - i64::from(round) * 1_000;
    vec![
        format!(r#"{{"op":"heatmap","type":"MCE","from":{a},"to":{b}}}"#),
        format!(r#"{{"op":"events","type":"MCE","from":{a},"to":{b},"limit":50}}"#),
    ]
}

/// One dashboard refresh: warm panels plus the round's cold queries.
/// Returns total response bytes (kept live so nothing is optimized out)
/// and the wall-clock milliseconds.
fn refresh(engine: &QueryEngine, round: u32) -> (usize, f64) {
    let t = Instant::now();
    let mut bytes = 0;
    for q in warm_panels().iter().chain(cold_panels(round).iter()) {
        bytes += engine.handle(q).len();
    }
    (bytes, t.elapsed().as_secs_f64() * 1000.0)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_observability(c: &mut Criterion) {
    let on = seeded();
    let off = seeded();
    // Prime the warm panels on both engines so every later refresh mixes
    // result-cache hits with cold computes.
    for engine in [&on, &off] {
        for q in &warm_panels() {
            assert!(engine.handle(q).contains(r#""status":"ok""#), "{q}");
        }
    }

    // Same round count in smoke mode: a refresh is ~15 ms, so 40 rounds
    // keep the median estimate stable without slowing the smoke run.
    let rounds: u32 = 40;
    let mut on_ms = Vec::new();
    let mut off_ms = Vec::new();
    for round in 0..rounds {
        telemetry::set_enabled(true);
        let (bytes_on, ms) = refresh(&on, round);
        on_ms.push(ms);
        telemetry::set_enabled(false);
        let (bytes_off, ms) = refresh(&off, round);
        off_ms.push(ms);
        assert!(bytes_on > 0 && bytes_off > 0);
    }
    telemetry::set_enabled(true);

    let median_on = median(&mut on_ms);
    let median_off = median(&mut off_ms);
    let overhead_pct = (median_on - median_off) / median_off * 100.0;
    println!(
        "dashboard mix: tracing on {median_on:.3} ms, off {median_off:.3} ms, \
         overhead {overhead_pct:.2}%"
    );
    assert!(
        overhead_pct <= 5.0,
        "tracing must cost at most 5% on the dashboard mix (got {overhead_pct:.2}%)"
    );

    // The always-on surfaces actually saw the traffic: SLO windows have
    // rows for every op in the mix, and the recorder is armed.
    let health = on.handle(r#"{"op":"health"}"#);
    for op in [
        "heatmap",
        "distribution",
        "histogram",
        "wordcount",
        "events",
    ] {
        assert!(health.contains(&format!(r#""op":"{op}""#)), "{health}");
    }
    assert_eq!(on.recorder().threshold_ms(), 100);

    if smoke() {
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"observability\",\n",
            "  \"mix\": [\"heatmap\", \"distribution\", \"histogram\", \"wordcount\", ",
            "\"heatmap_cold\", \"events_cold\"],\n",
            "  \"window_hours\": {},\n",
            "  \"events_seeded\": {},\n",
            "  \"block_cache_bytes\": 0,\n",
            "  \"read_latency_us\": {},\n",
            "  \"rounds\": {},\n",
            "  \"tracing_on_median_ms\": {:.3},\n",
            "  \"tracing_off_median_ms\": {:.3},\n",
            "  \"overhead_pct\": {:.2}\n",
            "}}\n"
        ),
        HOURS,
        HOURS * 40,
        READ_LATENCY_US,
        rounds,
        median_on,
        median_off,
        overhead_pct,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_observability.json"
    );
    std::fs::write(path, &json).expect("write BENCH_observability.json");

    let mut group = c.benchmark_group("observability");
    group.sample_size(10);
    group.bench_function("dashboard_mix_tracing_on", |b| {
        telemetry::set_enabled(true);
        let mut round = 0;
        b.iter(|| {
            round += 1;
            refresh(&on, rounds + round)
        });
    });
    group.bench_function("dashboard_mix_tracing_off", |b| {
        telemetry::set_enabled(false);
        let mut round = 0;
        b.iter(|| {
            round += 1;
            refresh(&off, rounds + round)
        });
    });
    group.finish();
    telemetry::set_enabled(true);
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
