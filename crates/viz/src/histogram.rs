//! Event histograms: counts per bucket (hour, cabinet, application, ...).

use crate::color::heat_color;
use crate::svg::SvgDoc;

const BAR_W: f64 = 18.0;
const GAP: f64 = 4.0;
const PLOT_H: f64 = 160.0;
const MARGIN: f64 = 44.0;

/// Renders a labeled bar chart.
pub fn render_histogram(title: &str, labels: &[String], counts: &[f64]) -> String {
    let n = labels.len().min(counts.len());
    let max = counts.iter().take(n).copied().fold(0.0f64, f64::max);
    let width = MARGIN * 2.0 + n as f64 * (BAR_W + GAP);
    let height = MARGIN * 2.0 + PLOT_H + 30.0;
    let mut doc = SvgDoc::new(width.max(200.0), height);
    doc.text(MARGIN, 20.0, 13.0, title);
    // Axis.
    doc.line(MARGIN, MARGIN, MARGIN, MARGIN + PLOT_H, "#333333", 1.0);
    doc.line(
        MARGIN,
        MARGIN + PLOT_H,
        width - MARGIN,
        MARGIN + PLOT_H,
        "#333333",
        1.0,
    );
    doc.text(4.0, MARGIN + 8.0, 9.0, &format!("{max:.0}"));
    for i in 0..n {
        let frac = if max > 0.0 { counts[i] / max } else { 0.0 };
        let h = frac * PLOT_H;
        let x = MARGIN + GAP + i as f64 * (BAR_W + GAP);
        doc.rect(
            x,
            MARGIN + PLOT_H - h,
            BAR_W,
            h,
            &heat_color(frac),
            Some("#555555"),
        );
        doc.text_anchored(
            x + BAR_W / 2.0,
            MARGIN + PLOT_H + 12.0,
            8.0,
            &labels[i],
            "middle",
        );
    }
    doc.finish()
}

/// Terminal bar chart; bars scale to `width` characters.
pub fn ascii_histogram(title: &str, labels: &[String], counts: &[f64], width: usize) -> String {
    let n = labels.len().min(counts.len());
    let max = counts.iter().take(n).copied().fold(0.0f64, f64::max);
    let label_w = labels.iter().take(n).map(String::len).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for i in 0..n {
        let frac = if max > 0.0 { counts[i] / max } else { 0.0 };
        let bar = "#".repeat((frac * width as f64).round() as usize);
        out.push_str(&format!(
            "{:>label_w$} | {:<width$} {:.0}\n",
            labels[i], bar, counts[i]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("h{i}")).collect()
    }

    #[test]
    fn svg_histogram_bar_count() {
        let svg = render_histogram("events/hour", &labels(5), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        // background + 5 bars.
        assert_eq!(svg.matches("<rect").count(), 1 + 5);
        assert!(svg.contains("events/hour"));
        assert!(svg.contains("h4"));
    }

    #[test]
    fn mismatched_lengths_take_min() {
        let svg = render_histogram("t", &labels(3), &[1.0, 2.0]);
        assert_eq!(svg.matches("<rect").count(), 1 + 2);
    }

    #[test]
    fn zero_counts_render_flat() {
        let svg = render_histogram("t", &labels(2), &[0.0, 0.0]);
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn ascii_bars_scale() {
        let text = ascii_histogram("title", &labels(3), &[10.0, 5.0, 0.0], 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains(&"#".repeat(20)));
        assert!(lines[2].contains(&"#".repeat(10)));
        assert!(!lines[3].contains('#'));
    }
}
