//! The physical system map: cabinets on the machine-room floor, colored by
//! a metric (event counts, utilization) — the paper's Figs 5 and 6.

use crate::color::{ascii_shade, heat_color, normalize};
use crate::svg::SvgDoc;

/// Floor-grid geometry and labeling.
#[derive(Debug, Clone)]
pub struct SystemMapSpec {
    /// Cabinet rows.
    pub rows: usize,
    /// Cabinet columns.
    pub cols: usize,
    /// Title drawn above the map.
    pub title: String,
}

const CELL: f64 = 26.0;
const GAP: f64 = 4.0;
const MARGIN: f64 = 40.0;

/// Renders a cabinet-level heat map. `values[cabinet]` in row-major order;
/// missing trailing values read as 0.
pub fn render_cabinet_heatmap(spec: &SystemMapSpec, values: &[f64]) -> String {
    let mut vals = values.to_vec();
    vals.resize(spec.rows * spec.cols, 0.0);
    let norm = normalize(&vals);
    let width = MARGIN * 2.0 + spec.cols as f64 * (CELL + GAP);
    let height = MARGIN * 2.0 + spec.rows as f64 * (CELL + GAP) + 20.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(MARGIN, 20.0, 14.0, &spec.title);
    for row in 0..spec.rows {
        for col in 0..spec.cols {
            let v = norm[row * spec.cols + col];
            doc.rect(
                MARGIN + col as f64 * (CELL + GAP),
                MARGIN + row as f64 * (CELL + GAP),
                CELL,
                CELL,
                &heat_color(v),
                Some("#888888"),
            );
        }
    }
    // Color-scale legend.
    let legend_y = height - 18.0;
    for i in 0..20 {
        doc.rect(
            MARGIN + i as f64 * 8.0,
            legend_y,
            8.0,
            10.0,
            &heat_color(i as f64 / 19.0),
            None,
        );
    }
    let max = vals.iter().copied().fold(0.0f64, f64::max);
    doc.text(
        MARGIN + 168.0,
        legend_y + 9.0,
        9.0,
        &format!("0 .. {max:.0}"),
    );
    doc.finish()
}

/// Renders a node-level heat map: each cabinet cell subdivides into its
/// nodes (column-major inside the cabinet, cage by cage).
/// `node_values[cabinet * nodes_per_cabinet + i]`.
pub fn render_node_heatmap(
    spec: &SystemMapSpec,
    node_values: &[f64],
    nodes_per_cabinet: usize,
) -> String {
    let n = spec.rows * spec.cols * nodes_per_cabinet;
    let mut vals = node_values.to_vec();
    vals.resize(n, 0.0);
    let norm = normalize(&vals);
    // Nodes inside a cabinet draw as a sub-grid.
    let sub_cols = (nodes_per_cabinet as f64).sqrt().ceil() as usize;
    let sub_rows = nodes_per_cabinet.div_ceil(sub_cols);
    let sub = CELL / sub_cols.max(sub_rows) as f64;
    let width = MARGIN * 2.0 + spec.cols as f64 * (CELL + GAP);
    let height = MARGIN * 2.0 + spec.rows as f64 * (CELL + GAP);
    let mut doc = SvgDoc::new(width, height);
    doc.text(MARGIN, 20.0, 14.0, &spec.title);
    for row in 0..spec.rows {
        for col in 0..spec.cols {
            let cab = row * spec.cols + col;
            let x0 = MARGIN + col as f64 * (CELL + GAP);
            let y0 = MARGIN + row as f64 * (CELL + GAP);
            for i in 0..nodes_per_cabinet {
                let v = norm[cab * nodes_per_cabinet + i];
                let sx = x0 + (i % sub_cols) as f64 * sub;
                let sy = y0 + (i / sub_cols) as f64 * sub;
                doc.rect(sx, sy, sub, sub, &heat_color(v), None);
            }
            doc.rect(x0, y0, CELL, CELL, "none", Some("#666666"));
        }
    }
    doc.finish()
}

/// ASCII variant of the cabinet heat map for terminals/tests.
pub fn ascii_cabinet_heatmap(spec: &SystemMapSpec, values: &[f64]) -> String {
    let mut vals = values.to_vec();
    vals.resize(spec.rows * spec.cols, 0.0);
    let norm = normalize(&vals);
    let mut out = String::with_capacity(spec.rows * (spec.cols + 1) + spec.title.len() + 8);
    out.push_str(&spec.title);
    out.push('\n');
    for row in 0..spec.rows {
        for col in 0..spec.cols {
            out.push(ascii_shade(norm[row * spec.cols + col]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SystemMapSpec {
        SystemMapSpec {
            rows: 3,
            cols: 4,
            title: "MCE heat".to_owned(),
        }
    }

    #[test]
    fn cabinet_map_has_one_rect_per_cabinet() {
        let svg = render_cabinet_heatmap(&spec(), &[1.0; 12]);
        let rects = svg.matches("<rect").count();
        // 12 cabinets + background + 20 legend cells.
        assert_eq!(rects, 12 + 1 + 20);
        assert!(svg.contains("MCE heat"));
    }

    #[test]
    fn hot_cabinet_differs_from_cold() {
        let mut vals = vec![0.0; 12];
        vals[5] = 100.0;
        let svg = render_cabinet_heatmap(&spec(), &vals);
        assert!(svg.contains("#fde725"), "hottest color present");
        assert!(svg.contains("#440154"), "coldest color present");
    }

    #[test]
    fn short_value_slice_is_padded() {
        let svg = render_cabinet_heatmap(&spec(), &[1.0]);
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn node_map_renders_subgrid() {
        let svg = render_node_heatmap(&spec(), &vec![1.0; 12 * 96], 96);
        let rects = svg.matches("<rect").count();
        // background + 12*96 node cells + 12 cabinet outlines.
        assert_eq!(rects, 1 + 12 * 96 + 12);
    }

    #[test]
    fn ascii_map_shape() {
        let mut vals = vec![0.0; 12];
        vals[0] = 10.0;
        let text = ascii_cabinet_heatmap(&spec(), &vals);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // title + 3 rows
        assert_eq!(lines[1].len(), 4);
        assert_eq!(lines[1].chars().next(), Some('@'));
        assert_eq!(lines[2].chars().next(), Some(' '));
    }
}
