//! Transfer-entropy plots: the Fig 7 (top) view — both directed TE curves
//! against lag, labeled with the pair of event types.

use crate::timeseries::{render_timeseries, Series};

/// Renders TE(X→Y) and TE(Y→X) as functions of lag.
///
/// `sweep` holds `(lag, te_x_to_y, te_y_to_x)` triples, typically from
/// the analytics layer's lag sweep.
pub fn render_te_plot(type_x: &str, type_y: &str, sweep: &[(usize, f64, f64)]) -> String {
    let forward = Series {
        name: format!("TE({type_x} -> {type_y})"),
        points: sweep.iter().map(|(l, f, _)| (*l as f64, *f)).collect(),
    };
    let backward = Series {
        name: format!("TE({type_y} -> {type_x})"),
        points: sweep.iter().map(|(l, _, b)| (*l as f64, *b)).collect(),
    };
    render_timeseries(
        &format!("Transfer entropy: {type_x} vs {type_y}"),
        &[forward, backward],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_carries_both_directions_and_labels() {
        let sweep: Vec<(usize, f64, f64)> = (1..=5).map(|l| (l, 0.1 * l as f64, 0.01)).collect();
        let svg = render_te_plot("MCE", "GPU_DBE", &sweep);
        assert!(svg.contains("TE(MCE -&gt; GPU_DBE)") || svg.contains("TE(MCE -> GPU_DBE)"));
        assert!(svg.contains("TE(GPU_DBE -&gt; MCE)") || svg.contains("TE(GPU_DBE -> MCE)"));
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn empty_sweep_is_safe() {
        let svg = render_te_plot("A", "B", &[]);
        assert!(svg.starts_with("<svg"));
    }
}
