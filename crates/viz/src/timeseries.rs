//! Time-series / line plots: the temporal map and transfer-entropy curves.

use crate::svg::SvgDoc;

/// One named line on the plot.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; x is typically time or lag.
    pub points: Vec<(f64, f64)>,
}

const SERIES_COLORS: &[&str] = &["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"];
const W: f64 = 520.0;
const H: f64 = 240.0;
const MARGIN: f64 = 46.0;

/// Renders one or more series on shared axes.
pub fn render_timeseries(title: &str, series: &[Series]) -> String {
    let mut doc = SvgDoc::new(W, H);
    doc.text(MARGIN, 18.0, 13.0, title);
    let (x0, x1, y0, y1) = bounds(series);
    doc.line(MARGIN, MARGIN, MARGIN, H - MARGIN, "#333333", 1.0);
    doc.line(MARGIN, H - MARGIN, W - 16.0, H - MARGIN, "#333333", 1.0);
    doc.text(4.0, MARGIN + 6.0, 9.0, &format!("{y1:.3}"));
    doc.text(4.0, H - MARGIN, 9.0, &format!("{y0:.3}"));
    doc.text(MARGIN, H - MARGIN + 14.0, 9.0, &format!("{x0:.0}"));
    doc.text_anchored(W - 16.0, H - MARGIN + 14.0, 9.0, &format!("{x1:.0}"), "end");
    for (i, s) in series.iter().enumerate() {
        let color = SERIES_COLORS[i % SERIES_COLORS.len()];
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .map(|(x, y)| {
                (
                    map(*x, x0, x1, MARGIN, W - 16.0),
                    map(*y, y0, y1, H - MARGIN, MARGIN),
                )
            })
            .collect();
        if pts.len() > 1 {
            doc.polyline(&pts, color, 1.5);
        } else if let Some(p) = pts.first() {
            doc.circle(p.0, p.1, 2.0, color, 1.0);
        }
        doc.text(MARGIN + 8.0 + i as f64 * 120.0, MARGIN - 6.0, 10.0, &s.name);
        doc.line(
            MARGIN + i as f64 * 120.0,
            MARGIN - 10.0,
            MARGIN + 6.0 + i as f64 * 120.0,
            MARGIN - 10.0,
            color,
            2.0,
        );
    }
    doc.finish()
}

fn bounds(series: &[Series]) -> (f64, f64, f64, f64) {
    let mut x0 = f64::INFINITY;
    let mut x1 = f64::NEG_INFINITY;
    let mut y0 = f64::INFINITY;
    let mut y1 = f64::NEG_INFINITY;
    for s in series {
        for (x, y) in &s.points {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
    }
    if !x0.is_finite() {
        return (0.0, 1.0, 0.0, 1.0);
    }
    if x0 == x1 {
        x1 = x0 + 1.0;
    }
    if y0 == y1 {
        y1 = y0 + 1.0;
    }
    (x0, x1, y0, y1)
}

fn map(v: f64, v0: f64, v1: f64, out0: f64, out1: f64) -> f64 {
    out0 + (v - v0) / (v1 - v0) * (out1 - out0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_multi_series_with_legend() {
        let svg = render_timeseries(
            "TE",
            &[
                Series {
                    name: "TE(MCE→GPU)".to_owned(),
                    points: (0..10).map(|i| (i as f64, (i * i) as f64)).collect(),
                },
                Series {
                    name: "TE(GPU→MCE)".to_owned(),
                    points: (0..10).map(|i| (i as f64, i as f64)).collect(),
                },
            ],
        );
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("TE(MCE→GPU)"));
        assert!(svg.contains("#1f77b4"));
        assert!(svg.contains("#d62728"));
    }

    #[test]
    fn empty_series_produce_valid_svg() {
        let svg = render_timeseries("empty", &[]);
        assert!(svg.starts_with("<svg"));
        let svg = render_timeseries(
            "one point",
            &[Series {
                name: "p".into(),
                points: vec![(5.0, 5.0)],
            }],
        );
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let svg = render_timeseries(
            "flat",
            &[Series {
                name: "f".into(),
                points: vec![(0.0, 3.0), (1.0, 3.0)],
            }],
        );
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }
}
