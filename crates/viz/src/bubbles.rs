//! Word bubbles: the text-analytics view that exposed the dead OST in the
//! paper's Fig 7 — "word bubbles as the result of text analysis on raw
//! Lustre event logs".

use crate::color::heat_color;
use crate::svg::SvgDoc;

const W: f64 = 560.0;
const H: f64 = 360.0;

/// Renders weighted terms as packed circles. Radius scales with the square
/// root of the weight; placement walks an Archimedean spiral from the
/// center until a collision-free spot is found (deterministic).
pub fn render_word_bubbles(title: &str, terms: &[(String, f64)]) -> String {
    let mut doc = SvgDoc::new(W, H);
    doc.text(16.0, 20.0, 13.0, title);
    let max_w = terms.iter().map(|(_, w)| *w).fold(0.0f64, f64::max);
    if max_w <= 0.0 {
        return doc.finish();
    }
    // Largest first so dominant terms take the center.
    let mut order: Vec<usize> = (0..terms.len()).collect();
    order.sort_by(|a, b| terms[*b].1.total_cmp(&terms[*a].1));

    let mut placed: Vec<(f64, f64, f64)> = Vec::new(); // (cx, cy, r)
    for idx in order {
        let (ref word, weight) = terms[idx];
        let frac = (weight / max_w).clamp(0.0, 1.0);
        let r = 10.0 + frac.sqrt() * 52.0;
        let (cx, cy) = spiral_place(&placed, r);
        doc.circle(cx, cy, r, &heat_color(frac), 0.75);
        let font = (r * 0.42).max(7.0);
        let display = if word.len() as f64 * font * 0.62 > r * 2.0 && word.len() > 8 {
            format!("{}…", &word[..7.min(word.len())])
        } else {
            word.clone()
        };
        doc.text_anchored(cx, cy + font / 3.0, font, &display, "middle");
        placed.push((cx, cy, r));
    }
    doc.finish()
}

fn spiral_place(placed: &[(f64, f64, f64)], r: f64) -> (f64, f64) {
    let (cx0, cy0) = (W / 2.0, H / 2.0 + 10.0);
    let mut theta = 0.0f64;
    loop {
        let rad = theta * 3.5;
        let cx = cx0 + rad * theta.cos();
        let cy = cy0 + rad * theta.sin() * 0.7; // squash to the canvas shape
        let ok = placed
            .iter()
            .all(|(px, py, pr)| ((cx - px).powi(2) + (cy - py).powi(2)).sqrt() >= pr + r + 2.0);
        if ok {
            return (cx, cy);
        }
        theta += 0.25;
        if theta > 200.0 {
            // Give up gracefully on absurd inputs; stack at the edge.
            return (W - r, H - r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(n: usize) -> Vec<(String, f64)> {
        (0..n)
            .map(|i| (format!("word{i}"), (n - i) as f64))
            .collect()
    }

    #[test]
    fn renders_a_circle_per_term() {
        let svg = render_word_bubbles("Lustre terms", &terms(8));
        assert_eq!(svg.matches("<circle").count(), 8);
        assert!(svg.contains("word0"));
        assert!(svg.contains("Lustre terms"));
    }

    #[test]
    fn bubbles_do_not_overlap() {
        // Re-derive placements by parsing the SVG circles.
        let svg = render_word_bubbles("t", &terms(12));
        let mut circles = Vec::new();
        for chunk in svg.split("<circle ").skip(1) {
            let get = |attr: &str| -> f64 {
                let at = chunk.find(attr).unwrap() + attr.len() + 2;
                chunk[at..].split('"').next().unwrap().parse().unwrap()
            };
            circles.push((get("cx"), get("cy"), get(" r")));
        }
        for i in 0..circles.len() {
            for j in i + 1..circles.len() {
                let (x1, y1, r1) = circles[i];
                let (x2, y2, r2) = circles[j];
                let d = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
                assert!(
                    d >= r1 + r2,
                    "bubbles {i} and {j} overlap: d={d} r={}",
                    r1 + r2
                );
            }
        }
    }

    #[test]
    fn biggest_weight_gets_biggest_radius() {
        let svg = render_word_bubbles("t", &[("big".into(), 100.0), ("small".into(), 1.0)]);
        let radii: Vec<f64> = svg
            .split(" r=\"")
            .skip(1)
            .map(|s| s.split('"').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(radii.len(), 2);
        assert!(radii[0] > radii[1] * 2.0);
    }

    #[test]
    fn empty_and_zero_weight_inputs_are_safe() {
        assert!(render_word_bubbles("t", &[]).starts_with("<svg"));
        assert!(render_word_bubbles("t", &[("x".into(), 0.0)]).starts_with("<svg"));
    }

    #[test]
    fn long_words_are_truncated_with_ellipsis() {
        let svg = render_word_bubbles(
            "t",
            &[
                ("extraordinarily-long-term".into(), 0.10),
                ("x".into(), 100.0),
            ],
        );
        assert!(svg.contains("…"), "{svg}");
    }

    #[test]
    fn deterministic_output() {
        let a = render_word_bubbles("t", &terms(6));
        let b = render_word_bubbles("t", &terms(6));
        assert_eq!(a, b);
    }
}
