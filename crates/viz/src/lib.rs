//! `viz` — deterministic SVG/ASCII renderers for the frontend's views.
//!
//! The paper's frontend (D3 + HTML5 canvas) draws the physical system map,
//! the temporal map, heat maps, event histograms, transfer-entropy plots,
//! and word bubbles (Figs 5–7). This crate reproduces each view as a pure
//! function from data to an SVG document (plus ASCII variants for
//! terminals), so every figure becomes a reproducible artifact.

pub mod bubbles;
pub mod color;
pub mod histogram;
pub mod svg;
pub mod sysmap;
pub mod teplot;
pub mod timeseries;

pub use bubbles::render_word_bubbles;
pub use histogram::{ascii_histogram, render_histogram};
pub use sysmap::{
    ascii_cabinet_heatmap, render_cabinet_heatmap, render_node_heatmap, SystemMapSpec,
};
pub use timeseries::{render_timeseries, Series};
