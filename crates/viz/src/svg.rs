//! A minimal SVG document builder.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

impl SvgDoc {
    /// Starts a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> SvgDoc {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// Adds a filled rectangle (optionally stroked).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke = match stroke {
            Some(s) => format!(" stroke=\"{s}\" stroke-width=\"0.5\""),
            None => String::new(),
        };
        let _ = write!(
            self.body,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" fill=\"{fill}\"{stroke}/>",
        );
    }

    /// Adds a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, opacity: f64) {
        let _ = write!(
            self.body,
            "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{r:.1}\" fill=\"{fill}\" fill-opacity=\"{opacity:.2}\"/>",
        );
    }

    /// Adds left-anchored text.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) {
        self.text_anchored(x, y, size, content, "start");
    }

    /// Adds text with an explicit anchor (`start`/`middle`/`end`).
    pub fn text_anchored(&mut self, x: f64, y: f64, size: f64, content: &str, anchor: &str) {
        let _ = write!(
            self.body,
            "<text x=\"{x:.1}\" y=\"{y:.1}\" font-size=\"{size:.1}\" font-family=\"monospace\" text-anchor=\"{anchor}\">{}</text>",
            escape(content),
        );
    }

    /// Adds a polyline through the points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        let _ = write!(
            self.body,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{width:.1}\"/>",
            pts.join(" "),
        );
    }

    /// Adds a straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"{stroke}\" stroke-width=\"{width:.1}\"/>",
        );
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\"><rect width=\"100%\" height=\"100%\" fill=\"white\"/>{}</svg>",
            self.width, self.height, self.width, self.height, self.body,
        )
    }
}

/// Escapes text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.rect(0.0, 0.0, 10.0, 10.0, "#ff0000", Some("#000000"));
        doc.circle(5.0, 5.0, 2.0, "#00ff00", 0.5);
        doc.text(1.0, 1.0, 8.0, "hello");
        doc.polyline(&[(0.0, 0.0), (1.0, 2.0)], "#0000ff", 1.0);
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        for needle in ["<rect", "<circle", "<text", "<polyline", "width=\"100\""] {
            assert!(svg.contains(needle), "{needle}");
        }
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.text(0.0, 0.0, 8.0, "a<b & \"c\"");
        let svg = doc.finish();
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!svg.contains("a<b"));
    }
}
