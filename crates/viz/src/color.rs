//! Sequential color ramp for heat maps.

/// Control points of a viridis-like perceptual ramp (dark blue → teal →
/// green → yellow).
const RAMP: &[(u8, u8, u8)] = &[
    (68, 1, 84),
    (59, 82, 139),
    (33, 145, 140),
    (94, 201, 98),
    (253, 231, 37),
];

/// Maps `t ∈ [0, 1]` to a hex color on the ramp; out-of-range clamps.
pub fn heat_color(t: f64) -> String {
    let t = if t.is_finite() {
        t.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let scaled = t * (RAMP.len() - 1) as f64;
    let i = (scaled.floor() as usize).min(RAMP.len() - 2);
    let frac = scaled - i as f64;
    let (r0, g0, b0) = RAMP[i];
    let (r1, g1, b1) = RAMP[i + 1];
    let lerp = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * frac).round() as u8;
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(r0, r1),
        lerp(g0, g1),
        lerp(b0, b1)
    )
}

/// Normalizes values to `[0, 1]` against their max (all-zero stays zero).
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v / max).clamp(0.0, 1.0)).collect()
}

/// ASCII shade for `t ∈ [0,1]`: ` .:-=+*#%@` from cold to hot.
pub fn ascii_shade(t: f64) -> char {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let t = if t.is_finite() {
        t.clamp(0.0, 1.0)
    } else {
        0.0
    };
    SHADES[((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)] as char
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_clamping() {
        assert_eq!(heat_color(0.0), "#440154");
        assert_eq!(heat_color(1.0), "#fde725");
        assert_eq!(heat_color(-5.0), heat_color(0.0));
        assert_eq!(heat_color(7.0), heat_color(1.0));
        assert_eq!(heat_color(f64::NAN), heat_color(0.0));
    }

    #[test]
    fn midpoints_interpolate() {
        let mid = heat_color(0.5);
        assert_eq!(mid, "#21918c"); // exact control point at t=0.5
        assert_ne!(heat_color(0.25), heat_color(0.26));
    }

    #[test]
    fn normalize_handles_zeros_and_scales() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(normalize(&[]), Vec::<f64>::new());
        let n = normalize(&[1.0, 2.0, 4.0]);
        assert_eq!(n, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn ascii_shades_are_monotone() {
        assert_eq!(ascii_shade(0.0), ' ');
        assert_eq!(ascii_shade(1.0), '@');
        assert!(ascii_shade(0.5) != ' ');
    }
}
