//! Property tests: parallel execution must agree with the obvious
//! sequential evaluation, for any data and partitioning.

use proptest::prelude::*;
use sparklet::context::SparkletContext;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn map_filter_equals_sequential(
        data in prop::collection::vec(any::<i32>(), 0..200),
        parts in 1usize..12,
    ) {
        let ctx = SparkletContext::new(4);
        let got = ctx
            .parallelize(data.clone(), parts)
            .map(|x| x.wrapping_mul(3))
            .filter(|x| x % 2 == 0)
            .collect();
        let want: Vec<i32> = data
            .into_iter()
            .map(|x| x.wrapping_mul(3))
            .filter(|x| x % 2 == 0)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_by_key_equals_hashmap_fold(
        pairs in prop::collection::vec((0i64..20, any::<i32>()), 0..300),
        parts in 1usize..10,
        shuffle_parts in 1usize..10,
    ) {
        let ctx = SparkletContext::new(4);
        let got: HashMap<i64, i64> = ctx
            .parallelize(pairs.clone(), parts)
            .map(|(k, v)| (k, v as i64))
            .reduce_by_key(shuffle_parts, |a, b| a + b)
            .collect()
            .into_iter()
            .collect();
        let mut want: HashMap<i64, i64> = HashMap::new();
        for (k, v) in pairs {
            *want.entry(k).or_insert(0) += v as i64;
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sort_by_key_is_a_permutation_sorted(
        pairs in prop::collection::vec((any::<i64>(), any::<i32>()), 0..200),
        parts in 1usize..8,
        out_parts in 1usize..8,
    ) {
        let ctx = SparkletContext::new(4);
        let got = ctx.parallelize(pairs.clone(), parts).sort_by_key(out_parts).collect();
        // Keys ascending.
        prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        // Same multiset.
        let mut got_sorted = got.clone();
        got_sorted.sort();
        let mut want = pairs;
        want.sort();
        prop_assert_eq!(got_sorted, want);
    }

    #[test]
    fn count_and_reduce_agree(
        data in prop::collection::vec(-1000i64..1000, 0..200),
        parts in 1usize..8,
    ) {
        let ctx = SparkletContext::new(3);
        let rdd = ctx.parallelize(data.clone(), parts);
        prop_assert_eq!(rdd.count(), data.len());
        prop_assert_eq!(rdd.reduce(|a, b| a + b), data.into_iter().reduce(|a, b| a + b));
    }

    #[test]
    fn union_collect_is_concatenation(
        a in prop::collection::vec(any::<i16>(), 0..50),
        b in prop::collection::vec(any::<i16>(), 0..50),
    ) {
        let ctx = SparkletContext::new(2);
        let got = ctx.parallelize(a.clone(), 3).union(&ctx.parallelize(b.clone(), 2)).collect();
        let want: Vec<i16> = a.into_iter().chain(b).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn coalesce_conserves_counts(
        events in prop::collection::vec((0i64..5, 0i64..5, 1u32..4), 0..100),
    ) {
        let merged = sparklet::streaming::coalesce(
            events.clone(),
            |(ts, node, _)| (*ts, *node),
            |a, b| a.2 += b.2,
        );
        let total_in: u32 = events.iter().map(|e| e.2).sum();
        let total_out: u32 = merged.iter().map(|e| e.2).sum();
        prop_assert_eq!(total_in, total_out);
        // Keys unique after coalescing.
        let keys: std::collections::HashSet<_> = merged.iter().map(|(t, n, _)| (t, n)).collect();
        prop_assert_eq!(keys.len(), merged.len());
    }
}
