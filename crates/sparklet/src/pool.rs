//! Executor pool: fixed worker threads, each with a private queue plus a
//! shared queue, so tasks can be pinned to the executor that holds the data.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static WORKER_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The executor id of the current thread, when running inside the pool.
/// Data sources use this to detect whether they were scheduled locally.
pub fn current_worker() -> Option<usize> {
    WORKER_ID.with(|w| w.get())
}

/// Scheduling statistics for the locality experiments. Per-pool counts are
/// exact (tests create many pools concurrently); every increment is also
/// mirrored into the process-wide `sparklet.pool.*` counters of the global
/// [`telemetry`] registry so dispatch activity shows up in `metrics` output.
#[derive(Debug, Default)]
pub struct PoolStats {
    local_dispatches: AtomicU64,
    other_dispatches: AtomicU64,
}

impl PoolStats {
    fn record_local(&self) {
        self.local_dispatches.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("sparklet.pool.local_dispatches")
            .incr(1);
    }

    fn record_other(&self) {
        self.other_dispatches.fetch_add(1, Ordering::Relaxed);
        telemetry::global()
            .counter("sparklet.pool.other_dispatches")
            .incr(1);
    }

    /// Tasks dispatched to their preferred executor.
    pub fn local_dispatches(&self) -> u64 {
        self.local_dispatches.load(Ordering::Relaxed)
    }

    /// Tasks dispatched elsewhere (no preference, or locality disabled).
    pub fn other_dispatches(&self) -> u64 {
        self.other_dispatches.load(Ordering::Relaxed)
    }
}

/// A fixed pool of executor threads.
pub struct ExecutorPool {
    private_txs: Vec<Sender<Task>>,
    shared_tx: Sender<Task>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
    next_rr: AtomicU64,
}

impl ExecutorPool {
    /// Spawns `workers` executor threads.
    pub fn new(workers: usize) -> ExecutorPool {
        let workers = workers.max(1);
        let (shared_tx, shared_rx) = unbounded::<Task>();
        let mut private_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let (tx, rx) = unbounded::<Task>();
            private_txs.push(tx);
            let shared_rx = shared_rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sparklet-exec-{id}"))
                    .spawn(move || worker_loop(id, rx, shared_rx))
                    .expect("spawn executor"),
            );
        }
        ExecutorPool {
            private_txs,
            shared_tx,
            handles,
            stats: Arc::new(PoolStats::default()),
            next_rr: AtomicU64::new(0),
        }
    }

    /// Number of executors.
    pub fn workers(&self) -> usize {
        self.private_txs.len()
    }

    /// Submits a task. With `Some(worker)` the task is pinned to that
    /// executor's private queue; otherwise it goes to the shared queue
    /// (any idle executor picks it up).
    pub fn submit(&self, preferred: Option<usize>, task: Task) {
        match preferred {
            Some(w) if w < self.private_txs.len() => {
                self.stats.record_local();
                self.private_txs[w].send(task).expect("executor alive");
            }
            _ => {
                self.stats.record_other();
                self.shared_tx.send(task).expect("executor alive");
            }
        }
    }

    /// Submits ignoring preference, spreading round-robin over private
    /// queues (used when locality-aware scheduling is disabled, to keep
    /// queueing behaviour comparable).
    pub fn submit_round_robin(&self, task: Task) {
        let w = (self.next_rr.fetch_add(1, Ordering::Relaxed) as usize) % self.private_txs.len();
        self.stats.record_other();
        self.private_txs[w].send(task).expect("executor alive");
    }

    /// Dispatch counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops.
        self.private_txs.clear();
        drop(std::mem::replace(&mut self.shared_tx, unbounded().0));
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(id: usize, private_rx: Receiver<Task>, shared_rx: Receiver<Task>) {
    WORKER_ID.with(|w| w.set(Some(id)));
    loop {
        // Drain pinned work first, then fall back to the shared queue.
        crossbeam::channel::select! {
            recv(private_rx) -> task => match task {
                Ok(task) => task(),
                Err(_) => break,
            },
            recv(shared_rx) -> task => match task {
                Ok(task) => task(),
                Err(_) => {
                    // Shared queue closed; keep serving pinned tasks.
                    while let Ok(task) = private_rx.recv() {
                        task();
                    }
                    break;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn executes_all_tasks() {
        let pool = ExecutorPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded();
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            let tx = done_tx.clone();
            pool.submit(
                None,
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).unwrap();
                }),
            );
        }
        for _ in 0..100 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pinned_tasks_run_on_their_executor() {
        let pool = ExecutorPool::new(4);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (done_tx, done_rx) = unbounded();
        for w in 0..4 {
            for _ in 0..10 {
                let seen = Arc::clone(&seen);
                let tx = done_tx.clone();
                pool.submit(
                    Some(w),
                    Box::new(move || {
                        seen.lock().unwrap().push((w, current_worker()));
                        tx.send(()).unwrap();
                    }),
                );
            }
        }
        for _ in 0..40 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap();
        }
        for (wanted, got) in seen.lock().unwrap().iter() {
            assert_eq!(Some(*wanted), *got);
        }
    }

    #[test]
    fn out_of_range_preference_falls_back_to_shared() {
        let pool = ExecutorPool::new(2);
        let (done_tx, done_rx) = unbounded();
        pool.submit(
            Some(99),
            Box::new(move || {
                done_tx.send(current_worker()).unwrap();
            }),
        );
        let who = done_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        assert!(who.is_some());
        assert_eq!(pool.stats().other_dispatches(), 1);
    }

    #[test]
    fn current_worker_is_none_outside_pool() {
        assert_eq!(current_worker(), None);
    }

    #[test]
    fn drop_joins_cleanly_with_pending_pinned_tasks() {
        let pool = ExecutorPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for w in 0..2 {
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.submit(
                    Some(w),
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
        }
        drop(pool); // must process or abandon without deadlock
                    // All pinned tasks were queued before drop; workers drain their
                    // private queues before exiting.
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn round_robin_spreads_over_workers() {
        let pool = ExecutorPool::new(4);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let (done_tx, done_rx) = unbounded();
        for _ in 0..64 {
            let seen = Arc::clone(&seen);
            let tx = done_tx.clone();
            pool.submit_round_robin(Box::new(move || {
                seen.lock().unwrap().insert(current_worker());
                // Small pause so a single fast worker can't absorb all.
                std::thread::sleep(std::time::Duration::from_millis(1));
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..64 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap();
        }
        assert_eq!(seen.lock().unwrap().len(), 4);
    }
}
