//! Shuffle-based aggregations over key/value datasets: the MapReduce core.
//!
//! A shuffle runs as two stages, like Spark: a *map* stage computes each
//! parent partition, combines values per key locally (map-side combine),
//! and buckets the result by key hash; the driver regroups buckets; a
//! *reduce* stage merges each bucket in parallel.

use crate::rdd::Rdd;
use crate::Data;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Deterministic 64-bit FNV-1a hasher: bucket assignment must be stable
/// across runs (std's `RandomState` is randomly seeded per process).
#[derive(Default)]
pub struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// Stable bucket index for a key.
pub fn bucket_of<K: Hash>(key: &K, buckets: usize) -> usize {
    let mut h = Fnv1a::default();
    key.hash(&mut h);
    (h.finish() % buckets as u64) as usize
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq,
    V: Data,
{
    /// Generic shuffle with combiners (Spark's `combineByKey`).
    pub fn combine_by_key<C: Data>(
        &self,
        num_partitions: usize,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Rdd<(K, C)> {
        let n = num_partitions.max(1);
        let create = Arc::new(create);
        let merge_value = Arc::new(merge_value);
        let merge_combiners = Arc::new(merge_combiners);

        // Map stage: per-partition combine + bucket by key hash.
        let (create2, merge_value2) = (Arc::clone(&create), Arc::clone(&merge_value));
        let map_outputs: Vec<Vec<Vec<(K, C)>>> = self.ctx.run_job(self, move |_, data| {
            let mut combined: HashMap<K, C> = HashMap::new();
            for (k, v) in data {
                match combined.remove(&k) {
                    None => {
                        combined.insert(k, create2(v));
                    }
                    Some(c) => {
                        combined.insert(k, merge_value2(c, v));
                    }
                }
            }
            let mut buckets: Vec<Vec<(K, C)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, c) in combined {
                buckets[bucket_of(&k, n)].push((k, c));
            }
            buckets
        });

        // Exchange: regroup map outputs by target partition.
        let mut exchanged: Vec<Vec<(K, C)>> = (0..n).map(|_| Vec::new()).collect();
        for mut buckets in map_outputs {
            for (target, bucket) in buckets.drain(..).enumerate() {
                exchanged[target].extend(bucket);
            }
        }

        // Reduce stage: merge combiners per bucket, in parallel.
        let unmerged = self
            .ctx
            .materialized(exchanged.into_iter().map(Arc::new).collect());
        let mc = Arc::clone(&merge_combiners);
        unmerged.map_partitions(move |_, pairs| {
            let mut merged: HashMap<K, C> = HashMap::new();
            for (k, c) in pairs {
                match merged.remove(&k) {
                    None => {
                        merged.insert(k, c);
                    }
                    Some(prev) => {
                        merged.insert(k, mc(prev, c));
                    }
                }
            }
            merged.into_iter().collect()
        })
    }

    /// Classic word-count-style reduction.
    pub fn reduce_by_key(
        &self,
        num_partitions: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)> {
        let f = Arc::new(f);
        let f1 = Arc::clone(&f);
        let f2 = Arc::clone(&f);
        self.combine_by_key(
            num_partitions,
            |v| v,
            move |c, v| f1(c, v),
            move |a, b| f2(a, b),
        )
    }

    /// Groups all values per key.
    pub fn group_by_key(&self, num_partitions: usize) -> Rdd<(K, Vec<V>)> {
        self.combine_by_key(
            num_partitions,
            |v| vec![v],
            |mut c, v| {
                c.push(v);
                c
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }

    /// Aggregation with a zero value and distinct sequential/combining ops.
    pub fn aggregate_by_key<C: Data>(
        &self,
        num_partitions: usize,
        zero: C,
        seq: impl Fn(C, V) -> C + Send + Sync + 'static,
        comb: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Rdd<(K, C)> {
        let seq = Arc::new(seq);
        let z = zero.clone();
        let seq2 = Arc::clone(&seq);
        self.combine_by_key(
            num_partitions,
            move |v| seq2(z.clone(), v),
            move |c, v| seq(c, v),
            comb,
        )
    }

    /// Per-key element counts, returned to the driver.
    pub fn count_by_key(&self) -> HashMap<K, u64> {
        self.map(|(k, _)| (k, 1u64))
            .reduce_by_key(self.num_partitions().max(1), |a, b| a + b)
            .collect()
            .into_iter()
            .collect()
    }

    /// Inner hash join.
    pub fn join<W: Data>(&self, other: &Rdd<(K, W)>, num_partitions: usize) -> Rdd<(K, (V, W))> {
        let left = self.group_by_key(num_partitions);
        let right = other.group_by_key(num_partitions);
        // Both sides are hash-partitioned by the same function, so matching
        // keys land in equal-indexed partitions; zip them pairwise.
        type Grouped<K, W> = Vec<Arc<Vec<(K, Vec<W>)>>>;
        let rights: Grouped<K, W> = right
            .ctx
            .run_job(&right, |_, data| data)
            .into_iter()
            .map(Arc::new)
            .collect();
        left.map_partitions(move |p, lhs| {
            let rhs: HashMap<K, Vec<W>> = rights[p].as_ref().clone().into_iter().collect();
            let mut out = Vec::new();
            for (k, vs) in lhs {
                if let Some(ws) = rhs.get(&k) {
                    for v in &vs {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
            }
            out
        })
    }
}

impl<T> Rdd<T>
where
    T: Data + Hash + Eq,
{
    /// Removes duplicates via a shuffle (global dedup).
    pub fn distinct(&self, num_partitions: usize) -> Rdd<T> {
        self.map(|t| (t, ()))
            .reduce_by_key(num_partitions, |_, _| ())
            .map(|(t, ())| t)
    }

    /// Per-value counts, returned to the driver.
    pub fn count_by_value(&self) -> HashMap<T, u64> {
        self.map(|t| (t, 1u64))
            .reduce_by_key(self.num_partitions().max(1), |a, b| a + b)
            .collect()
            .into_iter()
            .collect()
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq + Ord,
    V: Data,
{
    /// Sorts by key into `num_partitions` range partitions (ascending),
    /// using sampled splitters like Spark's `RangePartitioner`.
    pub fn sort_by_key(&self, num_partitions: usize) -> Rdd<(K, V)> {
        let n = num_partitions.max(1);
        // Sample keys to pick balanced splitters.
        let mut sample: Vec<K> = self
            .ctx
            .run_job(self, |_, data: Vec<(K, V)>| {
                data.iter()
                    .step_by(7.max(data.len() / 64).max(1))
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<K>>()
            })
            .into_iter()
            .flatten()
            .collect();
        sample.sort();
        let splitters: Arc<Vec<K>> = Arc::new(
            (1..n)
                .filter_map(|i| sample.get(i * sample.len() / n).cloned())
                .collect(),
        );

        // Range-bucket every element.
        let sp = Arc::clone(&splitters);
        let bucketed: Vec<Vec<Vec<(K, V)>>> = self.ctx.run_job(self, move |_, data| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, v) in data {
                let b = sp.partition_point(|s| *s <= k);
                buckets[b.min(n - 1)].push((k, v));
            }
            buckets
        });
        let mut exchanged: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
        for mut buckets in bucketed {
            for (target, bucket) in buckets.drain(..).enumerate() {
                exchanged[target].extend(bucket);
            }
        }
        let unsorted = self
            .ctx
            .materialized(exchanged.into_iter().map(Arc::new).collect());
        unsorted.map_partitions(|_, mut data| {
            data.sort_by(|a, b| a.0.cmp(&b.0));
            data
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::context::SparkletContext;
    use std::collections::HashMap;

    fn ctx() -> SparkletContext {
        SparkletContext::new(4)
    }

    #[test]
    fn reduce_by_key_counts_words() {
        let ctx = ctx();
        let words = vec!["ost", "mds", "ost", "ost", "client", "mds"];
        let counts: HashMap<String, u64> = ctx
            .parallelize(words.into_iter().map(String::from).collect(), 3)
            .map(|w| (w, 1u64))
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .into_iter()
            .collect();
        assert_eq!(counts["ost"], 3);
        assert_eq!(counts["mds"], 2);
        assert_eq!(counts["client"], 1);
    }

    #[test]
    fn shuffle_result_matches_sequential_fold() {
        let ctx = ctx();
        let pairs: Vec<(i64, i64)> = (0..500).map(|i| (i % 17, i)).collect();
        let mut expected: HashMap<i64, i64> = HashMap::new();
        for (k, v) in &pairs {
            *expected.entry(*k).or_insert(0) += v;
        }
        let got: HashMap<i64, i64> = ctx
            .parallelize(pairs, 9)
            .reduce_by_key(5, |a, b| a + b)
            .collect()
            .into_iter()
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let ctx = ctx();
        let grouped: HashMap<i32, Vec<i32>> = ctx
            .parallelize(vec![(1, 10), (2, 20), (1, 11), (1, 12)], 2)
            .group_by_key(3)
            .collect()
            .into_iter()
            .map(|(k, mut v)| {
                v.sort();
                (k, v)
            })
            .collect();
        assert_eq!(grouped[&1], vec![10, 11, 12]);
        assert_eq!(grouped[&2], vec![20]);
    }

    #[test]
    fn aggregate_by_key_with_distinct_types() {
        let ctx = ctx();
        // Average per key: aggregate into (sum, count).
        let avg: HashMap<i32, f64> = ctx
            .parallelize(vec![(1, 2.0f64), (1, 4.0), (2, 10.0)], 2)
            .aggregate_by_key(
                2,
                (0.0f64, 0u64),
                |(s, c), v| (s + v, c + 1),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
            .map(|(k, (s, c))| (k, s / c as f64))
            .collect()
            .into_iter()
            .collect();
        assert_eq!(avg[&1], 3.0);
        assert_eq!(avg[&2], 10.0);
    }

    #[test]
    fn count_by_key_matches() {
        let ctx = ctx();
        let counts = ctx
            .parallelize(vec![("a", 1), ("b", 2), ("a", 3)], 2)
            .count_by_key();
        assert_eq!(counts[&"a"], 2);
        assert_eq!(counts[&"b"], 1);
    }

    #[test]
    fn join_inner_semantics() {
        let ctx = ctx();
        let users = ctx.parallelize(vec![(1, "alice"), (2, "bob"), (3, "carol")], 2);
        let jobs = ctx.parallelize(
            vec![(1, "vasp"), (1, "lammps"), (3, "gromacs"), (9, "ghost")],
            3,
        );
        let mut joined = users.join(&jobs, 4).collect();
        joined.sort();
        let mut expected = vec![
            (1, ("alice", "vasp")),
            (1, ("alice", "lammps")),
            (3, ("carol", "gromacs")),
        ];
        expected.sort();
        assert_eq!(joined, expected);
    }

    #[test]
    fn sort_by_key_global_order() {
        let ctx = ctx();
        let mut data: Vec<(i64, i64)> = (0..200).map(|i| ((i * 7919) % 997, i)).collect();
        let sorted = ctx.parallelize(data.clone(), 8).sort_by_key(5).collect();
        data.sort_by_key(|(k, _)| *k);
        let got_keys: Vec<i64> = sorted.iter().map(|(k, _)| *k).collect();
        let want_keys: Vec<i64> = data.iter().map(|(k, _)| *k).collect();
        assert_eq!(got_keys, want_keys);
    }

    #[test]
    fn sort_by_key_handles_few_elements() {
        let ctx = ctx();
        let sorted = ctx
            .parallelize(vec![(3, ()), (1, ()), (2, ())], 1)
            .sort_by_key(8)
            .collect();
        assert_eq!(
            sorted.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn distinct_and_count_by_value() {
        let ctx = ctx();
        let rdd = ctx.parallelize(vec![1, 2, 2, 3, 3, 3], 3);
        let mut d = rdd.distinct(4).collect();
        d.sort();
        assert_eq!(d, vec![1, 2, 3]);
        let counts = rdd.count_by_value();
        assert_eq!(counts[&1], 1);
        assert_eq!(counts[&2], 2);
        assert_eq!(counts[&3], 3);
    }

    #[test]
    fn empty_shuffles_are_fine() {
        let ctx = ctx();
        let empty: Vec<(i32, i32)> = Vec::new();
        assert!(ctx
            .parallelize(empty.clone(), 3)
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .is_empty());
        assert!(ctx
            .parallelize(empty, 3)
            .sort_by_key(4)
            .collect()
            .is_empty());
    }
}
