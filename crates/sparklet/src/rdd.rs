//! Resilient-distributed-dataset lookalike: lazy, partitioned, lineage-based.

use crate::context::SparkletContext;
use crate::Data;
use parking_lot::Mutex;
use std::sync::Arc;

/// Internal evaluation interface: one object per lineage node.
pub(crate) trait RddImpl<T: Data>: Send + Sync {
    /// Number of partitions.
    fn partitions(&self) -> usize;
    /// Preferred executor for a partition (data locality), if any.
    fn preferred(&self, partition: usize) -> Option<usize>;
    /// Materializes one partition.
    fn compute(&self, partition: usize) -> Vec<T>;
}

/// A lazily evaluated, partitioned dataset.
///
/// Cloning an `Rdd` is cheap (lineage is shared). All transformations are
/// lazy; actions ([`Rdd::collect`], [`Rdd::count`], ...) run a parallel job
/// on the context's executor pool.
pub struct Rdd<T: Data> {
    pub(crate) ctx: SparkletContext,
    pub(crate) imp: Arc<dyn RddImpl<T>>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::clone(&self.imp),
        }
    }
}

/// A partition backed by a loader closure plus an optional preferred
/// executor — how storage scans (e.g. rasdb token ranges) enter the engine.
pub struct PartitionSource<T> {
    /// Executor that holds this partition's data locally.
    pub preferred: Option<usize>,
    /// Loads the partition contents.
    pub load: Arc<dyn Fn() -> Vec<T> + Send + Sync>,
}

pub(crate) struct SourceRdd<T> {
    pub sources: Vec<PartitionSource<T>>,
}

impl<T: Data> RddImpl<T> for SourceRdd<T> {
    fn partitions(&self) -> usize {
        self.sources.len()
    }
    fn preferred(&self, p: usize) -> Option<usize> {
        self.sources[p].preferred
    }
    fn compute(&self, p: usize) -> Vec<T> {
        (self.sources[p].load)()
    }
}

pub(crate) struct VecPartitions<T> {
    pub parts: Vec<Arc<Vec<T>>>,
}

impl<T: Data> RddImpl<T> for VecPartitions<T> {
    fn partitions(&self) -> usize {
        self.parts.len()
    }
    fn preferred(&self, _p: usize) -> Option<usize> {
        None
    }
    fn compute(&self, p: usize) -> Vec<T> {
        self.parts[p].as_ref().clone()
    }
}

struct MapRdd<T, U> {
    parent: Arc<dyn RddImpl<T>>,
    f: Arc<dyn Fn(T) -> U + Send + Sync>,
}

impl<T: Data, U: Data> RddImpl<U> for MapRdd<T, U> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn preferred(&self, p: usize) -> Option<usize> {
        self.parent.preferred(p)
    }
    fn compute(&self, p: usize) -> Vec<U> {
        self.parent
            .compute(p)
            .into_iter()
            .map(|t| (self.f)(t))
            .collect()
    }
}

struct FilterRdd<T> {
    parent: Arc<dyn RddImpl<T>>,
    f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Data> RddImpl<T> for FilterRdd<T> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn preferred(&self, p: usize) -> Option<usize> {
        self.parent.preferred(p)
    }
    fn compute(&self, p: usize) -> Vec<T> {
        self.parent
            .compute(p)
            .into_iter()
            .filter(|t| (self.f)(t))
            .collect()
    }
}

struct FlatMapRdd<T, U> {
    parent: Arc<dyn RddImpl<T>>,
    f: Arc<dyn Fn(T) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> RddImpl<U> for FlatMapRdd<T, U> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn preferred(&self, p: usize) -> Option<usize> {
        self.parent.preferred(p)
    }
    fn compute(&self, p: usize) -> Vec<U> {
        self.parent
            .compute(p)
            .into_iter()
            .flat_map(|t| (self.f)(t))
            .collect()
    }
}

struct MapPartitionsRdd<T, U> {
    parent: Arc<dyn RddImpl<T>>,
    f: Arc<dyn Fn(usize, Vec<T>) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> RddImpl<U> for MapPartitionsRdd<T, U> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn preferred(&self, p: usize) -> Option<usize> {
        self.parent.preferred(p)
    }
    fn compute(&self, p: usize) -> Vec<U> {
        (self.f)(p, self.parent.compute(p))
    }
}

struct UnionRdd<T> {
    parents: Vec<Arc<dyn RddImpl<T>>>,
}

impl<T: Data> RddImpl<T> for UnionRdd<T> {
    fn partitions(&self) -> usize {
        self.parents.iter().map(|p| p.partitions()).sum()
    }
    fn preferred(&self, mut p: usize) -> Option<usize> {
        for parent in &self.parents {
            if p < parent.partitions() {
                return parent.preferred(p);
            }
            p -= parent.partitions();
        }
        None
    }
    fn compute(&self, mut p: usize) -> Vec<T> {
        for parent in &self.parents {
            if p < parent.partitions() {
                return parent.compute(p);
            }
            p -= parent.partitions();
        }
        panic!("partition index out of range");
    }
}

struct CachedRdd<T> {
    parent: Arc<dyn RddImpl<T>>,
    slots: Mutex<Vec<Option<Arc<Vec<T>>>>>,
}

impl<T: Data> RddImpl<T> for CachedRdd<T> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn preferred(&self, p: usize) -> Option<usize> {
        self.parent.preferred(p)
    }
    fn compute(&self, p: usize) -> Vec<T> {
        if let Some(hit) = self.slots.lock()[p].clone() {
            return hit.as_ref().clone();
        }
        // Compute outside the lock: sibling partitions stay parallel, and a
        // duplicated computation under a race is harmless (same result).
        let data = Arc::new(self.parent.compute(p));
        self.slots.lock()[p] = Some(Arc::clone(&data));
        data.as_ref().clone()
    }
}

impl<T: Data> Rdd<T> {
    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.imp.partitions()
    }

    /// Element-wise transformation.
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::new(MapRdd {
                parent: Arc::clone(&self.imp),
                f: Arc::new(f),
            }),
        }
    }

    /// Keeps elements matching the predicate.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::new(FilterRdd {
                parent: Arc::clone(&self.imp),
                f: Arc::new(f),
            }),
        }
    }

    /// One-to-many transformation.
    pub fn flat_map<U: Data>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::new(FlatMapRdd {
                parent: Arc::clone(&self.imp),
                f: Arc::new(f),
            }),
        }
    }

    /// Whole-partition transformation; `f` receives the partition index.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::new(MapPartitionsRdd {
                parent: Arc::clone(&self.imp),
                f: Arc::new(f),
            }),
        }
    }

    /// Concatenates two datasets (partitions of `self` first).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::new(UnionRdd {
                parents: vec![Arc::clone(&self.imp), Arc::clone(&other.imp)],
            }),
        }
    }

    /// Marks the dataset for in-memory caching: the first action
    /// materializes each partition once; later actions reuse it.
    pub fn cache(&self) -> Rdd<T> {
        let n = self.imp.partitions();
        Rdd {
            ctx: self.ctx.clone(),
            imp: Arc::new(CachedRdd {
                parent: Arc::clone(&self.imp),
                slots: Mutex::new(vec![None; n]),
            }),
        }
    }

    /// Action: materializes every partition, in partition order.
    pub fn collect(&self) -> Vec<T> {
        let parts = self.ctx.run_job(self, |_, data| data);
        parts.into_iter().flatten().collect()
    }

    /// Action: counts elements.
    pub fn count(&self) -> usize {
        self.ctx
            .run_job(self, |_, data: Vec<T>| data.len())
            .into_iter()
            .sum()
    }

    /// Action: reduces all elements with `f`; `None` on an empty dataset.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Option<T> {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        let partials = self.ctx.run_job(self, move |_, data: Vec<T>| {
            data.into_iter().reduce(|a, b| g(a, b))
        });
        partials.into_iter().flatten().reduce(|a, b| f(a, b))
    }

    /// Action: the first `n` elements in partition order. Computes
    /// partitions one at a time, stopping early.
    pub fn take(&self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        for p in 0..self.imp.partitions() {
            if out.len() >= n {
                break;
            }
            out.extend(self.imp.compute(p));
        }
        out.truncate(n);
        out
    }

    /// Action: the first element, if any.
    pub fn first(&self) -> Option<T> {
        self.take(1).into_iter().next()
    }

    /// Deterministic Bernoulli sample: keeps each element with probability
    /// `fraction`, decided by a per-partition splitmix stream seeded from
    /// `seed` (same seed → same sample).
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        let fraction = fraction.clamp(0.0, 1.0);
        self.map_partitions(move |p, data| {
            let mut state = seed ^ (p as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            data.into_iter()
                .filter(|_| {
                    state = splitmix64(state);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) < fraction
                })
                .collect()
        })
    }
}

/// SplitMix64 step (public-domain PRNG; deterministic sampling needs no
/// external crate).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SparkletContext;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn ctx() -> SparkletContext {
        SparkletContext::new(4)
    }

    #[test]
    fn map_filter_flatmap_pipeline() {
        let ctx = ctx();
        let out = ctx
            .parallelize((1..=10i32).collect(), 3)
            .map(|x| x * 2)
            .filter(|x| x % 4 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect();
        assert_eq!(out, vec![4, 5, 8, 9, 12, 13, 16, 17, 20, 21]);
    }

    #[test]
    fn collect_preserves_partition_order() {
        let ctx = ctx();
        let data: Vec<i32> = (0..100).collect();
        let out = ctx.parallelize(data.clone(), 7).collect();
        assert_eq!(out, data);
    }

    #[test]
    fn count_and_reduce() {
        let ctx = ctx();
        let rdd = ctx.parallelize((1..=100i64).collect(), 8);
        assert_eq!(rdd.count(), 100);
        assert_eq!(rdd.reduce(|a, b| a + b), Some(5050));
        let empty = ctx.parallelize(Vec::<i64>::new(), 4);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.reduce(|a, b| a + b), None);
    }

    #[test]
    fn union_concatenates() {
        let ctx = ctx();
        let a = ctx.parallelize(vec![1, 2], 2);
        let b = ctx.parallelize(vec![3, 4], 1);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn map_partitions_sees_indices() {
        let ctx = ctx();
        let out = ctx
            .parallelize(vec![10, 20, 30, 40], 2)
            .map_partitions(|idx, data| vec![(idx, data.len())])
            .collect();
        assert_eq!(out, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn take_stops_early_and_first_works() {
        let ctx = ctx();
        let rdd = ctx.parallelize((0..1000).collect::<Vec<i32>>(), 100);
        assert_eq!(rdd.take(3), vec![0, 1, 2]);
        assert_eq!(rdd.first(), Some(0));
        assert_eq!(rdd.take(0), Vec::<i32>::new());
        assert_eq!(rdd.take(5000).len(), 1000);
    }

    #[test]
    fn cache_computes_each_partition_once() {
        let ctx = ctx();
        let computed = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&computed);
        let sources: Vec<PartitionSource<i32>> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c2);
                PartitionSource {
                    preferred: None,
                    load: Arc::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                        vec![i]
                    }),
                }
            })
            .collect();
        let rdd = ctx.from_sources(sources).cache();
        assert_eq!(rdd.collect().len(), 4);
        let after_first = computed.load(Ordering::SeqCst);
        assert_eq!(after_first, 4);
        assert_eq!(rdd.count(), 4);
        assert_eq!(rdd.collect().len(), 4);
        assert_eq!(computed.load(Ordering::SeqCst), 4, "no recomputation");
    }

    #[test]
    fn uncached_sources_recompute_per_action() {
        let ctx = ctx();
        let computed = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&computed);
        let rdd = ctx.from_sources(vec![PartitionSource {
            preferred: None,
            load: Arc::new(move || {
                c2.fetch_add(1, Ordering::SeqCst);
                vec![1]
            }),
        }]);
        rdd.count();
        rdd.count();
        assert_eq!(computed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let ctx = ctx();
        let rdd = ctx.parallelize((0..10_000).collect::<Vec<i32>>(), 8);
        let a = rdd.sample(0.3, 7).collect();
        let b = rdd.sample(0.3, 7).collect();
        assert_eq!(a, b, "same seed, same sample");
        let c = rdd.sample(0.3, 8).collect();
        assert_ne!(a, c, "different seed, different sample");
        let frac = a.len() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.05, "got {frac}");
        assert!(rdd.sample(0.0, 1).collect().is_empty());
        assert_eq!(rdd.sample(1.0, 1).count(), 10_000);
    }

    #[test]
    fn lineage_is_shared_on_clone() {
        let ctx = ctx();
        let a = ctx.parallelize(vec![1, 2, 3], 2);
        let b = a.clone();
        assert_eq!(a.collect(), b.collect());
    }
}
