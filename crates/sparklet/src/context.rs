//! The driver-side context: owns the executor pool and runs jobs.

use crate::pool::ExecutorPool;
use crate::rdd::{PartitionSource, Rdd, SourceRdd, VecPartitions};
use crate::Data;
use crossbeam::channel::unbounded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct CtxInner {
    pool: ExecutorPool,
    locality: AtomicBool,
}

/// The engine handle. Cheap to clone; all clones share the same executors.
#[derive(Clone)]
pub struct SparkletContext {
    inner: Arc<CtxInner>,
}

impl SparkletContext {
    /// Starts a context with `workers` executor threads.
    pub fn new(workers: usize) -> SparkletContext {
        SparkletContext {
            inner: Arc::new(CtxInner {
                pool: ExecutorPool::new(workers),
                locality: AtomicBool::new(true),
            }),
        }
    }

    /// Number of executors.
    pub fn workers(&self) -> usize {
        self.inner.pool.workers()
    }

    /// Enables/disables locality-aware task placement (ablation hook).
    /// When disabled, tasks are spread round-robin regardless of
    /// preferred executors.
    pub fn set_locality(&self, enabled: bool) {
        self.inner.locality.store(enabled, Ordering::SeqCst);
    }

    /// Whether locality-aware placement is on.
    pub fn locality(&self) -> bool {
        self.inner.locality.load(Ordering::SeqCst)
    }

    /// Dispatch statistics (locality experiments).
    pub fn pool_stats(&self) -> (u64, u64) {
        let s = self.inner.pool.stats();
        (s.local_dispatches(), s.other_dispatches())
    }

    /// Distributes a vector over `num_partitions` partitions.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        let n = num_partitions.max(1);
        let len = data.len();
        // Balanced split: the first `len % n` partitions get one extra item.
        let base = len / n;
        let extra = len % n;
        let mut parts: Vec<Arc<Vec<T>>> = Vec::with_capacity(n);
        let mut iter = data.into_iter();
        for i in 0..n {
            let size = base + usize::from(i < extra);
            let part: Vec<T> = iter.by_ref().take(size).collect();
            parts.push(Arc::new(part));
        }
        Rdd {
            ctx: self.clone(),
            imp: Arc::new(VecPartitions { parts }),
        }
    }

    /// Builds a dataset from loader-backed partitions (storage scans).
    pub fn from_sources<T: Data>(&self, sources: Vec<PartitionSource<T>>) -> Rdd<T> {
        Rdd {
            ctx: self.clone(),
            imp: Arc::new(SourceRdd { sources }),
        }
    }

    /// Builds a dataset from a batch of storage read plans: one partition
    /// per plan, pinned to `preferred(&plan)`'s executor and materialized
    /// by `load(&plan)`. This is how rasdb scatter-gather plan batches
    /// enter the engine — driver-side `read_multi` callers and
    /// owner-pinned tasks share the same plan objects.
    pub fn from_planned<P, T>(
        &self,
        plans: Vec<P>,
        preferred: impl Fn(&P) -> Option<usize>,
        load: impl Fn(&P) -> Vec<T> + Send + Sync + 'static,
    ) -> Rdd<T>
    where
        P: Send + Sync + 'static,
        T: Data,
    {
        let load = Arc::new(load);
        let sources = plans
            .into_iter()
            .map(|plan| {
                let pinned = preferred(&plan);
                let load = Arc::clone(&load);
                PartitionSource {
                    preferred: pinned,
                    load: Arc::new(move || load(&plan)),
                }
            })
            .collect();
        self.from_sources(sources)
    }

    /// Builds a dataset from pre-materialized partitions (shuffle output).
    pub(crate) fn materialized<T: Data>(&self, parts: Vec<Arc<Vec<T>>>) -> Rdd<T> {
        Rdd {
            ctx: self.clone(),
            imp: Arc::new(VecPartitions { parts }),
        }
    }

    /// Runs one job: computes every partition of `rdd` on the pool and
    /// applies `f` to each materialized partition. Results come back in
    /// partition order. Panics in tasks propagate to the driver.
    pub fn run_job<T: Data, R: Send + 'static>(
        &self,
        rdd: &Rdd<T>,
        f: impl Fn(usize, Vec<T>) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let n = rdd.imp.partitions();
        if n == 0 {
            return Vec::new();
        }
        let f = Arc::new(f);
        let (tx, rx) = unbounded();
        let locality = self.locality();
        let stage_span = telemetry::span!("sparklet.scheduler.stage");
        let stage_id = stage_span.id();
        // Trace context for executor threads: tasks parent under the stage
        // span *and* inherit the request's trace id (the stage picked it up
        // from the engine's thread-local), so cross-thread analytics work
        // stays attributable to the originating request.
        let stage_ctx = stage_span.context();
        for p in 0..n {
            let imp = Arc::clone(&rdd.imp);
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let preferred = rdd.imp.preferred(p);
            let task = Box::new(move || {
                // Child of the stage span even though it runs on an
                // executor thread; locality is judged where the task
                // actually landed, not where it was aimed.
                let mut task_span = match stage_ctx {
                    Some(c) => telemetry::SpanGuard::enter_in("sparklet.scheduler.task", &c),
                    None => telemetry::span!("sparklet.scheduler.task", stage_id),
                };
                let hit = preferred.is_some() && crate::pool::current_worker() == preferred;
                task_span.tag("locality", if hit { "hit" } else { "miss" });
                telemetry::global()
                    .counter(if hit {
                        "sparklet.scheduler.task.locality_hit"
                    } else {
                        "sparklet.scheduler.task.locality_miss"
                    })
                    .incr(1);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let data = imp.compute(p);
                    f(p, data)
                }));
                drop(task_span);
                // Receiver hang-ups only happen when the driver already
                // panicked; nothing useful to do with the error then.
                let _ = tx.send((p, result));
            });
            if locality {
                self.inner.pool.submit(rdd.imp.preferred(p), task);
            } else {
                self.inner.pool.submit_round_robin(task);
            }
        }
        drop(tx);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (p, result) = rx.recv().expect("executor alive");
            match result {
                Ok(r) => results[p] = Some(r),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic".to_owned());
                    panic!("task for partition {p} panicked: {msg}");
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("all received"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_balances_partitions() {
        let ctx = SparkletContext::new(2);
        let rdd = ctx.parallelize((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(rdd.num_partitions(), 3);
        let sizes = ctx.run_job(&rdd, |_, d| d.len());
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn parallelize_more_partitions_than_items() {
        let ctx = SparkletContext::new(2);
        let rdd = ctx.parallelize(vec![1, 2], 8);
        assert_eq!(rdd.num_partitions(), 8);
        assert_eq!(rdd.collect(), vec![1, 2]);
    }

    #[test]
    fn empty_rdd_jobs_return_empty() {
        let ctx = SparkletContext::new(2);
        let rdd = ctx.parallelize(Vec::<i32>::new(), 4);
        assert_eq!(rdd.collect(), Vec::<i32>::new());
    }

    #[test]
    fn from_planned_pins_and_loads_per_plan() {
        let ctx = SparkletContext::new(2);
        let plans: Vec<(usize, i32)> = (0..6).map(|i| (i % 2, i as i32)).collect();
        let rdd = ctx.from_planned(plans, |p| Some(p.0), |p| vec![p.1, p.1 + 100]);
        assert_eq!(rdd.num_partitions(), 6);
        assert_eq!(
            rdd.collect(),
            vec![0, 100, 1, 101, 2, 102, 3, 103, 4, 104, 5, 105]
        );
        let (local, _) = ctx.pool_stats();
        assert_eq!(local, 6, "every plan partition pinned to its owner");
    }

    #[test]
    fn run_job_results_in_partition_order() {
        let ctx = SparkletContext::new(4);
        let rdd = ctx.parallelize((0..64).collect::<Vec<i32>>(), 16);
        let idx = ctx.run_job(&rdd, |p, _| p);
        assert_eq!(idx, (0..16).collect::<Vec<usize>>());
    }

    #[test]
    #[should_panic(expected = "task for partition")]
    fn task_panic_propagates() {
        let ctx = SparkletContext::new(2);
        let rdd = ctx.parallelize(vec![1i32, 2, 3, 4], 4);
        let _ = ctx.run_job(&rdd, |p, _| {
            if p == 2 {
                panic!("boom");
            }
            p
        });
    }

    #[test]
    fn locality_toggle_changes_dispatch_counters() {
        let ctx = SparkletContext::new(2);
        let sources = (0..8)
            .map(|i| crate::rdd::PartitionSource {
                preferred: Some(i % 2),
                load: Arc::new(move || vec![i as i32]),
            })
            .collect();
        let rdd = ctx.from_sources(sources);
        rdd.count();
        let (local_after_first, _) = ctx.pool_stats();
        assert_eq!(local_after_first, 8, "all tasks pinned");
        ctx.set_locality(false);
        rdd.count();
        let (local_after_second, other) = ctx.pool_stats();
        assert_eq!(local_after_second, 8, "no new pinned dispatches");
        assert_eq!(other, 8, "round-robin dispatches recorded");
    }
}
