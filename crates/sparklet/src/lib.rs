//! `sparklet` — an in-memory, partitioned, DAG-scheduled data-processing
//! engine: the Apache Spark substitute for the log-analytics framework.
//!
//! The paper co-locates "a pair of a Spark worker node and a Cassandra node
//! ... in each of the 32 VMs" and runs "MapReduce operations over time
//! ordered data spread across the cluster". `sparklet` rebuilds the pieces
//! that matter for those claims:
//!
//! * **RDDs** ([`rdd`]) — lazily evaluated, partitioned collections with
//!   narrow transformations (`map`, `filter`, `flat_map`,
//!   `map_partitions`, `union`) and caching.
//! * **Shuffles** ([`agg`]) — `reduce_by_key`, `group_by_key`,
//!   `aggregate_by_key`, `sort_by_key`, and `join`, executed as a map-side
//!   combine stage followed by a hash-partitioned reduce stage.
//! * **A scheduler** ([`context`], [`pool`]) — a fixed pool of executor
//!   threads, each with its own task queue; tasks carry *preferred
//!   executors* so partition computation can run where the data lives
//!   (the paper's data-locality argument).
//! * **Micro-batch streaming** ([`streaming`]) — event-time windows with
//!   the 1-second coalescing rule used by the real-time ingestion path.
//!
//! # Example
//! ```
//! use sparklet::context::SparkletContext;
//!
//! let ctx = SparkletContext::new(4);
//! let counts = ctx
//!     .parallelize((0..1000).collect::<Vec<i64>>(), 8)
//!     .map(|n| (n % 10, 1u64))
//!     .reduce_by_key(8, |a, b| a + b)
//!     .collect();
//! assert_eq!(counts.len(), 10);
//! assert!(counts.iter().all(|(_, c)| *c == 100));
//! ```

pub mod agg;
pub mod context;
pub mod pool;
pub mod rdd;
pub mod streaming;

pub use context::SparkletContext;
pub use rdd::Rdd;

/// Marker bound for anything that flows through an RDD.
pub trait Data: Send + Sync + Clone + 'static {}
impl<T: Send + Sync + Clone + 'static> Data for T {}
