//! Micro-batch streaming with event-time windows and coalescing.
//!
//! The paper's real-time ingestion path sets "the time window of the Spark
//! streaming ... to one second" and coalesces "event occurrences of the
//! same type and same location ... into a single event if they are
//! timestamped the same". [`MicroBatcher`] implements the windowing;
//! [`coalesce`] implements the merge rule.

use std::collections::BTreeMap;
use std::hash::Hash;

/// Widening stops once the window reaches `base * 2^MAX_WIDENINGS`; past
/// that, buffering growth is the bus backpressure's problem, not ours.
const MAX_WIDENINGS: u32 = 10;

/// Bucket-compaction hook: merges equal-key items within one bucket.
type Compactor<T> = Box<dyn FnMut(Vec<T>) -> Vec<T> + Send>;

/// Flush hook: observes each emitted window's start timestamp.
type FlushListener = Box<dyn FnMut(i64) + Send>;

/// Groups timestamped items into fixed event-time windows.
///
/// Items may arrive out of order; a window is emitted once the watermark
/// (largest timestamp seen, minus the allowed lateness) passes its end.
///
/// # Load shedding
///
/// With a *high-watermark* configured ([`MicroBatcher::with_high_watermark`])
/// a batcher whose buffered-item count exceeds the limit widens its
/// coalescing window (doubling `window_ms`) and, when a compactor is
/// installed ([`MicroBatcher::with_compactor`]), merges equal-key items in
/// place. A lagging ingester thus trades window granularity for bounded
/// memory instead of growing its buffers without limit; the window snaps
/// back to its base width once the backlog fully drains.
pub struct MicroBatcher<T> {
    window_ms: i64,
    base_window_ms: i64,
    allowed_lateness_ms: i64,
    buckets: BTreeMap<i64, Vec<T>>,
    watermark: i64,
    late_drops: u64,
    high_watermark: usize,
    compactor: Option<Compactor<T>>,
    flush_listener: Option<FlushListener>,
    load_sheds: u64,
}

impl<T: std::fmt::Debug> std::fmt::Debug for MicroBatcher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher")
            .field("window_ms", &self.window_ms)
            .field("base_window_ms", &self.base_window_ms)
            .field("allowed_lateness_ms", &self.allowed_lateness_ms)
            .field("buckets", &self.buckets)
            .field("watermark", &self.watermark)
            .field("late_drops", &self.late_drops)
            .field("high_watermark", &self.high_watermark)
            .field("load_sheds", &self.load_sheds)
            .finish_non_exhaustive()
    }
}

impl<T> MicroBatcher<T> {
    /// Creates a batcher with `window_ms` windows (the paper's streaming
    /// mode uses 1000 ms) and no allowed lateness.
    pub fn new(window_ms: i64) -> MicroBatcher<T> {
        MicroBatcher::with_lateness(window_ms, 0)
    }

    /// Creates a batcher that tolerates out-of-order arrivals up to
    /// `allowed_lateness_ms` behind the watermark.
    pub fn with_lateness(window_ms: i64, allowed_lateness_ms: i64) -> MicroBatcher<T> {
        MicroBatcher {
            window_ms: window_ms.max(1),
            base_window_ms: window_ms.max(1),
            allowed_lateness_ms: allowed_lateness_ms.max(0),
            buckets: BTreeMap::new(),
            watermark: i64::MIN,
            late_drops: 0,
            high_watermark: 0,
            compactor: None,
            flush_listener: None,
            load_sheds: 0,
        }
    }

    /// Caps buffered items at `max_buffered` (0 disables): exceeding it
    /// triggers load shedding by window widening. Builder-style.
    pub fn with_high_watermark(mut self, max_buffered: usize) -> MicroBatcher<T> {
        self.high_watermark = max_buffered;
        self
    }

    /// Installs a compactor applied to each bucket after a widening pass;
    /// it should merge equal-key items (e.g. via [`coalesce`]) so shedding
    /// actually reduces the buffered count. Builder-style.
    pub fn with_compactor(
        mut self,
        compact: impl FnMut(Vec<T>) -> Vec<T> + Send + 'static,
    ) -> MicroBatcher<T> {
        self.compactor = Some(Box::new(compact));
        self
    }

    /// Installs a hook called with each window's start timestamp as it is
    /// emitted by [`MicroBatcher::drain_ready`] / [`MicroBatcher::drain_all`].
    /// Streaming consumers use this to invalidate caches that memoized the
    /// still-open window (the log-analytics ingester drops open-window
    /// result-cache entries here). Builder-style.
    pub fn with_flush_listener(
        mut self,
        listener: impl FnMut(i64) + Send + 'static,
    ) -> MicroBatcher<T> {
        self.flush_listener = Some(Box::new(listener));
        self
    }

    /// Advances the watermark without feeding an item. Used to seed a fresh
    /// batcher from a checkpointed watermark so that replayed records whose
    /// windows were already flushed are dropped as late rather than
    /// re-emitted as partial windows.
    pub fn advance_watermark(&mut self, ts_ms: i64) {
        self.watermark = self.watermark.max(ts_ms);
    }

    /// The current (possibly widened) coalescing window width.
    pub fn window_ms(&self) -> i64 {
        self.window_ms
    }

    /// How many widening passes load shedding has performed.
    pub fn load_sheds(&self) -> u64 {
        self.load_sheds
    }

    /// Window start for a timestamp.
    pub fn window_of(&self, ts_ms: i64) -> i64 {
        ts_ms.div_euclid(self.window_ms) * self.window_ms
    }

    /// Feeds one item; returns `false` when it was dropped as too late.
    pub fn feed(&mut self, ts_ms: i64, item: T) -> bool {
        let window = self.window_of(ts_ms);
        if self.watermark != i64::MIN
            && window + self.window_ms + self.allowed_lateness_ms <= self.watermark
        {
            self.late_drops += 1;
            return false;
        }
        self.watermark = self.watermark.max(ts_ms);
        self.buckets.entry(window).or_default().push(item);
        self.maybe_shed();
        true
    }

    /// Sheds load when buffered items exceed the high-watermark: first
    /// compacts buckets at the current width, then widens (doubling the
    /// window and re-bucketing) until the count is back under the limit,
    /// widening no longer helps, or the widening cap is hit.
    fn maybe_shed(&mut self) {
        if self.high_watermark == 0 || self.buffered() <= self.high_watermark {
            return;
        }
        self.compact_buckets();
        while self.buffered() > self.high_watermark
            && self.window_ms < self.base_window_ms.saturating_mul(1 << MAX_WIDENINGS)
        {
            let before = self.buffered();
            self.window_ms = self.window_ms.saturating_mul(2);
            self.load_sheds += 1;
            // Re-bucket: old window starts are multiples of the old width,
            // so `window_of` maps each old bucket wholly into its (unique)
            // containing wide bucket — no item ever splits across two.
            let old = std::mem::take(&mut self.buckets);
            for (w, items) in old {
                self.buckets
                    .entry(self.window_of(w))
                    .or_default()
                    .extend(items);
            }
            self.compact_buckets();
            if self.buffered() == before {
                // Nothing merged: all keys distinct, widening further only
                // coarsens output without freeing memory.
                break;
            }
        }
    }

    fn compact_buckets(&mut self) {
        if let Some(compact) = self.compactor.as_mut() {
            for bucket in self.buckets.values_mut() {
                *bucket = compact(std::mem::take(bucket));
            }
        }
    }

    /// Emits every window whose end (plus lateness) is at or before the
    /// current watermark, in window order.
    pub fn drain_ready(&mut self) -> Vec<(i64, Vec<T>)> {
        if self.watermark == i64::MIN {
            return Vec::new();
        }
        let limit = self.watermark - self.allowed_lateness_ms;
        let ready: Vec<i64> = self
            .buckets
            .keys()
            .take_while(|w| **w + self.window_ms <= limit)
            .copied()
            .collect();
        let out: Vec<(i64, Vec<T>)> = ready
            .into_iter()
            .map(|w| (w, self.buckets.remove(&w).expect("present")))
            .collect();
        self.notify_flushes(&out);
        self.maybe_narrow();
        out
    }

    /// Emits everything regardless of watermark (end of stream).
    pub fn drain_all(&mut self) -> Vec<(i64, Vec<T>)> {
        let out: Vec<(i64, Vec<T>)> = std::mem::take(&mut self.buckets).into_iter().collect();
        self.notify_flushes(&out);
        self.maybe_narrow();
        out
    }

    fn notify_flushes(&mut self, flushed: &[(i64, Vec<T>)]) {
        if let Some(listener) = self.flush_listener.as_mut() {
            for (window_start, _) in flushed {
                listener(*window_start);
            }
        }
    }

    /// Snaps a widened window back to its base width once the backlog has
    /// fully drained (buckets can't be re-split, so narrowing mid-backlog
    /// would misalign them).
    fn maybe_narrow(&mut self) {
        if self.buckets.is_empty() {
            self.window_ms = self.base_window_ms;
        }
    }

    /// Items dropped for arriving behind the watermark.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Items currently buffered.
    pub fn buffered(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

/// Coalesces a batch: items with equal keys merge into one via `merge`
/// (e.g. summing occurrence counts). Output is ordered by key.
pub fn coalesce<T, K: Eq + Hash + Ord>(
    batch: Vec<T>,
    key_of: impl Fn(&T) -> K,
    merge: impl Fn(&mut T, T),
) -> Vec<T> {
    let mut groups: BTreeMap<K, T> = BTreeMap::new();
    for item in batch {
        let key = key_of(&item);
        match groups.get_mut(&key) {
            None => {
                groups.insert(key, item);
            }
            Some(existing) => merge(existing, item),
        }
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ev {
        ts: i64,
        node: &'static str,
        count: u32,
    }

    #[test]
    fn windows_assign_by_event_time() {
        let b: MicroBatcher<()> = MicroBatcher::new(1000);
        assert_eq!(b.window_of(0), 0);
        assert_eq!(b.window_of(999), 0);
        assert_eq!(b.window_of(1000), 1000);
        assert_eq!(b.window_of(-1), -1000);
    }

    #[test]
    fn drain_ready_respects_watermark() {
        let mut b = MicroBatcher::new(1000);
        b.feed(100, "a");
        b.feed(900, "b");
        assert!(b.drain_ready().is_empty(), "window 0 still open");
        b.feed(1000, "c");
        let ready = b.drain_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0], (0, vec!["a", "b"]));
        assert_eq!(b.buffered(), 1);
    }

    #[test]
    fn out_of_order_within_open_window_is_kept() {
        let mut b = MicroBatcher::new(1000);
        b.feed(950, "late-but-ok");
        b.feed(100, "earlier");
        let mut all = b.drain_all();
        assert_eq!(all.len(), 1);
        all[0].1.sort();
        assert_eq!(all[0].1, vec!["earlier", "late-but-ok"]);
    }

    #[test]
    fn too_late_items_are_dropped_and_counted() {
        let mut b = MicroBatcher::new(1000);
        b.feed(2500, "advances watermark");
        assert!(!b.feed(100, "ancient"));
        assert_eq!(b.late_drops(), 1);
        // With lateness allowance the same item survives.
        let mut b = MicroBatcher::with_lateness(1000, 2000);
        b.feed(2500, "x");
        assert!(b.feed(100, "still ok"));
        assert_eq!(b.late_drops(), 0);
    }

    #[test]
    fn drain_all_flushes_everything_in_order() {
        let mut b = MicroBatcher::with_lateness(1000, 10_000);
        for ts in [5000, 1000, 3000] {
            b.feed(ts, ts);
        }
        let windows: Vec<i64> = b.drain_all().into_iter().map(|(w, _)| w).collect();
        assert_eq!(windows, vec![1000, 3000, 5000]);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn flush_listener_sees_each_emitted_window_start() {
        use std::sync::{Arc, Mutex};
        let flushed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&flushed);
        let mut b = MicroBatcher::with_lateness(1000, 0)
            .with_flush_listener(move |w| sink.lock().unwrap().push(w));
        b.feed(100, "a");
        b.feed(1100, "b");
        b.feed(2100, "c");
        b.drain_ready();
        assert_eq!(*flushed.lock().unwrap(), vec![0, 1000]);
        b.drain_all();
        assert_eq!(*flushed.lock().unwrap(), vec![0, 1000, 2000]);
    }

    #[test]
    fn coalesce_merges_same_second_same_node() {
        // The paper's rule: same type+location+second becomes one event.
        let batch = vec![
            Ev {
                ts: 1000,
                node: "c0-0c0s0n0",
                count: 1,
            },
            Ev {
                ts: 1000,
                node: "c0-0c0s0n0",
                count: 1,
            },
            Ev {
                ts: 1000,
                node: "c1-0c0s0n1",
                count: 1,
            },
            Ev {
                ts: 1001,
                node: "c0-0c0s0n0",
                count: 1,
            },
        ];
        let merged = coalesce(batch, |e| (e.ts, e.node), |a, b| a.count += b.count);
        assert_eq!(merged.len(), 3);
        let big = merged
            .iter()
            .find(|e| e.ts == 1000 && e.node == "c0-0c0s0n0")
            .unwrap();
        assert_eq!(big.count, 2);
    }

    #[test]
    fn coalesce_preserves_total_count() {
        let batch: Vec<Ev> = (0..100)
            .map(|i| Ev {
                ts: i % 7,
                node: "n",
                count: 1,
            })
            .collect();
        let merged = coalesce(batch, |e| e.ts, |a, b| a.count += b.count);
        assert_eq!(merged.iter().map(|e| e.count).sum::<u32>(), 100);
        assert_eq!(merged.len(), 7);
    }

    #[test]
    fn high_watermark_widens_and_compacts() {
        // 8 sources emitting every ms: without shedding, 100 ms of lag is
        // 800 buffered items. With hw=50 and a coalescing compactor the
        // batcher widens until same-source items merge.
        let mut b = MicroBatcher::with_lateness(10, 0)
            .with_high_watermark(50)
            .with_compactor(|bucket: Vec<Ev>| {
                coalesce(bucket, |e| e.node, |a, x| a.count += x.count)
            });
        let nodes = ["n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"];
        let mut fed = 0u32;
        for ts in 0..100 {
            for node in nodes {
                b.feed(ts, Ev { ts, node, count: 1 });
                fed += 1;
            }
        }
        assert!(b.load_sheds() > 0, "shedding must have triggered");
        assert!(b.window_ms() > 10, "window widened under pressure");
        assert!(
            b.buffered() <= 50 + nodes.len(),
            "memory bounded near the high-watermark, got {}",
            b.buffered()
        );
        // No counts lost to shedding: compaction merges, never drops.
        let total: u32 = b
            .drain_all()
            .iter()
            .flat_map(|(_, v)| v)
            .map(|e| e.count)
            .sum();
        assert_eq!(total, fed);
        // Backlog drained: window snaps back to base width.
        assert_eq!(b.window_ms(), 10);
    }

    #[test]
    fn widening_stops_when_compaction_cannot_help() {
        // All keys distinct: widening can't merge anything, so shedding
        // gives up at the cap instead of looping forever.
        let mut b = MicroBatcher::new(10)
            .with_high_watermark(4)
            .with_compactor(|bucket: Vec<i64>| bucket);
        for ts in 0..100 {
            b.feed(ts, ts);
        }
        assert_eq!(b.buffered(), 100, "distinct items are kept, not dropped");
        assert!(b.window_ms() <= 10 * 1024);
    }

    #[test]
    fn seeded_watermark_suppresses_replayed_windows() {
        let mut b = MicroBatcher::new(1000);
        b.advance_watermark(5000);
        // A record from an already-flushed window is late, not re-buffered.
        assert!(!b.feed(1500, "replayed"));
        assert_eq!(b.late_drops(), 1);
        // Fresh data at/after the watermark flows normally.
        assert!(b.feed(5200, "live"));
    }

    #[test]
    fn empty_batcher_behaves() {
        let mut b: MicroBatcher<()> = MicroBatcher::new(1000);
        assert!(b.drain_ready().is_empty());
        assert!(b.drain_all().is_empty());
        assert_eq!(b.buffered(), 0);
    }
}
