//! Micro-batch streaming with event-time windows and coalescing.
//!
//! The paper's real-time ingestion path sets "the time window of the Spark
//! streaming ... to one second" and coalesces "event occurrences of the
//! same type and same location ... into a single event if they are
//! timestamped the same". [`MicroBatcher`] implements the windowing;
//! [`coalesce`] implements the merge rule.

use std::collections::BTreeMap;
use std::hash::Hash;

/// Groups timestamped items into fixed event-time windows.
///
/// Items may arrive out of order; a window is emitted once the watermark
/// (largest timestamp seen, minus the allowed lateness) passes its end.
#[derive(Debug)]
pub struct MicroBatcher<T> {
    window_ms: i64,
    allowed_lateness_ms: i64,
    buckets: BTreeMap<i64, Vec<T>>,
    watermark: i64,
    late_drops: u64,
}

impl<T> MicroBatcher<T> {
    /// Creates a batcher with `window_ms` windows (the paper's streaming
    /// mode uses 1000 ms) and no allowed lateness.
    pub fn new(window_ms: i64) -> MicroBatcher<T> {
        MicroBatcher::with_lateness(window_ms, 0)
    }

    /// Creates a batcher that tolerates out-of-order arrivals up to
    /// `allowed_lateness_ms` behind the watermark.
    pub fn with_lateness(window_ms: i64, allowed_lateness_ms: i64) -> MicroBatcher<T> {
        MicroBatcher {
            window_ms: window_ms.max(1),
            allowed_lateness_ms: allowed_lateness_ms.max(0),
            buckets: BTreeMap::new(),
            watermark: i64::MIN,
            late_drops: 0,
        }
    }

    /// Window start for a timestamp.
    pub fn window_of(&self, ts_ms: i64) -> i64 {
        ts_ms.div_euclid(self.window_ms) * self.window_ms
    }

    /// Feeds one item; returns `false` when it was dropped as too late.
    pub fn feed(&mut self, ts_ms: i64, item: T) -> bool {
        let window = self.window_of(ts_ms);
        if self.watermark != i64::MIN
            && window + self.window_ms + self.allowed_lateness_ms <= self.watermark
        {
            self.late_drops += 1;
            return false;
        }
        self.watermark = self.watermark.max(ts_ms);
        self.buckets.entry(window).or_default().push(item);
        true
    }

    /// Emits every window whose end (plus lateness) is at or before the
    /// current watermark, in window order.
    pub fn drain_ready(&mut self) -> Vec<(i64, Vec<T>)> {
        if self.watermark == i64::MIN {
            return Vec::new();
        }
        let limit = self.watermark - self.allowed_lateness_ms;
        let ready: Vec<i64> = self
            .buckets
            .keys()
            .take_while(|w| **w + self.window_ms <= limit)
            .copied()
            .collect();
        ready
            .into_iter()
            .map(|w| (w, self.buckets.remove(&w).expect("present")))
            .collect()
    }

    /// Emits everything regardless of watermark (end of stream).
    pub fn drain_all(&mut self) -> Vec<(i64, Vec<T>)> {
        std::mem::take(&mut self.buckets).into_iter().collect()
    }

    /// Items dropped for arriving behind the watermark.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Items currently buffered.
    pub fn buffered(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

/// Coalesces a batch: items with equal keys merge into one via `merge`
/// (e.g. summing occurrence counts). Output is ordered by key.
pub fn coalesce<T, K: Eq + Hash + Ord>(
    batch: Vec<T>,
    key_of: impl Fn(&T) -> K,
    merge: impl Fn(&mut T, T),
) -> Vec<T> {
    let mut groups: BTreeMap<K, T> = BTreeMap::new();
    for item in batch {
        let key = key_of(&item);
        match groups.get_mut(&key) {
            None => {
                groups.insert(key, item);
            }
            Some(existing) => merge(existing, item),
        }
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ev {
        ts: i64,
        node: &'static str,
        count: u32,
    }

    #[test]
    fn windows_assign_by_event_time() {
        let b: MicroBatcher<()> = MicroBatcher::new(1000);
        assert_eq!(b.window_of(0), 0);
        assert_eq!(b.window_of(999), 0);
        assert_eq!(b.window_of(1000), 1000);
        assert_eq!(b.window_of(-1), -1000);
    }

    #[test]
    fn drain_ready_respects_watermark() {
        let mut b = MicroBatcher::new(1000);
        b.feed(100, "a");
        b.feed(900, "b");
        assert!(b.drain_ready().is_empty(), "window 0 still open");
        b.feed(1000, "c");
        let ready = b.drain_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0], (0, vec!["a", "b"]));
        assert_eq!(b.buffered(), 1);
    }

    #[test]
    fn out_of_order_within_open_window_is_kept() {
        let mut b = MicroBatcher::new(1000);
        b.feed(950, "late-but-ok");
        b.feed(100, "earlier");
        let mut all = b.drain_all();
        assert_eq!(all.len(), 1);
        all[0].1.sort();
        assert_eq!(all[0].1, vec!["earlier", "late-but-ok"]);
    }

    #[test]
    fn too_late_items_are_dropped_and_counted() {
        let mut b = MicroBatcher::new(1000);
        b.feed(2500, "advances watermark");
        assert!(!b.feed(100, "ancient"));
        assert_eq!(b.late_drops(), 1);
        // With lateness allowance the same item survives.
        let mut b = MicroBatcher::with_lateness(1000, 2000);
        b.feed(2500, "x");
        assert!(b.feed(100, "still ok"));
        assert_eq!(b.late_drops(), 0);
    }

    #[test]
    fn drain_all_flushes_everything_in_order() {
        let mut b = MicroBatcher::with_lateness(1000, 10_000);
        for ts in [5000, 1000, 3000] {
            b.feed(ts, ts);
        }
        let windows: Vec<i64> = b.drain_all().into_iter().map(|(w, _)| w).collect();
        assert_eq!(windows, vec![1000, 3000, 5000]);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn coalesce_merges_same_second_same_node() {
        // The paper's rule: same type+location+second becomes one event.
        let batch = vec![
            Ev {
                ts: 1000,
                node: "c0-0c0s0n0",
                count: 1,
            },
            Ev {
                ts: 1000,
                node: "c0-0c0s0n0",
                count: 1,
            },
            Ev {
                ts: 1000,
                node: "c1-0c0s0n1",
                count: 1,
            },
            Ev {
                ts: 1001,
                node: "c0-0c0s0n0",
                count: 1,
            },
        ];
        let merged = coalesce(batch, |e| (e.ts, e.node), |a, b| a.count += b.count);
        assert_eq!(merged.len(), 3);
        let big = merged
            .iter()
            .find(|e| e.ts == 1000 && e.node == "c0-0c0s0n0")
            .unwrap();
        assert_eq!(big.count, 2);
    }

    #[test]
    fn coalesce_preserves_total_count() {
        let batch: Vec<Ev> = (0..100)
            .map(|i| Ev {
                ts: i % 7,
                node: "n",
                count: 1,
            })
            .collect();
        let merged = coalesce(batch, |e| e.ts, |a, b| a.count += b.count);
        assert_eq!(merged.iter().map(|e| e.count).sum::<u32>(), 100);
        assert_eq!(merged.len(), 7);
    }

    #[test]
    fn empty_batcher_behaves() {
        let mut b: MicroBatcher<()> = MicroBatcher::new(1000);
        assert!(b.drain_ready().is_empty());
        assert!(b.drain_all().is_empty());
        assert_eq!(b.buffered(), 0);
    }
}
