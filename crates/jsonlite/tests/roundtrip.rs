//! Property tests: serialize → parse is the identity over generated values.

use jsonlite::{parse, to_string, to_string_pretty, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        // Finite numbers only: JSON cannot carry NaN/Inf.
        (-1e12f64..1e12f64).prop_map(Value::Number),
        "[ -~]{0,20}".prop_map(Value::from),
        // Exercise escapes and non-ASCII.
        prop_oneof![Just("\"quoted\"\n"), Just("日本\t"), Just("\\back\\")].prop_map(Value::from),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6)
                .prop_map(|m: BTreeMap<String, Value>| Value::Object(m)),
        ]
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(v in arb_value()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(&back, &v);
    }

    #[test]
    fn pretty_roundtrip(v in arb_value()) {
        let text = to_string_pretty(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(&back, &v);
    }

    #[test]
    fn parse_never_panics(s in "\\PC{0,60}") {
        let _ = parse(&s);
    }

    #[test]
    fn reparse_is_stable(v in arb_value()) {
        // parse(print(v)) printed again must be byte-identical: printing is
        // a canonical form.
        let once = to_string(&v);
        let twice = to_string(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
