//! The JSON value model.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Numbers are stored as `f64`, matching JavaScript semantics; integers up to
/// 2^53 round-trip exactly, which covers every counter, timestamp (ms), and
/// identifier the framework exchanges.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a JSON document. Convenience alias for [`crate::parse()`].
    pub fn parse(text: &str) -> Result<Value, crate::ParseError> {
        crate::parse(text)
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as `i64` if this is a `Number` with an integral
    /// value that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object map if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup that tolerates non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Array element lookup that tolerates non-arrays and short arrays.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Inserts a field, turning the value into an object if it was `null`.
    ///
    /// Panics if the value is neither `null` nor an object; mutating a
    /// scalar into an object is always a programming error in callers.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        if self.is_null() {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(o) => {
                o.insert(key.into(), value.into());
            }
            other => panic!("Value::insert on non-object {other:?}"),
        }
    }

    /// Removes and returns a field. `None` for non-objects and missing
    /// keys, so callers can strip per-request fields (e.g. `trace_id`)
    /// without shape checks.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        match self {
            Value::Object(o) => o.remove(key),
            _ => None,
        }
    }
}

/// Missing lookups index as `Null`, mirroring `serde_json` ergonomics.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.at(idx).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::write::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Value::from("hi");
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_f64(), None);
        assert_eq!(v.as_str(), Some("hi"));
        assert!(v.as_array().is_none());
        assert!(v.as_object().is_none());
    }

    #[test]
    fn as_i64_rejects_fractions_and_huge_values() {
        assert_eq!(Value::Number(3.0).as_i64(), Some(3));
        assert_eq!(Value::Number(3.5).as_i64(), None);
        assert_eq!(Value::Number(1e300).as_i64(), None);
        assert_eq!(Value::Number(-7.0).as_i64(), Some(-7));
    }

    #[test]
    fn index_missing_key_yields_null() {
        let v = Value::parse(r#"{"a":1}"#).unwrap();
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
        assert!(v[42].is_null());
    }

    #[test]
    fn insert_builds_object_from_null() {
        let mut v = Value::Null;
        v.insert("x", 1);
        v.insert("y", "z");
        assert_eq!(v.to_string(), r#"{"x":1,"y":"z"}"#);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn insert_on_scalar_panics() {
        let mut v = Value::from(3);
        v.insert("x", 1);
    }

    #[test]
    fn from_option_maps_none_to_null() {
        assert!(Value::from(None::<i64>).is_null());
        assert_eq!(Value::from(Some(2i64)), Value::Number(2.0));
    }
}
