//! JSON serialization (compact and pretty).

use crate::Value;
use std::fmt::Write as _;

/// Serializes a value in compact form (no extra whitespace).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes a value with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the interoperable fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json_array, json_object, parse};

    #[test]
    fn compact_roundtrip() {
        let src = r#"{"a":[1,2.5,null,true],"b":"x\ny"}"#;
        let v = parse(src).unwrap();
        assert_eq!(to_string(&v), src);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&Value::Number(42.0)), "42");
        assert_eq!(to_string(&Value::Number(-3.0)), "-3");
        assert_eq!(to_string(&Value::Number(2.5)), "2.5");
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        let v = Value::from("a\u{1}b");
        assert_eq!(to_string(&v), r#""a\u0001b""#);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn pretty_output_shape() {
        let v = json_object([("k", json_array([1i64, 2]))]);
        assert_eq!(to_string_pretty(&v), "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        let v = json_object([
            ("a", Value::Array(vec![])),
            ("b", Value::Object(Default::default())),
        ]);
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }
}
