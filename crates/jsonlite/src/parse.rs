//! Strict recursive-descent JSON parser (RFC 8259).

use crate::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure with byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Recursion guard: deep nesting is hostile input, not a real query.
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a low surrogate escape must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            char::from_u32(first).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str so the bytes are
                    // valid; recover the char from the original slice.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a single 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(s: &str) -> Value {
        parse(s).unwrap()
    }

    fn bad(s: &str) -> ParseError {
        parse(s).unwrap_err()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(ok("null"), Value::Null);
        assert_eq!(ok("true"), Value::Bool(true));
        assert_eq!(ok("false"), Value::Bool(false));
        assert_eq!(ok("0"), Value::Number(0.0));
        assert_eq!(ok("-12.5e2"), Value::Number(-1250.0));
        assert_eq!(ok(r#""hi""#), Value::from("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = ok(r#"{"a":[1,{"b":null},"x"],"c":{"d":true}}"#);
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"]["d"], Value::Bool(true));
    }

    #[test]
    fn whitespace_everywhere_is_tolerated() {
        let v = ok(" {\n\t\"a\" :\r [ 1 , 2 ] } ");
        assert_eq!(v["a"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            ok(r#""\"\\\/\b\f\n\r\t""#).as_str().unwrap(),
            "\"\\/\u{8}\u{c}\n\r\t"
        );
        assert_eq!(ok(r#""A""#).as_str().unwrap(), "A");
        assert_eq!(ok(r#""😀""#).as_str().unwrap(), "😀");
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(ok(r#""héllo – 日本""#).as_str().unwrap(), "héllo – 日本");
    }

    #[test]
    fn rejects_malformed_input() {
        bad("");
        bad("tru");
        bad("[1,]");
        bad("{\"a\":}");
        bad("{\"a\" 1}");
        bad("01");
        bad("1.");
        bad("1e");
        bad("\"unterminated");
        bad("\"bad \\q escape\"");
        bad("[1] trailing");
        bad(r#""\uD800""#); // lone surrogate
        bad("\u{1}".to_string().as_str());
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        bad("\"a\u{0}b\"");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let e = bad(&deep);
        assert!(e.message.contains("depth"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(ok("[]"), Value::Array(vec![]));
        assert_eq!(ok("{}"), Value::Object(Default::default()));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        assert_eq!(ok(r#"{"k":1,"k":2}"#)["k"], Value::Number(2.0));
    }

    #[test]
    fn error_reports_offset() {
        let e = bad("[1, x]");
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
