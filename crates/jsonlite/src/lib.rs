//! `jsonlite` — a small, dependency-free JSON value model, parser, and writer.
//!
//! The analytics server of the log-analytics framework speaks JSON between
//! the frontend and the query engine (the paper returns "query results ...
//! in JSON object format to avoid data format conversion at the frontend").
//! This crate provides the `Value` type plus strict RFC 8259 parsing and
//! serialization used throughout the framework.
//!
//! Objects preserve deterministic (sorted) key order by using a `BTreeMap`,
//! which keeps serialized payloads stable for tests and golden files.
//!
//! # Example
//! ```
//! use jsonlite::{Value, json_object};
//!
//! let v = Value::parse(r#"{"query":"heatmap","hours":[0,1,2]}"#).unwrap();
//! assert_eq!(v["query"].as_str(), Some("heatmap"));
//! assert_eq!(v["hours"][2].as_f64(), Some(2.0));
//!
//! let built = json_object([
//!     ("status", Value::from("ok")),
//!     ("count", Value::from(3)),
//! ]);
//! assert_eq!(built.to_string(), r#"{"count":3,"status":"ok"}"#);
//! ```

pub mod parse;
pub mod value;
pub mod write;

pub use parse::{parse, ParseError};
pub use value::Value;
pub use write::{to_string, to_string_pretty};

/// Builds a JSON object `Value` from an iterator of `(key, value)` pairs.
pub fn json_object<K, I>(pairs: I) -> Value
where
    K: Into<String>,
    I: IntoIterator<Item = (K, Value)>,
{
    Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Builds a JSON array `Value` from an iterator of values.
pub fn json_array<V, I>(items: I) -> Value
where
    V: Into<Value>,
    I: IntoIterator<Item = V>,
{
    Value::Array(items.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_sorts_keys() {
        let v = json_object([("b", Value::from(1)), ("a", Value::from(2))]);
        assert_eq!(v.to_string(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn array_builder_accepts_values() {
        let v = json_array([Value::from(1), Value::from("x")]);
        assert_eq!(v.to_string(), r#"[1,"x"]"#);
    }
}
