//! The system-wide Lustre storm (paper Fig 7, bottom): one object storage
//! target stops responding and "tens of thousands Lustre error messages"
//! flood in from "most of compute nodes and applications running therein"
//! within minutes.

use crate::events::Occurrence;
use crate::failure::sample_poisson;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::Rng;

/// Storm parameters.
#[derive(Debug, Clone, Copy)]
pub struct StormSpec {
    /// The OST that goes unresponsive (index into the fleet).
    pub ost: u16,
    /// Storm start, ms since epoch.
    pub start_ms: i64,
    /// Storm duration, ms ("lasted several minutes").
    pub duration_ms: i64,
    /// Fraction of compute nodes afflicted ("most of compute nodes").
    pub afflicted_fraction: f64,
    /// Mean error messages per afflicted node over the storm.
    pub mean_messages_per_node: f64,
}

impl Default for StormSpec {
    fn default() -> Self {
        StormSpec {
            ost: 0x41,
            start_ms: 0,
            duration_ms: 6 * 60_000,
            afflicted_fraction: 0.85,
            mean_messages_per_node: 4.0,
        }
    }
}

/// Generates the storm's ground-truth occurrences: `LUSTRE_ERR` events on
/// afflicted nodes, clustered into the storm window with a ramp-up peak.
pub fn generate_storm(topo: &Topology, spec: &StormSpec, rng: &mut StdRng) -> Vec<Occurrence> {
    let mut out = Vec::new();
    for node in 0..topo.node_count() {
        if !rng.gen_bool(spec.afflicted_fraction.clamp(0.0, 1.0)) {
            continue;
        }
        let n = sample_poisson(spec.mean_messages_per_node, rng);
        for _ in 0..n {
            // Bias toward the first half of the window: an initial burst of
            // timeouts, then retries tapering off.
            let u: f64 = rng.gen::<f64>();
            let frac = u * u;
            out.push(Occurrence {
                ts_ms: spec.start_ms + (frac * spec.duration_ms as f64) as i64,
                event_type: "LUSTRE_ERR",
                node,
                count: 1,
            });
        }
    }
    out.sort_by_key(|o| o.ts_ms);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::rng;

    #[test]
    fn storm_floods_most_nodes() {
        let topo = Topology::scaled(4, 2);
        let spec = StormSpec::default();
        let storm = generate_storm(&topo, &spec, &mut rng(1));
        let afflicted: std::collections::HashSet<usize> = storm.iter().map(|o| o.node).collect();
        let frac = afflicted.len() as f64 / topo.node_count() as f64;
        assert!(frac > 0.7, "only {frac} of nodes afflicted");
        // Volume matches "tens of thousands" scaled to topology size.
        assert!(storm.len() > topo.node_count() * 2, "{}", storm.len());
    }

    #[test]
    fn storm_fits_the_window_and_peaks_early() {
        let topo = Topology::scaled(2, 2);
        let spec = StormSpec {
            start_ms: 1_000_000,
            duration_ms: 300_000,
            ..Default::default()
        };
        let storm = generate_storm(&topo, &spec, &mut rng(2));
        assert!(storm
            .iter()
            .all(|o| o.ts_ms >= 1_000_000 && o.ts_ms < 1_300_000));
        let first_half = storm.iter().filter(|o| o.ts_ms < 1_150_000).count();
        assert!(first_half * 2 > storm.len(), "ramp-up peak expected");
    }

    #[test]
    fn zero_fraction_is_silent() {
        let topo = Topology::scaled(1, 1);
        let spec = StormSpec {
            afflicted_fraction: 0.0,
            ..Default::default()
        };
        assert!(generate_storm(&topo, &spec, &mut rng(3)).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let topo = Topology::scaled(2, 2);
        let spec = StormSpec::default();
        assert_eq!(
            generate_storm(&topo, &spec, &mut rng(7)),
            generate_storm(&topo, &spec, &mut rng(7))
        );
    }
}
