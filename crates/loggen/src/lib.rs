//! `loggen` — a synthetic Titan: topology, failure models, raw log text,
//! and application traces.
//!
//! The paper analyses console/application/network logs of ORNL's Titan
//! (18,688 compute nodes, 200 cabinets in a 25×8 floor grid, Cray XK7).
//! Those logs are not publicly available, so this crate generates
//! statistically structured substitutes that exercise the same pipeline:
//!
//! * [`topology`] — the full cabinet/cage/blade/node hierarchy with Cray
//!   `cX-Y cC sS nN` naming and Gemini router pairs.
//! * [`events`] — the catalog of event types the paper's data model
//!   monitors (MCE, DRAM ECC, GPU DBE/off-the-bus, Lustre, DVS, network,
//!   kernel panics, application aborts, ...).
//! * [`failure`] — Poisson background rates, spatially correlated cabinet
//!   bursts, and cascades, all deterministic under a seed.
//! * [`console`] / [`lustre`] — realistic raw log lines per event type
//!   (the regex-ETL input), including the hex codes and cryptic fragments
//!   the paper complains about.
//! * [`jobs`] — user application runs with node allocations and exit
//!   statuses.
//! * [`storm`] — the system-wide Lustre storm of Fig 7 (an unresponsive
//!   OST flooding every client node with errors).
//! * [`trace`] — scenario assembly: merge everything into one time-sorted
//!   raw log with ground truth attached.
//!
//! # Example
//! ```
//! use loggen::topology::Topology;
//! use loggen::trace::{Scenario, ScenarioConfig};
//!
//! let topo = Topology::scaled(4, 2); // small 4×2-cabinet system for tests
//! let scenario = Scenario::generate(&topo, &ScenarioConfig::quiet_day(7), 42);
//! assert!(!scenario.lines.is_empty());
//! // Every raw line is attributable to a ground-truth event or job.
//! ```

pub mod console;
pub mod events;
pub mod failure;
pub mod jobs;
pub mod lustre;
pub mod storm;
pub mod topology;
pub mod trace;

pub use events::{EventClass, EventType, EVENT_CATALOG};
pub use topology::{NodeInfo, Topology};
