//! Scenario assembly: background + bursts + storms + jobs, rendered into
//! one time-sorted raw log with ground truth attached.

use crate::console::render_console;
use crate::events::{event_type, EventClass, Occurrence};
use crate::failure::{background, cabinet_burst, rng};
use crate::jobs::{generate_jobs, render_end, render_start, JobGenConfig, JobRecord};
use crate::lustre::{render_error, render_evict};
use crate::storm::{generate_storm, StormSpec};
use crate::topology::Topology;
use rand::rngs::StdRng;

/// Which log stream a line belongs to (the paper ingests "console,
/// application and network logs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Facility {
    /// Node console stream.
    Console,
    /// Application/scheduler (ALPS) stream.
    App,
    /// Network (HSN) stream.
    Net,
}

impl Facility {
    /// Stream label as it appears in the raw line.
    pub fn label(&self) -> &'static str {
        match self {
            Facility::Console => "console",
            Facility::App => "app",
            Facility::Net => "netwatch",
        }
    }
}

/// One raw log line before ETL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawLine {
    /// Event time, ms since epoch.
    pub ts_ms: i64,
    /// Source stream.
    pub facility: Facility,
    /// Source component (node cname, or a service name for app/net lines).
    pub source: String,
    /// Message text.
    pub text: String,
}

impl RawLine {
    /// Serializes to the on-the-wire format the ETL parses:
    /// `<ts_ms> <facility> <source> <text>`.
    pub fn render(&self) -> String {
        format!(
            "{} {} {} {}",
            self.ts_ms,
            self.facility.label(),
            self.source,
            self.text
        )
    }
}

/// A spatially concentrated burst to inject.
#[derive(Debug, Clone, Copy)]
pub struct BurstSpec {
    /// Target cabinet.
    pub cabinet: usize,
    /// Event type name from the catalog.
    pub event_type: &'static str,
    /// Start, ms since epoch.
    pub start_ms: i64,
    /// Window length.
    pub duration_ms: i64,
    /// Number of occurrences.
    pub events: usize,
}

/// Everything a scenario needs.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario start, ms since epoch.
    pub start_ms: i64,
    /// Scenario length.
    pub duration_ms: i64,
    /// Multiplier on catalog background rates.
    pub rate_scale: f64,
    /// Injected cabinet bursts.
    pub bursts: Vec<BurstSpec>,
    /// Optional system-wide Lustre storm.
    pub storm: Option<StormSpec>,
    /// Job-trace parameters.
    pub jobs: JobGenConfig,
}

impl ScenarioConfig {
    /// A quiet day: background rates only.
    pub fn quiet_day(hours: i64) -> ScenarioConfig {
        ScenarioConfig {
            start_ms: 1_500_000_000_000, // 2017-07-14, the paper's era
            duration_ms: hours * 3_600_000,
            rate_scale: 1.0,
            bursts: Vec::new(),
            storm: None,
            jobs: JobGenConfig::default(),
        }
    }

    /// Fig 5's shape: background plus an MCE hotspot in one cabinet.
    pub fn mce_hotspot(hours: i64, cabinet: usize) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::quiet_day(hours);
        cfg.bursts.push(BurstSpec {
            cabinet,
            event_type: "MCE",
            start_ms: cfg.start_ms + cfg.duration_ms / 3,
            duration_ms: (cfg.duration_ms / 3).max(1),
            events: 400,
        });
        cfg
    }

    /// Fig 7's shape: background plus a mid-day Lustre storm.
    pub fn storm_day(hours: i64, ost: u16) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::quiet_day(hours);
        cfg.storm = Some(StormSpec {
            ost,
            start_ms: cfg.start_ms + cfg.duration_ms / 2,
            ..Default::default()
        });
        cfg
    }
}

/// A generated scenario: raw lines plus the ground truth behind them.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Time-sorted raw log lines (ETL input).
    pub lines: Vec<RawLine>,
    /// Ground-truth occurrences, time-sorted (for validating the pipeline).
    pub truth: Vec<Occurrence>,
    /// Ground-truth job trace.
    pub jobs: Vec<JobRecord>,
}

impl Scenario {
    /// Generates a scenario deterministically from a seed.
    pub fn generate(topo: &Topology, cfg: &ScenarioConfig, seed: u64) -> Scenario {
        let mut r = rng(seed);
        let mut truth = background(topo, cfg.start_ms, cfg.duration_ms, cfg.rate_scale, &mut r);
        for burst in &cfg.bursts {
            truth.extend(cabinet_burst(
                topo,
                burst.cabinet,
                burst.event_type,
                burst.start_ms,
                burst.duration_ms,
                burst.events,
                &mut r,
            ));
        }
        // Storm occurrences are tracked separately while rendering so their
        // Lustre lines all blame the same OST.
        let storm = cfg
            .storm
            .as_ref()
            .map(|spec| (spec.ost, generate_storm(topo, spec, &mut r)));
        let jobs = generate_jobs(topo, &cfg.jobs, cfg.start_ms, cfg.duration_ms, &mut r);

        let mut lines: Vec<RawLine> = Vec::with_capacity(
            truth.len() + jobs.len() * 2 + storm.as_ref().map_or(0, |(_, s)| s.len()),
        );
        for occ in &truth {
            lines.push(render_occurrence(topo, occ, None, &mut r));
        }
        if let Some((ost, storm_occs)) = &storm {
            for occ in storm_occs {
                lines.push(render_occurrence(topo, occ, Some(*ost), &mut r));
            }
            truth.extend(storm_occs.iter().cloned());
        }
        for job in &jobs {
            lines.push(RawLine {
                ts_ms: job.start_ms,
                facility: Facility::App,
                source: "alps".to_owned(),
                text: render_start(job),
            });
            lines.push(RawLine {
                ts_ms: job.end_ms,
                facility: Facility::App,
                source: "alps".to_owned(),
                text: render_end(job),
            });
        }
        lines.sort_by(|a, b| a.ts_ms.cmp(&b.ts_ms).then_with(|| a.source.cmp(&b.source)));
        truth.sort_by_key(|o| o.ts_ms);
        Scenario { lines, truth, jobs }
    }

    /// Renders the scenario as one newline-terminated byte corpus — the
    /// on-disk shape the chunk-parallel batch ETL ingests (each line is
    /// [`RawLine::render`] followed by `\n`).
    pub fn render_corpus(&self) -> Vec<u8> {
        let mut corpus = Vec::new();
        for line in &self.lines {
            corpus.extend_from_slice(line.render().as_bytes());
            corpus.push(b'\n');
        }
        corpus
    }
}

fn render_occurrence(
    topo: &Topology,
    occ: &Occurrence,
    forced_ost: Option<u16>,
    r: &mut StdRng,
) -> RawLine {
    let cname = topo.node(occ.node).cname;
    let etype = event_type(occ.event_type).expect("catalog type");
    let (facility, text) = match (etype.class, occ.event_type) {
        (EventClass::Lustre, "LUSTRE_EVICT") => (Facility::Console, render_evict(occ, r)),
        (EventClass::Lustre, _) => (Facility::Console, render_error(occ, forced_ost, r)),
        (EventClass::Network, _) => (Facility::Net, render_console(occ, r)),
        (EventClass::Application, _) => (Facility::App, render_console(occ, r)),
        _ => (Facility::Console, render_console(occ, r)),
    };
    RawLine {
        ts_ms: occ.ts_ms,
        facility,
        source: cname,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_day_produces_sorted_attributable_lines() {
        let topo = Topology::scaled(2, 2);
        let s = Scenario::generate(&topo, &ScenarioConfig::quiet_day(12), 42);
        assert!(!s.lines.is_empty());
        assert!(s.lines.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        // Line volume = occurrences + 2 log lines per job.
        assert_eq!(s.lines.len(), s.truth.len() + 2 * s.jobs.len());
    }

    #[test]
    fn generation_is_reproducible() {
        let topo = Topology::scaled(2, 2);
        let cfg = ScenarioConfig::quiet_day(6);
        let a = Scenario::generate(&topo, &cfg, 9);
        let b = Scenario::generate(&topo, &cfg, 9);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn storm_day_floods_with_forced_ost() {
        let topo = Topology::scaled(2, 2);
        let s = Scenario::generate(&topo, &ScenarioConfig::storm_day(2, 0x41), 1);
        let storm_lines = s
            .lines
            .iter()
            .filter(|l| l.text.contains("OST0041"))
            .count();
        assert!(storm_lines > 100, "{storm_lines}");
    }

    #[test]
    fn hotspot_cabinet_dominates_mce() {
        let topo = Topology::scaled(3, 3);
        let s = Scenario::generate(&topo, &ScenarioConfig::mce_hotspot(6, 4), 5);
        let mce: Vec<&Occurrence> = s.truth.iter().filter(|o| o.event_type == "MCE").collect();
        let in_hot = mce
            .iter()
            .filter(|o| o.node / crate::topology::NODES_PER_CABINET == 4)
            .count();
        assert!(in_hot * 2 > mce.len(), "{in_hot}/{}", mce.len());
    }

    #[test]
    fn raw_line_render_format() {
        let l = RawLine {
            ts_ms: 1_500_000_000_123,
            facility: Facility::Console,
            source: "c0-0c0s0n0".to_owned(),
            text: "Machine Check Exception: bank 1".to_owned(),
        };
        assert_eq!(
            l.render(),
            "1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 1"
        );
    }

    #[test]
    fn facilities_route_by_class() {
        let topo = Topology::scaled(2, 2);
        let s = Scenario::generate(
            &topo,
            &ScenarioConfig {
                rate_scale: 30.0,
                ..ScenarioConfig::quiet_day(6)
            },
            3,
        );
        let facs: std::collections::HashSet<Facility> =
            s.lines.iter().map(|l| l.facility).collect();
        assert!(facs.contains(&Facility::Console));
        assert!(facs.contains(&Facility::App));
        assert!(facs.contains(&Facility::Net));
    }
}
