//! Lustre message rendering: client errors, evictions, server-side noise.
//!
//! The paper singles Lustre out: messages mix "texts, hexadecimal numbers,
//! or special characters", and identifying a dead OST required word-count
//! analytics over tens of thousands of lines (Fig 7, bottom).

use crate::events::Occurrence;
use rand::rngs::StdRng;
use rand::Rng;

/// The filesystem name used in message templates (Titan's scratch
/// filesystem was `atlas`).
pub const FSNAME: &str = "atlas1";

/// Lustre RPC operations that show up in failure lines.
pub const OPERATIONS: &[&str] = &[
    "ost_read",
    "ost_write",
    "ost_connect",
    "ost_statfs",
    "ldlm_enqueue",
    "mds_getattr",
    "obd_ping",
];

/// Errno values Lustre reports (negative in messages).
pub const ERRNOS: &[i32] = &[-110, -107, -5, -30, -11, -4];

/// Renders a Lustre client error line. `forced_ost` pins the target OST —
/// the storm scenario uses it so word counts converge on one server.
pub fn render_error(_o: &Occurrence, forced_ost: Option<u16>, rng: &mut StdRng) -> String {
    let ost = forced_ost.unwrap_or_else(|| rng.gen_range(0..1008));
    let op = OPERATIONS[rng.gen_range(0..OPERATIONS.len())];
    let errno = ERRNOS[rng.gen_range(0..ERRNOS.len())];
    let nid = format!(
        "10.36.{}.{}@o2ib",
        rng.gen_range(224..240),
        rng.gen_range(1..255)
    );
    match rng.gen_range(0..3) {
        0 => format!(
            "LustreError: 11-0: {FSNAME}-OST{ost:04x}-osc-ffff{:012x}: Communicating with {nid}, operation {op} failed with {errno}",
            rng.gen::<u64>() & 0xffff_ffff_ffff,
        ),
        1 => format!(
            "LustreError: {}:{}:({}.c:{}:{}()) {FSNAME}-OST{ost:04x}: {op} RPC to {nid} timed out (limit {} s)",
            rng.gen_range(1000..32000),
            rng.gen_range(0..100),
            ["client", "import", "niobuf", "events"][rng.gen_range(0..4usize)],
            rng.gen_range(100..3000),
            ["ptlrpc_expire_one_request", "request_out_callback", "osc_build_rpc"][rng.gen_range(0..3usize)],
            [7, 27, 100][rng.gen_range(0..3usize)],
        ),
        _ => format!(
            "Lustre: {FSNAME}-OST{ost:04x}-osc-ffff{:012x}: Connection to {FSNAME}-OST{ost:04x} (at {nid}) was lost; in progress operations using this service will wait for recovery to complete",
            rng.gen::<u64>() & 0xffff_ffff_ffff,
        ),
    }
}

/// Renders an eviction / reconnect line.
pub fn render_evict(_o: &Occurrence, rng: &mut StdRng) -> String {
    let ost = rng.gen_range(0..1008u16);
    if rng.gen_bool(0.5) {
        format!(
            "LustreError: 167-0: {FSNAME}-MDT0000-mdc-ffff{:012x}: This client was evicted by {FSNAME}-MDT0000; in progress operations using this service will fail.",
            rng.gen::<u64>() & 0xffff_ffff_ffff,
        )
    } else {
        format!(
            "Lustre: {FSNAME}-OST{ost:04x}-osc-ffff{:012x}: Connection restored to {FSNAME}-OST{ost:04x} (at 10.36.{}.{}@o2ib)",
            rng.gen::<u64>() & 0xffff_ffff_ffff,
            rng.gen_range(224..240),
            rng.gen_range(1..255),
        )
    }
}

/// Formats an OST name the way messages carry it (`OST0041`-style).
pub fn ost_label(ost: u16) -> String {
    format!("OST{ost:04x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::rng;

    fn occ() -> Occurrence {
        Occurrence {
            ts_ms: 0,
            event_type: "LUSTRE_ERR",
            node: 7,
            count: 1,
        }
    }

    #[test]
    fn error_lines_mention_filesystem_and_target() {
        let mut r = rng(1);
        for _ in 0..50 {
            let line = render_error(&occ(), None, &mut r);
            assert!(line.contains(FSNAME), "{line}");
            assert!(line.contains("OST"), "{line}");
        }
    }

    #[test]
    fn forced_ost_pins_every_line() {
        let mut r = rng(2);
        let label = ost_label(0x41);
        for _ in 0..50 {
            let line = render_error(&occ(), Some(0x41), &mut r);
            assert!(line.contains(&label), "{line}");
        }
    }

    #[test]
    fn unforced_lines_spread_over_osts() {
        let mut r = rng(3);
        let distinct: std::collections::HashSet<String> = (0..100)
            .map(|_| {
                let line = render_error(&occ(), None, &mut r);
                let at = line.find("OST").unwrap();
                line[at..at + 7].to_owned()
            })
            .collect();
        assert!(distinct.len() > 50, "{}", distinct.len());
    }

    #[test]
    fn evict_lines_render() {
        let mut r = rng(4);
        let mut saw_evict = false;
        let mut saw_restore = false;
        for _ in 0..50 {
            let line = render_evict(&occ(), &mut r);
            saw_evict |= line.contains("evicted");
            saw_restore |= line.contains("restored");
        }
        assert!(saw_evict && saw_restore);
    }

    #[test]
    fn ost_label_is_hex_padded() {
        assert_eq!(ost_label(0x41), "OST0041");
        assert_eq!(ost_label(1007), "OST03ef");
    }
}
