//! The event-type catalog the framework monitors.
//!
//! The paper's data model captures "machine check exceptions, memory
//! errors, GPU failures, GPU memory errors, Lustre file system errors,
//! data virtualization service errors, network errors, application aborts,
//! kernel panics, etc."

/// Which subsystem produced an event (drives log facility and templates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// CPU machine-check and cache errors.
    Cpu,
    /// DRAM errors.
    Memory,
    /// GPU board and GPU memory errors.
    Gpu,
    /// Lustre filesystem messages.
    Lustre,
    /// Cray DVS (data virtualization service).
    Dvs,
    /// Gemini interconnect.
    Network,
    /// Kernel-level failures.
    Kernel,
    /// User application events (from job logs).
    Application,
}

/// Severity as recorded in `eventtypes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational.
    Info,
    /// Recovered or correctable.
    Warning,
    /// Uncorrectable error.
    Error,
    /// Component or node failure.
    Fatal,
}

/// One monitored event type.
#[derive(Debug, Clone, PartialEq)]
pub struct EventType {
    /// Stable identifier (also the `type` partition-key value).
    pub name: &'static str,
    /// Producing subsystem.
    pub class: EventClass,
    /// Severity class.
    pub severity: Severity,
    /// Human description for the `eventtypes` table.
    pub description: &'static str,
    /// Baseline occurrence rate per node-hour for background generation.
    /// Calibrated to produce Titan-plausible volumes (order of magnitude).
    pub base_rate_per_node_hour: f64,
}

/// Every event type the synthetic Titan can emit.
pub const EVENT_CATALOG: &[EventType] = &[
    EventType {
        name: "MCE",
        class: EventClass::Cpu,
        severity: Severity::Error,
        description: "Machine check exception reported by an Opteron core",
        base_rate_per_node_hour: 0.002,
    },
    EventType {
        name: "MEM_ECC",
        class: EventClass::Memory,
        severity: Severity::Warning,
        description: "Correctable DDR3 ECC error",
        base_rate_per_node_hour: 0.01,
    },
    EventType {
        name: "MEM_UE",
        class: EventClass::Memory,
        severity: Severity::Error,
        description: "Uncorrectable DDR3 memory error",
        base_rate_per_node_hour: 0.0004,
    },
    EventType {
        name: "GPU_DBE",
        class: EventClass::Gpu,
        severity: Severity::Error,
        description: "K20X double-bit ECC error (Xid 48)",
        base_rate_per_node_hour: 0.0008,
    },
    EventType {
        name: "GPU_OFF_BUS",
        class: EventClass::Gpu,
        severity: Severity::Fatal,
        description: "GPU has fallen off the bus (Xid 79)",
        base_rate_per_node_hour: 0.0002,
    },
    EventType {
        name: "GPU_SXM_PWR",
        class: EventClass::Gpu,
        severity: Severity::Warning,
        description: "GPU power/thermal excursion",
        base_rate_per_node_hour: 0.001,
    },
    EventType {
        name: "LUSTRE_ERR",
        class: EventClass::Lustre,
        severity: Severity::Error,
        description: "Lustre client/server error (LustreError console line)",
        base_rate_per_node_hour: 0.02,
    },
    EventType {
        name: "LUSTRE_EVICT",
        class: EventClass::Lustre,
        severity: Severity::Warning,
        description: "Lustre client eviction / reconnect cycle",
        base_rate_per_node_hour: 0.004,
    },
    EventType {
        name: "DVS_ERR",
        class: EventClass::Dvs,
        severity: Severity::Error,
        description: "DVS service error",
        base_rate_per_node_hour: 0.003,
    },
    EventType {
        name: "NET_LINK",
        class: EventClass::Network,
        severity: Severity::Error,
        description: "Gemini HSN link failure / failover",
        base_rate_per_node_hour: 0.0006,
    },
    EventType {
        name: "NET_THROTTLE",
        class: EventClass::Network,
        severity: Severity::Warning,
        description: "Gemini congestion throttle engaged",
        base_rate_per_node_hour: 0.002,
    },
    EventType {
        name: "KERNEL_PANIC",
        class: EventClass::Kernel,
        severity: Severity::Fatal,
        description: "Kernel panic / node down",
        base_rate_per_node_hour: 0.0001,
    },
    EventType {
        name: "APP_ABORT",
        class: EventClass::Application,
        severity: Severity::Error,
        description: "User application aborted (non-zero exit)",
        base_rate_per_node_hour: 0.0,
    },
];

/// Looks an event type up by name.
pub fn event_type(name: &str) -> Option<&'static EventType> {
    EVENT_CATALOG.iter().find(|t| t.name == name)
}

/// One concrete occurrence (the generator's ground truth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    /// Milliseconds since epoch.
    pub ts_ms: i64,
    /// Catalog name.
    pub event_type: &'static str,
    /// Dense node index of the source.
    pub node: usize,
    /// Occurrence count (coalesced multiplicity).
    pub count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for t in EVENT_CATALOG {
            assert!(names.insert(t.name), "duplicate {}", t.name);
        }
        assert!(EVENT_CATALOG.len() >= 12);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(event_type("MCE").unwrap().class, EventClass::Cpu);
        assert_eq!(event_type("GPU_DBE").unwrap().severity, Severity::Error);
        assert!(event_type("NOPE").is_none());
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert!(Severity::Error < Severity::Fatal);
    }

    #[test]
    fn rates_are_sane() {
        for t in EVENT_CATALOG {
            assert!(t.base_rate_per_node_hour >= 0.0, "{}", t.name);
            assert!(t.base_rate_per_node_hour < 1.0, "{}", t.name);
        }
        // Lustre noise dominates background volume, as on real systems.
        let lustre = event_type("LUSTRE_ERR").unwrap().base_rate_per_node_hour;
        let panic = event_type("KERNEL_PANIC").unwrap().base_rate_per_node_hour;
        assert!(lustre > 50.0 * panic);
    }
}
