//! Application-run (job) traces: who ran what, where, and how it ended.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::Rng;

/// HPC application names typical of the Titan workload mix.
pub const APPLICATIONS: &[&str] = &[
    "VASP", "LAMMPS", "GROMACS", "NAMD", "S3D", "CAM-SE", "XGC", "CHIMERA", "DENOVO", "QMCPACK",
    "LSMS", "DCA++",
];

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitStatus {
    /// Exit code 0.
    Success,
    /// Non-zero exit (the code is recorded).
    Failed(i32),
    /// Killed at the walltime limit.
    Walltime,
}

impl ExitStatus {
    /// Numeric exit code as the app log reports it.
    pub fn code(&self) -> i32 {
        match self {
            ExitStatus::Success => 0,
            ExitStatus::Failed(c) => *c,
            ExitStatus::Walltime => -9,
        }
    }
}

/// One application run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// ALPS-style application id.
    pub apid: u64,
    /// Owning user (e.g. `usr0142`).
    pub user: String,
    /// Application name.
    pub app: String,
    /// Start, ms since epoch.
    pub start_ms: i64,
    /// End, ms since epoch.
    pub end_ms: i64,
    /// Allocated nodes: contiguous dense-index range `[node_first, node_last]`.
    pub node_first: usize,
    /// Last allocated node (inclusive).
    pub node_last: usize,
    /// Outcome.
    pub exit: ExitStatus,
}

impl JobRecord {
    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.node_last - self.node_first + 1
    }

    /// Iterates allocated node indices.
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        self.node_first..=self.node_last
    }

    /// Whether the job was running at `ts_ms`.
    pub fn running_at(&self, ts_ms: i64) -> bool {
        self.start_ms <= ts_ms && ts_ms < self.end_ms
    }
}

/// Job-trace generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct JobGenConfig {
    /// Mean job arrivals per hour.
    pub jobs_per_hour: f64,
    /// Mean job duration in minutes (exponential).
    pub mean_duration_min: f64,
    /// Fraction of jobs that fail with a signal/abort code.
    pub failure_fraction: f64,
}

impl Default for JobGenConfig {
    fn default() -> Self {
        JobGenConfig {
            jobs_per_hour: 40.0,
            mean_duration_min: 90.0,
            failure_fraction: 0.12,
        }
    }
}

/// Generates a job trace over `[start_ms, start_ms + duration_ms)`.
/// Allocations are contiguous node ranges (power-of-two-ish sizes), the
/// dominant pattern on a torus machine with a contiguous allocator.
pub fn generate_jobs(
    topo: &Topology,
    cfg: &JobGenConfig,
    start_ms: i64,
    duration_ms: i64,
    rng: &mut StdRng,
) -> Vec<JobRecord> {
    let hours = duration_ms as f64 / 3_600_000.0;
    let n = crate::failure::sample_poisson(cfg.jobs_per_hour * hours, rng);
    let max_size_log2 = (topo.node_count() as f64).log2().floor() as u32;
    let mut jobs = Vec::with_capacity(n);
    for i in 0..n {
        let size_log2 = rng.gen_range(0..=max_size_log2.min(12));
        let size = (1usize << size_log2).min(topo.node_count());
        let first = rng.gen_range(0..=(topo.node_count() - size));
        let start = start_ms + rng.gen_range(0..duration_ms.max(1));
        let dur_ms = (-(rng.gen::<f64>().max(1e-9).ln()) * cfg.mean_duration_min * 60_000.0)
            .clamp(60_000.0, 24.0 * 3_600_000.0) as i64;
        let exit = {
            let roll: f64 = rng.gen();
            if roll < cfg.failure_fraction {
                ExitStatus::Failed([134, 139, 137, 1][rng.gen_range(0..4usize)])
            } else if roll < cfg.failure_fraction + 0.05 {
                ExitStatus::Walltime
            } else {
                ExitStatus::Success
            }
        };
        jobs.push(JobRecord {
            apid: 1_000_000 + i as u64,
            user: format!("usr{:04}", rng.gen_range(1..400)),
            app: APPLICATIONS[rng.gen_range(0..APPLICATIONS.len())].to_owned(),
            start_ms: start,
            end_ms: start + dur_ms,
            node_first: first,
            node_last: first + size - 1,
            exit,
        });
    }
    jobs.sort_by_key(|j| j.start_ms);
    jobs
}

/// The app-log line emitted at job start.
pub fn render_start(job: &JobRecord) -> String {
    format!(
        "apid {} start user={} app={} nodes={}-{} width={}",
        job.apid,
        job.user,
        job.app,
        job.node_first,
        job.node_last,
        job.node_count()
    )
}

/// The app-log line emitted at job end.
pub fn render_end(job: &JobRecord) -> String {
    format!(
        "apid {} end exit={} runtime_s={}",
        job.apid,
        job.exit.code(),
        (job.end_ms - job.start_ms) / 1000
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::rng;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let topo = Topology::scaled(4, 2);
        let cfg = JobGenConfig::default();
        let a = generate_jobs(&topo, &cfg, 0, 24 * 3_600_000, &mut rng(1));
        let b = generate_jobs(&topo, &cfg, 0, 24 * 3_600_000, &mut rng(1));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
    }

    #[test]
    fn allocations_fit_the_machine() {
        let topo = Topology::scaled(2, 2);
        let jobs = generate_jobs(
            &topo,
            &JobGenConfig::default(),
            0,
            48 * 3_600_000,
            &mut rng(2),
        );
        for j in &jobs {
            assert!(j.node_last < topo.node_count(), "{j:?}");
            assert!(j.node_count().is_power_of_two());
            assert!(j.end_ms > j.start_ms);
        }
    }

    #[test]
    fn exit_mix_has_failures_and_successes() {
        let topo = Topology::scaled(4, 4);
        let jobs = generate_jobs(
            &topo,
            &JobGenConfig {
                jobs_per_hour: 500.0,
                ..Default::default()
            },
            0,
            24 * 3_600_000,
            &mut rng(3),
        );
        let failed = jobs
            .iter()
            .filter(|j| matches!(j.exit, ExitStatus::Failed(_)))
            .count();
        let ok = jobs
            .iter()
            .filter(|j| j.exit == ExitStatus::Success)
            .count();
        assert!(failed > 0);
        assert!(ok > failed * 3);
    }

    #[test]
    fn running_at_boundaries() {
        let j = JobRecord {
            apid: 1,
            user: "u".into(),
            app: "VASP".into(),
            start_ms: 100,
            end_ms: 200,
            node_first: 0,
            node_last: 3,
            exit: ExitStatus::Success,
        };
        assert!(j.running_at(100));
        assert!(j.running_at(199));
        assert!(!j.running_at(200));
        assert!(!j.running_at(99));
        assert_eq!(j.node_count(), 4);
    }

    #[test]
    fn log_lines_carry_the_fields() {
        let j = JobRecord {
            apid: 1000001,
            user: "usr0042".into(),
            app: "LAMMPS".into(),
            start_ms: 0,
            end_ms: 3_600_000,
            node_first: 128,
            node_last: 255,
            exit: ExitStatus::Failed(134),
        };
        let s = render_start(&j);
        assert!(s.contains("apid 1000001"));
        assert!(s.contains("user=usr0042"));
        assert!(s.contains("app=LAMMPS"));
        assert!(s.contains("nodes=128-255"));
        assert!(s.contains("width=128"));
        let e = render_end(&j);
        assert!(e.contains("exit=134"));
        assert!(e.contains("runtime_s=3600"));
    }

    #[test]
    fn exit_codes() {
        assert_eq!(ExitStatus::Success.code(), 0);
        assert_eq!(ExitStatus::Failed(139).code(), 139);
        assert_eq!(ExitStatus::Walltime.code(), -9);
    }
}
