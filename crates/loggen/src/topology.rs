//! The physical system: cabinets on a floor grid, cages, blades, nodes.
//!
//! Titan's layout per the paper: "Each blade/slot ... consists of four
//! nodes. Each cage has eight such blades and a cabinet contains three
//! such cages. The complete system consists of 200 cabinets that are
//! organized in a grid of 25 rows and 8 columns." Gemini routers "are
//! shared between a pair of nodes".

/// Cages per cabinet.
pub const CAGES_PER_CABINET: usize = 3;
/// Blades (slots) per cage.
pub const BLADES_PER_CAGE: usize = 8;
/// Nodes per blade.
pub const NODES_PER_BLADE: usize = 4;
/// Nodes per cabinet.
pub const NODES_PER_CABINET: usize = CAGES_PER_CABINET * BLADES_PER_CAGE * NODES_PER_BLADE;

/// A physical compute-node position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    /// Dense node index in `0..topology.node_count()`.
    pub index: usize,
    /// Floor-grid row of the cabinet.
    pub row: usize,
    /// Floor-grid column of the cabinet.
    pub col: usize,
    /// Cage within the cabinet (0..3).
    pub cage: usize,
    /// Blade/slot within the cage (0..8).
    pub slot: usize,
    /// Node within the blade (0..4).
    pub node: usize,
    /// Cray component name, e.g. `c3-2c1s4n2` (column, row, cage, slot, node).
    pub cname: String,
    /// Gemini router id shared by node pairs (n0/n1 and n2/n3).
    pub gemini: usize,
}

impl NodeInfo {
    /// Cabinet index in row-major floor order.
    pub fn cabinet(&self, cols: usize) -> usize {
        self.row * cols + self.col
    }

    /// Blade identity: `(cabinet-local cage, slot)` flattened globally.
    pub fn blade_index(&self, cols: usize) -> usize {
        self.cabinet(cols) * CAGES_PER_CABINET * BLADES_PER_CAGE
            + self.cage * BLADES_PER_CAGE
            + self.slot
    }
}

/// A (possibly scaled-down) Titan-like system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Cabinet rows on the floor.
    pub rows: usize,
    /// Cabinet columns on the floor.
    pub cols: usize,
}

impl Topology {
    /// Full Titan: 25 rows × 8 columns = 200 cabinets, 19 200 node slots.
    pub fn titan() -> Topology {
        Topology { rows: 25, cols: 8 }
    }

    /// A scaled-down system for tests and laptops.
    pub fn scaled(rows: usize, cols: usize) -> Topology {
        assert!(rows > 0 && cols > 0, "topology needs at least one cabinet");
        Topology { rows, cols }
    }

    /// Cabinets on the floor.
    pub fn cabinet_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Total node slots.
    pub fn node_count(&self) -> usize {
        self.cabinet_count() * NODES_PER_CABINET
    }

    /// Total blades.
    pub fn blade_count(&self) -> usize {
        self.cabinet_count() * CAGES_PER_CABINET * BLADES_PER_CAGE
    }

    /// Builds the [`NodeInfo`] for a dense index.
    pub fn node(&self, index: usize) -> NodeInfo {
        assert!(index < self.node_count(), "node index out of range");
        let cabinet = index / NODES_PER_CABINET;
        let within = index % NODES_PER_CABINET;
        let row = cabinet / self.cols;
        let col = cabinet % self.cols;
        let cage = within / (BLADES_PER_CAGE * NODES_PER_BLADE);
        let slot = (within / NODES_PER_BLADE) % BLADES_PER_CAGE;
        let node = within % NODES_PER_BLADE;
        NodeInfo {
            index,
            row,
            col,
            cage,
            slot,
            node,
            cname: format!("c{col}-{row}c{cage}s{slot}n{node}"),
            // One Gemini per node pair: n0/n1 share, n2/n3 share.
            gemini: index / 2,
        }
    }

    /// Parses a Cray cname back to a dense index.
    pub fn parse_cname(&self, cname: &str) -> Option<usize> {
        // Format: c{col}-{row}c{cage}s{slot}n{node}
        let rest = cname.strip_prefix('c')?;
        let (col, rest) = split_num(rest)?;
        let rest = rest.strip_prefix('-')?;
        let (row, rest) = split_num(rest)?;
        let rest = rest.strip_prefix('c')?;
        let (cage, rest) = split_num(rest)?;
        let rest = rest.strip_prefix('s')?;
        let (slot, rest) = split_num(rest)?;
        let rest = rest.strip_prefix('n')?;
        let (node, rest) = split_num(rest)?;
        if !rest.is_empty() {
            return None;
        }
        if row >= self.rows
            || col >= self.cols
            || cage >= CAGES_PER_CABINET
            || slot >= BLADES_PER_CAGE
            || node >= NODES_PER_BLADE
        {
            return None;
        }
        let cabinet = row * self.cols + col;
        Some(
            cabinet * NODES_PER_CABINET
                + cage * BLADES_PER_CAGE * NODES_PER_BLADE
                + slot * NODES_PER_BLADE
                + node,
        )
    }

    /// All nodes in a cabinet.
    pub fn cabinet_nodes(&self, cabinet: usize) -> impl Iterator<Item = usize> {
        let start = cabinet * NODES_PER_CABINET;
        start..start + NODES_PER_CABINET
    }

    /// All nodes on the same blade as `index`.
    pub fn blade_nodes(&self, index: usize) -> impl Iterator<Item = usize> {
        let start = (index / NODES_PER_BLADE) * NODES_PER_BLADE;
        start..start + NODES_PER_BLADE
    }

    /// Iterates every node.
    pub fn nodes(&self) -> impl Iterator<Item = NodeInfo> + '_ {
        (0..self.node_count()).map(|i| self.node(i))
    }
}

fn split_num(s: &str) -> Option<(usize, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    Some((s[..end].parse().ok()?, &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_dimensions_match_paper() {
        let t = Topology::titan();
        assert_eq!(t.cabinet_count(), 200);
        assert_eq!(t.node_count(), 19_200);
        assert_eq!(t.blade_count(), 4_800);
        assert_eq!(NODES_PER_CABINET, 96);
    }

    #[test]
    fn cname_format_roundtrips() {
        let t = Topology::titan();
        for idx in [0, 1, 95, 96, 1234, 19_199] {
            let info = t.node(idx);
            assert_eq!(t.parse_cname(&info.cname), Some(idx), "{}", info.cname);
        }
    }

    #[test]
    fn cname_components_are_in_range() {
        let t = Topology::scaled(2, 3);
        for info in t.nodes() {
            assert!(info.row < 2);
            assert!(info.col < 3);
            assert!(info.cage < CAGES_PER_CABINET);
            assert!(info.slot < BLADES_PER_CAGE);
            assert!(info.node < NODES_PER_BLADE);
        }
    }

    #[test]
    fn parse_rejects_garbage_and_out_of_range() {
        let t = Topology::scaled(2, 2);
        for bad in [
            "",
            "c0-0",
            "x0-0c0s0n0",
            "c0-0c0s0n9",
            "c9-0c0s0n0",
            "c0-9c0s0n0",
            "c0-0c0s0n0x",
            "c--0c0s0n0",
        ] {
            assert_eq!(t.parse_cname(bad), None, "{bad}");
        }
    }

    #[test]
    fn gemini_shared_by_pairs() {
        let t = Topology::titan();
        assert_eq!(t.node(0).gemini, t.node(1).gemini);
        assert_eq!(t.node(2).gemini, t.node(3).gemini);
        assert_ne!(t.node(1).gemini, t.node(2).gemini);
    }

    #[test]
    fn cabinet_and_blade_grouping() {
        let t = Topology::scaled(3, 3);
        let nodes: Vec<usize> = t.cabinet_nodes(4).collect();
        assert_eq!(nodes.len(), NODES_PER_CABINET);
        assert_eq!(nodes[0], 4 * NODES_PER_CABINET);
        let blade: Vec<usize> = t.blade_nodes(7).collect();
        assert_eq!(blade, vec![4, 5, 6, 7]);
        // blade_index is consistent for all nodes of a blade.
        let a = t.node(4).blade_index(t.cols);
        let b = t.node(7).blade_index(t.cols);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_index_bounds_checked() {
        Topology::scaled(1, 1).node(96);
    }
}
