//! Raw console-log text per event type: the cryptic, hex-laden lines the
//! regex ETL has to cope with.

use crate::events::Occurrence;
use rand::rngs::StdRng;
use rand::Rng;

/// Renders the console-facility message text for an occurrence.
/// (Lustre lines render in [`crate::lustre`]; application lines in
/// [`crate::jobs`].)
pub fn render_console(o: &Occurrence, rng: &mut StdRng) -> String {
    match o.event_type {
        "MCE" => format!(
            "Machine Check Exception: bank {}: {:016x} addr {:016x} cpu {}",
            rng.gen_range(0..6),
            0xb200_0000_0000_0000u64 | rng.gen::<u32>() as u64,
            rng.gen_range(0x3f00_0000_0000u64..0x4000_0000_0000),
            rng.gen_range(0..16),
        ),
        "MEM_ECC" => format!(
            "EDAC MC{}: CE page 0x{:x}, offset 0x{:x}, grain 8, syndrome 0x{:x}, row {}, channel {}",
            rng.gen_range(0..4),
            rng.gen_range(0x1000..0xfffff),
            rng.gen_range(0u32..0x1000) & !0x7,
            rng.gen_range(1u32..0xff),
            rng.gen_range(0..8),
            rng.gen_range(0..2),
        ),
        "MEM_UE" => format!(
            "EDAC MC{}: UE page 0x{:x}, offset 0x0, grain 8, row {} labeled DIMM_{}{}",
            rng.gen_range(0..4),
            rng.gen_range(0x1000..0xfffff),
            rng.gen_range(0..8),
            ['A', 'B', 'C', 'D'][rng.gen_range(0..4usize)],
            rng.gen_range(1..3),
        ),
        "GPU_DBE" => format!(
            "NVRM: Xid (0000:{:02x}:00): 48, Double Bit ECC Error at 0x{:08x}_{:08x}",
            rng.gen_range(2..4),
            rng.gen::<u32>() & 0xff,
            rng.gen::<u32>(),
        ),
        "GPU_OFF_BUS" => format!(
            "NVRM: Xid (0000:{:02x}:00): 79, GPU has fallen off the bus.",
            rng.gen_range(2..4),
        ),
        "GPU_SXM_PWR" => format!(
            "NVRM: Xid (0000:{:02x}:00): 62, GPU power excursion detected, throttling to {} MHz",
            rng.gen_range(2..4),
            [324, 614, 732][rng.gen_range(0..3usize)],
        ),
        "DVS_ERR" => format!(
            "DVS: file_node_down: removing c{}-{}c{}s{}n{} from list of available servers for {} mount points",
            rng.gen_range(0..8),
            rng.gen_range(0..25),
            rng.gen_range(0..3),
            rng.gen_range(0..8),
            rng.gen_range(0..4),
            rng.gen_range(1..4),
        ),
        "NET_LINK" => format!(
            "HSN detected critical error: Gemini LCB lcb=g{}l{:02} failed; initiating link recovery",
            o.node / 2,
            rng.gen_range(0..48),
        ),
        "NET_THROTTLE" => format!(
            "Gemini HSN congestion protection engaged: throttle=on watermark=0x{:02x}",
            rng.gen_range(0x40u32..0xff),
        ),
        "KERNEL_PANIC" => {
            let causes = [
                "Fatal exception in interrupt",
                "Attempted to kill init!",
                "Out of memory and no killable processes",
                "hung_task: blocked tasks",
            ];
            format!(
                "Kernel panic - not syncing: {}",
                causes[rng.gen_range(0..causes.len())]
            )
        }
        other => format!("event {other} reported (code 0x{:04x})", rng.gen::<u16>()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::rng;

    fn occ(t: &'static str) -> Occurrence {
        Occurrence {
            ts_ms: 0,
            event_type: t,
            node: 42,
            count: 1,
        }
    }

    #[test]
    fn every_console_type_renders_nonempty() {
        let mut r = rng(1);
        for t in [
            "MCE",
            "MEM_ECC",
            "MEM_UE",
            "GPU_DBE",
            "GPU_OFF_BUS",
            "GPU_SXM_PWR",
            "DVS_ERR",
            "NET_LINK",
            "NET_THROTTLE",
            "KERNEL_PANIC",
        ] {
            let text = render_console(&occ(t), &mut r);
            assert!(!text.is_empty(), "{t}");
            assert!(text.is_ascii(), "{t}");
        }
    }

    #[test]
    fn mce_line_shape() {
        let mut r = rng(2);
        let text = render_console(&occ("MCE"), &mut r);
        assert!(text.starts_with("Machine Check Exception: bank "));
        assert!(text.contains(" addr "));
        assert!(text.contains(" cpu "));
    }

    #[test]
    fn gpu_dbe_is_xid_48() {
        let mut r = rng(3);
        let text = render_console(&occ("GPU_DBE"), &mut r);
        assert!(text.contains("Xid"));
        assert!(text.contains("48, Double Bit ECC Error"));
    }

    #[test]
    fn unknown_type_has_fallback() {
        let mut r = rng(4);
        let text = render_console(&occ("MYSTERY"), &mut r);
        assert!(text.contains("MYSTERY"));
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let a = render_console(&occ("MCE"), &mut rng(9));
        let b = render_console(&occ("MCE"), &mut rng(9));
        assert_eq!(a, b);
    }
}
