//! Statistical failure models: Poisson background, spatial bursts,
//! cascades. Everything is deterministic under a seed.

use crate::events::{Occurrence, EVENT_CATALOG};
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Background generator: independent Poisson processes per (type, node).
///
/// Implemented as one aggregated Poisson per type over the whole machine
/// (rate × nodes), with the node chosen uniformly per event — an exact
/// equivalent factorization that runs in O(events), not O(nodes).
pub fn background(
    topo: &Topology,
    start_ms: i64,
    duration_ms: i64,
    rate_scale: f64,
    rng: &mut StdRng,
) -> Vec<Occurrence> {
    let mut out = Vec::new();
    let hours = duration_ms as f64 / 3_600_000.0;
    for etype in EVENT_CATALOG {
        let lambda = etype.base_rate_per_node_hour * rate_scale * topo.node_count() as f64 * hours;
        if lambda <= 0.0 {
            continue;
        }
        let n = sample_poisson(lambda, rng);
        for _ in 0..n {
            out.push(Occurrence {
                ts_ms: start_ms + rng.gen_range(0..duration_ms.max(1)),
                event_type: etype.name,
                node: rng.gen_range(0..topo.node_count()),
                count: 1,
            });
        }
    }
    out.sort_by_key(|o| o.ts_ms);
    out
}

/// A spatially correlated burst: one cabinet emits `events` occurrences of
/// `event_type` within `[start_ms, start_ms + duration_ms)`, concentrated
/// on a few blades — the paper's Fig 5 "abnormally high in some compute
/// nodes" pattern.
pub fn cabinet_burst(
    topo: &Topology,
    cabinet: usize,
    event_type: &'static str,
    start_ms: i64,
    duration_ms: i64,
    events: usize,
    rng: &mut StdRng,
) -> Vec<Occurrence> {
    assert!(cabinet < topo.cabinet_count(), "cabinet out of range");
    let nodes: Vec<usize> = topo.cabinet_nodes(cabinet).collect();
    // Hot blades: pick 2-4 blades that absorb ~80% of the burst.
    let blade_starts: Vec<usize> = {
        let mut starts: Vec<usize> = nodes.iter().copied().step_by(4).collect();
        let hot = rng.gen_range(2..=4usize).min(starts.len());
        for i in 0..hot {
            let j = rng.gen_range(i..starts.len());
            starts.swap(i, j);
        }
        starts.truncate(hot);
        starts
    };
    let mut out = Vec::with_capacity(events);
    for _ in 0..events {
        let node = if rng.gen_bool(0.8) {
            let blade = blade_starts[rng.gen_range(0..blade_starts.len())];
            blade + rng.gen_range(0..4usize)
        } else {
            nodes[rng.gen_range(0..nodes.len())]
        };
        out.push(Occurrence {
            ts_ms: start_ms + rng.gen_range(0..duration_ms.max(1)),
            event_type,
            node,
            count: 1,
        });
    }
    out.sort_by_key(|o| o.ts_ms);
    out
}

/// Error propagation: a seed event spawns correlated children on the same
/// blade, then cabinet, with geometric decay — the "track error
/// propagation" workload.
pub fn cascade(
    topo: &Topology,
    seed: &Occurrence,
    child_type: &'static str,
    spread_ms: i64,
    fanout: f64,
    rng: &mut StdRng,
) -> Vec<Occurrence> {
    let mut out = Vec::new();
    let mut frontier = vec![seed.node];
    let mut t = seed.ts_ms;
    let mut level_fanout = fanout;
    // Three propagation levels: blade, cabinet, cabinet again (dampened).
    for level in 0..3 {
        let mut next = Vec::new();
        for &origin in &frontier {
            let n = sample_poisson(level_fanout, rng);
            for _ in 0..n {
                let candidates: Vec<usize> = if level == 0 {
                    topo.blade_nodes(origin).collect()
                } else {
                    let cabinet = origin / crate::topology::NODES_PER_CABINET;
                    topo.cabinet_nodes(cabinet).collect()
                };
                let node = candidates[rng.gen_range(0..candidates.len())];
                t += rng.gen_range(1..spread_ms.max(2));
                out.push(Occurrence {
                    ts_ms: t,
                    event_type: child_type,
                    node,
                    count: 1,
                });
                next.push(node);
            }
        }
        frontier = next;
        level_fanout *= 0.5;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

/// Knuth's Poisson sampler for small lambda; normal approximation above.
pub fn sample_poisson(lambda: f64, rng: &mut StdRng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let u: f64 = rng.gen();
        let v: f64 = rng.gen();
        let z = (-2.0 * u.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as usize
    }
}

/// Deterministic RNG from a seed (single place, so scenarios reproduce).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NODES_PER_CABINET;

    #[test]
    fn background_is_deterministic_under_seed() {
        let topo = Topology::scaled(2, 2);
        let a = background(&topo, 0, 3_600_000, 1.0, &mut rng(7));
        let b = background(&topo, 0, 3_600_000, 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = background(&topo, 0, 3_600_000, 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn background_volume_tracks_rate_scale() {
        let topo = Topology::scaled(4, 4);
        let low = background(&topo, 0, 3_600_000, 1.0, &mut rng(1)).len();
        let high = background(&topo, 0, 3_600_000, 20.0, &mut rng(1)).len();
        assert!(high > low * 5, "low={low} high={high}");
    }

    #[test]
    fn background_timestamps_within_range_and_sorted() {
        let topo = Topology::scaled(2, 2);
        let evs = background(&topo, 500, 1000, 500.0, &mut rng(2));
        assert!(!evs.is_empty());
        assert!(evs.iter().all(|o| o.ts_ms >= 500 && o.ts_ms < 1500));
        assert!(evs.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }

    #[test]
    fn burst_stays_in_cabinet_and_concentrates() {
        let topo = Topology::scaled(3, 3);
        let evs = cabinet_burst(&topo, 4, "MCE", 0, 60_000, 500, &mut rng(3));
        assert_eq!(evs.len(), 500);
        assert!(evs.iter().all(|o| o.node / NODES_PER_CABINET == 4));
        // Concentration: the busiest blade has far more than a uniform share.
        let mut per_blade = std::collections::HashMap::new();
        for o in &evs {
            *per_blade.entry(o.node / 4).or_insert(0usize) += 1;
        }
        let max = per_blade.values().max().copied().unwrap();
        let uniform = 500 / 24;
        assert!(max > uniform * 3, "max={max} uniform={uniform}");
    }

    #[test]
    fn cascade_spreads_near_the_seed() {
        let topo = Topology::scaled(2, 2);
        let seed = Occurrence {
            ts_ms: 1000,
            event_type: "NET_LINK",
            node: 42,
            count: 1,
        };
        let kids = cascade(&topo, &seed, "LUSTRE_ERR", 100, 3.0, &mut rng(4));
        assert!(!kids.is_empty());
        let seed_cab = 42 / NODES_PER_CABINET;
        assert!(kids.iter().all(|o| o.node / NODES_PER_CABINET == seed_cab));
        assert!(kids.iter().all(|o| o.ts_ms > seed.ts_ms));
        assert!(kids.iter().all(|o| o.event_type == "LUSTRE_ERR"));
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut r = rng(5);
        for lambda in [0.5, 5.0, 80.0] {
            let n = 2000;
            let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut r)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15,
                "λ={lambda} mean={mean}"
            );
        }
        assert_eq!(sample_poisson(0.0, &mut r), 0);
    }
}
