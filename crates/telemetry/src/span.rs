//! Spans: scoped timers with parent/child causality, logged to a bounded
//! ring buffer and mirrored into same-named latency histograms.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum spans retained in the trace ring buffer; older spans fall off.
pub const TRACE_CAPACITY: usize = 4096;

/// One completed span in the trace log.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id within the process.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name (the `crate.component.op` string given to `span!`).
    pub name: &'static str,
    /// Start time in microseconds since the first span of the process.
    pub start_us: u64,
    /// Wall-clock duration of the region.
    pub duration_ns: u64,
    /// Key/value annotations attached via [`SpanGuard::tag`].
    pub tags: Vec<(&'static str, String)>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn trace_log() -> &'static Mutex<VecDeque<SpanRecord>> {
    static TRACE: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    TRACE.get_or_init(|| Mutex::new(VecDeque::with_capacity(TRACE_CAPACITY)))
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Id of the innermost span open on this thread, if any. Pass it to
/// `span!(name, parent)` in a worker closure to keep causality across
/// thread boundaries.
pub fn active_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Drains a copy of the trace ring buffer, oldest span first.
pub fn trace_snapshot() -> Vec<SpanRecord> {
    trace_log()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

pub(crate) fn clear_trace() {
    trace_log()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// Live span; created by the [`span!`](crate::span!) macro, finished (and
/// recorded) on drop. When telemetry is disabled the guard is inert.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    tags: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// Enters a span parented to this thread's innermost open span.
    pub fn enter(name: &'static str) -> Self {
        Self::start(name, active_span(), true)
    }

    /// Enters a span with an explicit parent id (cross-thread causality).
    pub fn enter_with_parent(name: &'static str, parent: Option<u64>) -> Self {
        Self::start(name, parent, true)
    }

    fn start(name: &'static str, parent: Option<u64>, push: bool) -> Self {
        if !crate::enabled() {
            return Self { active: None };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let start_us = epoch().elapsed().as_micros() as u64;
        if push {
            SPAN_STACK.with(|s| s.borrow_mut().push(id));
        }
        Self {
            active: Some(ActiveSpan {
                id,
                parent,
                name,
                start: Instant::now(),
                start_us,
                tags: Vec::new(),
            }),
        }
    }

    /// This span's id, for parenting work dispatched to other threads.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// Attaches a key/value tag (e.g. `locality => "hit"`).
    pub fn tag(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(a) = self.active.as_mut() {
            a.tags.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let duration = a.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == a.id) {
                stack.remove(pos);
            }
        });
        crate::global().histogram(a.name).record_duration(duration);
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            start_us: a.start_us,
            duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
            tags: a.tags,
        };
        let mut log = trace_log().lock().unwrap_or_else(|e| e.into_inner());
        if log.len() >= TRACE_CAPACITY {
            log.pop_front();
        }
        log.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_causality() {
        let _g = crate::test_lock();
        clear_trace();
        {
            let outer = crate::span!("test.outer.op");
            let outer_id = outer.id().unwrap();
            {
                let inner = crate::span!("test.inner.op");
                assert_eq!(active_span(), inner.id());
            }
            assert_eq!(active_span(), Some(outer_id));
        }
        assert_eq!(active_span(), None);
        let spans = trace_snapshot();
        assert_eq!(spans.len(), 2);
        // Inner finished first; its parent is the outer span.
        assert_eq!(spans[0].name, "test.inner.op");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert!(crate::global().histogram("test.outer.op").count() >= 1);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _g = crate::test_lock();
        clear_trace();
        let root = crate::span!("test.root.op");
        let root_id = root.id();
        std::thread::spawn(move || {
            let _child = crate::span!("test.child.op", root_id);
        })
        .join()
        .unwrap();
        drop(root);
        let spans = trace_snapshot();
        let child = spans.iter().find(|s| s.name == "test.child.op").unwrap();
        let root = spans.iter().find(|s| s.name == "test.root.op").unwrap();
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let _g = crate::test_lock();
        clear_trace();
        for _ in 0..TRACE_CAPACITY + 100 {
            let _s = crate::span!("test.flood.op");
        }
        assert_eq!(trace_snapshot().len(), TRACE_CAPACITY);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::test_lock();
        clear_trace();
        crate::set_enabled(false);
        let before = crate::global().histogram("test.off.op").count();
        {
            let s = crate::span!("test.off.op");
            assert_eq!(s.id(), None);
            assert_eq!(active_span(), None);
        }
        crate::set_enabled(true);
        assert_eq!(crate::global().histogram("test.off.op").count(), before);
        assert!(trace_snapshot().is_empty());
    }

    #[test]
    fn tags_survive_into_the_record() {
        let _g = crate::test_lock();
        clear_trace();
        {
            let mut s = crate::span!("test.tagged.op");
            s.tag("locality", "hit");
        }
        let spans = trace_snapshot();
        assert_eq!(spans[0].tags, vec![("locality", "hit".to_owned())]);
    }
}
