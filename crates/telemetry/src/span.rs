//! Spans: scoped timers with parent/child causality, logged to a bounded
//! ring buffer and mirrored into same-named latency histograms.
//!
//! Request-scoped causality is carried by a [`TraceContext`]: a trace id
//! minted at the edge (HTTP handler, ingester step) plus the id of the span
//! to parent under. A span entered via [`SpanGuard::enter_in`] installs its
//! trace id in a thread-local, so same-thread descendants inherit it
//! implicitly; handing [`SpanGuard::context`] to a worker closure carries
//! both the trace id and the parent link across thread boundaries.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum spans retained in the trace ring buffer; older spans fall off.
pub const TRACE_CAPACITY: usize = 4096;

/// Lock shards the trace ring is split across. Records land on shard
/// `seq % TRACE_SHARDS` — round-robin by completion order, independent of
/// which thread finished the span — so concurrent span drops rarely
/// contend on the same mutex. The single-global-mutex version of this
/// ring was the top lock in the `loadgen` frontend bench.
const TRACE_SHARDS: usize = 16;
const SHARD_CAPACITY: usize = TRACE_CAPACITY / TRACE_SHARDS;

/// One completed span in the trace log.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Global completion sequence, stamped when the span drops. Snapshots
    /// sort by it, so the merged view stays in completion order.
    pub seq: u64,
    /// Unique id within the process.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Trace this span belongs to, when entered under a [`TraceContext`].
    pub trace: Option<u64>,
    /// Span name (the `subsystem.component.event` string given to `span!`).
    pub name: &'static str,
    /// Start time in microseconds since the first span of the process.
    pub start_us: u64,
    /// Wall-clock duration of the region.
    pub duration_ns: u64,
    /// Sequence number of the thread that ran the span (process-unique).
    pub thread: u64,
    /// Key/value annotations attached via [`SpanGuard::tag`].
    pub tags: Vec<(&'static str, String)>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn trace_shards() -> &'static [Mutex<VecDeque<SpanRecord>>] {
    static TRACE: OnceLock<Vec<Mutex<VecDeque<SpanRecord>>>> = OnceLock::new();
    TRACE.get_or_init(|| {
        (0..TRACE_SHARDS)
            .map(|_| Mutex::new(VecDeque::with_capacity(SHARD_CAPACITY)))
            .collect()
    })
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static CURRENT_TRACE: Cell<Option<u64>> = const { Cell::new(None) };
    static THREAD_SEQ: Cell<u64> = const { Cell::new(0) };
}

/// Id of the innermost span open on this thread, if any. Pass it to
/// `span!(name, parent)` in a worker closure to keep causality across
/// thread boundaries.
pub fn active_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Trace id installed on this thread by the innermost [`SpanGuard::enter_in`]
/// still open, if any.
pub fn current_trace() -> Option<u64> {
    CURRENT_TRACE.with(|t| t.get())
}

/// Process-unique sequence number for the calling thread (minted lazily).
pub fn current_thread() -> u64 {
    THREAD_SEQ.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Request-scoped trace identity: the trace id plus the span id new work
/// should parent under. `Copy`, so it moves freely into worker closures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every span of the request.
    pub trace_id: u64,
    /// Span id that spans entered under this context parent to.
    pub parent: Option<u64>,
}

impl TraceContext {
    /// Mints a fresh root context (new trace id, no parent). Works even when
    /// telemetry is disabled so callers can always stamp responses.
    pub fn root() -> Self {
        Self {
            trace_id: NEXT_TRACE.fetch_add(1, Ordering::Relaxed),
            parent: None,
        }
    }

    /// Adopts a caller-supplied trace id (e.g. from an `X-Trace-Id` header
    /// or a `"trace_id"` request field) as a new root in this process.
    pub fn adopt(trace_id: u64) -> Self {
        Self {
            trace_id,
            parent: None,
        }
    }

    /// Renders the trace id as the canonical 16-digit lowercase hex form
    /// used in envelopes, headers, and exemplars.
    pub fn hex(&self) -> String {
        trace_hex(self.trace_id)
    }

    /// Parses a canonical hex trace id back to its numeric form. Rejects
    /// empty strings, zero, and anything that is not 1–16 hex digits.
    pub fn parse_hex(s: &str) -> Option<u64> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        match u64::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(v),
        }
    }
}

/// Canonical hex rendering of a raw trace id.
pub fn trace_hex(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

/// Drains a copy of the trace ring buffer, oldest completion first.
/// Shards are merged and sorted by [`SpanRecord::seq`], so the view is
/// identical to what a single global ring would hold.
pub fn trace_snapshot() -> Vec<SpanRecord> {
    let mut out: Vec<SpanRecord> = Vec::with_capacity(TRACE_CAPACITY);
    for shard in trace_shards() {
        out.extend(
            shard
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .cloned(),
        );
    }
    out.sort_by_key(|r| r.seq);
    out
}

pub(crate) fn clear_trace() {
    for shard in trace_shards() {
        shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

// --- per-trace profile collection -----------------------------------------
//
// A request that asks for a profile registers its trace id here; every span
// that completes with a matching trace id is copied into the sink in
// addition to the ring. The `PROFILING` counter keeps the common case (no
// profile in flight) to a single relaxed load in the span drop path.

static PROFILING: AtomicUsize = AtomicUsize::new(0);

fn profile_sinks() -> &'static Mutex<HashMap<u64, Vec<SpanRecord>>> {
    static SINKS: OnceLock<Mutex<HashMap<u64, Vec<SpanRecord>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Starts collecting completed spans for `trace_id`. Must be balanced by a
/// later [`take_profile`] call, which also stops collection.
pub fn begin_profile(trace_id: u64) {
    let mut sinks = profile_sinks().lock().unwrap_or_else(|e| e.into_inner());
    if sinks.insert(trace_id, Vec::new()).is_none() {
        PROFILING.fetch_add(1, Ordering::Relaxed);
    }
}

/// True while at least one profile is being collected. A single relaxed
/// load — hot paths use it to gate spans that are profile-level detail
/// (e.g. one span per replica read) without paying for them otherwise.
pub fn profiling_active() -> bool {
    PROFILING.load(Ordering::Relaxed) > 0
}

/// Stops collecting for `trace_id` and returns every span recorded since
/// [`begin_profile`], in completion order. Spans from other traces are never
/// included, so interleaved profiled requests cannot cross-contaminate.
pub fn take_profile(trace_id: u64) -> Vec<SpanRecord> {
    let mut sinks = profile_sinks().lock().unwrap_or_else(|e| e.into_inner());
    match sinks.remove(&trace_id) {
        Some(spans) => {
            PROFILING.fetch_sub(1, Ordering::Relaxed);
            spans
        }
        None => Vec::new(),
    }
}

/// The histogram backing a span name, memoized per thread so the drop
/// path skips the registry's lock + name lookup after a thread's first
/// span of each name. Safe across [`crate::Registry::reset`], which
/// zeroes instruments in place and keeps handles valid.
fn histogram_for(name: &'static str) -> std::sync::Arc<crate::Histogram> {
    thread_local! {
        static HANDLES: RefCell<HashMap<usize, std::sync::Arc<crate::Histogram>>> =
            RefCell::new(HashMap::new());
    }
    HANDLES.with(|h| {
        std::sync::Arc::clone(
            h.borrow_mut()
                .entry(name.as_ptr() as usize)
                .or_insert_with(|| crate::global().histogram(name)),
        )
    })
}

fn sink_record(record: &SpanRecord) {
    let Some(trace) = record.trace else { return };
    if PROFILING.load(Ordering::Relaxed) == 0 {
        return;
    }
    let mut sinks = profile_sinks().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(spans) = sinks.get_mut(&trace) {
        spans.push(record.clone());
    }
}

/// Live span; created by the [`span!`](crate::span!) macro, finished (and
/// recorded) on drop. When telemetry is disabled the guard is inert.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    trace: Option<u64>,
    /// `Some(prev)` when this guard installed a thread-local trace id that
    /// must be restored to `prev` on drop.
    restore_trace: Option<Option<u64>>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    tags: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// Enters a span parented to this thread's innermost open span and
    /// tagged with this thread's current trace id, if one is installed.
    pub fn enter(name: &'static str) -> Self {
        Self::start(name, active_span(), current_trace())
    }

    /// Enters a span with an explicit parent id (cross-thread causality).
    pub fn enter_with_parent(name: &'static str, parent: Option<u64>) -> Self {
        Self::start(name, parent, current_trace())
    }

    /// Enters a span under a [`TraceContext`]: parented to `ctx.parent`,
    /// tagged with `ctx.trace_id`, and installing that trace id as this
    /// thread's current trace for the guard's lifetime so descendants
    /// entered with plain [`span!`](crate::span!) inherit it.
    pub fn enter_in(name: &'static str, ctx: &TraceContext) -> Self {
        let mut guard = Self::start(name, ctx.parent, Some(ctx.trace_id));
        if guard.active.is_none() {
            return guard;
        }
        let prev = CURRENT_TRACE.with(|t| t.replace(Some(ctx.trace_id)));
        if let Some(a) = guard.active.as_mut() {
            a.restore_trace = Some(prev);
        }
        guard
    }

    fn start(name: &'static str, parent: Option<u64>, trace: Option<u64>) -> Self {
        if !crate::enabled() {
            return Self { active: None };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let start_us = epoch().elapsed().as_micros() as u64;
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Self {
            active: Some(ActiveSpan {
                id,
                parent,
                trace,
                restore_trace: None,
                name,
                start: Instant::now(),
                start_us,
                tags: Vec::new(),
            }),
        }
    }

    /// This span's id, for parenting work dispatched to other threads.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// A [`TraceContext`] for handing to worker threads: same trace id,
    /// parented to this span. `None` when the span carries no trace or the
    /// guard is inert.
    pub fn context(&self) -> Option<TraceContext> {
        let a = self.active.as_ref()?;
        Some(TraceContext {
            trace_id: a.trace?,
            parent: Some(a.id),
        })
    }

    /// Attaches a key/value tag (e.g. `locality => "hit"`).
    pub fn tag(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(a) = self.active.as_mut() {
            a.tags.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let duration = a.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == a.id) {
                stack.remove(pos);
            }
        });
        if let Some(prev) = a.restore_trace {
            CURRENT_TRACE.with(|t| t.set(prev));
        }
        let duration_ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        histogram_for(a.name).record_traced(duration_ns, a.trace);
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            seq,
            id: a.id,
            parent: a.parent,
            trace: a.trace,
            name: a.name,
            start_us: a.start_us,
            duration_ns,
            thread: current_thread(),
            tags: a.tags,
        };
        sink_record(&record);
        let shard = &trace_shards()[(seq % TRACE_SHARDS as u64) as usize];
        let mut log = shard.lock().unwrap_or_else(|e| e.into_inner());
        if log.len() >= SHARD_CAPACITY {
            log.pop_front();
        }
        log.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_causality() {
        let _g = crate::test_lock();
        clear_trace();
        {
            let outer = crate::span!("test.outer.op");
            let outer_id = outer.id().unwrap();
            {
                let inner = crate::span!("test.inner.op");
                assert_eq!(active_span(), inner.id());
            }
            assert_eq!(active_span(), Some(outer_id));
        }
        assert_eq!(active_span(), None);
        let spans = trace_snapshot();
        assert_eq!(spans.len(), 2);
        // Inner finished first; its parent is the outer span.
        assert_eq!(spans[0].name, "test.inner.op");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert!(crate::global().histogram("test.outer.op").count() >= 1);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _g = crate::test_lock();
        clear_trace();
        let root = crate::span!("test.root.op");
        let root_id = root.id();
        std::thread::spawn(move || {
            let _child = crate::span!("test.child.op", root_id);
        })
        .join()
        .unwrap();
        drop(root);
        let spans = trace_snapshot();
        let child = spans.iter().find(|s| s.name == "test.child.op").unwrap();
        let root = spans.iter().find(|s| s.name == "test.root.op").unwrap();
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let _g = crate::test_lock();
        clear_trace();
        for _ in 0..TRACE_CAPACITY + 100 {
            let _s = crate::span!("test.flood.op");
        }
        assert_eq!(trace_snapshot().len(), TRACE_CAPACITY);
    }

    #[test]
    fn concurrent_drops_keep_a_bounded_completion_ordered_snapshot() {
        let _g = crate::test_lock();
        clear_trace();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..TRACE_CAPACITY / 4 {
                        let _s = crate::span!("test.concurrent.op");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spans = trace_snapshot();
        assert_eq!(spans.len(), TRACE_CAPACITY, "shards cap to the total");
        assert!(
            spans.windows(2).all(|w| w[0].seq < w[1].seq),
            "snapshot is completion-ordered"
        );
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::test_lock();
        clear_trace();
        crate::set_enabled(false);
        let before = crate::global().histogram("test.off.op").count();
        {
            let s = crate::span!("test.off.op");
            assert_eq!(s.id(), None);
            assert_eq!(active_span(), None);
        }
        let ctx = TraceContext::root();
        {
            let s = SpanGuard::enter_in("test.off.op", &ctx);
            assert_eq!(s.context(), None);
            assert_eq!(current_trace(), None);
        }
        crate::set_enabled(true);
        assert_eq!(crate::global().histogram("test.off.op").count(), before);
        assert!(trace_snapshot().is_empty());
    }

    #[test]
    fn tags_survive_into_the_record() {
        let _g = crate::test_lock();
        clear_trace();
        {
            let mut s = crate::span!("test.tagged.op");
            s.tag("locality", "hit");
        }
        let spans = trace_snapshot();
        assert_eq!(spans[0].tags, vec![("locality", "hit".to_owned())]);
    }

    #[test]
    fn trace_context_propagates_same_thread_and_cross_thread() {
        let _g = crate::test_lock();
        clear_trace();
        let ctx = TraceContext::root();
        let worker_ctx;
        {
            let root = SpanGuard::enter_in("test.trace.root", &ctx);
            assert_eq!(current_trace(), Some(ctx.trace_id));
            {
                // Plain span! inherits the installed trace id.
                let _child = crate::span!("test.trace.child");
            }
            worker_ctx = root.context().unwrap();
            assert_eq!(worker_ctx.trace_id, ctx.trace_id);
            assert_eq!(worker_ctx.parent, root.id());
        }
        assert_eq!(current_trace(), None);
        std::thread::spawn(move || {
            let _w = SpanGuard::enter_in("test.trace.worker", &worker_ctx);
        })
        .join()
        .unwrap();
        let spans = trace_snapshot();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("test.trace.root");
        let child = by_name("test.trace.child");
        let worker = by_name("test.trace.worker");
        assert_eq!(root.trace, Some(ctx.trace_id));
        assert_eq!(child.trace, Some(ctx.trace_id));
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(worker.trace, Some(ctx.trace_id));
        assert_eq!(worker.parent, Some(root.id));
        assert_ne!(root.thread, worker.thread);
    }

    #[test]
    fn nested_enter_in_restores_the_outer_trace() {
        let _g = crate::test_lock();
        clear_trace();
        let outer = TraceContext::root();
        let inner = TraceContext::root();
        {
            let _a = SpanGuard::enter_in("test.restore.outer", &outer);
            {
                let _b = SpanGuard::enter_in("test.restore.inner", &inner);
                assert_eq!(current_trace(), Some(inner.trace_id));
            }
            assert_eq!(current_trace(), Some(outer.trace_id));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn profile_sink_collects_only_its_trace() {
        let _g = crate::test_lock();
        clear_trace();
        let a = TraceContext::root();
        let b = TraceContext::root();
        begin_profile(a.trace_id);
        begin_profile(b.trace_id);
        {
            let _s = SpanGuard::enter_in("test.profile.a", &a);
        }
        {
            let _s = SpanGuard::enter_in("test.profile.b", &b);
        }
        {
            let _s = crate::span!("test.profile.untraced");
        }
        let got_a = take_profile(a.trace_id);
        let got_b = take_profile(b.trace_id);
        assert_eq!(got_a.len(), 1);
        assert_eq!(got_a[0].name, "test.profile.a");
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0].name, "test.profile.b");
        // Sink is drained; further spans for the trace are not collected.
        {
            let _s = SpanGuard::enter_in("test.profile.a", &a);
        }
        assert!(take_profile(a.trace_id).is_empty());
    }

    #[test]
    fn trace_hex_round_trips() {
        let ctx = TraceContext::adopt(0xdead_beef_0042);
        assert_eq!(ctx.hex(), "0000deadbeef0042");
        assert_eq!(TraceContext::parse_hex(&ctx.hex()), Some(0xdead_beef_0042));
        assert_eq!(TraceContext::parse_hex(""), None);
        assert_eq!(TraceContext::parse_hex("0"), None);
        assert_eq!(TraceContext::parse_hex("xyz"), None);
        assert_eq!(TraceContext::parse_hex("11112222333344445"), None);
    }
}
