//! Global registry of named instruments.

use crate::histogram::{Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Monotonically increasing count.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (no-op while telemetry is disabled).
    pub fn incr(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrites the gauge (no-op while telemetry is disabled).
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Shifts the gauge by `delta` (no-op while telemetry is disabled).
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Named instruments, interned on first use. Handles are `Arc`s; hot paths
/// should look an instrument up once and keep the handle.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Machine-readable view of every instrument at one moment.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Every counter's name and current count, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Every gauge's name and current value, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Every histogram's name and summary, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(w.entry(name.to_owned()).or_default())
}

impl Registry {
    /// The process-wide registry every instrument hangs off.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Zeroes every instrument and clears the trace log. Instrument handles
    /// stay valid (values reset in place).
    pub fn reset(&self) {
        for c in self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            g.value.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
        crate::span::clear_trace();
    }

    /// Human-readable table of every instrument (durations shown in µs).
    pub fn render_table(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        if !snap.counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in &snap.counters {
                out.push_str(&format!("  {name:<44} {v:>12}\n"));
            }
        }
        if !snap.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, v) in &snap.gauges {
                out.push_str(&format!("  {name:<44} {v:>12}\n"));
            }
        }
        if !snap.histograms.is_empty() {
            out.push_str(&format!(
                "histograms (latencies in µs)\n  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "p50", "p95", "p99", "max"
            ));
            for (name, s) in &snap.histograms {
                out.push_str(&format!(
                    "  {:<44} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    name,
                    s.count,
                    s.p50 as f64 / 1_000.0,
                    s.p95 as f64 / 1_000.0,
                    s.p99 as f64 / 1_000.0,
                    s.max as f64 / 1_000.0,
                ));
            }
        }
        if out.is_empty() {
            out.push_str("no instruments registered\n");
        }
        out
    }
}

/// Shorthand for [`Registry::global`].
pub fn global() -> &'static Registry {
    Registry::global()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_instrument() {
        let r = Registry::default();
        let a = r.counter("x.y.z");
        let b = r.counter("x.y.z");
        a.incr(2);
        b.incr(3);
        assert_eq!(r.counter("x.y.z").get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_sees_all_kinds() {
        let _g = crate::test_lock();
        let r = Registry::default();
        r.counter("a.b.c").incr(1);
        r.gauge("a.b.lag").set(-7);
        r.histogram("a.b.lat").record(1000);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a.b.c".to_owned(), 1)]);
        assert_eq!(snap.gauges, vec![("a.b.lag".to_owned(), -7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        let table = r.render_table();
        assert!(table.contains("a.b.c"));
        assert!(table.contains("a.b.lat"));
    }

    #[test]
    fn reset_zeroes_in_place() {
        let _g = crate::test_lock();
        let r = Registry::default();
        let c = r.counter("m.n.o");
        c.incr(9);
        let h = r.histogram("m.n.lat");
        h.record(5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }
}
