//! Lock-free log2-bucketed histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `i` holds values whose floor(log2) + 1 == `i`
/// (bucket 0 is exactly the value 0), saturating at the last bucket.
pub const BUCKETS: usize = 64;

/// Concurrent histogram: every `record` is a handful of relaxed atomic RMW
/// operations, so writer threads never contend on a lock.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Latest trace id observed per bucket (0 = none): the exemplar linking
    /// a latency bucket back to a concrete recorded request trace.
    exemplars: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// `sum / count` (0.0 when empty).
    pub mean: f64,
    /// Estimated median (bucket upper bound).
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Largest value recorded (exact).
    pub max: u64,
    /// Latest trace id seen in the p99 bucket (0 when none recorded).
    pub p99_exemplar: u64,
    /// Latest trace id seen in the bucket holding the max (0 when none).
    pub max_exemplar: u64,
}

/// Index of the bucket a value lands in: 0 for 0, else floor(log2(v)) + 1,
/// clamped to the last bucket (so `u64::MAX` is representable).
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound of values in bucket `i` (inclusive), used as the reported
/// quantile estimate.
fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (e.g. a latency in nanoseconds).
    pub fn record(&self, value: u64) {
        self.record_traced(value, None);
    }

    /// Records one observation and, when `trace` is set, stamps it as the
    /// latest exemplar of the bucket the value lands in.
    pub fn record_traced(&self, value: u64, trace: Option<u64>) {
        if !crate::enabled() {
            return;
        }
        let bucket = bucket_index(value);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        if let Some(t) = trace {
            self.exemplars[bucket].store(t, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimate of the `q`-quantile (0.0..=1.0): the upper bound of the
    /// bucket where the cumulative count crosses `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        match self.quantile_bucket(q) {
            Some(i) => bucket_upper_bound(i).min(self.max.load(Ordering::Relaxed)),
            None => self.max.load(Ordering::Relaxed),
        }
    }

    /// Index of the bucket where the cumulative count crosses `q * count`,
    /// or `None` when the histogram is empty.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let total = self.count();
        if total == 0 {
            return Some(0);
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(i);
            }
        }
        None
    }

    /// Latest exemplar trace id at or above `bucket` (0 when none): walks
    /// upward so a quantile bucket whose own exemplar was never stamped
    /// still links to the nearest slower recorded trace.
    fn exemplar_at_or_above(&self, bucket: usize) -> u64 {
        for e in &self.exemplars[bucket.min(BUCKETS - 1)..] {
            let t = e.load(Ordering::Relaxed);
            if t != 0 {
                return t;
            }
        }
        0
    }

    /// Non-empty per-bucket exemplars as `(bucket_index, trace_id)` pairs.
    pub fn exemplars(&self) -> Vec<(usize, u64)> {
        self.exemplars
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let t = e.load(Ordering::Relaxed);
                (t != 0).then_some((i, t))
            })
            .collect()
    }

    /// Point-in-time summary: count, sum, mean, and quantile estimates.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
            p99_exemplar: self
                .quantile_bucket(0.99)
                .map_or(0, |b| self.exemplar_at_or_above(b)),
            max_exemplar: self.exemplar_at_or_above(bucket_index(self.max.load(Ordering::Relaxed))),
        }
    }

    /// Zeroes every bucket, exemplar, and counter.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        for e in &self.exemplars {
            e.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_lands_in_bucket_zero() {
        let _g = crate::test_lock();
        assert_eq!(bucket_index(0), 0);
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        let s = h.summary();
        assert_eq!((s.p50, s.max, s.sum), (0, 0, 0));
    }

    #[test]
    fn u64_max_saturates_into_last_bucket() {
        let _g = crate::test_lock();
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99, u64::MAX);
    }

    #[test]
    fn bucket_boundaries_split_at_powers_of_two() {
        // 2^k is the first value of bucket k+1; 2^k - 1 the last of bucket k.
        for k in 1..63u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), (k + 1) as usize, "2^{k}");
            assert_eq!(bucket_index(v - 1), k as usize, "2^{k}-1");
        }
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let _g = crate::test_lock();
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, upper bound 127
        }
        h.record(1_000_000); // lone outlier
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 127);
        assert_eq!(s.p95, 127);
        assert_eq!(s.max, 1_000_000);
        // p99 rank is 99, still inside the 100-value bucket.
        assert_eq!(s.p99, 127);
        assert!((s.mean - 10_099.0).abs() < 1.0);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let _g = crate::test_lock();
        let h = Histogram::new();
        h.record(5);
        assert_eq!(h.quantile(1.0), 5);
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeroes() {
        let s = Histogram::new().summary();
        assert_eq!(s, HistogramSummary::default());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let _g = crate::test_lock();
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.summary();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.max, threads * per_thread - 1);
        let bucket_total: u64 = (0..BUCKETS)
            .map(|i| h.buckets[i].load(Ordering::Relaxed))
            .sum();
        assert_eq!(bucket_total, s.count);
    }

    #[test]
    fn exemplars_link_buckets_to_the_latest_trace() {
        let _g = crate::test_lock();
        let h = Histogram::new();
        for _ in 0..99 {
            h.record_traced(100, Some(0xAAAA)); // bucket 7
        }
        h.record_traced(1_000_000, Some(0xBBBB)); // slow outlier, bucket 20
        let s = h.summary();
        // p99 rank (99 of 100) still lands in the fast bucket.
        assert_eq!(s.p99_exemplar, 0xAAAA);
        assert_eq!(s.max_exemplar, 0xBBBB);
        h.record(1_000_000); // untraced: must not clobber the exemplar
        assert_eq!(h.summary().max_exemplar, 0xBBBB);
        assert_eq!(h.exemplars(), vec![(7, 0xAAAA), (20, 0xBBBB)]);
        // A newer trace in the same bucket replaces the exemplar.
        h.record_traced(1_000_000, Some(0xCCCC));
        assert_eq!(h.summary().max_exemplar, 0xCCCC);
        h.reset();
        assert!(h.exemplars().is_empty());
        assert_eq!(h.summary().p99_exemplar, 0);
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        let h = Histogram::new();
        h.record(7);
        crate::set_enabled(true);
        assert_eq!(h.count(), 0);
        h.record(7);
        assert_eq!(h.count(), 1);
    }
}
