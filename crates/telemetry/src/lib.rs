//! `telemetry` — zero-dependency observability for the whole workspace.
//!
//! Three pieces, all reachable from a global [`Registry`]:
//!
//! * **Metrics** — named [`Counter`]s, [`Gauge`]s, and log2-bucketed
//!   [`Histogram`]s (lock-free `AtomicU64` buckets with p50/p95/p99/max
//!   summaries and per-bucket trace-id exemplars).
//! * **Spans** — the [`span!`] macro returns a guard that measures a
//!   region, feeds its duration into the histogram of the same name, and
//!   appends a [`SpanRecord`] (with parent/child causality) to a bounded
//!   ring-buffer trace log. A [`TraceContext`] threads a request-scoped
//!   trace id through nested spans and across worker threads
//!   ([`SpanGuard::enter_in`] / [`SpanGuard::context`]), and
//!   [`begin_profile`]/[`take_profile`] collect every completed span of one
//!   trace for per-request profiles.
//! * **Export** — [`Snapshot`] (machine-readable) and
//!   [`Registry::render_table`] (human-readable) views; the JSON and HTTP
//!   surfaces live in `hpclog-core`, keeping this crate dependency-free.
//!
//! # Instrument naming
//!
//! Every instrument (counter, gauge, histogram, span) is named
//! **`<subsystem>.<component>.<event>`**, all lowercase, exactly three
//! dot-separated segments:
//!
//! * **subsystem** — the crate or domain: `rasdb`, `ingest`, `bus`,
//!   `cache`, `server`, `etl`, `sparklet`, `logbus`.
//! * **component** — the actor inside it: `coordinator`, `producer`,
//!   `store`, `result`, `block`, `engine`, `stream`, `topology`.
//! * **event** — what happened: `read`, `hit`, `miss`, `retries`,
//!   `backpressure`, `duplicates`.
//!
//! Examples: `rasdb.coordinator.read_multi`, `cache.result.hit`,
//! `bus.producer.backpressure`, `ingest.store.retries`,
//! `server.engine.request`. Per-instance variants append a suffix segment
//! (e.g. `bus.faults.drop_send`). New instruments must follow this shape;
//! renames of existing ones are listed in CHANGES.md.
//!
//! Everything is cheap when disabled: each record is a single relaxed
//! atomic load and branch after [`set_enabled`]`(false)`.

#![deny(missing_docs)]

mod histogram;
mod registry;
mod span;

pub use histogram::{Histogram, HistogramSummary, BUCKETS};
pub use registry::{global, Counter, Gauge, Registry, Snapshot};
pub use span::{
    active_span, begin_profile, current_thread, current_trace, profiling_active, take_profile,
    trace_hex, trace_snapshot, SpanGuard, SpanRecord, TraceContext, TRACE_CAPACITY,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns every instrument on or off globally. Disabled recording costs one
/// relaxed atomic load per call site.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether telemetry is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Serializes unit tests that record into, reset, or toggle the global
/// state, so parallel test threads don't observe each other's effects.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Enters a named span: `let _s = span!("rasdb.coordinator.read");`
///
/// A second argument supplies an explicit parent span id (for causality
/// across threads): `span!("sparklet.scheduler.task", parent)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $parent:expr) => {
        $crate::SpanGuard::enter_with_parent($name, $parent)
    };
}
