//! Loading and querying the `nodeinfos` table.

use loggen::topology::{NodeInfo, Topology};
use rasdb::cluster::Cluster;
use rasdb::error::DbError;
use rasdb::query::Consistency;
use rasdb::types::Value;

/// Writes one row per node into `nodeinfos`. "The nodeinfo enables spatial
/// correlation and analysis of events in the system."
pub fn populate(cluster: &Cluster, topo: &Topology) -> Result<usize, DbError> {
    let batch: Vec<Vec<(String, Value)>> = topo
        .nodes()
        .map(|info| {
            vec![
                ("cname".to_owned(), Value::text(&info.cname)),
                ("idx".to_owned(), Value::BigInt(info.index as i64)),
                ("row".to_owned(), Value::Int(info.row as i32)),
                ("col".to_owned(), Value::Int(info.col as i32)),
                ("cage".to_owned(), Value::Int(info.cage as i32)),
                ("slot".to_owned(), Value::Int(info.slot as i32)),
                ("node".to_owned(), Value::Int(info.node as i32)),
                ("gemini".to_owned(), Value::BigInt(info.gemini as i64)),
            ]
        })
        .collect();
    cluster.insert_batch("nodeinfos", batch, Consistency::Quorum)
}

/// Looks up one node by cname.
pub fn lookup(cluster: &Cluster, cname: &str) -> Result<Option<NodeInfo>, DbError> {
    let rows = cluster
        .select("nodeinfos")
        .partition(vec![Value::text(cname)])
        .run(Consistency::Quorum)?;
    let Some(row) = rows.first() else {
        return Ok(None);
    };
    let get = |name: &str| row.cell(name).and_then(|v| v.as_i64()).unwrap_or(0);
    Ok(Some(NodeInfo {
        index: get("idx") as usize,
        row: get("row") as usize,
        col: get("col") as usize,
        cage: get("cage") as usize,
        slot: get("slot") as usize,
        node: get("node") as usize,
        cname: cname.to_owned(),
        gemini: get("gemini") as usize,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tables;
    use rasdb::cluster::ClusterConfig;

    #[test]
    fn populate_and_lookup_roundtrip() {
        let cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            replication_factor: 2,
            vnodes: 8,
        });
        tables::create_all(&cluster).unwrap();
        let topo = Topology::scaled(2, 2);
        let n = populate(&cluster, &topo).unwrap();
        assert_eq!(n, topo.node_count());

        let want = topo.node(137);
        let got = lookup(&cluster, &want.cname).unwrap().unwrap();
        assert_eq!(got, want);
        assert!(lookup(&cluster, "c9-9c9s9n9").unwrap().is_none());
    }
}
