//! The framework's table set (paper §II-B, Figs 1 and 2).
//!
//! Eight tables from the paper's list, plus `application_by_name` — the
//! paper's Fig 2 shows an application-name-keyed view that its own list
//! omits, so we keep both (see DESIGN.md).

use rasdb::cluster::Cluster;
use rasdb::error::DbError;
use rasdb::schema::{ColumnType, TableSchema};

/// `nodeinfos`: the physical system description.
pub fn nodeinfos() -> TableSchema {
    TableSchema::builder("nodeinfos")
        .partition_key("cname", ColumnType::Text)
        .column("idx", ColumnType::BigInt)
        .column("row", ColumnType::Int)
        .column("col", ColumnType::Int)
        .column("cage", ColumnType::Int)
        .column("slot", ColumnType::Int)
        .column("node", ColumnType::Int)
        .column("gemini", ColumnType::BigInt)
        .build()
        .expect("static schema")
}

/// `eventtypes`: the catalog of monitored event types.
pub fn eventtypes() -> TableSchema {
    TableSchema::builder("eventtypes")
        .partition_key("name", ColumnType::Text)
        .column("class", ColumnType::Text)
        .column("severity", ColumnType::Text)
        .column("description", ColumnType::Text)
        .build()
        .expect("static schema")
}

/// `eventsynopsis`: per-day summary rows (type × hour counts).
pub fn eventsynopsis() -> TableSchema {
    TableSchema::builder("eventsynopsis")
        .partition_key("day", ColumnType::BigInt)
        .clustering_key("type", ColumnType::Text)
        .clustering_key("hour", ColumnType::BigInt)
        .column("events", ColumnType::BigInt)
        .column("nodes", ColumnType::BigInt)
        .build()
        .expect("static schema")
}

/// `event_by_time`: partition `(hour, type)`, wide row sorted by
/// `(ts, source)` — Fig 1 top.
pub fn event_by_time() -> TableSchema {
    TableSchema::builder("event_by_time")
        .partition_key("hour", ColumnType::BigInt)
        .partition_key("type", ColumnType::Text)
        .clustering_key("ts", ColumnType::Timestamp)
        .clustering_key("source", ColumnType::Text)
        .column("amount", ColumnType::Int)
        .column("raw", ColumnType::Text)
        .build()
        .expect("static schema")
}

/// `event_by_location`: partition `(hour, source)`, wide row sorted by
/// `(ts, type)` — Fig 1 bottom.
pub fn event_by_location() -> TableSchema {
    TableSchema::builder("event_by_location")
        .partition_key("hour", ColumnType::BigInt)
        .partition_key("source", ColumnType::Text)
        .clustering_key("ts", ColumnType::Timestamp)
        .clustering_key("type", ColumnType::Text)
        .column("amount", ColumnType::Int)
        .column("raw", ColumnType::Text)
        .build()
        .expect("static schema")
}

fn apprun_columns(builder: rasdb::schema::TableSchemaBuilder) -> rasdb::schema::TableSchemaBuilder {
    builder
        .column("end_ts", ColumnType::Timestamp)
        .column("node_first", ColumnType::BigInt)
        .column("node_last", ColumnType::BigInt)
        .column("exit_code", ColumnType::Int)
        .column("other_info", ColumnType::Map)
}

/// `application_by_time`: partition by start hour — Fig 2 top.
pub fn application_by_time() -> TableSchema {
    apprun_columns(
        TableSchema::builder("application_by_time")
            .partition_key("hour", ColumnType::BigInt)
            .clustering_key("start_ts", ColumnType::Timestamp)
            .clustering_key("apid", ColumnType::BigInt)
            .column("userid", ColumnType::Text)
            .column("appname", ColumnType::Text),
    )
    .build()
    .expect("static schema")
}

/// `application_by_name`: partition by application — Fig 2 middle.
pub fn application_by_name() -> TableSchema {
    apprun_columns(
        TableSchema::builder("application_by_name")
            .partition_key("appname", ColumnType::Text)
            .clustering_key("start_ts", ColumnType::Timestamp)
            .clustering_key("apid", ColumnType::BigInt)
            .column("userid", ColumnType::Text),
    )
    .build()
    .expect("static schema")
}

/// `application_by_user`: partition by user — Fig 2 bottom.
pub fn application_by_user() -> TableSchema {
    apprun_columns(
        TableSchema::builder("application_by_user")
            .partition_key("userid", ColumnType::Text)
            .clustering_key("start_ts", ColumnType::Timestamp)
            .clustering_key("apid", ColumnType::BigInt)
            .column("appname", ColumnType::Text),
    )
    .build()
    .expect("static schema")
}

/// `application_by_location`: partition by cabinet of the allocation head,
/// for "which applications ran here" queries.
pub fn application_by_location() -> TableSchema {
    apprun_columns(
        TableSchema::builder("application_by_location")
            .partition_key("cabinet", ColumnType::BigInt)
            .clustering_key("start_ts", ColumnType::Timestamp)
            .clustering_key("apid", ColumnType::BigInt)
            .column("userid", ColumnType::Text)
            .column("appname", ColumnType::Text),
    )
    .build()
    .expect("static schema")
}

/// Every schema, in creation order.
pub fn all_schemas() -> Vec<TableSchema> {
    vec![
        nodeinfos(),
        eventtypes(),
        eventsynopsis(),
        event_by_time(),
        event_by_location(),
        application_by_time(),
        application_by_name(),
        application_by_user(),
        application_by_location(),
    ]
}

/// Creates every table on the cluster.
pub fn create_all(cluster: &Cluster) -> Result<(), DbError> {
    for schema in all_schemas() {
        cluster.create_table(schema)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasdb::cluster::ClusterConfig;

    #[test]
    fn nine_tables_with_unique_names() {
        let schemas = all_schemas();
        assert_eq!(schemas.len(), 9);
        let names: std::collections::HashSet<&str> =
            schemas.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn event_tables_are_dual_views() {
        let by_time = event_by_time();
        let by_loc = event_by_location();
        assert_eq!(by_time.partition_key[0].name, "hour");
        assert_eq!(by_time.partition_key[1].name, "type");
        assert_eq!(by_loc.partition_key[1].name, "source");
        // Both cluster on timestamp first: one-hour time series per row.
        assert_eq!(by_time.clustering_key[0].name, "ts");
        assert_eq!(by_loc.clustering_key[0].name, "ts");
    }

    #[test]
    fn create_all_registers_everything() {
        let cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            replication_factor: 1,
            vnodes: 4,
        });
        create_all(&cluster).unwrap();
        assert_eq!(cluster.table_names().len(), 9);
        // Second run collides.
        assert!(create_all(&cluster).is_err());
    }
}
