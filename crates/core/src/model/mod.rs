//! The paper's data model: schemas, keys, and record mappings.
#![deny(missing_docs)]

pub mod apprun;
pub mod event;
pub mod keys;
pub mod nodeinfo;
pub mod tables;

pub use apprun::AppRun;
pub use event::EventRecord;
pub use keys::{hour_of, HOUR_MS};
