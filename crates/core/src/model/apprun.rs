//! Application runs and their denormalized views (paper Fig 2: "a set of
//! denormalized views on application runs").

use crate::model::keys::hour_of;
use loggen::topology::NODES_PER_CABINET;
use rasdb::types::{Row, Value};
use std::collections::BTreeMap;

/// One application run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppRun {
    /// ALPS application id.
    pub apid: i64,
    /// Owning user.
    pub user: String,
    /// Application name.
    pub app: String,
    /// Start time, ms.
    pub start_ms: i64,
    /// End time, ms.
    pub end_ms: i64,
    /// First allocated node (dense index).
    pub node_first: i64,
    /// Last allocated node (inclusive).
    pub node_last: i64,
    /// Exit code (0 = success).
    pub exit_code: i32,
    /// Free-form per-run extras ("Other Info" in Fig 2).
    pub other_info: BTreeMap<String, Value>,
}

impl AppRun {
    /// Cabinet of the allocation head (the `application_by_location` key).
    pub fn head_cabinet(&self) -> i64 {
        self.node_first / NODES_PER_CABINET as i64
    }

    /// Whether the run was active at `ts_ms`.
    pub fn running_at(&self, ts_ms: i64) -> bool {
        self.start_ms <= ts_ms && ts_ms < self.end_ms
    }

    /// Allocated node count.
    pub fn width(&self) -> i64 {
        self.node_last - self.node_first + 1
    }

    fn shared_cells(&self) -> Vec<(String, Value)> {
        vec![
            ("start_ts".to_owned(), Value::Timestamp(self.start_ms)),
            ("apid".to_owned(), Value::BigInt(self.apid)),
            ("end_ts".to_owned(), Value::Timestamp(self.end_ms)),
            ("node_first".to_owned(), Value::BigInt(self.node_first)),
            ("node_last".to_owned(), Value::BigInt(self.node_last)),
            ("exit_code".to_owned(), Value::Int(self.exit_code)),
            ("other_info".to_owned(), Value::Map(self.other_info.clone())),
        ]
    }

    /// Row for `application_by_time`.
    pub fn to_time_row(&self) -> Vec<(String, Value)> {
        let mut row = self.shared_cells();
        row.push(("hour".to_owned(), Value::BigInt(hour_of(self.start_ms))));
        row.push(("userid".to_owned(), Value::text(&self.user)));
        row.push(("appname".to_owned(), Value::text(&self.app)));
        row
    }

    /// Row for `application_by_name`.
    pub fn to_name_row(&self) -> Vec<(String, Value)> {
        let mut row = self.shared_cells();
        row.push(("appname".to_owned(), Value::text(&self.app)));
        row.push(("userid".to_owned(), Value::text(&self.user)));
        row
    }

    /// Row for `application_by_user`.
    pub fn to_user_row(&self) -> Vec<(String, Value)> {
        let mut row = self.shared_cells();
        row.push(("userid".to_owned(), Value::text(&self.user)));
        row.push(("appname".to_owned(), Value::text(&self.app)));
        row
    }

    /// Row for `application_by_location`.
    pub fn to_location_row(&self) -> Vec<(String, Value)> {
        let mut row = self.shared_cells();
        row.push(("cabinet".to_owned(), Value::BigInt(self.head_cabinet())));
        row.push(("userid".to_owned(), Value::text(&self.user)));
        row.push(("appname".to_owned(), Value::text(&self.app)));
        row
    }

    /// Rebuilds a run from any of the four views. Fields missing from the
    /// view's key are read from cells; `user`/`app` fall back to the
    /// provided defaults when the view's partition key carries them.
    pub fn from_row(row: &Row, user: Option<&str>, app: Option<&str>) -> Option<AppRun> {
        let start_ms = row.clustering.0.first()?.as_i64()?;
        let apid = row.clustering.0.get(1)?.as_i64()?;
        let cell_text = |name: &str| row.cell(name).and_then(|v| v.as_text()).map(str::to_owned);
        let other_info = match row.cell("other_info") {
            Some(Value::Map(m)) => m.clone(),
            _ => BTreeMap::new(),
        };
        Some(AppRun {
            apid,
            user: cell_text("userid").or_else(|| user.map(str::to_owned))?,
            app: cell_text("appname").or_else(|| app.map(str::to_owned))?,
            start_ms,
            end_ms: row
                .cell("end_ts")
                .and_then(|v| v.as_i64())
                .unwrap_or(start_ms),
            node_first: row.cell("node_first").and_then(|v| v.as_i64()).unwrap_or(0),
            node_last: row.cell("node_last").and_then(|v| v.as_i64()).unwrap_or(0),
            exit_code: row.cell("exit_code").and_then(|v| v.as_i64()).unwrap_or(0) as i32,
            other_info,
        })
    }
}

/// Converts a generated ground-truth job into an [`AppRun`].
impl From<&loggen::jobs::JobRecord> for AppRun {
    fn from(j: &loggen::jobs::JobRecord) -> AppRun {
        AppRun {
            apid: j.apid as i64,
            user: j.user.clone(),
            app: j.app.clone(),
            start_ms: j.start_ms,
            end_ms: j.end_ms,
            node_first: j.node_first as i64,
            node_last: j.node_last as i64,
            exit_code: j.exit.code(),
            other_info: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasdb::types::Key;

    fn sample() -> AppRun {
        AppRun {
            apid: 1_000_001,
            user: "usr0042".to_owned(),
            app: "VASP".to_owned(),
            start_ms: 7_200_000,
            end_ms: 10_800_000,
            node_first: 192,
            node_last: 319,
            exit_code: 0,
            other_info: [("queue".to_owned(), Value::text("batch"))]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn head_cabinet_and_width() {
        let run = sample();
        assert_eq!(run.head_cabinet(), 2); // 192 / 96
        assert_eq!(run.width(), 128);
        assert!(run.running_at(7_200_000));
        assert!(!run.running_at(10_800_000));
    }

    #[test]
    fn views_carry_their_partition_keys() {
        let run = sample();
        let time_row = run.to_time_row();
        assert!(time_row
            .iter()
            .any(|(n, v)| n == "hour" && *v == Value::BigInt(2)));
        let loc_row = run.to_location_row();
        assert!(loc_row
            .iter()
            .any(|(n, v)| n == "cabinet" && *v == Value::BigInt(2)));
        let name_row = run.to_name_row();
        assert!(name_row
            .iter()
            .any(|(n, v)| n == "appname" && *v == Value::text("VASP")));
    }

    #[test]
    fn roundtrip_from_row() {
        let run = sample();
        let row = Row {
            clustering: Key(vec![
                Value::Timestamp(run.start_ms),
                Value::BigInt(run.apid),
            ]),
            cells: run
                .to_time_row()
                .into_iter()
                .filter(|(n, _)| !matches!(n.as_str(), "hour" | "start_ts" | "apid"))
                .collect(),
        };
        assert_eq!(AppRun::from_row(&row, None, None).unwrap(), run);
    }

    #[test]
    fn from_row_uses_fallbacks_when_cells_missing() {
        let row = Row {
            clustering: Key(vec![Value::Timestamp(5), Value::BigInt(1)]),
            cells: Default::default(),
        };
        let run = AppRun::from_row(&row, Some("u"), Some("a")).unwrap();
        assert_eq!(run.user, "u");
        assert_eq!(run.app, "a");
        assert!(AppRun::from_row(&row, None, Some("a")).is_none());
    }

    #[test]
    fn job_record_conversion() {
        let job = loggen::jobs::JobRecord {
            apid: 5,
            user: "u".into(),
            app: "LAMMPS".into(),
            start_ms: 1,
            end_ms: 2,
            node_first: 0,
            node_last: 3,
            exit: loggen::jobs::ExitStatus::Failed(134),
        };
        let run = AppRun::from(&job);
        assert_eq!(run.exit_code, 134);
        assert_eq!(run.width(), 4);
    }
}
