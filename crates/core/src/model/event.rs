//! Event records and their mapping onto the dual event tables.

use crate::model::keys::hour_of;
use rasdb::types::{Row, Value};

/// One system event as the analytics layer sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Occurrence time, ms since epoch.
    pub ts_ms: i64,
    /// Event-type name (catalog key).
    pub event_type: String,
    /// Source component cname.
    pub source: String,
    /// Occurrence multiplicity (coalesced count).
    pub amount: i32,
    /// Raw log message, retained "in a semi-structured format" for text
    /// analytics.
    pub raw: String,
}

impl EventRecord {
    /// Column values for `event_by_time`.
    pub fn to_time_row(&self) -> Vec<(String, Value)> {
        vec![
            ("hour".to_owned(), Value::BigInt(hour_of(self.ts_ms))),
            ("type".to_owned(), Value::text(&self.event_type)),
            ("ts".to_owned(), Value::Timestamp(self.ts_ms)),
            ("source".to_owned(), Value::text(&self.source)),
            ("amount".to_owned(), Value::Int(self.amount)),
            ("raw".to_owned(), Value::text(&self.raw)),
        ]
    }

    /// Column values for `event_by_location`.
    pub fn to_location_row(&self) -> Vec<(String, Value)> {
        vec![
            ("hour".to_owned(), Value::BigInt(hour_of(self.ts_ms))),
            ("source".to_owned(), Value::text(&self.source)),
            ("ts".to_owned(), Value::Timestamp(self.ts_ms)),
            ("type".to_owned(), Value::text(&self.event_type)),
            ("amount".to_owned(), Value::Int(self.amount)),
            ("raw".to_owned(), Value::text(&self.raw)),
        ]
    }

    /// Rebuilds a record from an `event_by_time` row (partition key parts
    /// supplied by the caller, clustering/cells from the row).
    pub fn from_time_row(event_type: &str, row: &Row) -> Option<EventRecord> {
        let ts = row.clustering.0.first()?.as_i64()?;
        let source = row.clustering.0.get(1)?.as_text()?.to_owned();
        Some(EventRecord {
            ts_ms: ts,
            event_type: event_type.to_owned(),
            source,
            amount: row.cell("amount").and_then(|v| v.as_i64()).unwrap_or(1) as i32,
            raw: row
                .cell("raw")
                .and_then(|v| v.as_text())
                .unwrap_or_default()
                .to_owned(),
        })
    }

    /// Rebuilds a record from an `event_by_location` row.
    pub fn from_location_row(source: &str, row: &Row) -> Option<EventRecord> {
        let ts = row.clustering.0.first()?.as_i64()?;
        let event_type = row.clustering.0.get(1)?.as_text()?.to_owned();
        Some(EventRecord {
            ts_ms: ts,
            event_type,
            source: source.to_owned(),
            amount: row.cell("amount").and_then(|v| v.as_i64()).unwrap_or(1) as i32,
            raw: row
                .cell("raw")
                .and_then(|v| v.as_text())
                .unwrap_or_default()
                .to_owned(),
        })
    }

    /// Serialization size proxy: encodes every cell value (used to model
    /// marshalling cost on non-local reads).
    pub fn marshalled_size(&self) -> usize {
        let mut buf = Vec::new();
        for (_, v) in self.to_time_row() {
            v.encode_into(&mut buf);
        }
        buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::keys::HOUR_MS;

    fn sample() -> EventRecord {
        EventRecord {
            ts_ms: 3 * HOUR_MS + 1234,
            event_type: "MCE".to_owned(),
            source: "c0-0c0s0n0".to_owned(),
            amount: 2,
            raw: "Machine Check Exception: bank 1".to_owned(),
        }
    }

    #[test]
    fn time_row_keys_by_hour_and_type() {
        let row = sample().to_time_row();
        assert_eq!(row[0], ("hour".to_owned(), Value::BigInt(3)));
        assert_eq!(row[1], ("type".to_owned(), Value::text("MCE")));
        assert_eq!(
            row[2],
            ("ts".to_owned(), Value::Timestamp(3 * HOUR_MS + 1234))
        );
    }

    #[test]
    fn location_row_keys_by_hour_and_source() {
        let row = sample().to_location_row();
        assert_eq!(row[1], ("source".to_owned(), Value::text("c0-0c0s0n0")));
        assert_eq!(row[3], ("type".to_owned(), Value::text("MCE")));
    }

    #[test]
    fn roundtrip_through_db_rows() {
        use rasdb::types::Key;
        let ev = sample();
        let row = Row {
            clustering: Key(vec![Value::Timestamp(ev.ts_ms), Value::text(&ev.source)]),
            cells: [
                ("amount".to_owned(), Value::Int(ev.amount)),
                ("raw".to_owned(), Value::text(&ev.raw)),
            ]
            .into_iter()
            .collect(),
        };
        assert_eq!(EventRecord::from_time_row("MCE", &row).unwrap(), ev);

        let loc_row = Row {
            clustering: Key(vec![
                Value::Timestamp(ev.ts_ms),
                Value::text(&ev.event_type),
            ]),
            cells: row.cells.clone(),
        };
        assert_eq!(
            EventRecord::from_location_row("c0-0c0s0n0", &loc_row).unwrap(),
            ev
        );
    }

    #[test]
    fn missing_cells_default() {
        use rasdb::types::Key;
        let row = Row {
            clustering: Key(vec![Value::Timestamp(5), Value::text("n")]),
            cells: Default::default(),
        };
        let ev = EventRecord::from_time_row("MCE", &row).unwrap();
        assert_eq!(ev.amount, 1);
        assert_eq!(ev.raw, "");
    }

    #[test]
    fn malformed_rows_return_none() {
        use rasdb::types::Key;
        let row = Row {
            clustering: Key(vec![]),
            cells: Default::default(),
        };
        assert!(EventRecord::from_time_row("MCE", &row).is_none());
    }

    #[test]
    fn marshalled_size_is_positive_and_tracks_payload() {
        let small = sample();
        let mut big = sample();
        big.raw = "x".repeat(1000);
        assert!(small.marshalled_size() > 0);
        assert!(big.marshalled_size() > small.marshalled_size() + 900);
    }
}
