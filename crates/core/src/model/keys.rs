//! Time bucketing: partitions are keyed by the hour of occurrence, so
//! "all events of a certain type generated at a certain hour are stored in
//! the same partition" and each partition holds a one-hour time series.

/// Milliseconds per hour.
pub const HOUR_MS: i64 = 3_600_000;

/// Milliseconds per day.
pub const DAY_MS: i64 = 24 * HOUR_MS;

/// The hour bucket (hours since epoch) of a millisecond timestamp.
pub fn hour_of(ts_ms: i64) -> i64 {
    ts_ms.div_euclid(HOUR_MS)
}

/// The day bucket (days since epoch) of a millisecond timestamp.
pub fn day_of(ts_ms: i64) -> i64 {
    ts_ms.div_euclid(DAY_MS)
}

/// Iterates the hour buckets intersecting `[from_ms, to_ms)`.
pub fn hours_in(from_ms: i64, to_ms: i64) -> impl Iterator<Item = i64> {
    let first = hour_of(from_ms);
    let last = if to_ms > from_ms {
        hour_of(to_ms - 1)
    } else {
        first - 1
    };
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_bucketing() {
        assert_eq!(hour_of(0), 0);
        assert_eq!(hour_of(HOUR_MS - 1), 0);
        assert_eq!(hour_of(HOUR_MS), 1);
        assert_eq!(hour_of(-1), -1, "pre-epoch timestamps floor correctly");
    }

    #[test]
    fn day_bucketing() {
        assert_eq!(day_of(0), 0);
        assert_eq!(day_of(DAY_MS), 1);
        assert_eq!(day_of(DAY_MS - 1), 0);
    }

    #[test]
    fn hour_ranges() {
        let hours: Vec<i64> = hours_in(0, 2 * HOUR_MS).collect();
        assert_eq!(hours, vec![0, 1]);
        let hours: Vec<i64> = hours_in(HOUR_MS / 2, HOUR_MS + 1).collect();
        assert_eq!(hours, vec![0, 1]);
        let empty: Vec<i64> = hours_in(5, 5).collect();
        assert!(empty.is_empty());
        let one: Vec<i64> = hours_in(10, 11).collect();
        assert_eq!(one, vec![0]);
    }
}
