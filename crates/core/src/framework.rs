//! The framework facade: a co-located storage + compute cluster plus the
//! message bus, schema, and machine description.

use crate::columnar::{ColumnBlock, ColumnarStore, HourScan, WindowScan};
use crate::model::event::EventRecord;
use crate::model::keys::HOUR_MS;
use crate::model::{apprun::AppRun, keys, nodeinfo, tables};
use crate::server::cache::ResultCache;
use logbus::Broker;
use loggen::events::EVENT_CATALOG;
use loggen::topology::Topology;
use rasdb::cluster::{full_range, Cluster, ClusterConfig};
use rasdb::error::DbError;
use rasdb::query::{Consistency, ReadPlan};
use rasdb::types::{Key, Value};
use sparklet::pool::current_worker;
use sparklet::{Rdd, SparkletContext};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Storage nodes (the paper's CADES deployment uses 32 VMs).
    pub db_nodes: usize,
    /// Replication factor.
    pub replication_factor: usize,
    /// Vnodes per storage node.
    pub vnodes: usize,
    /// Executor threads; `None` co-locates one executor per storage node,
    /// mirroring "a pair of a Spark worker node and a Cassandra node".
    pub workers: Option<usize>,
    /// The machine being monitored.
    pub topology: Topology,
    /// Default consistency level for framework operations.
    pub consistency: Consistency,
    /// Simulated interconnect bandwidth for non-co-located partition
    /// reads, in bytes/second (`None` = infinitely fast network). The
    /// paper's deployment avoids this cost entirely by pairing each Spark
    /// worker with the Cassandra node holding its partitions; benches use
    /// this parameter to reproduce that comparison (1 Gbit/s default,
    /// a typical virtualized-cluster link).
    pub remote_link_bytes_per_sec: Option<u64>,
    /// Byte budget for the coordinator's partition-block cache
    /// (0 disables it).
    pub block_cache_bytes: usize,
    /// Byte budget for the analytics result cache (0 disables it).
    pub result_cache_bytes: usize,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            db_nodes: 8,
            replication_factor: 3,
            vnodes: 16,
            workers: None,
            topology: Topology::scaled(5, 4),
            consistency: Consistency::Quorum,
            remote_link_bytes_per_sec: Some(125_000_000), // 1 Gbit/s
            block_cache_bytes: rasdb::cluster::DEFAULT_BLOCK_CACHE_BYTES,
            result_cache_bytes: crate::server::cache::DEFAULT_RESULT_CACHE_BYTES,
        }
    }
}

/// The assembled log-analytics framework.
pub struct Framework {
    cluster: Arc<Cluster>,
    engine: SparkletContext,
    bus: Arc<Broker>,
    topology: Topology,
    consistency: Consistency,
    remote_link_bytes_per_sec: Option<u64>,
    result_cache: Arc<ResultCache>,
    columnar: ColumnarStore,
    /// Highest timestamp streaming ingestion has committed through;
    /// `i64::MIN` until the first commit. Windows ending past this are
    /// "open": cached results for them are dropped on every commit.
    ingest_watermark: AtomicI64,
}

/// The bus topic raw log lines are published to.
pub const RAW_LOG_TOPIC: &str = "raw-logs";

/// The dead-letter topic: lines that failed parsing and events that
/// exhausted their store retries land here for inspection/requeue.
pub const RAW_LOG_DLQ_TOPIC: &str = "raw-logs.dlq";

impl Framework {
    /// Builds the cluster, creates the schema, loads `nodeinfos` and
    /// `eventtypes`, and provisions the streaming topic.
    pub fn new(cfg: FrameworkConfig) -> Result<Framework, DbError> {
        let cluster = Arc::new(Cluster::new(ClusterConfig {
            nodes: cfg.db_nodes,
            replication_factor: cfg.replication_factor,
            vnodes: cfg.vnodes,
        }));
        cluster.set_block_cache_budget(cfg.block_cache_bytes);
        tables::create_all(&cluster)?;
        nodeinfo::populate(&cluster, &cfg.topology)?;
        for etype in EVENT_CATALOG {
            cluster.insert(
                "eventtypes",
                vec![
                    ("name", Value::text(etype.name)),
                    ("class", Value::text(format!("{:?}", etype.class))),
                    ("severity", Value::text(format!("{:?}", etype.severity))),
                    ("description", Value::text(etype.description)),
                ],
                cfg.consistency,
            )?;
        }
        let bus = Arc::new(Broker::new());
        bus.create_topic(RAW_LOG_TOPIC, cfg.db_nodes.max(1))
            .expect("fresh broker");
        bus.create_topic(RAW_LOG_DLQ_TOPIC, cfg.db_nodes.max(1))
            .expect("fresh broker");
        let workers = cfg.workers.unwrap_or(cfg.db_nodes).max(1);
        Ok(Framework {
            cluster,
            engine: SparkletContext::new(workers),
            bus,
            topology: cfg.topology,
            consistency: cfg.consistency,
            remote_link_bytes_per_sec: cfg.remote_link_bytes_per_sec,
            result_cache: Arc::new(ResultCache::new(cfg.result_cache_bytes)),
            columnar: ColumnarStore::new(cfg.block_cache_bytes),
            ingest_watermark: AtomicI64::new(i64::MIN),
        })
    }

    /// The storage cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The processing engine.
    pub fn engine(&self) -> &SparkletContext {
        &self.engine
    }

    /// The message bus.
    pub fn bus(&self) -> &Arc<Broker> {
        &self.bus
    }

    /// The monitored machine.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The framework's default consistency level.
    pub fn consistency(&self) -> Consistency {
        self.consistency
    }

    /// The analytics result cache (see [`crate::server::cache`]).
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.result_cache
    }

    /// The columnar block store (see [`crate::columnar`]). Shares the
    /// block-cache byte budget; a zero budget disables columnar scans.
    pub fn columnar(&self) -> &ColumnarStore {
        &self.columnar
    }

    /// The streaming ingest watermark: every event at or below this
    /// timestamp has been committed by streaming ingestion. `i64::MIN`
    /// until the first commit, so every window counts as open before
    /// streaming starts.
    pub fn ingest_watermark(&self) -> i64 {
        self.ingest_watermark.load(Ordering::SeqCst)
    }

    /// Records a streaming commit through `watermark_ms`: advances the
    /// ingest watermark (monotonically) and drops every open-window entry
    /// from the result cache. Called by
    /// [`StreamIngester`](crate::etl::stream::StreamIngester) after each
    /// successful offset commit.
    pub fn note_ingest_commit(&self, watermark_ms: i64) {
        self.ingest_watermark
            .fetch_max(watermark_ms, Ordering::SeqCst);
        self.result_cache.invalidate_open();
    }

    /// The `(table, partition)` pairs a window read touches — one per
    /// hour bucket, mirroring [`Framework::window_plans`]. Result-cache
    /// entries list these as their dependencies so a write to any of them
    /// invalidates the memoized answer.
    pub fn window_deps(
        table: &str,
        fixed: Option<&str>,
        from_ms: i64,
        to_ms: i64,
    ) -> Vec<(String, Key)> {
        Self::window_plans(table, fixed, from_ms, to_ms)
            .into_iter()
            .map(|p| (p.table, p.partition))
            .collect()
    }

    /// Inserts one event into both event tables (the dual views).
    pub fn insert_event(&self, ev: &EventRecord) -> Result<(), DbError> {
        self.cluster
            .insert_owned("event_by_time", ev.to_time_row(), self.consistency)?;
        self.cluster
            .insert_owned("event_by_location", ev.to_location_row(), self.consistency)
    }

    /// Inserts a batch of events into both views; returns rows written.
    pub fn insert_events(&self, events: &[EventRecord]) -> Result<usize, DbError> {
        let time_rows = events.iter().map(EventRecord::to_time_row).collect();
        let loc_rows = events.iter().map(EventRecord::to_location_row).collect();
        let a = self
            .cluster
            .insert_batch("event_by_time", time_rows, self.consistency)?;
        let b = self
            .cluster
            .insert_batch("event_by_location", loc_rows, self.consistency)?;
        Ok(a + b)
    }

    /// Inserts an application run into all four denormalized views.
    pub fn insert_app_run(&self, run: &AppRun) -> Result<(), DbError> {
        self.cluster
            .insert_owned("application_by_time", run.to_time_row(), self.consistency)?;
        self.cluster
            .insert_owned("application_by_name", run.to_name_row(), self.consistency)?;
        self.cluster
            .insert_owned("application_by_user", run.to_user_row(), self.consistency)?;
        self.cluster.insert_owned(
            "application_by_location",
            run.to_location_row(),
            self.consistency,
        )
    }

    /// Builds one [`ReadPlan`] per hour bucket of `[from_ms, to_ms)` —
    /// partition key `(hour)` or `(hour, fixed)` — for a single
    /// [`Cluster::read_multi`] scatter instead of an hour-by-hour loop.
    /// Sparklet scans consume the same batches (see
    /// [`Framework::scan_events_rdd`]), so driver-side reads and
    /// owner-pinned tasks share one planning path.
    pub fn window_plans(
        table: &str,
        fixed: Option<&str>,
        from_ms: i64,
        to_ms: i64,
    ) -> Vec<ReadPlan> {
        keys::hours_in(from_ms, to_ms)
            .map(|hour| {
                let mut pk = vec![Value::BigInt(hour)];
                if let Some(f) = fixed {
                    pk.push(Value::text(f));
                }
                ReadPlan {
                    table: table.to_owned(),
                    partition: Key(pk),
                    range: full_range(),
                    limit: None,
                    descending: false,
                }
            })
            .collect()
    }

    /// Driver-side read of one event type over `[from_ms, to_ms)`: one
    /// scatter-gather batch across all hour partitions.
    pub fn events_by_type(
        &self,
        event_type: &str,
        from_ms: i64,
        to_ms: i64,
    ) -> Result<Vec<EventRecord>, DbError> {
        let plans = Self::window_plans("event_by_time", Some(event_type), from_ms, to_ms);
        let batches = self.cluster.read_multi(&plans, self.consistency)?;
        Ok(batches
            .iter()
            .flatten()
            .filter_map(|r| EventRecord::from_time_row(event_type, r))
            .filter(|e| e.ts_ms >= from_ms && e.ts_ms < to_ms)
            .collect())
    }

    /// Columnar analytics scan of one event type over `[from_ms, to_ms)`.
    ///
    /// Every **closed** hour — one whose end sits at or below the ingest
    /// watermark — is served from a cached [`ColumnBlock`], lazily built
    /// from the merged read-repaired row path on first touch and
    /// validated against the partition's data version and the topology
    /// epoch (both snapshotted *before* the rows are read, exactly like
    /// the rasdb block cache). Blocks whose timestamp zone map cannot
    /// overlap the window are skipped without touching a row. All
    /// uncached closed hours are fetched in one [`Cluster::read_multi`]
    /// scatter. Open hours — and every hour when the columnar budget is
    /// zero — fall back to [`Framework::scan_events_rdd`], the
    /// locality-pinned MapReduce path, so live data keeps the paper's
    /// co-location behavior; the watermark is a single cut, so open
    /// hours are always a contiguous tail of the window and one RDD scan
    /// covers them. Results are byte-identical to
    /// [`Framework::events_by_type`] in all cases.
    pub fn scan_window(
        &self,
        event_type: &str,
        from_ms: i64,
        to_ms: i64,
    ) -> Result<WindowScan, DbError> {
        let watermark = self.ingest_watermark();
        let epoch = self.cluster.topology_epoch();
        let columnar_on = self.columnar.enabled();
        struct Pending {
            slot: usize,
            hour: i64,
            version: u64,
        }
        let mut slots: Vec<Option<HourScan>> = Vec::new();
        let mut pending: Vec<Pending> = Vec::new();
        let mut plans: Vec<ReadPlan> = Vec::new();
        let mut open_from: Option<i64> = None;
        for hour in keys::hours_in(from_ms, to_ms) {
            let hour_end = hour.saturating_add(1).saturating_mul(HOUR_MS);
            if !(columnar_on && hour_end <= watermark) {
                // First open hour: every later hour is open too, so the
                // rest of the window goes to the RDD scan in one piece.
                open_from = Some(from_ms.max(hour.saturating_mul(HOUR_MS)));
                break;
            }
            let slot = slots.len();
            slots.push(None);
            let partition = Key(vec![Value::BigInt(hour), Value::text(event_type)]);
            let version = self.cluster.data_version("event_by_time", &partition);
            if let Some(block) = self.columnar.get(hour, event_type, version, epoch) {
                if block.overlaps(from_ms, to_ms) {
                    slots[slot] = Some(HourScan::Columnar(block));
                } else {
                    self.columnar.note_zone_skip();
                }
                continue;
            }
            pending.push(Pending {
                slot,
                hour,
                version,
            });
            plans.push(ReadPlan {
                table: "event_by_time".to_owned(),
                partition,
                range: full_range(),
                limit: None,
                descending: false,
            });
        }
        if !plans.is_empty() {
            let batches = self.cluster.read_multi(&plans, self.consistency)?;
            for (p, rows) in pending.iter().zip(batches) {
                let block = Arc::new(ColumnBlock::build(p.hour, event_type, &rows));
                self.columnar.insert(Arc::clone(&block), p.version, epoch);
                if block.overlaps(from_ms, to_ms) {
                    slots[p.slot] = Some(HourScan::Columnar(block));
                } else {
                    self.columnar.note_zone_skip();
                }
            }
        }
        let mut parts: Vec<HourScan> = slots.into_iter().flatten().collect();
        if let Some(lo) = open_from {
            // One RDD scan covers the whole open tail; split the collected
            // events (hour-ordered by partition order) back into per-hour
            // parts to keep the one-part-per-hour contract.
            let events = self.scan_events_rdd(event_type, lo, to_ms).collect();
            let mut rest = events.into_iter().peekable();
            for hour in keys::hours_in(lo, to_ms) {
                let mut run = Vec::new();
                while rest.peek().is_some_and(|e| keys::hour_of(e.ts_ms) == hour) {
                    run.push(rest.next().expect("peeked"));
                }
                parts.push(HourScan::Rows(run));
            }
        }
        Ok(WindowScan {
            from_ms,
            to_ms,
            parts,
        })
    }

    /// Driver-side read of everything one source reported in a window —
    /// served by `event_by_location` without scanning other sources, as
    /// one scatter-gather batch.
    pub fn events_by_source(
        &self,
        source: &str,
        from_ms: i64,
        to_ms: i64,
    ) -> Result<Vec<EventRecord>, DbError> {
        let plans = Self::window_plans("event_by_location", Some(source), from_ms, to_ms);
        let batches = self.cluster.read_multi(&plans, self.consistency)?;
        Ok(batches
            .iter()
            .flatten()
            .filter_map(|r| EventRecord::from_location_row(source, r))
            .filter(|e| e.ts_ms >= from_ms && e.ts_ms < to_ms)
            .collect())
    }

    /// A locality-aware scan: one RDD partition per `(hour, type)` store
    /// partition — the same plan batch `events_by_type` scatters — each
    /// pinned to the executor co-located with the partition's primary
    /// replica. When a partition is computed on a *different* executor,
    /// the loader pays a marshalling round trip (encode + decode of every
    /// cell) — the cost a co-located deployment avoids.
    pub fn scan_events_rdd(&self, event_type: &str, from_ms: i64, to_ms: i64) -> Rdd<EventRecord> {
        let workers = self.engine.workers();
        let plans = Self::window_plans("event_by_time", Some(event_type), from_ms, to_ms);
        let cluster = Arc::clone(&self.cluster);
        let event_type = event_type.to_owned();
        let consistency = self.consistency;
        let link = self.remote_link_bytes_per_sec;
        let owner_of = {
            let cluster = Arc::clone(&cluster);
            move |plan: &ReadPlan| Some(cluster.owners(&plan.partition)[0].0 % workers)
        };
        self.engine
            .from_planned(plans, owner_of.clone(), move |plan| {
                let preferred = owner_of(plan);
                let rows = cluster
                    .read_multi(std::slice::from_ref(plan), consistency)
                    .map(|mut b| b.pop().unwrap_or_default())
                    .unwrap_or_default();
                let records: Vec<EventRecord> = rows
                    .iter()
                    .filter_map(|r| EventRecord::from_time_row(&event_type, r))
                    .filter(|e| e.ts_ms >= from_ms && e.ts_ms < to_ms)
                    .collect();
                if current_worker() == preferred {
                    records
                } else {
                    remote_transfer(records, link)
                }
            })
    }

    /// Application runs of a user.
    pub fn apps_by_user(&self, user: &str) -> Result<Vec<AppRun>, DbError> {
        let rows = self
            .cluster
            .select("application_by_user")
            .partition(vec![Value::text(user)])
            .run(self.consistency)?;
        Ok(rows
            .iter()
            .filter_map(|r| AppRun::from_row(r, Some(user), None))
            .collect())
    }

    /// Application runs of an application name.
    pub fn apps_by_name(&self, app: &str) -> Result<Vec<AppRun>, DbError> {
        let rows = self
            .cluster
            .select("application_by_name")
            .partition(vec![Value::text(app)])
            .run(self.consistency)?;
        Ok(rows
            .iter()
            .filter_map(|r| AppRun::from_row(r, None, Some(app)))
            .collect())
    }

    /// Application runs that *started* in a window, as one scatter-gather
    /// batch across the hour partitions.
    pub fn apps_by_time(&self, from_ms: i64, to_ms: i64) -> Result<Vec<AppRun>, DbError> {
        let plans = Self::window_plans("application_by_time", None, from_ms, to_ms);
        let batches = self.cluster.read_multi(&plans, self.consistency)?;
        Ok(batches
            .iter()
            .flatten()
            .filter_map(|r| AppRun::from_row(r, None, None))
            .filter(|a| a.start_ms >= from_ms && a.start_ms < to_ms)
            .collect())
    }

    /// Application runs whose allocation head sits in a cabinet.
    pub fn apps_by_location(&self, cabinet: i64) -> Result<Vec<AppRun>, DbError> {
        let rows = self
            .cluster
            .select("application_by_location")
            .partition(vec![Value::BigInt(cabinet)])
            .run(self.consistency)?;
        Ok(rows
            .iter()
            .filter_map(|r| AppRun::from_row(r, None, None))
            .collect())
    }

    /// Batch ETL entry point (see [`crate::etl::batch`]).
    pub fn batch_import(
        &self,
        lines: &[loggen::trace::RawLine],
    ) -> Result<crate::etl::batch::ImportReport, DbError> {
        crate::etl::batch::import(self, lines)
    }

    /// Chunk-parallel batch ETL over a raw newline-separated corpus —
    /// the zero-copy fast path with optional predicate pushdown and
    /// backend selection (see [`crate::etl::batch::import_bytes`]).
    pub fn batch_import_bytes(
        &self,
        corpus: Vec<u8>,
        opts: &crate::etl::batch::ImportOptions,
    ) -> Result<crate::etl::batch::ImportReport, DbError> {
        crate::etl::batch::import_bytes(self, corpus, opts)
    }

    /// Human-readable table of every instrument in the global telemetry
    /// registry (counters, gauges, and latency histograms with
    /// p50/p95/p99/max). For the machine-readable form use the `metrics`
    /// query op or `GET /v1/metrics`.
    pub fn telemetry_report(&self) -> String {
        telemetry::global().render_table()
    }
}

/// Simulates fetching a record set from a non-co-located storage node:
/// marshals every row (real CPU work) and charges the wire time of the
/// marshalled bytes against the configured link bandwidth.
pub fn remote_transfer(
    records: Vec<EventRecord>,
    link_bytes_per_sec: Option<u64>,
) -> Vec<EventRecord> {
    let bytes: usize = records.iter().map(EventRecord::marshalled_size).sum();
    let records = marshal_roundtrip(records);
    if let Some(bw) = link_bytes_per_sec {
        let nanos = (bytes as u128 * 1_000_000_000) / bw.max(1) as u128;
        std::thread::sleep(std::time::Duration::from_nanos(nanos as u64));
    }
    records
}

/// Simulates network marshalling of a record set: every cell is encoded to
/// bytes and decoded back (what a non-co-located read pays per row).
pub fn marshal_roundtrip(records: Vec<EventRecord>) -> Vec<EventRecord> {
    records
        .into_iter()
        .map(|ev| {
            let values = vec![
                Value::Timestamp(ev.ts_ms),
                Value::text(&ev.event_type),
                Value::text(&ev.source),
                Value::Int(ev.amount),
                Value::text(&ev.raw),
            ];
            let mut buf = Vec::with_capacity(64 + ev.raw.len());
            for v in &values {
                v.encode_into(&mut buf);
            }
            let mut rest: &[u8] = &buf;
            let mut decoded = Vec::with_capacity(values.len());
            while !rest.is_empty() {
                let (v, r) = Value::decode(rest).expect("self-encoded data");
                decoded.push(v);
                rest = r;
            }
            EventRecord {
                ts_ms: decoded[0].as_i64().expect("ts"),
                event_type: decoded[1].as_text().expect("type").to_owned(),
                source: decoded[2].as_text().expect("source").to_owned(),
                amount: decoded[3].as_i64().expect("amount") as i32,
                raw: decoded[4].as_text().expect("raw").to_owned(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::keys::HOUR_MS;

    fn small() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 4,
            replication_factor: 2,
            vnodes: 8,
            workers: None,
            topology: Topology::scaled(2, 2),
            consistency: Consistency::Quorum,
            ..Default::default()
        })
        .unwrap()
    }

    fn ev(ts: i64, t: &str, src: &str) -> EventRecord {
        EventRecord {
            ts_ms: ts,
            event_type: t.to_owned(),
            source: src.to_owned(),
            amount: 1,
            raw: format!("{t} on {src}"),
        }
    }

    #[test]
    fn framework_boots_with_schema_and_metadata() {
        let fw = small();
        assert_eq!(fw.cluster().table_names().len(), 9);
        // nodeinfos populated for the whole topology.
        let info = nodeinfo::lookup(fw.cluster(), "c1-1c2s7n3")
            .unwrap()
            .unwrap();
        assert_eq!(info.index, fw.topology().node_count() - 1);
        // eventtypes loaded.
        let rows = fw
            .cluster()
            .select("eventtypes")
            .partition(vec![Value::text("MCE")])
            .run(Consistency::Quorum)
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn dual_views_stay_consistent() {
        let fw = small();
        for i in 0..20 {
            fw.insert_event(&ev(i * 60_000, "MCE", &format!("c0-0c0s{}n0", i % 8)))
                .unwrap();
        }
        let by_type = fw.events_by_type("MCE", 0, HOUR_MS).unwrap();
        assert_eq!(by_type.len(), 20);
        let by_src = fw.events_by_source("c0-0c0s3n0", 0, HOUR_MS).unwrap();
        assert!(!by_src.is_empty());
        // Every by-source record also appears in the by-type view.
        for e in &by_src {
            assert!(by_type.contains(e));
        }
    }

    #[test]
    fn time_window_filters_are_half_open() {
        let fw = small();
        fw.insert_event(&ev(999, "MCE", "c0-0c0s0n0")).unwrap();
        fw.insert_event(&ev(1000, "MCE", "c0-0c0s0n0")).unwrap();
        let got = fw.events_by_type("MCE", 0, 1000).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ts_ms, 999);
    }

    #[test]
    fn scan_rdd_covers_hours_and_counts_match() {
        let fw = small();
        for h in 0..3i64 {
            for i in 0..10 {
                fw.insert_event(&ev(h * HOUR_MS + i * 1000, "GPU_DBE", "c0-0c0s0n0"))
                    .unwrap();
            }
        }
        let rdd = fw.scan_events_rdd("GPU_DBE", 0, 3 * HOUR_MS);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.count(), 30);
        // Scans respect the window even mid-hour.
        let rdd = fw.scan_events_rdd("GPU_DBE", 5_000, HOUR_MS + 5_000);
        assert_eq!(rdd.count(), 10);
    }

    #[test]
    fn app_run_views_roundtrip() {
        let fw = small();
        let run = AppRun {
            apid: 42,
            user: "usr0007".into(),
            app: "LAMMPS".into(),
            start_ms: HOUR_MS + 5,
            end_ms: 2 * HOUR_MS,
            node_first: 100,
            node_last: 163,
            exit_code: 0,
            other_info: Default::default(),
        };
        fw.insert_app_run(&run).unwrap();
        assert_eq!(fw.apps_by_user("usr0007").unwrap(), vec![run.clone()]);
        assert_eq!(fw.apps_by_name("LAMMPS").unwrap(), vec![run.clone()]);
        assert_eq!(fw.apps_by_time(0, 3 * HOUR_MS).unwrap(), vec![run.clone()]);
        assert_eq!(fw.apps_by_location(run.head_cabinet()).unwrap(), vec![run]);
        assert!(fw.apps_by_user("nobody").unwrap().is_empty());
    }

    /// The whole-window scan must materialize byte-identically to the
    /// row path across the closed/open split.
    #[test]
    fn scan_window_matches_row_path_across_the_watermark() {
        let fw = small();
        for h in 0..3i64 {
            for i in 0..12 {
                fw.insert_event(&ev(
                    h * HOUR_MS + i * 5 * 60_000,
                    "MCE",
                    &format!("c0-0c0s{}n1", i % 4),
                ))
                .unwrap();
            }
        }
        // Hours 0 and 1 closed, hour 2 open.
        fw.note_ingest_commit(2 * HOUR_MS);
        let scan = fw.scan_window("MCE", 30 * 60_000, 3 * HOUR_MS).unwrap();
        assert_eq!(scan.parts.len(), 3);
        assert!(matches!(scan.parts[0], HourScan::Columnar(_)));
        assert!(matches!(scan.parts[1], HourScan::Columnar(_)));
        assert!(
            matches!(scan.parts[2], HourScan::Rows(_)),
            "the open hour stays on the row path"
        );
        let rows = fw.events_by_type("MCE", 30 * 60_000, 3 * HOUR_MS).unwrap();
        assert_eq!(scan.records(), rows);
        // A warm rescan answers from the cache, still identically.
        assert!(fw.columnar().stats().hits == 0);
        let warm = fw.scan_window("MCE", 30 * 60_000, 3 * HOUR_MS).unwrap();
        assert_eq!(warm.records(), rows);
        assert_eq!(fw.columnar().stats().hits, 2);
        // A write into a closed hour bumps its data version: the stale
        // block is dropped and rebuilt lazily.
        fw.insert_event(&ev(500, "MCE", "c0-0c0s0n0")).unwrap();
        let repaired = fw.scan_window("MCE", 0, 3 * HOUR_MS).unwrap();
        assert_eq!(
            repaired.records(),
            fw.events_by_type("MCE", 0, 3 * HOUR_MS).unwrap()
        );
        assert!(fw.columnar().stats().invalidations >= 1);
    }

    /// Zone-map edge cases: empty windows produce no parts, blocks that
    /// cannot overlap the window are skipped without a scan, and the hour
    /// containing the watermark itself is still open.
    #[test]
    fn scan_window_zone_map_edges() {
        let fw = small();
        // Events only in the first 10 minutes of hour 0.
        for i in 0..10 {
            fw.insert_event(&ev(i * 60_000, "GPU_DBE", "c0-0c0s0n0"))
                .unwrap();
        }
        fw.note_ingest_commit(2 * HOUR_MS);
        // Empty window (from == to): no hours, no parts.
        assert!(fw
            .scan_window("GPU_DBE", HOUR_MS, HOUR_MS)
            .unwrap()
            .parts
            .is_empty());
        // Prime the hour-0 block with a full scan.
        let full = fw.scan_window("GPU_DBE", 0, HOUR_MS).unwrap();
        assert_eq!(full.records().len(), 10);
        let skips = fw.columnar().stats().zone_skips;
        // A late sub-window of hour 0 misses the block's [0, 9min] zone
        // map entirely: the block is skipped, nothing is scanned.
        let late = fw.scan_window("GPU_DBE", 30 * 60_000, HOUR_MS).unwrap();
        assert!(late.parts.is_empty());
        assert!(late.records().is_empty());
        assert_eq!(fw.columnar().stats().zone_skips, skips + 1);
        // Window edges inside the block binary-search to exact rows.
        let edge = fw.scan_window("GPU_DBE", 60_000, 4 * 60_000).unwrap();
        assert_eq!(
            edge.records(),
            fw.events_by_type("GPU_DBE", 60_000, 4 * 60_000).unwrap()
        );
        // The watermark sits exactly on the hour-2 boundary: hour 2 ends
        // past it, so it is open and served by rows even when empty.
        let boundary = fw.scan_window("GPU_DBE", 2 * HOUR_MS, 3 * HOUR_MS).unwrap();
        assert_eq!(boundary.parts.len(), 1);
        assert!(matches!(boundary.parts[0], HourScan::Rows(_)));
    }

    /// With a zero budget the store is disabled and every hour — closed
    /// or not — stays on the row path.
    #[test]
    fn zero_budget_disables_columnar_scans() {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            block_cache_bytes: 0,
            ..Default::default()
        })
        .unwrap();
        fw.insert_event(&ev(5, "MCE", "c0-0c0s0n0")).unwrap();
        fw.note_ingest_commit(HOUR_MS);
        let scan = fw.scan_window("MCE", 0, HOUR_MS).unwrap();
        assert!(matches!(scan.parts[0], HourScan::Rows(_)));
        assert_eq!(fw.columnar().stats().blocks_built, 0);
    }

    #[test]
    fn marshal_roundtrip_is_identity() {
        let records = vec![
            ev(1, "MCE", "c0-0c0s0n0"),
            ev(2, "LUSTRE_ERR", "c1-0c0s0n0"),
        ];
        assert_eq!(marshal_roundtrip(records.clone()), records);
    }

    #[test]
    fn remote_transfer_charges_wire_time() {
        let records: Vec<EventRecord> = (0..50)
            .map(|i| {
                let mut e = ev(i, "LUSTRE_ERR", "c0-0c0s0n0");
                e.raw = "x".repeat(1000);
                e
            })
            .collect();
        // ~52 KB at 1 MB/s ≈ 52 ms; at None it must be fast.
        let t = std::time::Instant::now();
        let out = remote_transfer(records.clone(), Some(1_000_000));
        let slow = t.elapsed();
        assert_eq!(out, records);
        assert!(slow >= std::time::Duration::from_millis(30), "{slow:?}");
        let t = std::time::Instant::now();
        let _ = remote_transfer(records, None);
        assert!(t.elapsed() < slow);
    }
}
