//! Cross-correlation between event-type series: the symmetric companion
//! to transfer entropy for spotting co-occurring event types.

use crate::analytics::bin_scan;
use crate::framework::Framework;
use rasdb::error::DbError;

/// Pearson correlation of two equal-length series; 0 when either side is
/// constant (no variance ⇒ correlation undefined, reported as 0).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let (a, b) = (&a[..n], &b[..n]);
    let mean_a = a.iter().sum::<f64>() / n as f64;
    let mean_b = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..n {
        let da = a[i] - mean_a;
        let db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Cross-correlation at integer lags `-max_lag..=max_lag`: positive lag
/// means `a` leads `b`. Returns `(lag, r)` pairs.
pub fn cross_correlation(a: &[f64], b: &[f64], max_lag: usize) -> Vec<(i64, f64)> {
    let mut out = Vec::with_capacity(2 * max_lag + 1);
    let max_lag = max_lag as i64;
    for lag in -max_lag..=max_lag {
        let r = if lag >= 0 {
            let k = lag as usize;
            if k >= a.len() {
                0.0
            } else {
                pearson(&a[..a.len() - k], &b[k..])
            }
        } else {
            let k = (-lag) as usize;
            if k >= b.len() {
                0.0
            } else {
                pearson(&a[k..], &b[..b.len() - k])
            }
        };
        out.push((lag, r));
    }
    out
}

/// Cross-correlation between two event types over `[from, to)`.
pub fn event_cross_correlation(
    fw: &Framework,
    type_a: &str,
    type_b: &str,
    from_ms: i64,
    to_ms: i64,
    bin_ms: i64,
    max_lag: usize,
) -> Result<Vec<(i64, f64)>, DbError> {
    let sa = fw.scan_window(type_a, from_ms, to_ms)?;
    let sb = fw.scan_window(type_b, from_ms, to_ms)?;
    let a = bin_scan(&sa, bin_ms);
    let b = bin_scan(&sb, bin_ms);
    Ok(cross_correlation(&a, &b, max_lag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation_and_anticorrelation() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec![4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_report_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn lagged_signal_peaks_at_its_lag() {
        // b follows a two steps later.
        let a: Vec<f64> = (0..100).map(|i| ((i % 7) as f64).sin()).collect();
        let b: Vec<f64> = (0..100)
            .map(|i| if i >= 2 { a[i - 2] } else { 0.0 })
            .collect();
        let xc = cross_correlation(&a, &b, 5);
        let peak = xc.iter().max_by(|x, y| x.1.total_cmp(&y.1)).unwrap();
        assert_eq!(peak.0, 2, "{xc:?}");
        assert!(peak.1 > 0.95);
    }

    #[test]
    fn lag_window_is_symmetric_in_size() {
        let a = vec![1.0, 2.0, 1.0, 2.0];
        let xc = cross_correlation(&a, &a, 2);
        assert_eq!(xc.len(), 5);
        assert_eq!(xc[2].0, 0);
        assert!((xc[2].1 - 1.0).abs() < 1e-12, "self-correlation at lag 0");
    }

    #[test]
    fn oversized_lags_yield_zero() {
        let a = vec![1.0, 2.0];
        let xc = cross_correlation(&a, &a, 10);
        assert!(xc.iter().any(|(lag, r)| *lag == 10 && *r == 0.0));
    }
}
