//! Event histograms over time: the temporal map's bar view.

use crate::analytics::bin_scan;
use crate::framework::Framework;
use rasdb::error::DbError;

/// A binned event histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Window start (ms).
    pub from_ms: i64,
    /// Bin width (ms).
    pub bin_ms: i64,
    /// Counts per bin.
    pub bins: Vec<f64>,
}

impl Histogram {
    /// Start timestamp of bin `i`.
    pub fn bin_start(&self, i: usize) -> i64 {
        self.from_ms + i as i64 * self.bin_ms
    }

    /// The busiest bin `(index, count)`.
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.bins
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, c)| (i, *c))
    }

    /// Total event mass.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }
}

/// Histogram of one event type over `[from, to)` with `bin_ms` bins,
/// computed by a columnar window scan (closed hours bin straight off the
/// timestamp/amount columns; open hours fall back to the row path).
pub fn event_histogram(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
    bin_ms: i64,
) -> Result<Histogram, DbError> {
    let scan = fw.scan_window(event_type, from_ms, to_ms)?;
    Ok(Histogram {
        from_ms,
        bin_ms,
        bins: bin_scan(&scan, bin_ms),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::event::EventRecord;
    use crate::model::keys::HOUR_MS;
    use loggen::topology::Topology;

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn histogram_bins_and_peak() {
        let fw = fw();
        for (ts, n) in [(0i64, 2), (HOUR_MS, 5), (2 * HOUR_MS, 1)] {
            for i in 0..n {
                fw.insert_event(&EventRecord {
                    ts_ms: ts + i * 60_000,
                    event_type: "MCE".into(),
                    source: "c0-0c0s0n0".into(),
                    amount: 1,
                    raw: String::new(),
                })
                .unwrap();
            }
        }
        let h = event_histogram(&fw, "MCE", 0, 3 * HOUR_MS, HOUR_MS).unwrap();
        assert_eq!(h.bins, vec![2.0, 5.0, 1.0]);
        assert_eq!(h.peak(), Some((1, 5.0)));
        assert_eq!(h.total(), 8.0);
        assert_eq!(h.bin_start(1), HOUR_MS);
    }

    #[test]
    fn empty_histogram() {
        let fw = fw();
        let h = event_histogram(&fw, "MCE", 0, HOUR_MS, 60_000).unwrap();
        assert_eq!(h.bins.len(), 60);
        assert_eq!(h.total(), 0.0);
        assert_eq!(h.peak().unwrap().1, 0.0);
    }
}
