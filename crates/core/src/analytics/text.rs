//! Text analytics over raw log messages (paper §III-C): tokenization,
//! word counts ("a simple word counts, which is rapidly executed by Spark,
//! can locate the source of the problem"), and TF-IDF, where "a Lustre
//! message is treated as a document".

use crate::framework::Framework;
use rasdb::error::DbError;
use std::collections::HashMap;

/// Words carrying no diagnostic signal in system logs.
const STOPWORDS: &[&str] = &[
    "the",
    "with",
    "was",
    "for",
    "this",
    "will",
    "using",
    "service",
    "operations",
    "progress",
    "and",
    "that",
    "are",
    "not",
    "all",
    "from",
    "has",
    "have",
    "been",
    "its",
];

/// Splits a message into analyzable tokens: alphanumeric runs, length ≥ 3,
/// not purely numeric (hex object ids like `OST0041` survive; raw numbers
/// and addresses don't), stopwords removed, case preserved.
pub fn tokenize(message: &str) -> Vec<String> {
    message
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|tok| tok.len() >= 3)
        .filter(|tok| !tok.bytes().all(|b| b.is_ascii_hexdigit()))
        .filter(|tok| !STOPWORDS.contains(&tok.to_ascii_lowercase().as_str()))
        .map(str::to_owned)
        .collect()
}

/// Sequential word count (the baseline the parallel path is compared to).
pub fn word_count_serial(messages: &[String]) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for msg in messages {
        for tok in tokenize(msg) {
            *counts.entry(tok).or_insert(0) += 1;
        }
    }
    counts
}

/// Parallel word count on the engine (flat_map → reduce_by_key).
pub fn word_count_parallel(fw: &Framework, messages: Vec<String>) -> HashMap<String, u64> {
    let nparts = (fw.engine().workers() * 2).max(1);
    fw.engine()
        .parallelize(messages, nparts)
        .flat_map(|msg| tokenize(&msg))
        .map(|tok| (tok, 1u64))
        .reduce_by_key(fw.engine().workers().max(1), |a, b| a + b)
        .collect()
        .into_iter()
        .collect()
}

/// The `k` heaviest terms, ties broken alphabetically (deterministic).
pub fn top_k(counts: &HashMap<String, u64>, k: usize) -> Vec<(String, u64)> {
    let mut entries: Vec<(String, u64)> = counts.iter().map(|(w, c)| (w.clone(), *c)).collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

/// TF-IDF over messages-as-documents. Returns per-term aggregate scores
/// (sum of tf·idf over documents), which surfaces terms that are frequent
/// in *some* messages but not ubiquitous boilerplate.
pub fn tf_idf(messages: &[String]) -> HashMap<String, f64> {
    let n_docs = messages.len();
    if n_docs == 0 {
        return HashMap::new();
    }
    let mut doc_freq: HashMap<String, u64> = HashMap::new();
    let mut per_doc: Vec<HashMap<String, u64>> = Vec::with_capacity(n_docs);
    for msg in messages {
        let mut tf: HashMap<String, u64> = HashMap::new();
        for tok in tokenize(msg) {
            *tf.entry(tok).or_insert(0) += 1;
        }
        for term in tf.keys() {
            *doc_freq.entry(term.clone()).or_insert(0) += 1;
        }
        per_doc.push(tf);
    }
    let mut scores: HashMap<String, f64> = HashMap::new();
    for tf in &per_doc {
        let len: u64 = tf.values().sum();
        if len == 0 {
            continue;
        }
        for (term, count) in tf {
            let idf = (n_docs as f64 / doc_freq[term] as f64).ln();
            *scores.entry(term.clone()).or_insert(0.0) += (*count as f64 / len as f64) * idf;
        }
    }
    scores
}

/// Word count over the raw messages of one event type in a window — the
/// paper's Fig 7 workflow (raw Lustre lines → word bubbles → dead OST).
///
/// Closed hours tokenize straight off the columnar raw-message buffer
/// (zero-copy slices, no per-row `String` materialization); open hours
/// collect their messages from the row path and count on the engine.
/// Both merge by summing, so totals are independent of the split.
pub fn word_count_events(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
) -> Result<HashMap<String, u64>, DbError> {
    let scan = fw.scan_window(event_type, from_ms, to_ms)?;
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut open_messages: Vec<String> = Vec::new();
    for part in &scan.parts {
        match part {
            crate::columnar::HourScan::Columnar(b) => {
                for i in b.range(from_ms, to_ms) {
                    for tok in tokenize(b.raw(i)) {
                        *counts.entry(tok).or_insert(0) += 1;
                    }
                }
            }
            crate::columnar::HourScan::Rows(events) => {
                open_messages.extend(events.iter().map(|e| e.raw.clone()));
            }
        }
    }
    if !open_messages.is_empty() {
        for (tok, n) in word_count_parallel(fw, open_messages) {
            *counts.entry(tok).or_insert(0) += n;
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use loggen::topology::Topology;

    #[test]
    fn tokenizer_keeps_object_ids_drops_numbers_and_stopwords() {
        let toks = tokenize(
            "LustreError: 11-0: atlas1-OST0041-osc-ffff8803a9c6a000: Communicating with \
             10.36.226.77@o2ib, operation ost_read failed with -110",
        );
        assert!(toks.contains(&"OST0041".to_owned()));
        assert!(toks.contains(&"LustreError".to_owned()));
        assert!(toks.contains(&"ost_read".to_owned()) || toks.contains(&"read".to_owned()));
        assert!(!toks.iter().any(|t| t == "with"), "{toks:?}");
        assert!(!toks.iter().any(|t| t == "110"), "{toks:?}");
        assert!(!toks.iter().any(|t| t == "ffff8803a9c6a000"), "hex dropped");
    }

    #[test]
    fn short_tokens_dropped() {
        assert!(tokenize("an ab xyz").contains(&"xyz".to_owned()));
        assert_eq!(tokenize("a bb cc").len(), 0);
    }

    #[test]
    fn serial_and_parallel_word_counts_agree() {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            ..Default::default()
        })
        .unwrap();
        let messages: Vec<String> = (0..200)
            .map(|i| {
                format!(
                    "LustreError OST{:04x} timeout ost_write retry{}",
                    i % 5,
                    i % 3
                )
            })
            .collect();
        let serial = word_count_serial(&messages);
        let parallel = word_count_parallel(&fw, messages);
        assert_eq!(serial, parallel);
        assert_eq!(serial["LustreError"], 200);
    }

    #[test]
    fn top_k_is_deterministic_under_ties() {
        let mut counts = HashMap::new();
        counts.insert("bbb".to_owned(), 5u64);
        counts.insert("aaa".to_owned(), 5);
        counts.insert("ccc".to_owned(), 9);
        let top = top_k(&counts, 2);
        assert_eq!(top, vec![("ccc".to_owned(), 9), ("aaa".to_owned(), 5)]);
        assert_eq!(top_k(&counts, 0), vec![]);
    }

    #[test]
    fn tf_idf_downweights_ubiquitous_terms() {
        // "LustreError" appears in every message (idf = 0); "OST0041" in few.
        let mut messages: Vec<String> = (0..50)
            .map(|i| format!("LustreError timeout node{i}"))
            .collect();
        messages.push("LustreError OST0041 refused".to_owned());
        messages.push("LustreError OST0041 refused again".to_owned());
        let scores = tf_idf(&messages);
        assert_eq!(scores["LustreError"], 0.0);
        assert!(scores["OST0041"] > 0.5, "{}", scores["OST0041"]);
    }

    #[test]
    fn tf_idf_empty_input() {
        assert!(tf_idf(&[]).is_empty());
    }
}
