//! The analytics layer: everything the paper's big-data processing unit
//! computes for the frontend — heat maps, distributions, histograms,
//! correlation measures, transfer entropy, text analytics, and synopses.

pub mod composite;
pub mod correlation;
pub mod distribution;
pub mod heatmap;
pub mod histogram;
pub mod prediction;
pub mod profiles;
pub mod synopsis;
pub mod text;
pub mod transfer_entropy;

use crate::columnar::{HourScan, WindowScan};
use crate::model::event::EventRecord;

/// Bins a columnar window scan into fixed windows, summing amounts — the
/// columnar twin of [`bin_counts`], and bit-identical to it: both sum
/// the same integer amounts into `f64` bins (exact below 2^53), so cold,
/// cached, and row-path series analytics agree byte-for-byte.
///
/// Closed hours narrow to the in-window row range by binary search on
/// the sorted timestamp column; open hours arrive pre-filtered from the
/// row path.
pub fn bin_scan(scan: &WindowScan, bin_ms: i64) -> Vec<f64> {
    assert!(bin_ms > 0, "bin width must be positive");
    let (from_ms, to_ms) = (scan.from_ms, scan.to_ms);
    let nbins = ((to_ms - from_ms).max(0) as usize).div_ceil(bin_ms as usize);
    let mut bins = vec![0.0f64; nbins];
    for part in &scan.parts {
        match part {
            HourScan::Columnar(b) => {
                for i in b.range(from_ms, to_ms) {
                    bins[((b.ts[i] - from_ms) / bin_ms) as usize] += b.amounts[i] as f64;
                }
            }
            HourScan::Rows(events) => {
                for e in events {
                    bins[((e.ts_ms - from_ms) / bin_ms) as usize] += e.amount as f64;
                }
            }
        }
    }
    bins
}

/// Bins events into fixed windows over `[from_ms, to_ms)`, summing
/// amounts: the shared preprocessing step for the series analytics.
pub fn bin_counts(events: &[EventRecord], from_ms: i64, to_ms: i64, bin_ms: i64) -> Vec<f64> {
    assert!(bin_ms > 0, "bin width must be positive");
    let nbins = ((to_ms - from_ms).max(0) as usize).div_ceil(bin_ms as usize);
    let mut bins = vec![0.0f64; nbins];
    for e in events {
        if e.ts_ms < from_ms || e.ts_ms >= to_ms {
            continue;
        }
        let idx = ((e.ts_ms - from_ms) / bin_ms) as usize;
        bins[idx] += e.amount as f64;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: i64, amount: i32) -> EventRecord {
        EventRecord {
            ts_ms: ts,
            event_type: "MCE".into(),
            source: "n".into(),
            amount,
            raw: String::new(),
        }
    }

    #[test]
    fn binning_sums_amounts_per_window() {
        let events = vec![ev(0, 1), ev(500, 2), ev(1000, 1), ev(2999, 1)];
        let bins = bin_counts(&events, 0, 3000, 1000);
        assert_eq!(bins, vec![3.0, 1.0, 1.0]);
    }

    #[test]
    fn out_of_window_events_ignored() {
        let events = vec![ev(-5, 1), ev(3000, 1), ev(1500, 1)];
        let bins = bin_counts(&events, 0, 3000, 1000);
        assert_eq!(bins, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn partial_last_bin_included() {
        let bins = bin_counts(&[ev(2400, 1)], 0, 2500, 1000);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[2], 1.0);
    }

    #[test]
    fn empty_window_yields_no_bins() {
        assert!(bin_counts(&[], 100, 100, 1000).is_empty());
    }
}
