//! Event synopses: per-day, per-type, per-hour summary rows that power the
//! temporal map without re-scanning full event partitions.

use crate::columnar::HourScan;
use crate::framework::Framework;
use crate::model::keys::{self, DAY_MS, HOUR_MS};
use rasdb::error::DbError;
use rasdb::types::Value;
use std::collections::HashSet;

/// One synopsis row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynopsisRow {
    /// Hour bucket (hours since epoch).
    pub hour: i64,
    /// Event type.
    pub event_type: String,
    /// Total occurrences (amount-weighted).
    pub events: i64,
    /// Distinct source nodes.
    pub nodes: i64,
}

/// Computes and stores synopses for every catalog type over whole days
/// covering `[from_ms, to_ms)`. Returns rows written.
///
/// Each scan part covers exactly one hour partition, so the per-hour
/// aggregate falls out of the part itself: closed hours sum the amount
/// column and count distinct dictionary ids (set-bitmap over the block
/// dictionary, no string hashing); open hours fall back to per-event
/// accumulation. Both produce the same integer cells.
pub fn build_synopsis(fw: &Framework, from_ms: i64, to_ms: i64) -> Result<usize, DbError> {
    let mut written = 0;
    for etype in loggen::events::EVENT_CATALOG {
        let scan = fw.scan_window(etype.name, from_ms, to_ms)?;
        for part in &scan.parts {
            let (hour, count, nodes) = match part {
                HourScan::Columnar(b) => {
                    let r = b.range(from_ms, to_ms);
                    if r.is_empty() {
                        continue;
                    }
                    let mut seen = vec![false; b.dict.len()];
                    let mut count = 0i64;
                    for i in r {
                        count += b.amounts[i] as i64;
                        seen[b.source_ids[i] as usize] = true;
                    }
                    let nodes = seen.iter().filter(|s| **s).count() as i64;
                    (b.hour, count, nodes)
                }
                HourScan::Rows(events) => {
                    if events.is_empty() {
                        continue;
                    }
                    let mut sources: HashSet<&str> = HashSet::new();
                    let mut count = 0i64;
                    for e in events {
                        count += e.amount as i64;
                        sources.insert(e.source.as_str());
                    }
                    (keys::hour_of(events[0].ts_ms), count, sources.len() as i64)
                }
            };
            fw.cluster().insert(
                "eventsynopsis",
                vec![
                    ("day", Value::BigInt(hour * HOUR_MS / DAY_MS)),
                    ("type", Value::text(etype.name)),
                    ("hour", Value::BigInt(hour)),
                    ("events", Value::BigInt(count)),
                    ("nodes", Value::BigInt(nodes)),
                ],
                fw.consistency(),
            )?;
            written += 1;
        }
    }
    Ok(written)
}

/// Reads one day's synopsis rows (all types, hour-ordered per type).
pub fn read_synopsis(fw: &Framework, day: i64) -> Result<Vec<SynopsisRow>, DbError> {
    let rows = fw
        .cluster()
        .select("eventsynopsis")
        .partition(vec![Value::BigInt(day)])
        .run(fw.consistency())?;
    Ok(rows
        .iter()
        .filter_map(|r| {
            Some(SynopsisRow {
                event_type: r.clustering.0.first()?.as_text()?.to_owned(),
                hour: r.clustering.0.get(1)?.as_i64()?,
                events: r.cell("events")?.as_i64()?,
                nodes: r.cell("nodes")?.as_i64()?,
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::event::EventRecord;
    use loggen::topology::Topology;

    #[test]
    fn synopsis_counts_events_and_distinct_nodes() {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap();
        // Hour 0: 3 events on 2 nodes; hour 1: 1 event.
        for (ts, src, amount) in [
            (100, "c0-0c0s0n0", 1),
            (200, "c0-0c0s0n0", 2),
            (300, "c0-0c0s1n0", 1),
            (HOUR_MS + 50, "c0-0c0s0n0", 1),
        ] {
            fw.insert_event(&EventRecord {
                ts_ms: ts,
                event_type: "MCE".into(),
                source: src.into(),
                amount,
                raw: String::new(),
            })
            .unwrap();
        }
        let written = build_synopsis(&fw, 0, DAY_MS).unwrap();
        assert_eq!(written, 2);
        let rows = read_synopsis(&fw, 0).unwrap();
        assert_eq!(rows.len(), 2);
        let h0 = rows.iter().find(|r| r.hour == 0).unwrap();
        assert_eq!(h0.events, 4, "amount-weighted");
        assert_eq!(h0.nodes, 2);
        assert_eq!(h0.event_type, "MCE");
        let h1 = rows.iter().find(|r| r.hour == 1).unwrap();
        assert_eq!(h1.events, 1);
    }

    #[test]
    fn empty_day_reads_empty() {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(build_synopsis(&fw, 0, DAY_MS).unwrap(), 0);
        assert!(read_synopsis(&fw, 0).unwrap().is_empty());
    }
}
