//! Heat maps over the physical system map (paper Fig 5): per-cabinet and
//! per-node event counts for a type over a selected interval, computed by
//! a columnar window scan with dictionary-id pushdown: closed hours
//! resolve each *distinct* source cname to a node index once per block
//! dictionary entry instead of once per row, and blocks outside the
//! window are zone-map-skipped. Open hours fall back to the row path —
//! the locality-aware MapReduce scan of
//! [`crate::framework::Framework::scan_events_rdd`] — so counts are
//! byte-identical either way.

use crate::columnar::HourScan;
use crate::framework::Framework;
use loggen::topology::NODES_PER_CABINET;
use rasdb::error::DbError;

/// Per-cabinet counts plus summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatMap {
    /// Event count per cabinet (row-major floor order).
    pub cabinets: Vec<f64>,
    /// Total events.
    pub total: f64,
    /// Index of the hottest cabinet.
    pub hottest: usize,
    /// Mean per-cabinet count.
    pub mean: f64,
    /// Standard deviation of per-cabinet counts.
    pub stddev: f64,
}

impl HeatMap {
    /// Cabinets whose count exceeds `mean + k·stddev` — the "unusually
    /// higher ... in some parts of the system" detector.
    pub fn outliers(&self, k: f64) -> Vec<usize> {
        let limit = self.mean + k * self.stddev;
        self.cabinets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > limit)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Sums event amounts into `size` groups, where `group` maps a parsed
/// node index to its group slot — the shared columnar accumulation for
/// both heat-map granularities.
fn grouped_counts(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
    size: usize,
    group: impl Fn(usize) -> usize,
) -> Result<Vec<f64>, DbError> {
    let topo = fw.topology();
    let mut slots = vec![0.0f64; size];
    let scan = fw.scan_window(event_type, from_ms, to_ms)?;
    for part in &scan.parts {
        match part {
            HourScan::Columnar(b) => {
                // Dictionary-id pushdown: each distinct source parses
                // once per block, rows then group by a table lookup.
                let groups: Vec<Option<usize>> = b
                    .dict
                    .iter()
                    .map(|s| topo.parse_cname(s).map(&group).filter(|&g| g < size))
                    .collect();
                for i in b.range(from_ms, to_ms) {
                    if let Some(g) = groups[b.source_ids[i] as usize] {
                        slots[g] += b.amounts[i] as f64;
                    }
                }
            }
            HourScan::Rows(events) => {
                for e in events {
                    if let Some(g) = topo.parse_cname(&e.source).map(&group) {
                        if g < size {
                            slots[g] += e.amount as f64;
                        }
                    }
                }
            }
        }
    }
    Ok(slots)
}

/// Computes the cabinet heat map for one event type over `[from, to)`
/// as a columnar window scan grouped per cabinet.
pub fn cabinet_heatmap(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
) -> Result<HeatMap, DbError> {
    let ncab = fw.topology().cabinet_count();
    let cabinets = grouped_counts(fw, event_type, from_ms, to_ms, ncab, |idx| {
        idx / NODES_PER_CABINET
    })?;
    Ok(summarize(cabinets))
}

/// Computes per-node counts for one event type (node-level heat map).
pub fn node_heatmap(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
) -> Result<Vec<f64>, DbError> {
    let n = fw.topology().node_count();
    grouped_counts(fw, event_type, from_ms, to_ms, n, |idx| idx)
}

fn summarize(cabinets: Vec<f64>) -> HeatMap {
    let total: f64 = cabinets.iter().sum();
    let n = cabinets.len().max(1) as f64;
    let mean = total / n;
    let var = cabinets.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
    let hottest = cabinets
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    HeatMap {
        cabinets,
        total,
        hottest,
        mean,
        stddev: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::event::EventRecord;
    use crate::model::keys::HOUR_MS;
    use loggen::topology::Topology;

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 4,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    fn seed(fw: &Framework, cab: usize, n: usize) {
        let topo = fw.topology();
        for i in 0..n {
            let node = cab * NODES_PER_CABINET + (i % NODES_PER_CABINET);
            fw.insert_event(&EventRecord {
                ts_ms: (i as i64) * 1000,
                event_type: "MCE".into(),
                source: topo.node(node).cname,
                amount: 1,
                raw: String::new(),
            })
            .unwrap();
        }
    }

    #[test]
    fn hotspot_cabinet_dominates() {
        let fw = fw();
        seed(&fw, 2, 50);
        seed(&fw, 0, 5);
        let hm = cabinet_heatmap(&fw, "MCE", 0, HOUR_MS).unwrap();
        assert_eq!(hm.cabinets.len(), 4);
        assert_eq!(hm.hottest, 2);
        assert_eq!(hm.total, 55.0);
        assert_eq!(hm.cabinets[2], 50.0);
        assert_eq!(hm.outliers(1.0), vec![2]);
    }

    #[test]
    fn empty_interval_is_flat() {
        let fw = fw();
        let hm = cabinet_heatmap(&fw, "MCE", 0, HOUR_MS).unwrap();
        assert_eq!(hm.total, 0.0);
        assert!(hm.outliers(1.0).is_empty());
    }

    #[test]
    fn node_heatmap_localizes_to_exact_nodes() {
        let fw = fw();
        let cname = fw.topology().node(7).cname;
        for i in 0..10 {
            fw.insert_event(&EventRecord {
                ts_ms: i * 100,
                event_type: "GPU_DBE".into(),
                source: cname.clone(),
                amount: 2,
                raw: String::new(),
            })
            .unwrap();
        }
        let nodes = node_heatmap(&fw, "GPU_DBE", 0, HOUR_MS).unwrap();
        assert_eq!(nodes[7], 20.0);
        assert_eq!(nodes.iter().sum::<f64>(), 20.0);
    }

    #[test]
    fn amounts_weight_the_map() {
        let fw = fw();
        fw.insert_event(&EventRecord {
            ts_ms: 0,
            event_type: "MCE".into(),
            source: fw.topology().node(0).cname,
            amount: 7,
            raw: String::new(),
        })
        .unwrap();
        let hm = cabinet_heatmap(&fw, "MCE", 0, HOUR_MS).unwrap();
        assert_eq!(hm.cabinets[0], 7.0);
    }
}
