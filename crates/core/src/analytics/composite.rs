//! Composite-event mining (paper §V future work: "new and composite event
//! types will need to be defined ... this will involve event mining
//! techniques rather than text pattern matching").
//!
//! Mines sequential association rules `A ⇒ B within Δt` from the event
//! stream: how often does type B follow type A within a window, at a given
//! spatial scope? Rules carry support, confidence, and lift so spurious
//! co-occurrence (both types merely being frequent) is filtered out.

use crate::framework::Framework;
use crate::model::event::EventRecord;
use loggen::topology::{Topology, NODES_PER_CABINET};
use rasdb::error::DbError;
use std::collections::{BTreeMap, HashMap};

/// Spatial scope at which a follow-up counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// B must occur on the same node as A.
    Node,
    /// B must occur in the same cabinet.
    Cabinet,
    /// Anywhere in the system.
    System,
}

/// One mined rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Antecedent event type (A).
    pub antecedent: String,
    /// Consequent event type (B).
    pub consequent: String,
    /// Follow-up window.
    pub window_ms: i64,
    /// Count of A occurrences followed by a B within the window/scope.
    pub support: u64,
    /// `support / count(A)`.
    pub confidence: f64,
    /// Confidence relative to B's base probability of appearing in any
    /// window of the same length (how surprising the rule is).
    pub lift: f64,
}

/// Mines rules from an explicit event stream (sorted or not).
pub fn mine_rules(
    events: &[EventRecord],
    topo: &Topology,
    window_ms: i64,
    scope: Scope,
    min_support: u64,
) -> Vec<Rule> {
    assert!(window_ms > 0, "window must be positive");
    let mut sorted: Vec<&EventRecord> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts_ms);
    if sorted.is_empty() {
        return Vec::new();
    }
    let span_ms = (sorted.last().expect("nonempty").ts_ms - sorted[0].ts_ms).max(window_ms);

    let node_of = |e: &EventRecord| topo.parse_cname(&e.source);
    let in_scope = |a: &EventRecord, b: &EventRecord| match scope {
        Scope::System => true,
        Scope::Node => match (node_of(a), node_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
        Scope::Cabinet => match (node_of(a), node_of(b)) {
            (Some(x), Some(y)) => x / NODES_PER_CABINET == y / NODES_PER_CABINET,
            _ => false,
        },
    };

    let mut type_counts: HashMap<&str, u64> = HashMap::new();
    for e in &sorted {
        *type_counts.entry(e.event_type.as_str()).or_default() += 1;
    }

    // For each A occurrence, which B types appear within the window? Count
    // each (A-occurrence, B-type) pair at most once (existential rule).
    let mut pair_support: BTreeMap<(String, String), u64> = BTreeMap::new();
    for (i, a) in sorted.iter().enumerate() {
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for b in sorted[i + 1..].iter() {
            if b.ts_ms - a.ts_ms > window_ms {
                break;
            }
            if b.event_type == a.event_type || !in_scope(a, b) {
                continue;
            }
            if seen.insert(b.event_type.as_str()) {
                *pair_support
                    .entry((a.event_type.clone(), b.event_type.clone()))
                    .or_default() += 1;
            }
        }
    }

    let mut rules: Vec<Rule> = pair_support
        .into_iter()
        .filter(|(_, s)| *s >= min_support)
        .map(|((a, b), support)| {
            let count_a = type_counts[a.as_str()] as f64;
            let confidence = support as f64 / count_a;
            // Base probability that at least one B lands in a random window
            // of this length (Poisson approximation over the whole span).
            let rate_b = type_counts[b.as_str()] as f64 / span_ms as f64;
            let base = 1.0 - (-rate_b * window_ms as f64).exp();
            let lift = if base > 0.0 { confidence / base } else { 0.0 };
            Rule {
                antecedent: a,
                consequent: b,
                window_ms,
                support,
                confidence,
                lift,
            }
        })
        .collect();
    rules.sort_by(|a, b| {
        b.lift
            .total_cmp(&a.lift)
            .then_with(|| b.support.cmp(&a.support))
    });
    rules
}

/// Mines rules straight from the store over `[from, to)`.
pub fn mine_from_store(
    fw: &Framework,
    from_ms: i64,
    to_ms: i64,
    window_ms: i64,
    scope: Scope,
    min_support: u64,
) -> Result<Vec<Rule>, DbError> {
    let mut events = Vec::new();
    for etype in loggen::events::EVENT_CATALOG {
        events.extend(fw.events_by_type(etype.name, from_ms, to_ms)?);
    }
    Ok(mine_rules(
        &events,
        fw.topology(),
        window_ms,
        scope,
        min_support,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::scaled(2, 2)
    }

    fn ev(ts: i64, t: &str, node: usize, topo: &Topology) -> EventRecord {
        EventRecord {
            ts_ms: ts,
            event_type: t.into(),
            source: topo.node(node).cname,
            amount: 1,
            raw: String::new(),
        }
    }

    #[test]
    fn causal_pair_mines_with_high_lift() {
        let topo = topo();
        let mut events = Vec::new();
        // 50 NET_LINK each followed by LUSTRE_ERR 5s later on the same node,
        // spread over a long span so the base rate stays low.
        for i in 0..50i64 {
            events.push(ev(i * 600_000, "NET_LINK", (i % 8) as usize, &topo));
            events.push(ev(
                i * 600_000 + 5_000,
                "LUSTRE_ERR",
                (i % 8) as usize,
                &topo,
            ));
        }
        let rules = mine_rules(&events, &topo, 10_000, Scope::Node, 5);
        let top = &rules[0];
        assert_eq!(top.antecedent, "NET_LINK");
        assert_eq!(top.consequent, "LUSTRE_ERR");
        assert_eq!(top.support, 50);
        assert!((top.confidence - 1.0).abs() < 1e-9);
        assert!(top.lift > 10.0, "lift {}", top.lift);
        // The reverse rule has no support at this window.
        assert!(!rules
            .iter()
            .any(|r| r.antecedent == "LUSTRE_ERR" && r.consequent == "NET_LINK"));
    }

    #[test]
    fn scope_restricts_matches() {
        let topo = topo();
        // A on node 0 (cabinet 0), B on node 96 (cabinet 1): only System
        // scope should connect them.
        let events = vec![ev(0, "MCE", 0, &topo), ev(1_000, "KERNEL_PANIC", 96, &topo)];
        assert!(mine_rules(&events, &topo, 5_000, Scope::Node, 1).is_empty());
        assert!(mine_rules(&events, &topo, 5_000, Scope::Cabinet, 1).is_empty());
        let rules = mine_rules(&events, &topo, 5_000, Scope::System, 1);
        assert_eq!(rules.len(), 1);
        // Same cabinet, different node: cabinet scope matches, node doesn't.
        let events = vec![ev(0, "MCE", 0, &topo), ev(1_000, "KERNEL_PANIC", 5, &topo)];
        assert_eq!(
            mine_rules(&events, &topo, 5_000, Scope::Cabinet, 1).len(),
            1
        );
        assert!(mine_rules(&events, &topo, 5_000, Scope::Node, 1).is_empty());
    }

    #[test]
    fn existential_counting_ignores_duplicates_in_window() {
        let topo = topo();
        // One A followed by three Bs in-window: support must be 1.
        let events = vec![
            ev(0, "MCE", 0, &topo),
            ev(100, "MEM_ECC", 0, &topo),
            ev(200, "MEM_ECC", 0, &topo),
            ev(300, "MEM_ECC", 0, &topo),
        ];
        let rules = mine_rules(&events, &topo, 1_000, Scope::Node, 1);
        let rule = rules
            .iter()
            .find(|r| r.antecedent == "MCE")
            .expect("rule mined");
        assert_eq!(rule.support, 1);
    }

    #[test]
    fn min_support_filters_noise() {
        let topo = topo();
        let events = vec![ev(0, "MCE", 0, &topo), ev(10, "DVS_ERR", 0, &topo)];
        assert!(mine_rules(&events, &topo, 100, Scope::Node, 2).is_empty());
        assert_eq!(mine_rules(&events, &topo, 100, Scope::Node, 1).len(), 1);
    }

    #[test]
    fn window_boundary_is_inclusive() {
        let topo = topo();
        let events = vec![ev(0, "MCE", 0, &topo), ev(1_000, "DVS_ERR", 0, &topo)];
        assert_eq!(mine_rules(&events, &topo, 1_000, Scope::Node, 1).len(), 1);
        assert!(mine_rules(&events, &topo, 999, Scope::Node, 1).is_empty());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(mine_rules(&[], &topo(), 1_000, Scope::System, 1).is_empty());
    }
}
