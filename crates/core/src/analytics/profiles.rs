//! Application profiles (paper §V future work: "develop application
//! profiles in terms of event occurred during its runs ... to understand
//! correlations between application runtime characteristics and variations
//! observed in the system").
//!
//! A profile is the per-type event rate (events per node-hour) an
//! application experiences across its runs. Profiles support comparison
//! between applications and flagging of anomalous individual runs.

use crate::framework::Framework;
use crate::model::apprun::AppRun;
use rasdb::error::DbError;
use std::collections::BTreeMap;

/// Aggregate event profile of one application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name.
    pub app: String,
    /// Runs aggregated.
    pub runs: usize,
    /// Total node-hours across runs.
    pub node_hours: f64,
    /// Events per node-hour, by event type.
    pub rates: BTreeMap<String, f64>,
}

/// Event exposure of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunExposure {
    /// The run.
    pub apid: i64,
    /// Node-hours of the run.
    pub node_hours: f64,
    /// Event counts by type overlapping the run.
    pub counts: BTreeMap<String, u64>,
}

impl RunExposure {
    /// This run's per-type rates.
    pub fn rates(&self) -> BTreeMap<String, f64> {
        self.counts
            .iter()
            .map(|(t, c)| (t.clone(), *c as f64 / self.node_hours.max(1e-9)))
            .collect()
    }
}

fn node_hours(run: &AppRun) -> f64 {
    run.width() as f64 * (run.end_ms - run.start_ms).max(0) as f64 / 3_600_000.0
}

/// Computes the per-run event exposures of an application.
pub fn run_exposures(fw: &Framework, app: &str) -> Result<Vec<RunExposure>, DbError> {
    let runs = fw.apps_by_name(app)?;
    let topo = fw.topology();
    let mut out = Vec::with_capacity(runs.len());
    for run in &runs {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        // All events any of the run's nodes reported during the run.
        for etype in loggen::events::EVENT_CATALOG {
            let events = fw.events_by_type(etype.name, run.start_ms, run.end_ms)?;
            let n: u64 = events
                .iter()
                .filter(|e| {
                    topo.parse_cname(&e.source).is_some_and(|idx| {
                        (run.node_first as usize) <= idx && idx <= run.node_last as usize
                    })
                })
                .map(|e| e.amount as u64)
                .sum();
            if n > 0 {
                counts.insert(etype.name.to_owned(), n);
            }
        }
        out.push(RunExposure {
            apid: run.apid,
            node_hours: node_hours(run),
            counts,
        });
    }
    Ok(out)
}

/// Builds the aggregate profile of an application.
pub fn application_profile(fw: &Framework, app: &str) -> Result<AppProfile, DbError> {
    let exposures = run_exposures(fw, app)?;
    let node_hours: f64 = exposures.iter().map(|e| e.node_hours).sum();
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for e in &exposures {
        for (t, c) in &e.counts {
            *totals.entry(t.clone()).or_default() += c;
        }
    }
    let rates = totals
        .into_iter()
        .map(|(t, c)| (t, c as f64 / node_hours.max(1e-9)))
        .collect();
    Ok(AppProfile {
        app: app.to_owned(),
        runs: exposures.len(),
        node_hours,
        rates,
    })
}

/// L1 distance between two profiles' rate vectors (union of types).
pub fn profile_distance(a: &AppProfile, b: &AppProfile) -> f64 {
    let mut types: std::collections::BTreeSet<&String> = a.rates.keys().collect();
    types.extend(b.rates.keys());
    types
        .into_iter()
        .map(|t| {
            (a.rates.get(t).copied().unwrap_or(0.0) - b.rates.get(t).copied().unwrap_or(0.0)).abs()
        })
        .sum()
}

/// Flags runs whose total event rate deviates from the application's mean
/// by more than `k_sigma` standard deviations. Returns `(apid, z-score)`
/// sorted by descending score.
pub fn anomalous_runs(fw: &Framework, app: &str, k_sigma: f64) -> Result<Vec<(i64, f64)>, DbError> {
    let exposures = run_exposures(fw, app)?;
    if exposures.len() < 2 {
        return Ok(Vec::new());
    }
    let rates: Vec<f64> = exposures
        .iter()
        .map(|e| e.counts.values().sum::<u64>() as f64 / e.node_hours.max(1e-9))
        .collect();
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    let var = rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rates.len() as f64;
    let sd = var.sqrt();
    if sd <= 0.0 {
        return Ok(Vec::new());
    }
    let mut flagged: Vec<(i64, f64)> = exposures
        .iter()
        .zip(&rates)
        .filter_map(|(e, r)| {
            let z = (r - mean) / sd;
            (z > k_sigma).then_some((e.apid, z))
        })
        .collect();
    flagged.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok(flagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::event::EventRecord;
    use crate::model::keys::HOUR_MS;
    use loggen::topology::Topology;

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    fn run(fw: &Framework, apid: i64, app: &str, start: i64, end: i64, n0: i64, n1: i64) {
        fw.insert_app_run(&AppRun {
            apid,
            user: "u".into(),
            app: app.into(),
            start_ms: start,
            end_ms: end,
            node_first: n0,
            node_last: n1,
            exit_code: 0,
            other_info: Default::default(),
        })
        .unwrap();
    }

    fn ev(fw: &Framework, ts: i64, t: &str, node: usize, amount: i32) {
        fw.insert_event(&EventRecord {
            ts_ms: ts,
            event_type: t.into(),
            source: fw.topology().node(node).cname,
            amount,
            raw: String::new(),
        })
        .unwrap();
    }

    #[test]
    fn profile_rates_are_per_node_hour() {
        let fw = fw();
        // 4 nodes × 1 hour = 4 node-hours; 8 MCE events inside.
        run(&fw, 1, "VASP", 0, HOUR_MS, 0, 3);
        for i in 0..8 {
            ev(&fw, 1000 + i, "MCE", (i % 4) as usize, 1);
        }
        // Events outside the allocation don't count.
        ev(&fw, 1000, "MCE", 50, 1);
        let p = application_profile(&fw, "VASP").unwrap();
        assert_eq!(p.runs, 1);
        assert!((p.node_hours - 4.0).abs() < 1e-9);
        assert!((p.rates["MCE"] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn profile_distance_is_symmetric_zero_on_self() {
        let a = AppProfile {
            app: "A".into(),
            runs: 1,
            node_hours: 1.0,
            rates: [("MCE".to_owned(), 2.0)].into_iter().collect(),
        };
        let b = AppProfile {
            app: "B".into(),
            runs: 1,
            node_hours: 1.0,
            rates: [("LUSTRE_ERR".to_owned(), 1.0)].into_iter().collect(),
        };
        assert_eq!(profile_distance(&a, &a), 0.0);
        assert_eq!(profile_distance(&a, &b), profile_distance(&b, &a));
        assert_eq!(profile_distance(&a, &b), 3.0);
    }

    #[test]
    fn anomalous_run_is_flagged() {
        let fw = fw();
        // Five quiet runs plus one that ate a burst.
        for apid in 0..6i64 {
            run(&fw, apid, "XGC", apid * HOUR_MS, (apid + 1) * HOUR_MS, 0, 3);
            ev(&fw, apid * HOUR_MS + 500, "MEM_ECC", 0, 1);
        }
        for i in 0..40 {
            ev(
                &fw,
                5 * HOUR_MS + 1000 + i,
                "LUSTRE_ERR",
                (i % 4) as usize,
                1,
            );
        }
        let flagged = anomalous_runs(&fw, "XGC", 1.5).unwrap();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].0, 5);
        assert!(flagged[0].1 > 1.5);
    }

    #[test]
    fn no_runs_no_anomalies() {
        let fw = fw();
        assert!(anomalous_runs(&fw, "GHOST", 1.0).unwrap().is_empty());
        let p = application_profile(&fw, "GHOST").unwrap();
        assert_eq!(p.runs, 0);
        assert!(p.rates.is_empty());
    }

    #[test]
    fn exposures_split_by_run() {
        let fw = fw();
        run(&fw, 1, "S3D", 0, HOUR_MS, 0, 1);
        run(&fw, 2, "S3D", 2 * HOUR_MS, 3 * HOUR_MS, 0, 1);
        ev(&fw, 100, "MCE", 0, 3); // run 1 only
        let exposures = run_exposures(&fw, "S3D").unwrap();
        assert_eq!(exposures.len(), 2);
        let e1 = exposures.iter().find(|e| e.apid == 1).unwrap();
        let e2 = exposures.iter().find(|e| e.apid == 2).unwrap();
        assert_eq!(e1.counts.get("MCE"), Some(&3));
        assert!(e2.counts.is_empty());
        assert_eq!(e1.rates()["MCE"], 1.5);
    }
}
