//! Distributions of event occurrences "over cabinets, blades, nodes, and
//! applications" (paper §III-B) — the complementary view to the heat map.

use crate::columnar::HourScan;
use crate::framework::Framework;
use crate::model::apprun::AppRun;
use crate::model::event::EventRecord;
use loggen::topology::{NODES_PER_BLADE, NODES_PER_CABINET};
use rasdb::error::DbError;
use std::collections::HashMap;

/// What to group occurrence counts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// Per cabinet.
    Cabinet,
    /// Per blade.
    Blade,
    /// Per node.
    Node,
    /// Per application that was running on the source node at the time.
    Application,
}

/// A labeled distribution, sorted by descending count.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// `(label, count)` pairs, heaviest first.
    pub entries: Vec<(String, f64)>,
    /// Events that matched no group (e.g. no app running there).
    pub unattributed: f64,
}

impl Distribution {
    /// The top-k entries.
    pub fn top(&self, k: usize) -> &[(String, f64)] {
        &self.entries[..k.min(self.entries.len())]
    }
}

/// Computes the distribution of one event type over `[from, to)` by a
/// columnar window scan: closed hours parse each *distinct* source once
/// per block dictionary and pre-render its group label, so rows reduce
/// to a table lookup; open hours take the same per-event path as
/// [`distribution_of`]. Both accumulate identical integer sums, so the
/// result is byte-identical to the row path.
pub fn distribution(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
    group_by: GroupBy,
) -> Result<Distribution, DbError> {
    let topo = fw.topology();
    let scan = fw.scan_window(event_type, from_ms, to_ms)?;

    // Application grouping needs the runs active in the events' span —
    // derived from the in-window min/max timestamps, exactly as
    // `distribution_of` derives them from its materialized slice.
    let runs = if group_by == GroupBy::Application {
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for part in &scan.parts {
            match part {
                HourScan::Columnar(b) => {
                    let r = b.range(from_ms, to_ms);
                    if !r.is_empty() {
                        lo = lo.min(b.ts[r.start]);
                        hi = hi.max(b.ts[r.end - 1]);
                    }
                }
                HourScan::Rows(events) => {
                    for e in events {
                        lo = lo.min(e.ts_ms);
                        hi = hi.max(e.ts_ms);
                    }
                }
            }
        }
        if lo <= hi {
            // Runs may have started up to a day before the first event.
            fw.apps_by_time(lo - 24 * 3_600_000, hi + 1)?
        } else {
            Vec::new()
        }
    } else {
        Vec::new()
    };

    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut unattributed = 0.0;
    for part in &scan.parts {
        match part {
            HourScan::Columnar(b) => {
                let idxs: Vec<Option<usize>> = b.dict.iter().map(|s| topo.parse_cname(s)).collect();
                // One pre-rendered label per distinct source for the
                // static groupings (None = unattributed).
                let labels: Vec<Option<String>> = match group_by {
                    GroupBy::Cabinet => idxs
                        .iter()
                        .map(|i| i.map(|i| format!("cab{}", i / NODES_PER_CABINET)))
                        .collect(),
                    GroupBy::Blade => idxs
                        .iter()
                        .map(|i| i.map(|i| format!("blade{}", i / NODES_PER_BLADE)))
                        .collect(),
                    GroupBy::Node => idxs
                        .iter()
                        .zip(&b.dict)
                        .map(|(i, s)| i.map(|_| s.clone()))
                        .collect(),
                    GroupBy::Application => Vec::new(),
                };
                for i in b.range(from_ms, to_ms) {
                    let sid = b.source_ids[i] as usize;
                    let amount = b.amounts[i] as f64;
                    let Some(idx) = idxs[sid] else {
                        unattributed += amount;
                        continue;
                    };
                    if group_by == GroupBy::Application {
                        match find_run(&runs, b.ts[i], idx) {
                            Some(r) => *counts.entry(r.app.clone()).or_default() += amount,
                            None => unattributed += amount,
                        }
                    } else if let Some(label) = &labels[sid] {
                        match counts.get_mut(label) {
                            Some(c) => *c += amount,
                            None => {
                                counts.insert(label.clone(), amount);
                            }
                        }
                    }
                }
            }
            HourScan::Rows(events) => {
                for e in events {
                    let amount = e.amount as f64;
                    let Some(idx) = topo.parse_cname(&e.source) else {
                        unattributed += amount;
                        continue;
                    };
                    match group_by {
                        GroupBy::Cabinet => {
                            *counts
                                .entry(format!("cab{}", idx / NODES_PER_CABINET))
                                .or_default() += amount;
                        }
                        GroupBy::Blade => {
                            *counts
                                .entry(format!("blade{}", idx / NODES_PER_BLADE))
                                .or_default() += amount;
                        }
                        GroupBy::Node => *counts.entry(e.source.clone()).or_default() += amount,
                        GroupBy::Application => match find_run(&runs, e.ts_ms, idx) {
                            Some(r) => *counts.entry(r.app.clone()).or_default() += amount,
                            None => unattributed += amount,
                        },
                    }
                }
            }
        }
    }
    Ok(finish(counts, unattributed))
}

/// The first run covering `(ts, node idx)` — shared by both scan paths
/// and [`distribution_of`], so attribution order is identical everywhere.
fn find_run(runs: &[AppRun], ts_ms: i64, idx: usize) -> Option<&AppRun> {
    runs.iter().find(|r| {
        r.running_at(ts_ms) && (r.node_first as usize) <= idx && idx <= r.node_last as usize
    })
}

/// Sorts the accumulated counts into the canonical heaviest-first order.
fn finish(counts: HashMap<String, f64>, unattributed: f64) -> Distribution {
    let mut entries: Vec<(String, f64)> = counts.into_iter().collect();
    entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Distribution {
        entries,
        unattributed,
    }
}

/// Groups an already-fetched event stream (reused by context analytics).
pub fn distribution_of(
    fw: &Framework,
    events: &[EventRecord],
    group_by: GroupBy,
) -> Result<Distribution, DbError> {
    let topo = fw.topology();
    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut unattributed = 0.0;

    // Application grouping needs the runs active in the events' span.
    let runs = if group_by == GroupBy::Application {
        let (lo, hi) = events.iter().fold((i64::MAX, i64::MIN), |(lo, hi), e| {
            (lo.min(e.ts_ms), hi.max(e.ts_ms))
        });
        if lo <= hi {
            // Runs may have started up to a day before the first event.
            fw.apps_by_time(lo - 24 * 3_600_000, hi + 1)?
        } else {
            Vec::new()
        }
    } else {
        Vec::new()
    };

    for e in events {
        let Some(idx) = topo.parse_cname(&e.source) else {
            unattributed += e.amount as f64;
            continue;
        };
        match group_by {
            GroupBy::Cabinet => {
                let cab = idx / NODES_PER_CABINET;
                *counts.entry(format!("cab{cab}")).or_default() += e.amount as f64;
            }
            GroupBy::Blade => {
                let blade = idx / NODES_PER_BLADE;
                *counts.entry(format!("blade{blade}")).or_default() += e.amount as f64;
            }
            GroupBy::Node => {
                *counts.entry(e.source.clone()).or_default() += e.amount as f64;
            }
            GroupBy::Application => match find_run(&runs, e.ts_ms, idx) {
                Some(r) => *counts.entry(r.app.clone()).or_default() += e.amount as f64,
                None => unattributed += e.amount as f64,
            },
        }
    }
    Ok(finish(counts, unattributed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::apprun::AppRun;
    use crate::model::keys::HOUR_MS;
    use loggen::topology::Topology;

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    fn ev(fw: &Framework, ts: i64, node: usize, amount: i32) {
        fw.insert_event(&EventRecord {
            ts_ms: ts,
            event_type: "LUSTRE_ERR".into(),
            source: fw.topology().node(node).cname,
            amount,
            raw: String::new(),
        })
        .unwrap();
    }

    #[test]
    fn cabinet_blade_node_groupings() {
        let fw = fw();
        ev(&fw, 0, 0, 1); // cab0 blade0
        ev(&fw, 1, 1, 1); // cab0 blade0
        ev(&fw, 2, 4, 1); // cab0 blade1
        ev(&fw, 3, 96, 1); // cab1 blade24

        let d = distribution(&fw, "LUSTRE_ERR", 0, HOUR_MS, GroupBy::Cabinet).unwrap();
        assert_eq!(d.entries[0], ("cab0".to_owned(), 3.0));
        assert_eq!(d.entries[1], ("cab1".to_owned(), 1.0));

        let d = distribution(&fw, "LUSTRE_ERR", 0, HOUR_MS, GroupBy::Blade).unwrap();
        assert_eq!(d.entries[0], ("blade0".to_owned(), 2.0));
        assert_eq!(d.entries.len(), 3);

        let d = distribution(&fw, "LUSTRE_ERR", 0, HOUR_MS, GroupBy::Node).unwrap();
        assert_eq!(d.entries.len(), 4);
        assert_eq!(d.top(2).len(), 2);
        assert_eq!(d.unattributed, 0.0);
    }

    #[test]
    fn application_grouping_attributes_by_allocation_and_time() {
        let fw = fw();
        fw.insert_app_run(&AppRun {
            apid: 1,
            user: "u".into(),
            app: "VASP".into(),
            start_ms: 0,
            end_ms: 10_000,
            node_first: 0,
            node_last: 47,
            exit_code: 0,
            other_info: Default::default(),
        })
        .unwrap();
        ev(&fw, 5_000, 10, 1); // inside VASP
        ev(&fw, 5_000, 90, 1); // outside allocation
        ev(&fw, 20_000, 10, 1); // after the run
        let d = distribution(&fw, "LUSTRE_ERR", 0, HOUR_MS, GroupBy::Application).unwrap();
        assert_eq!(d.entries, vec![("VASP".to_owned(), 1.0)]);
        assert_eq!(d.unattributed, 2.0);
    }

    #[test]
    fn unknown_sources_are_unattributed() {
        let fw = fw();
        fw.insert_event(&EventRecord {
            ts_ms: 0,
            event_type: "LUSTRE_ERR".into(),
            source: "mds01".into(), // not a compute node
            amount: 3,
            raw: String::new(),
        })
        .unwrap();
        let d = distribution(&fw, "LUSTRE_ERR", 0, HOUR_MS, GroupBy::Cabinet).unwrap();
        assert!(d.entries.is_empty());
        assert_eq!(d.unattributed, 3.0);
    }

    #[test]
    fn empty_stream_is_empty() {
        let fw = fw();
        let d = distribution(&fw, "MCE", 0, HOUR_MS, GroupBy::Node).unwrap();
        assert!(d.entries.is_empty());
        assert_eq!(d.unattributed, 0.0);
    }
}
