//! Failure prediction (paper §V future work + §IV: "models for failure
//! prediction ... leverage the spatial and temporal correlation between
//! historical failures, or trends of non-fatal events preceding failures").
//!
//! A naive-Bayes-style predictor over binned event streams: for a target
//! failure type, it learns per-precursor-type log-likelihood ratios of
//! "precursor active in the lead window" between windows that did and did
//! not precede a failure, then raises an alarm when the combined score
//! crosses a threshold. Evaluation reports precision/recall on a held-out
//! suffix of the data.

use crate::analytics::bin_counts;
use crate::framework::Framework;
use rasdb::error::DbError;
use std::collections::BTreeMap;

/// Predictor hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Bin width for the event series.
    pub bin_ms: i64,
    /// How many bins of history feed one prediction.
    pub lead_bins: usize,
    /// How many bins ahead the prediction covers.
    pub horizon_bins: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            bin_ms: 60_000,
            lead_bins: 5,
            horizon_bins: 5,
        }
    }
}

/// A trained predictor for one target event type.
#[derive(Debug, Clone)]
pub struct FailurePredictor {
    /// Target event type.
    pub target: String,
    /// Per-precursor log-likelihood ratios for "active in lead window".
    pub weights: BTreeMap<String, f64>,
    /// Log prior odds of a failure horizon.
    pub prior: f64,
    /// Alarm threshold on the combined score (log-odds).
    pub threshold: f64,
    /// Hyper-parameters used at training time.
    pub config: PredictorConfig,
}

/// Precision/recall of a prediction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Alarms raised.
    pub alarms: usize,
    /// Alarms followed by the target within the horizon.
    pub hits: usize,
    /// Target occurrences covered by at least one alarm.
    pub caught: usize,
    /// Total target occurrences in the evaluation span.
    pub failures: usize,
    /// `hits / alarms`.
    pub precision: f64,
    /// `caught / failures`.
    pub recall: f64,
}

/// Binned per-type series over a common window.
pub type BinnedSeries = BTreeMap<String, Vec<f64>>;

/// Fetches and bins every catalog type over `[from, to)`.
pub fn binned_series(
    fw: &Framework,
    from_ms: i64,
    to_ms: i64,
    bin_ms: i64,
) -> Result<BinnedSeries, DbError> {
    let mut out = BTreeMap::new();
    for etype in loggen::events::EVENT_CATALOG {
        let events = fw.events_by_type(etype.name, from_ms, to_ms)?;
        out.insert(
            etype.name.to_owned(),
            bin_counts(&events, from_ms, to_ms, bin_ms),
        );
    }
    Ok(out)
}

/// Whether any bin of `series[t-lead..t]` is active.
fn lead_active(series: &[f64], t: usize, lead: usize) -> bool {
    let start = t.saturating_sub(lead);
    series[start..t].iter().any(|c| *c > 0.0)
}

/// Whether the target fires in `series[t..t+horizon]`.
fn horizon_hit(series: &[f64], t: usize, horizon: usize) -> bool {
    let end = (t + horizon).min(series.len());
    series[t..end].iter().any(|c| *c > 0.0)
}

impl FailurePredictor {
    /// Trains on binned series. Laplace smoothing keeps unseen
    /// combinations finite; precursor types equal to the target are
    /// excluded (no self-prediction).
    pub fn train(series: &BinnedSeries, target: &str, config: PredictorConfig) -> FailurePredictor {
        let target_series = series.get(target).cloned().unwrap_or_default();
        let n = target_series.len();
        let mut pos = 1.0f64; // smoothed window counts
        let mut neg = 1.0f64;
        let mut active_pos: BTreeMap<&str, f64> = BTreeMap::new();
        let mut active_neg: BTreeMap<&str, f64> = BTreeMap::new();
        for t in config.lead_bins..n.saturating_sub(config.horizon_bins) {
            let label = horizon_hit(&target_series, t, config.horizon_bins);
            if label {
                pos += 1.0;
            } else {
                neg += 1.0;
            }
            for (etype, s) in series {
                if etype == target {
                    continue;
                }
                if lead_active(s, t, config.lead_bins) {
                    if label {
                        *active_pos.entry(etype.as_str()).or_default() += 1.0;
                    } else {
                        *active_neg.entry(etype.as_str()).or_default() += 1.0;
                    }
                }
            }
        }
        let mut weights = BTreeMap::new();
        for etype in series.keys().filter(|t| *t != target) {
            let ap = active_pos.get(etype.as_str()).copied().unwrap_or(0.0);
            let an = active_neg.get(etype.as_str()).copied().unwrap_or(0.0);
            if ap + an == 0.0 {
                // Never active in training: no evidence either way, and it
                // can never fire at prediction time — weight 0, not the
                // smoothing artifact ln((neg+2)/(pos+2)).
                weights.insert(etype.clone(), 0.0);
                continue;
            }
            let p_active_pos = (ap + 1.0) / (pos + 2.0);
            let p_active_neg = (an + 1.0) / (neg + 2.0);
            weights.insert(etype.clone(), (p_active_pos / p_active_neg).ln());
        }
        let prior = (pos / neg).ln();
        FailurePredictor {
            target: target.to_owned(),
            weights,
            prior,
            // Alarm when evidence says "more likely than not".
            threshold: 0.0,
            config,
        }
    }

    /// Log-odds score for bin `t` of the given series.
    pub fn score(&self, series: &BinnedSeries, t: usize) -> f64 {
        let mut score = self.prior;
        for (etype, w) in &self.weights {
            if let Some(s) = series.get(etype) {
                if t <= s.len() && lead_active(s, t, self.config.lead_bins) {
                    score += w;
                }
            }
        }
        score
    }

    /// Runs the predictor over `[start_bin, end_bin)` and evaluates against
    /// the target's actual occurrences.
    pub fn evaluate(&self, series: &BinnedSeries, start_bin: usize, end_bin: usize) -> Metrics {
        let target = series.get(&self.target).cloned().unwrap_or_default();
        let end_bin = end_bin.min(target.len());
        let mut alarms = 0usize;
        let mut hits = 0usize;
        let mut covered = vec![false; target.len()];
        for t in start_bin.max(self.config.lead_bins)..end_bin {
            if self.score(series, t) > self.threshold {
                alarms += 1;
                if horizon_hit(&target, t, self.config.horizon_bins) {
                    hits += 1;
                    let hend = (t + self.config.horizon_bins).min(target.len());
                    for (i, cov) in covered.iter_mut().enumerate().take(hend).skip(t) {
                        if target[i] > 0.0 {
                            *cov = true;
                        }
                    }
                }
            }
        }
        let failure_bins: Vec<usize> = (start_bin..end_bin).filter(|t| target[*t] > 0.0).collect();
        let caught = failure_bins.iter().filter(|t| covered[**t]).count();
        let failures = failure_bins.len();
        Metrics {
            alarms,
            hits,
            caught,
            failures,
            precision: if alarms > 0 {
                hits as f64 / alarms as f64
            } else {
                0.0
            },
            recall: if failures > 0 {
                caught as f64 / failures as f64
            } else {
                0.0
            },
        }
    }
}

/// Convenience: train on the first `train_fraction` of `[from, to)` and
/// evaluate on the rest, straight from the store.
pub fn train_and_evaluate(
    fw: &Framework,
    target: &str,
    from_ms: i64,
    to_ms: i64,
    config: PredictorConfig,
    train_fraction: f64,
) -> Result<(FailurePredictor, Metrics), DbError> {
    let series = binned_series(fw, from_ms, to_ms, config.bin_ms)?;
    let nbins = series.values().next().map(|s| s.len()).unwrap_or(0);
    let split = ((nbins as f64) * train_fraction.clamp(0.1, 0.9)) as usize;
    let train_series: BinnedSeries = series
        .iter()
        .map(|(k, v)| (k.clone(), v[..split].to_vec()))
        .collect();
    let predictor = FailurePredictor::train(&train_series, target, config);
    let metrics = predictor.evaluate(&series, split, nbins);
    Ok((predictor, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic world: GPU_DBE fires randomly; GPU_OFF_BUS follows two
    /// bins after GPU_DBE with high probability; MEM_ECC is pure noise.
    fn world(n: usize) -> BinnedSeries {
        let mut state = 0xabcdefu64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / u32::MAX as f64
        };
        let mut dbe = vec![0.0; n];
        let mut off_bus = vec![0.0; n];
        let mut noise = vec![0.0; n];
        for t in 0..n {
            if rand() < 0.08 {
                dbe[t] = 1.0;
                if t + 2 < n && rand() < 0.9 {
                    off_bus[t + 2] = 1.0;
                }
            }
            if rand() < 0.3 {
                noise[t] = 1.0;
            }
        }
        [
            ("GPU_DBE".to_owned(), dbe),
            ("GPU_OFF_BUS".to_owned(), off_bus),
            ("MEM_ECC".to_owned(), noise),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn precursor_gets_positive_weight_noise_near_zero() {
        let series = world(4000);
        let p = FailurePredictor::train(
            &series,
            "GPU_OFF_BUS",
            PredictorConfig {
                bin_ms: 60_000,
                lead_bins: 3,
                horizon_bins: 3,
            },
        );
        let w_dbe = p.weights["GPU_DBE"];
        let w_noise = p.weights["MEM_ECC"];
        assert!(w_dbe > 0.5, "precursor weight {w_dbe}");
        assert!(w_noise.abs() < 0.3, "noise weight {w_noise}");
    }

    #[test]
    fn predictor_beats_the_base_rate() {
        let series = world(6000);
        let cfg = PredictorConfig {
            bin_ms: 60_000,
            lead_bins: 3,
            horizon_bins: 3,
        };
        let train: BinnedSeries = series
            .iter()
            .map(|(k, v)| (k.clone(), v[..4000].to_vec()))
            .collect();
        let p = FailurePredictor::train(&train, "GPU_OFF_BUS", cfg);
        let m = p.evaluate(&series, 4000, 6000);
        assert!(m.failures > 20, "enough failures to judge: {}", m.failures);
        // Base rate of a horizon hit.
        let target = &series["GPU_OFF_BUS"];
        let base = (4000..6000)
            .filter(|t| horizon_hit(target, *t, cfg.horizon_bins))
            .count() as f64
            / 2000.0;
        assert!(
            m.precision > base * 1.5,
            "precision {} must beat base {base}",
            m.precision
        );
        assert!(m.recall > 0.5, "recall {}", m.recall);
    }

    #[test]
    fn empty_series_yield_empty_metrics() {
        let series: BinnedSeries = Default::default();
        let p = FailurePredictor::train(&series, "KERNEL_PANIC", PredictorConfig::default());
        let m = p.evaluate(&series, 0, 100);
        assert_eq!(m.failures, 0);
        assert_eq!(m.alarms, 0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn lead_and_horizon_windows_are_exact() {
        let s = vec![0.0, 1.0, 0.0, 0.0];
        assert!(lead_active(&s, 2, 1)); // bin 1 active
        assert!(!lead_active(&s, 1, 1)); // bin 0 inactive
        assert!(lead_active(&s, 3, 2)); // bins 1..3 include bin 1
        assert!(!lead_active(&s, 0, 3)); // empty lead
        assert!(horizon_hit(&s, 1, 1));
        assert!(!horizon_hit(&s, 2, 2));
    }
}
