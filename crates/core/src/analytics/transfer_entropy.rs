//! Transfer entropy between event-type time series (paper Fig 7, top):
//! "the investigation of correlation between two event occurrences within
//! a selected time interval, which can provide a causal relationship
//! between the two".
//!
//! `TE(X→Y) = Σ p(y′, y, x) · log2[ p(y′ | y, x) / p(y′ | y) ]`, estimated
//! over binarized, binned series with a configurable lag.

use crate::analytics::bin_scan;
use crate::framework::Framework;
use rasdb::error::DbError;

/// Transfer entropy in both directions at a fixed lag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TePair {
    /// TE(X→Y) in bits.
    pub x_to_y: f64,
    /// TE(Y→X) in bits.
    pub y_to_x: f64,
}

/// Estimates TE(X→Y) in bits over binary series; `lag` is how many bins
/// back the source is read. Series shorter than `lag + 2` yield 0.
pub fn transfer_entropy_binary(x: &[bool], y: &[bool], lag: usize) -> f64 {
    let lag = lag.max(1);
    let n = x.len().min(y.len());
    if n < lag + 1 {
        return 0.0;
    }
    // Joint counts over (y_next, y_prev, x_lagged).
    let mut joint = [[[0.0f64; 2]; 2]; 2];
    let mut total = 0.0;
    for t in lag..n {
        let yn = y[t] as usize;
        let yp = y[t - 1] as usize;
        let xl = x[t - lag] as usize;
        joint[yn][yp][xl] += 1.0;
        total += 1.0;
    }
    if total == 0.0 {
        return 0.0;
    }
    let mut te = 0.0;
    #[allow(clippy::needless_range_loop)] // 3-D joint indexing reads clearer
    for yn in 0..2 {
        for yp in 0..2 {
            for xl in 0..2 {
                let p_joint = joint[yn][yp][xl] / total;
                if p_joint <= 0.0 {
                    continue;
                }
                // Marginals.
                let p_yp_xl = (joint[0][yp][xl] + joint[1][yp][xl]) / total;
                let p_yp = (0..2)
                    .flat_map(|a| (0..2).map(move |b| (a, b)))
                    .map(|(a, b)| joint[a][yp][b])
                    .sum::<f64>()
                    / total;
                let p_yn_yp = (joint[yn][yp][0] + joint[yn][yp][1]) / total;
                let cond_full = p_joint / p_yp_xl;
                let cond_hist = p_yn_yp / p_yp;
                if cond_full > 0.0 && cond_hist > 0.0 {
                    te += p_joint * (cond_full / cond_hist).log2();
                }
            }
        }
    }
    te.max(0.0)
}

/// Binarizes a binned count series (any activity in the bin → true).
pub fn binarize(bins: &[f64]) -> Vec<bool> {
    bins.iter().map(|c| *c > 0.0).collect()
}

/// TE in both directions between two event types over `[from, to)`.
pub fn event_transfer_entropy(
    fw: &Framework,
    type_x: &str,
    type_y: &str,
    from_ms: i64,
    to_ms: i64,
    bin_ms: i64,
    lag: usize,
) -> Result<TePair, DbError> {
    let sx = fw.scan_window(type_x, from_ms, to_ms)?;
    let sy = fw.scan_window(type_y, from_ms, to_ms)?;
    let x = binarize(&bin_scan(&sx, bin_ms));
    let y = binarize(&bin_scan(&sy, bin_ms));
    Ok(TePair {
        x_to_y: transfer_entropy_binary(&x, &y, lag),
        y_to_x: transfer_entropy_binary(&y, &x, lag),
    })
}

/// TE(X→Y) and TE(Y→X) as functions of lag (the Fig 7 curve).
pub fn te_lag_sweep(
    fw: &Framework,
    type_x: &str,
    type_y: &str,
    from_ms: i64,
    to_ms: i64,
    bin_ms: i64,
    max_lag: usize,
) -> Result<Vec<(usize, TePair)>, DbError> {
    let sx = fw.scan_window(type_x, from_ms, to_ms)?;
    let sy = fw.scan_window(type_y, from_ms, to_ms)?;
    let x = binarize(&bin_scan(&sx, bin_ms));
    let y = binarize(&bin_scan(&sy, bin_ms));
    Ok((1..=max_lag.max(1))
        .map(|lag| {
            (
                lag,
                TePair {
                    x_to_y: transfer_entropy_binary(&x, &y, lag),
                    y_to_x: transfer_entropy_binary(&y, &x, lag),
                },
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y copies x with a delay of `lag` bins.
    fn coupled(n: usize, lag: usize) -> (Vec<bool>, Vec<bool>) {
        // Deterministic pseudo-random driver series.
        let mut state = 0x12345678u64;
        let mut x = Vec::with_capacity(n);
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x.push((state >> 62) & 1 == 1);
        }
        let y: Vec<bool> = (0..n)
            .map(|t| if t >= lag { x[t - lag] } else { false })
            .collect();
        (x, y)
    }

    #[test]
    fn directed_coupling_is_detected() {
        let (x, y) = coupled(4000, 1);
        let forward = transfer_entropy_binary(&x, &y, 1);
        let backward = transfer_entropy_binary(&y, &x, 1);
        assert!(forward > 0.5, "forward TE {forward}");
        assert!(forward > backward * 5.0, "fw={forward} bw={backward}");
    }

    #[test]
    fn te_peaks_at_the_true_lag() {
        let (x, y) = coupled(4000, 3);
        let te1 = transfer_entropy_binary(&x, &y, 1);
        let te3 = transfer_entropy_binary(&x, &y, 3);
        let te5 = transfer_entropy_binary(&x, &y, 5);
        assert!(te3 > te1 * 2.0, "te3={te3} te1={te1}");
        assert!(te3 > te5 * 2.0, "te3={te3} te5={te5}");
    }

    #[test]
    fn independent_series_have_near_zero_te() {
        let (x, _) = coupled(4000, 1);
        let mut state = 0x9abcdefu64;
        let z: Vec<bool> = (0..4000)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 61) & 1 == 1
            })
            .collect();
        let te = transfer_entropy_binary(&x, &z, 1);
        assert!(te < 0.01, "te={te}");
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(transfer_entropy_binary(&[], &[], 1), 0.0);
        assert_eq!(transfer_entropy_binary(&[true], &[false], 1), 0.0);
        let constant = vec![true; 100];
        assert_eq!(transfer_entropy_binary(&constant, &constant, 1), 0.0);
    }

    #[test]
    fn binarize_thresholds_at_zero() {
        assert_eq!(
            binarize(&[0.0, 1.0, 0.5, 0.0]),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn te_is_nonnegative_on_noise() {
        let (x, y) = coupled(500, 2);
        for lag in 1..6 {
            assert!(transfer_entropy_binary(&x, &y, lag) >= 0.0);
            assert!(transfer_entropy_binary(&y, &x, lag) >= 0.0);
        }
    }
}
