//! Columnar analytics blocks for closed hour partitions.
//!
//! Analytics kernels historically re-merged row-oriented partitions and
//! iterated typed cells on every cold scan. This module gives each
//! **closed** `(hour, event_type)` partition of `event_by_time` — one
//! whose hour lies entirely at or below the streaming ingest watermark —
//! a column-oriented layout instead:
//!
//! - `ts`: the timestamp column, contiguous and sorted (rows arrive in
//!   clustering order `(ts, source)`), carrying a min/max **zone map**
//!   so whole blocks are skipped when a query window cannot overlap them
//!   and sub-hour windows binary-search to the exact row range;
//! - `source_ids` + `dict`: **dictionary-encoded** source locations —
//!   one `u32` per row into a per-block string dictionary, so kernels
//!   resolve each distinct cname once per block instead of once per row;
//! - `amounts`: the `i32` amount column;
//! - `raw`: every raw message concatenated into one byte buffer with an
//!   offset column, for zero-copy text analytics.
//!
//! Blocks are built **lazily** on the first analytics scan from the same
//! merged, read-repaired row path every query uses, and cached in a
//! [`ColumnarStore`] under the block-cache byte budget with exactly the
//! block cache's invalidation rules (`rasdb/src/cache.rs`): each entry
//! snapshots the partition's data version and the cluster topology epoch
//! at read time, and a later lookup whose snapshot disagrees drops the
//! entry and rebuilds. Open-hour partitions always fall back to the row
//! path, so cached and uncached responses stay byte-identical (enforced
//! by the `cache_equivalence` proptest).

use crate::model::event::EventRecord;
use rasdb::cache::LruCache;
use rasdb::types::Row;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use telemetry::{Counter, Gauge};

/// One closed `(hour, event_type)` partition in columnar form.
///
/// Built by [`ColumnBlock::build`] from the partition's merged rows in
/// clustering order, so `ts` is sorted ascending and row `i` of every
/// column describes the same event.
#[derive(Debug)]
pub struct ColumnBlock {
    /// The hour bucket (`ts / HOUR_MS`) this block covers.
    pub hour: i64,
    /// The event type of every row in the block.
    pub event_type: String,
    /// Timestamp column, sorted ascending (the clustering order).
    pub ts: Vec<i64>,
    /// Dictionary ids into [`ColumnBlock::dict`], one per row.
    pub source_ids: Vec<u32>,
    /// The source-location dictionary, in first-appearance order.
    pub dict: Vec<String>,
    /// Amount column.
    pub amounts: Vec<i32>,
    raw_offsets: Vec<u32>,
    raw_bytes: Vec<u8>,
}

impl ColumnBlock {
    /// Builds a block from a partition's merged rows, mirroring the row
    /// path's [`EventRecord::from_time_row`] semantics exactly: rows with
    /// malformed clustering keys are skipped, a missing `amount` defaults
    /// to 1, and a missing `raw` to the empty string.
    pub fn build(hour: i64, event_type: &str, rows: &[Row]) -> ColumnBlock {
        let mut ts = Vec::with_capacity(rows.len());
        let mut source_ids = Vec::with_capacity(rows.len());
        let mut amounts = Vec::with_capacity(rows.len());
        let mut raw_offsets = Vec::with_capacity(rows.len() + 1);
        let mut raw_bytes = Vec::new();
        let mut dict: Vec<String> = Vec::new();
        let mut seen: HashMap<String, u32> = HashMap::new();
        raw_offsets.push(0);
        for row in rows {
            let (Some(t), Some(source)) = (
                row.clustering.0.first().and_then(|v| v.as_i64()),
                row.clustering.0.get(1).and_then(|v| v.as_text()),
            ) else {
                continue;
            };
            let id = *seen.entry(source.to_owned()).or_insert_with(|| {
                dict.push(source.to_owned());
                (dict.len() - 1) as u32
            });
            ts.push(t);
            source_ids.push(id);
            amounts.push(row.cell("amount").and_then(|v| v.as_i64()).unwrap_or(1) as i32);
            let raw = row
                .cell("raw")
                .and_then(|v| v.as_text())
                .unwrap_or_default();
            raw_bytes.extend_from_slice(raw.as_bytes());
            raw_offsets.push(raw_bytes.len() as u32);
        }
        debug_assert!(ts.is_sorted(), "clustering order must be ascending");
        ColumnBlock {
            hour,
            event_type: event_type.to_owned(),
            ts,
            source_ids,
            dict,
            amounts,
            raw_offsets,
            raw_bytes,
        }
    }

    /// Rows in the block.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Zone-map minimum of the timestamp column (`None` when empty).
    pub fn min_ts(&self) -> Option<i64> {
        self.ts.first().copied()
    }

    /// Zone-map maximum of the timestamp column (`None` when empty).
    pub fn max_ts(&self) -> Option<i64> {
        self.ts.last().copied()
    }

    /// Zone-map overlap test against a half-open window: false means the
    /// whole block can be skipped without touching a row.
    pub fn overlaps(&self, from_ms: i64, to_ms: i64) -> bool {
        match (self.min_ts(), self.max_ts()) {
            (Some(lo), Some(hi)) => lo < to_ms && hi >= from_ms,
            _ => false,
        }
    }

    /// The row-index range whose timestamps fall in `[from_ms, to_ms)`,
    /// by binary search on the sorted timestamp column.
    pub fn range(&self, from_ms: i64, to_ms: i64) -> Range<usize> {
        let lo = self.ts.partition_point(|&t| t < from_ms);
        let hi = self.ts.partition_point(|&t| t < to_ms);
        lo..hi.max(lo)
    }

    /// The raw message of row `i`, as a zero-copy slice of the
    /// concatenated message buffer.
    pub fn raw(&self, i: usize) -> &str {
        let (a, b) = (
            self.raw_offsets[i] as usize,
            self.raw_offsets[i + 1] as usize,
        );
        std::str::from_utf8(&self.raw_bytes[a..b]).expect("raw column holds UTF-8 strings")
    }

    /// Materializes row `i` back into an [`EventRecord`] (allocates; used
    /// by equivalence tests, not by the kernels).
    pub fn record(&self, i: usize) -> EventRecord {
        EventRecord {
            ts_ms: self.ts[i],
            event_type: self.event_type.clone(),
            source: self.dict[self.source_ids[i] as usize].clone(),
            amount: self.amounts[i],
            raw: self.raw(i).to_owned(),
        }
    }

    /// Bytes the source column would occupy un-encoded (one string per
    /// row) — the numerator of the dictionary compression ratio.
    pub fn source_raw_bytes(&self) -> usize {
        self.source_ids
            .iter()
            .map(|&id| self.dict[id as usize].len())
            .sum()
    }

    /// Bytes the dictionary-encoded source column occupies (ids plus the
    /// dictionary itself).
    pub fn source_encoded_bytes(&self) -> usize {
        self.source_ids.len() * 4 + self.dict.iter().map(String::len).sum::<usize>()
    }

    /// Resident byte footprint charged against the store budget.
    pub fn footprint(&self) -> usize {
        self.ts.len() * 8
            + self.source_ids.len() * 4
            + self.amounts.len() * 4
            + self.raw_offsets.len() * 4
            + self.raw_bytes.len()
            + self.dict.iter().map(|s| s.len() + 24).sum::<usize>()
            + self.event_type.len()
            + 64
    }
}

/// One hour of a window scan: either a cached columnar block (closed
/// hour) or the materialized, window-filtered row path (open hour, or
/// columnar disabled).
pub enum HourScan {
    /// A closed hour served from a columnar block. The block covers the
    /// *whole* hour; kernels narrow to the query window with
    /// [`ColumnBlock::range`].
    Columnar(Arc<ColumnBlock>),
    /// An open hour served by the row path, already filtered to the
    /// query window.
    Rows(Vec<EventRecord>),
}

/// The result of [`crate::framework::Framework::scan_window`]: per-hour
/// scan parts in hour order, with zone-map-skipped blocks already
/// removed.
pub struct WindowScan {
    /// Window start (inclusive).
    pub from_ms: i64,
    /// Window end (exclusive).
    pub to_ms: i64,
    /// Surviving per-hour parts, ascending by hour.
    pub parts: Vec<HourScan>,
}

impl WindowScan {
    /// Materializes every in-window event in hour/clustering order —
    /// byte-equivalent to the row path's
    /// [`crate::framework::Framework::events_by_type`]. Allocates one
    /// record per row; used by equivalence tests, not by the kernels.
    pub fn records(&self) -> Vec<EventRecord> {
        let mut out = Vec::new();
        for part in &self.parts {
            match part {
                HourScan::Columnar(b) => {
                    out.extend(b.range(self.from_ms, self.to_ms).map(|i| b.record(i)));
                }
                HourScan::Rows(events) => out.extend(events.iter().cloned()),
            }
        }
        out
    }
}

struct StoreEntry {
    block: Arc<ColumnBlock>,
    version: u64,
    epoch: u64,
}

fn block_key(hour: i64, event_type: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(24 + event_type.len());
    key.extend_from_slice(b"event_by_time\x1f");
    key.extend_from_slice(&hour.to_be_bytes());
    key.push(0x1f);
    key.extend_from_slice(event_type.as_bytes());
    key
}

/// A point-in-time snapshot of [`ColumnarStore`] activity, served by the
/// `storage` engine op / `GET /v1/storage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Blocks built from the row path since boot.
    pub blocks_built: u64,
    /// Blocks currently resident in the cache.
    pub blocks_resident: u64,
    /// Blocks evicted by the LRU byte budget (including budget shrinks).
    pub blocks_evicted: u64,
    /// Blocks dropped because their data-version or topology-epoch
    /// snapshot went stale.
    pub invalidations: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses (including stale drops).
    pub misses: u64,
    /// Whole blocks skipped by the timestamp zone map.
    pub zone_skips: u64,
    /// Bytes currently resident.
    pub bytes_resident: u64,
    /// The configured byte budget (0 = columnar disabled).
    pub bytes_budget: u64,
    /// Bytes the source columns of every built block would occupy
    /// un-encoded.
    pub dict_raw_bytes: u64,
    /// Bytes those source columns occupy dictionary-encoded.
    pub dict_encoded_bytes: u64,
}

impl ColumnarStats {
    /// Dictionary compression ratio (`raw / encoded`; 1.0 before any
    /// block is built).
    pub fn dict_compression(&self) -> f64 {
        if self.dict_encoded_bytes == 0 {
            1.0
        } else {
            self.dict_raw_bytes as f64 / self.dict_encoded_bytes as f64
        }
    }
}

/// The lazily-populated cache of [`ColumnBlock`]s, LRU-bounded by the
/// block-cache byte budget and invalidated by per-partition data
/// versions plus the cluster topology epoch — the same rules the rasdb
/// partition-block cache applies.
pub struct ColumnarStore {
    cache: Mutex<LruCache<StoreEntry>>,
    built: AtomicU64,
    evicted: AtomicU64,
    invalidated: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    zone_skips: AtomicU64,
    dict_raw: AtomicU64,
    dict_encoded: AtomicU64,
    t_built: Arc<Counter>,
    t_evictions: Arc<Counter>,
    t_invalidations: Arc<Counter>,
    t_hits: Arc<Counter>,
    t_misses: Arc<Counter>,
    t_zone_skips: Arc<Counter>,
    t_bytes: Arc<Gauge>,
}

impl ColumnarStore {
    /// Creates a store with the given byte budget (0 disables columnar
    /// blocks entirely: every scan falls back to the row path).
    pub fn new(budget: usize) -> ColumnarStore {
        let t = telemetry::global();
        ColumnarStore {
            cache: Mutex::new(LruCache::new(budget)),
            built: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            zone_skips: AtomicU64::new(0),
            dict_raw: AtomicU64::new(0),
            dict_encoded: AtomicU64::new(0),
            t_built: t.counter("rasdb.columnar.blocks_built"),
            t_evictions: t.counter("rasdb.columnar.evictions"),
            t_invalidations: t.counter("rasdb.columnar.invalidations"),
            t_hits: t.counter("rasdb.columnar.hits"),
            t_misses: t.counter("rasdb.columnar.misses"),
            t_zone_skips: t.counter("rasdb.columnar.zone_skips"),
            t_bytes: t.gauge("rasdb.columnar.bytes_resident"),
        }
    }

    /// True when a non-zero budget is configured.
    pub fn enabled(&self) -> bool {
        self.cache.lock().unwrap().budget() > 0
    }

    /// Looks up the block for `(hour, event_type)`, validating the cached
    /// data-version and topology-epoch snapshots against the caller's
    /// current view. A stale entry is dropped (lazy invalidation) and
    /// reported as a miss.
    pub fn get(
        &self,
        hour: i64,
        event_type: &str,
        version: u64,
        epoch: u64,
    ) -> Option<Arc<ColumnBlock>> {
        let key = block_key(hour, event_type);
        let mut cache = self.cache.lock().unwrap();
        let probe = match cache.get(&key) {
            Some(e) if e.version == version && e.epoch == epoch => Some(Arc::clone(&e.block)),
            Some(_) => None,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.t_misses.incr(1);
                return None;
            }
        };
        match probe {
            Some(block) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.t_hits.incr(1);
                Some(block)
            }
            None => {
                cache.remove(&key);
                self.t_bytes.set(cache.used_bytes() as i64);
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                self.t_invalidations.incr(1);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.t_misses.incr(1);
                None
            }
        }
    }

    /// Caches a freshly built block under the version/epoch snapshot
    /// taken *before* its source rows were read. Oversized blocks (bigger
    /// than the whole budget) are simply not retained.
    pub fn insert(&self, block: Arc<ColumnBlock>, version: u64, epoch: u64) {
        self.built.fetch_add(1, Ordering::Relaxed);
        self.t_built.incr(1);
        self.dict_raw
            .fetch_add(block.source_raw_bytes() as u64, Ordering::Relaxed);
        self.dict_encoded
            .fetch_add(block.source_encoded_bytes() as u64, Ordering::Relaxed);
        let key = block_key(block.hour, &block.event_type);
        let bytes = block.footprint();
        let mut cache = self.cache.lock().unwrap();
        let evicted = cache.insert(
            key,
            StoreEntry {
                block,
                version,
                epoch,
            },
            bytes,
        );
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
        self.t_evictions.incr(evicted);
        self.t_bytes.set(cache.used_bytes() as i64);
    }

    /// Changes the byte budget at runtime, evicting LRU-first down to the
    /// new limit; returns how many blocks were evicted.
    pub fn set_budget(&self, budget: usize) -> u64 {
        let mut cache = self.cache.lock().unwrap();
        let evicted = cache.set_budget(budget);
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
        self.t_evictions.incr(evicted);
        self.t_bytes.set(cache.used_bytes() as i64);
        evicted
    }

    /// Records one zone-map block skip.
    pub fn note_zone_skip(&self) {
        self.zone_skips.fetch_add(1, Ordering::Relaxed);
        self.t_zone_skips.incr(1);
    }

    /// Snapshot of the store's counters and residency.
    pub fn stats(&self) -> ColumnarStats {
        let cache = self.cache.lock().unwrap();
        ColumnarStats {
            blocks_built: self.built.load(Ordering::Relaxed),
            blocks_resident: cache.len() as u64,
            blocks_evicted: self.evicted.load(Ordering::Relaxed),
            invalidations: self.invalidated.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            zone_skips: self.zone_skips.load(Ordering::Relaxed),
            bytes_resident: cache.used_bytes() as u64,
            bytes_budget: cache.budget() as u64,
            dict_raw_bytes: self.dict_raw.load(Ordering::Relaxed),
            dict_encoded_bytes: self.dict_encoded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasdb::types::{Key, Value};

    fn row(ts: i64, source: &str, amount: i64, raw: &str) -> Row {
        Row {
            clustering: Key(vec![Value::Timestamp(ts), Value::text(source)]),
            cells: [
                ("amount".to_owned(), Value::BigInt(amount)),
                ("raw".to_owned(), Value::text(raw)),
            ]
            .into_iter()
            .collect(),
        }
    }

    fn block() -> ColumnBlock {
        ColumnBlock::build(
            0,
            "MCE",
            &[
                row(100, "c0-0c0s0n0", 1, "mce bank 1"),
                row(200, "c0-0c0s1n2", 2, "mce bank 2"),
                row(300, "c0-0c0s0n0", 3, "mce bank 3"),
            ],
        )
    }

    #[test]
    fn build_dictionary_encodes_sources_and_keeps_order() {
        let b = block();
        assert_eq!(b.len(), 3);
        assert_eq!(b.ts, vec![100, 200, 300]);
        assert_eq!(b.dict, vec!["c0-0c0s0n0", "c0-0c0s1n2"]);
        assert_eq!(b.source_ids, vec![0, 1, 0]);
        assert_eq!(b.amounts, vec![1, 2, 3]);
        assert_eq!(b.raw(1), "mce bank 2");
        assert_eq!(b.record(2).source, "c0-0c0s0n0");
        assert!(b.source_raw_bytes() >= b.dict.iter().map(String::len).sum());
    }

    #[test]
    fn zone_map_and_range_respect_half_open_windows() {
        let b = block();
        assert_eq!((b.min_ts(), b.max_ts()), (Some(100), Some(300)));
        assert!(b.overlaps(0, 101));
        assert!(!b.overlaps(0, 100), "to is exclusive");
        assert!(b.overlaps(300, 400), "from is inclusive");
        assert!(!b.overlaps(301, 400));
        assert_eq!(b.range(100, 300), 0..2);
        assert_eq!(b.range(150, 1000), 1..3);
        assert_eq!(b.range(400, 500), 3..3);
        let empty = ColumnBlock::build(0, "MCE", &[]);
        assert!(!empty.overlaps(i64::MIN, i64::MAX));
    }

    #[test]
    fn malformed_rows_are_skipped_like_the_row_path() {
        let bad = Row {
            clustering: Key(vec![Value::text("not a ts")]),
            cells: Default::default(),
        };
        let b = ColumnBlock::build(0, "MCE", &[bad, row(5, "n0", 1, "x")]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.ts, vec![5]);
    }

    #[test]
    fn store_validates_version_and_epoch_snapshots() {
        let store = ColumnarStore::new(1 << 20);
        store.insert(Arc::new(block()), 3, 7);
        assert!(store.get(0, "MCE", 3, 7).is_some());
        // Data-version bump → stale → dropped and rebuilt by the caller.
        assert!(store.get(0, "MCE", 4, 7).is_none());
        assert!(store.get(0, "MCE", 3, 7).is_none(), "stale entry dropped");
        store.insert(Arc::new(block()), 4, 7);
        // Topology-epoch bump behaves identically.
        assert!(store.get(0, "MCE", 4, 8).is_none());
        let s = store.stats();
        assert_eq!(s.blocks_built, 2);
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 3);
    }

    #[test]
    fn store_budget_bounds_residency() {
        let store = ColumnarStore::new(1 << 20);
        for h in 0..8 {
            let mut b = block();
            b.hour = h;
            store.insert(Arc::new(b), 1, 1);
        }
        assert_eq!(store.stats().blocks_resident, 8);
        let evicted = store.set_budget(1);
        assert_eq!(evicted, 8, "shrinking the budget evicts LRU-first");
        assert_eq!(store.stats().blocks_resident, 0);
        assert_eq!(store.stats().bytes_resident, 0);
        assert!(!ColumnarStore::new(0).enabled());
    }
}
