//! User contexts: "a context is selected on the basis of event type,
//! application, location, user, time period, or a combination of these,
//! over which the system status is defined and examined" (paper §III-B).

use crate::framework::Framework;
use crate::model::event::EventRecord;
use rasdb::error::DbError;

/// A spatio-temporal selection over the event space.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Context {
    /// Restrict to one event type.
    pub event_type: Option<String>,
    /// Restrict to one source component (cname).
    pub source: Option<String>,
    /// Restrict to one cabinet (floor-grid index).
    pub cabinet: Option<usize>,
    /// Restrict to events overlapping one user's runs.
    pub user: Option<String>,
    /// Restrict to events overlapping one application's runs.
    pub app: Option<String>,
    /// Window start (ms, inclusive).
    pub from_ms: i64,
    /// Window end (ms, exclusive).
    pub to_ms: i64,
}

impl Context {
    /// A context over a time window.
    pub fn window(from_ms: i64, to_ms: i64) -> Context {
        Context {
            from_ms,
            to_ms,
            ..Default::default()
        }
    }

    /// Restricts to an event type.
    pub fn with_type(mut self, event_type: impl Into<String>) -> Context {
        self.event_type = Some(event_type.into());
        self
    }

    /// Restricts to a source component.
    pub fn with_source(mut self, source: impl Into<String>) -> Context {
        self.source = Some(source.into());
        self
    }

    /// Restricts to a cabinet.
    pub fn with_cabinet(mut self, cabinet: usize) -> Context {
        self.cabinet = Some(cabinet);
        self
    }

    /// Restricts to a user's runs.
    pub fn with_user(mut self, user: impl Into<String>) -> Context {
        self.user = Some(user.into());
        self
    }

    /// Restricts to an application's runs.
    pub fn with_app(mut self, app: impl Into<String>) -> Context {
        self.app = Some(app.into());
        self
    }

    /// Narrows to a sub-interval ("users can repeatedly select
    /// sub-intervals of interest for narrowed investigations").
    pub fn narrow(&self, from_ms: i64, to_ms: i64) -> Context {
        let mut c = self.clone();
        c.from_ms = from_ms.max(self.from_ms);
        c.to_ms = to_ms.min(self.to_ms);
        c
    }

    /// Fetches the events selected by this context.
    ///
    /// Table choice follows the partition design: a pinned source uses
    /// `event_by_location`; otherwise a pinned type uses `event_by_time`;
    /// with neither pinned, every catalog type is scanned. Cabinet, user,
    /// and app restrictions filter the fetched stream (user/app via the
    /// run tables' node allocations and time spans).
    pub fn fetch_events(&self, fw: &Framework) -> Result<Vec<EventRecord>, DbError> {
        let mut events = if let Some(source) = &self.source {
            fw.events_by_source(source, self.from_ms, self.to_ms)?
        } else if let Some(t) = &self.event_type {
            fw.events_by_type(t, self.from_ms, self.to_ms)?
        } else {
            let mut all = Vec::new();
            for etype in loggen::events::EVENT_CATALOG {
                all.extend(fw.events_by_type(etype.name, self.from_ms, self.to_ms)?);
            }
            all.sort_by_key(|e| e.ts_ms);
            all
        };
        if let (Some(t), Some(_)) = (&self.event_type, &self.source) {
            // Both pinned: the by-location fetch needs a type filter.
            events.retain(|e| &e.event_type == t);
        }
        if let Some(cabinet) = self.cabinet {
            let topo = fw.topology();
            events.retain(|e| {
                topo.parse_cname(&e.source)
                    .map(|idx| idx / loggen::topology::NODES_PER_CABINET == cabinet)
                    .unwrap_or(false)
            });
        }
        if self.user.is_some() || self.app.is_some() {
            let runs = match (&self.user, &self.app) {
                (Some(u), _) => {
                    let mut rs = fw.apps_by_user(u)?;
                    if let Some(a) = &self.app {
                        rs.retain(|r| &r.app == a);
                    }
                    rs
                }
                (None, Some(a)) => fw.apps_by_name(a)?,
                (None, None) => unreachable!(),
            };
            let topo = fw.topology();
            events.retain(|e| {
                let Some(idx) = topo.parse_cname(&e.source) else {
                    return false;
                };
                runs.iter().any(|r| {
                    r.running_at(e.ts_ms)
                        && (r.node_first as usize) <= idx
                        && idx <= r.node_last as usize
                })
            });
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::apprun::AppRun;
    use crate::model::keys::HOUR_MS;
    use loggen::topology::Topology;

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    fn ev(fw: &Framework, ts: i64, t: &str, src: &str) {
        fw.insert_event(&EventRecord {
            ts_ms: ts,
            event_type: t.into(),
            source: src.into(),
            amount: 1,
            raw: String::new(),
        })
        .unwrap();
    }

    #[test]
    fn type_and_window_selection() {
        let fw = fw();
        ev(&fw, 100, "MCE", "c0-0c0s0n0");
        ev(&fw, 200, "GPU_DBE", "c0-0c0s0n0");
        ev(&fw, HOUR_MS + 100, "MCE", "c0-0c0s0n0");
        let got = Context::window(0, HOUR_MS)
            .with_type("MCE")
            .fetch_events(&fw)
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ts_ms, 100);
    }

    #[test]
    fn untyped_context_scans_all_types() {
        let fw = fw();
        ev(&fw, 100, "MCE", "c0-0c0s0n0");
        ev(&fw, 200, "GPU_DBE", "c0-0c0s0n0");
        let got = Context::window(0, HOUR_MS).fetch_events(&fw).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got[0].ts_ms <= got[1].ts_ms);
    }

    #[test]
    fn source_context_reads_location_table() {
        let fw = fw();
        ev(&fw, 100, "MCE", "c0-0c0s0n0");
        ev(&fw, 150, "LUSTRE_ERR", "c0-0c0s0n0");
        ev(&fw, 200, "MCE", "c1-0c0s0n0");
        let got = Context::window(0, HOUR_MS)
            .with_source("c0-0c0s0n0")
            .fetch_events(&fw)
            .unwrap();
        assert_eq!(got.len(), 2);
        // Type + source narrows further.
        let got = Context::window(0, HOUR_MS)
            .with_source("c0-0c0s0n0")
            .with_type("MCE")
            .fetch_events(&fw)
            .unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn cabinet_filter_uses_topology() {
        let fw = fw();
        ev(&fw, 100, "MCE", "c0-0c0s0n0"); // cabinet 0
        ev(&fw, 110, "MCE", "c1-0c0s0n0"); // cabinet 1
        let got = Context::window(0, HOUR_MS)
            .with_type("MCE")
            .with_cabinet(1)
            .fetch_events(&fw)
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].source, "c1-0c0s0n0");
    }

    #[test]
    fn user_context_selects_overlapping_events() {
        let fw = fw();
        // usr1 ran on nodes 0..=95 (cabinet 0) during [1000, 2000).
        fw.insert_app_run(&AppRun {
            apid: 1,
            user: "usr1".into(),
            app: "VASP".into(),
            start_ms: 1000,
            end_ms: 2000,
            node_first: 0,
            node_last: 95,
            exit_code: 0,
            other_info: Default::default(),
        })
        .unwrap();
        ev(&fw, 1500, "LUSTRE_ERR", "c0-0c0s0n0"); // inside run, inside alloc
        ev(&fw, 2500, "LUSTRE_ERR", "c0-0c0s0n0"); // after run
        ev(&fw, 1500, "LUSTRE_ERR", "c0-1c0s0n0"); // other cabinet (node 96+)
        let got = Context::window(0, HOUR_MS)
            .with_user("usr1")
            .fetch_events(&fw)
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ts_ms, 1500);
        assert_eq!(got[0].source, "c0-0c0s0n0");
    }

    #[test]
    fn narrow_clamps_to_parent_window() {
        let ctx = Context::window(100, 1000).with_type("MCE");
        let sub = ctx.narrow(50, 500);
        assert_eq!(sub.from_ms, 100);
        assert_eq!(sub.to_ms, 500);
        assert_eq!(sub.event_type.as_deref(), Some("MCE"));
    }
}
