//! `hpclog-core` — the HPC log-data analytics framework itself.
//!
//! This crate is the paper's primary contribution, assembled on the
//! substrates in this workspace: a time-series-oriented **data model**
//! (eight-plus Cassandra-style tables with dual time/location views of
//! events and time/user/app/location views of application runs), a
//! **batch ETL** path (regex parsing of raw console/app/network logs,
//! parallelized on the `sparklet` engine), a **streaming ingestion** path
//! (`logbus` consumer → 1-second coalescing windows → the store), a set of
//! **analytics** (heat maps on the physical system map, distributions,
//! event histograms, cross-correlation, transfer entropy, and word-count /
//! TF-IDF text analytics over raw Lustre messages), and an **analytics
//! server** speaking the frontend's JSON protocol.
//!
//! The entry point is [`framework::Framework`]: it wires a `rasdb` cluster
//! with co-located `sparklet` executors (the paper's "pair of a Spark
//! worker node and a Cassandra node ... in each of the 32 VMs") plus a
//! `logbus` broker, creates the schema, and loads the machine description.
//!
//! # Example
//! ```
//! use hpclog_core::framework::{Framework, FrameworkConfig};
//! use loggen::topology::Topology;
//! use loggen::trace::{Scenario, ScenarioConfig};
//!
//! // A small co-located cluster over a small machine.
//! let fw = Framework::new(FrameworkConfig {
//!     db_nodes: 4,
//!     replication_factor: 3,
//!     topology: Topology::scaled(2, 2),
//!     ..Default::default()
//! }).unwrap();
//!
//! // Generate a synthetic day of Titan logs and batch-import it.
//! let scenario = Scenario::generate(fw.topology(), &ScenarioConfig::quiet_day(2), 7);
//! let report = fw.batch_import(&scenario.lines).unwrap();
//! assert_eq!(report.parsed, scenario.lines.len());
//!
//! // Ask for the hourly MCE histogram through the analytics layer.
//! let t0 = 1_500_000_000_000;
//! let hist = hpclog_core::analytics::histogram::event_histogram(
//!     &fw, "MCE", t0, t0 + 2 * 3_600_000, 3_600_000).unwrap();
//! assert_eq!(hist.bins.len(), 2);
//! ```

pub mod analytics;
pub mod columnar;
pub mod context;
pub mod etl;
pub mod framework;
pub mod model;
pub mod server;

pub use framework::{Framework, FrameworkConfig};
