//! JSON rendering of the global telemetry registry and trace log.
//!
//! The `telemetry` crate stays dependency-free; everything that needs a
//! wire format (the `metrics`/`trace` query ops and the `/metrics` and
//! `/trace` HTTP endpoints) goes through these helpers instead.

use jsonlite::{json_array, json_object, Value as Json};
use telemetry::{HistogramSummary, Snapshot, SpanRecord};

fn summary_json(s: &HistogramSummary) -> Json {
    let mut obj = json_object([
        ("count", Json::from(s.count)),
        ("sum", Json::from(s.sum)),
        ("mean", Json::from(s.mean)),
        ("p50", Json::from(s.p50)),
        ("p95", Json::from(s.p95)),
        ("p99", Json::from(s.p99)),
        ("max", Json::from(s.max)),
    ]);
    // Exemplars link the slow tail back to a concrete request: the trace
    // id (same hex form as the envelope's `trace_id`) of the latest
    // sample at or above each quantile's bucket.
    if s.p99_exemplar != 0 {
        obj.insert(
            "p99_exemplar",
            Json::from(telemetry::trace_hex(s.p99_exemplar)),
        );
    }
    if s.max_exemplar != 0 {
        obj.insert(
            "max_exemplar",
            Json::from(telemetry::trace_hex(s.max_exemplar)),
        );
    }
    obj
}

/// A [`Snapshot`] as a JSON object with `counters`, `gauges`, and
/// `histograms` maps (histogram values in nanoseconds).
pub fn snapshot_json(snap: &Snapshot) -> Json {
    json_object([
        (
            "counters",
            json_object(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v))),
            ),
        ),
        (
            "gauges",
            json_object(snap.gauges.iter().map(|(k, v)| (k.clone(), Json::from(*v)))),
        ),
        (
            "histograms",
            json_object(
                snap.histograms
                    .iter()
                    .map(|(k, s)| (k.clone(), summary_json(s))),
            ),
        ),
    ])
}

/// The current global registry as JSON.
pub fn metrics_json() -> Json {
    snapshot_json(&telemetry::global().snapshot())
}

fn span_json(s: &SpanRecord) -> Json {
    let mut obj = json_object([
        ("id", Json::from(s.id)),
        ("name", Json::from(s.name)),
        ("start_us", Json::from(s.start_us)),
        ("duration_ns", Json::from(s.duration_ns)),
        ("thread", Json::from(s.thread)),
        (
            "tags",
            json_object(s.tags.iter().map(|(k, v)| (*k, Json::from(v.as_str())))),
        ),
    ]);
    if let Some(p) = s.parent {
        obj.insert("parent", Json::from(p));
    }
    if let Some(t) = s.trace {
        obj.insert("trace", Json::from(telemetry::trace_hex(t)));
    }
    obj
}

/// The trace ring buffer as a JSON array, oldest span first.
pub fn trace_json() -> Json {
    json_array(telemetry::trace_snapshot().iter().map(span_json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_every_instrument_kind() {
        telemetry::global().counter("test.export.count").incr(3);
        telemetry::global().gauge("test.export.lag").set(-4);
        telemetry::global()
            .histogram("test.export.lat")
            .record(1_000);
        let json = metrics_json();
        assert_eq!(json["counters"]["test.export.count"].as_i64(), Some(3));
        assert_eq!(json["gauges"]["test.export.lag"].as_i64(), Some(-4));
        assert!(json["histograms"]["test.export.lat"]["count"].as_i64() >= Some(1));
    }

    #[test]
    fn trace_spans_carry_parent_and_tags() {
        {
            let root = telemetry::span!("test.export.root");
            let mut child = telemetry::span!("test.export.child", root.id());
            child.tag("k", "v");
        }
        let spans = trace_json();
        let arr = spans.as_array().unwrap();
        let child = arr
            .iter()
            .find(|s| s["name"].as_str() == Some("test.export.child"))
            .unwrap();
        assert!(child["parent"].as_i64().is_some());
        assert_eq!(child["tags"]["k"].as_str(), Some("v"));
    }
}
