//! Typed query-protocol layer: one parse step shared by every op, a
//! uniform response envelope, machine-readable error codes, and opaque
//! pagination cursors.
//!
//! Request shape (all fields beyond `op` optional; ops validate what they
//! need):
//!
//! ```json
//! {"op": "events", "from": 0, "to": 3600000, "type": "MCE",
//!  "limit": 100, "cursor": "ev:120000:c0-0c0s1n0:MCE"}
//! ```
//!
//! Response envelope (v2):
//!
//! ```json
//! {"v": 2, "status": "ok", "data": {...},
//!  "page": {"cursor": "...", "has_more": true}}
//! {"v": 2, "status": "error",
//!  "error": {"code": "BAD_WINDOW", "message": "..."}}
//! ```
//!
//! Responses are envelope-only: clients read `data` / `error` (plus
//! `page` and `trace_id`). The pre-v1 flat mirrors and the v1-era
//! opt-in mirror flag were removed at the envelope-v2 cut, along with
//! the legacy unversioned HTTP routes (see [`crate::server::http`]).
//!
//! The envelope is also the cache boundary: analytics result-cache keys
//! derive from the parsed [`QueryRequest`] (the canonical form of a
//! request), and cached entries store the `data` fields — the envelope
//! is re-assembled per response.

use crate::context::Context;
use jsonlite::{json_object, Value as Json};
use rasdb::error::DbError;

/// Machine-readable error classification carried in `error.code`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request body was not valid JSON.
    BadJson,
    /// A required field is missing or has the wrong shape.
    BadRequest,
    /// Unknown `op`.
    UnknownOp,
    /// `to` precedes `from`.
    BadWindow,
    /// `to == from`: a half-open window `[from, from)` selects nothing.
    EmptyWindow,
    /// `limit` present but not a positive integer.
    BadLimit,
    /// `cursor` present but unparseable or from another op.
    BadCursor,
    /// A named entity (node, view, ...) does not exist.
    NotFound,
    /// The HTTP method is not supported on the requested path.
    MethodNotAllowed,
    /// The request body exceeds the frontend's byte cap.
    PayloadTooLarge,
    /// The client exceeded its per-client token-bucket rate; retry after
    /// `error.retry_after_ms`.
    RateLimited,
    /// The server's global in-flight cap is saturated; retry after
    /// `error.retry_after_ms`.
    Overloaded,
    /// The storage layer could not reach enough replicas.
    Unavailable,
    /// A topology transition (join/decommission) is in flight; retry the
    /// admin op after `error.retry_after_ms`.
    TopologyChanging,
    /// Anything else (storage faults, analytics failures).
    Internal,
}

impl ErrorCode {
    /// The wire form, e.g. `"EMPTY_WINDOW"`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "BAD_JSON",
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::UnknownOp => "UNKNOWN_OP",
            ErrorCode::BadWindow => "BAD_WINDOW",
            ErrorCode::EmptyWindow => "EMPTY_WINDOW",
            ErrorCode::BadLimit => "BAD_LIMIT",
            ErrorCode::BadCursor => "BAD_CURSOR",
            ErrorCode::NotFound => "NOT_FOUND",
            ErrorCode::MethodNotAllowed => "METHOD_NOT_ALLOWED",
            ErrorCode::PayloadTooLarge => "PAYLOAD_TOO_LARGE",
            ErrorCode::RateLimited => "RATE_LIMITED",
            ErrorCode::Overloaded => "OVERLOADED",
            ErrorCode::Unavailable => "UNAVAILABLE",
            ErrorCode::TopologyChanging => "TOPOLOGY_CHANGING",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// The HTTP status a response carrying this code must use. This is the
    /// single source of truth for the code → status table documented in
    /// the README: client-shape errors are 400s, absent things are 404,
    /// wrong verbs are 405, oversized bodies are 413, shed load is 429
    /// (per-client) or 503 (global), transient backend states are 503, and
    /// everything else is a 500.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadJson
            | ErrorCode::BadRequest
            | ErrorCode::UnknownOp
            | ErrorCode::BadWindow
            | ErrorCode::EmptyWindow
            | ErrorCode::BadLimit
            | ErrorCode::BadCursor => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::RateLimited => 429,
            ErrorCode::Overloaded | ErrorCode::Unavailable | ErrorCode::TopologyChanging => 503,
            ErrorCode::Internal => 500,
        }
    }
}

/// A typed error: code + human-readable message, plus an optional retry
/// hint for transient conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Client back-off hint, emitted as `error.retry_after_ms` when set
    /// (currently only on [`ErrorCode::TopologyChanging`]).
    pub retry_after_ms: Option<u64>,
}

impl ApiError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Shorthand for [`ErrorCode::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::BadRequest, message)
    }

    /// Attaches a retry hint, surfaced as `error.retry_after_ms`.
    pub fn with_retry_after(mut self, ms: u64) -> ApiError {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl From<DbError> for ApiError {
    fn from(e: DbError) -> ApiError {
        let code = match &e {
            DbError::Unavailable { .. } | DbError::StreamAborted(_) => ErrorCode::Unavailable,
            DbError::TopologyChanging { .. } => ErrorCode::TopologyChanging,
            DbError::NoSuchTable(_)
            | DbError::BadQuery(_)
            | DbError::SchemaViolation(_)
            | DbError::Parse(_) => ErrorCode::BadRequest,
            _ => ErrorCode::Internal,
        };
        let retry = match &e {
            DbError::TopologyChanging { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        };
        let err = ApiError::new(code, e.to_string());
        match retry {
            Some(ms) => err.with_retry_after(ms),
            None => err,
        }
    }
}

/// An opaque pagination cursor. Encodes the sort key of the last item the
/// previous page returned; the next page resumes strictly after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cursor {
    /// `events` pages sort by `(ts_ms, source, type)`.
    Event {
        /// Timestamp of the last emitted event.
        ts_ms: i64,
        /// Source of the last emitted event.
        source: String,
        /// Type of the last emitted event.
        event_type: String,
    },
    /// `apps` pages sort by `(start_ms, apid)`.
    App {
        /// Start time of the last emitted run.
        start_ms: i64,
        /// Apid of the last emitted run.
        apid: i64,
    },
}

impl Cursor {
    /// The wire form handed back under `page.cursor`.
    pub fn encode(&self) -> String {
        match self {
            Cursor::Event {
                ts_ms,
                source,
                event_type,
            } => format!("ev:{ts_ms}:{source}:{event_type}"),
            Cursor::App { start_ms, apid } => format!("ap:{start_ms}:{apid}"),
        }
    }

    /// Parses a wire cursor; `None` on any malformed input.
    pub fn decode(s: &str) -> Option<Cursor> {
        let rest = s.strip_prefix("ev:").map(|r| ("ev", r));
        let rest = rest.or_else(|| s.strip_prefix("ap:").map(|r| ("ap", r)));
        match rest? {
            ("ev", r) => {
                let mut it = r.splitn(3, ':');
                let ts_ms = it.next()?.parse().ok()?;
                let source = it.next()?.to_owned();
                let event_type = it.next()?.to_owned();
                Some(Cursor::Event {
                    ts_ms,
                    source,
                    event_type,
                })
            }
            ("ap", r) => {
                let (start, apid) = r.split_once(':')?;
                Some(Cursor::App {
                    start_ms: start.parse().ok()?,
                    apid: apid.parse().ok()?,
                })
            }
            _ => None,
        }
    }
}

/// Pagination state of a response page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Cursor resuming after this page, when `has_more`.
    pub cursor: Option<String>,
    /// Whether further items exist past this page.
    pub has_more: bool,
}

impl Page {
    /// The `page` envelope object.
    pub fn to_json(&self) -> Json {
        json_object([
            (
                "cursor",
                self.cursor.as_deref().map(Json::from).unwrap_or(Json::Null),
            ),
            ("has_more", Json::from(self.has_more)),
        ])
    }
}

/// The parsed common request fields. Op-specific extras (`x`, `y`,
/// `bin_ms`, `view`, ...) stay in [`QueryRequest::raw`] and are read
/// through the typed accessors.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The operation name.
    pub op: String,
    /// Half-open time window `[from, to)`, when both bounds were given.
    pub window: Option<(i64, i64)>,
    /// Event-type filter.
    pub event_type: Option<String>,
    /// Source (node cname) filter.
    pub source: Option<String>,
    /// Cabinet filter.
    pub cabinet: Option<i64>,
    /// User filter.
    pub user: Option<String>,
    /// Application-name filter.
    pub app: Option<String>,
    /// Page size, validated positive.
    pub limit: Option<usize>,
    /// Decoded pagination cursor.
    pub cursor: Option<Cursor>,
    /// The full request body, for op-specific fields.
    pub raw: Json,
}

impl QueryRequest {
    /// Parses and validates the common fields of a request body.
    pub fn parse(req: &Json) -> Result<QueryRequest, ApiError> {
        let op = req["op"]
            .as_str()
            .ok_or_else(|| ApiError::bad_request("missing 'op' field"))?
            .to_owned();

        let from = req["from"].as_i64();
        let to = req["to"].as_i64();
        let window = match (from, to) {
            (Some(from), Some(to)) => {
                if to < from {
                    return Err(ApiError::new(ErrorCode::BadWindow, "'to' before 'from'"));
                }
                if to == from {
                    return Err(ApiError::new(
                        ErrorCode::EmptyWindow,
                        "'to' equals 'from': the half-open window [from, to) is empty",
                    ));
                }
                Some((from, to))
            }
            _ => None,
        };

        let limit = match req.get("limit") {
            None => None,
            Some(v) => match v.as_i64() {
                Some(n) if n > 0 => Some(n as usize),
                _ => {
                    return Err(ApiError::new(
                        ErrorCode::BadLimit,
                        "'limit' must be a positive integer",
                    ))
                }
            },
        };

        let cursor = match req["cursor"].as_str() {
            None => None,
            Some(s) => Some(Cursor::decode(s).ok_or_else(|| {
                ApiError::new(ErrorCode::BadCursor, format!("unparseable cursor '{s}'"))
            })?),
        };

        Ok(QueryRequest {
            op,
            window,
            event_type: req["type"].as_str().map(str::to_owned),
            source: req["source"].as_str().map(str::to_owned),
            cabinet: req["cabinet"].as_i64(),
            user: req["user"].as_str().map(str::to_owned),
            app: req["app"].as_str().map(str::to_owned),
            limit,
            cursor,
            raw: req.clone(),
        })
    }

    /// The time window; errors when either bound is missing.
    pub fn window(&self) -> Result<(i64, i64), ApiError> {
        self.window.ok_or_else(|| {
            ApiError::bad_request("missing 'from'/'to': this op needs a time window")
        })
    }

    /// Builds an analytics [`Context`] from the window + filters.
    pub fn context(&self) -> Result<Context, ApiError> {
        let (from, to) = self.window()?;
        let mut ctx = Context::window(from, to);
        if let Some(t) = &self.event_type {
            ctx = ctx.with_type(t);
        }
        if let Some(s) = &self.source {
            ctx = ctx.with_source(s);
        }
        if let Some(c) = self.cabinet {
            ctx = ctx.with_cabinet(c as usize);
        }
        if let Some(u) = &self.user {
            ctx = ctx.with_user(u);
        }
        if let Some(a) = &self.app {
            ctx = ctx.with_app(a);
        }
        Ok(ctx)
    }

    /// A required op-specific string field.
    pub fn str_field(&self, name: &str) -> Result<&str, ApiError> {
        self.raw[name]
            .as_str()
            .ok_or_else(|| ApiError::bad_request(format!("missing '{name}'")))
    }

    /// An optional op-specific string field.
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        self.raw[name].as_str()
    }

    /// A required op-specific integer field.
    pub fn i64_field(&self, name: &str) -> Result<i64, ApiError> {
        self.raw[name]
            .as_i64()
            .ok_or_else(|| ApiError::bad_request(format!("missing '{name}'")))
    }

    /// An optional op-specific integer field with a default. Unlike a
    /// silent `unwrap_or`, a field that is *present* but not an integer is
    /// a typed `BAD_REQUEST` — it would otherwise change the result while
    /// looking accepted.
    pub fn i64_or(&self, name: &str, default: i64) -> Result<i64, ApiError> {
        match self.raw.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_i64()
                .ok_or_else(|| ApiError::bad_request(format!("'{name}' must be an integer"))),
        }
    }

    /// An optional op-specific *positive* integer field with a default; a
    /// present field that is zero, negative, or not an integer is a typed
    /// `BAD_REQUEST`.
    pub fn pos_i64_or(&self, name: &str, default: i64) -> Result<i64, ApiError> {
        let v = self.i64_or(name, default)?;
        if v <= 0 {
            return Err(ApiError::bad_request(format!("'{name}' must be positive")));
        }
        Ok(v)
    }
}

/// Envelope protocol version carried as `"v"` in every response.
pub const ENVELOPE_VERSION: i64 = 2;

/// The result an op hands back to the dispatcher: named data fields plus
/// optional pagination, assembled into the envelope in one place.
pub struct OpOutput {
    /// Named data fields, nested under `data` (the canonical and only
    /// form since the envelope-v2 cut).
    pub data: Vec<(String, Json)>,
    /// Pagination, for cursor-driven ops.
    pub page: Option<Page>,
}

impl OpOutput {
    /// Output with data fields only.
    pub fn data<const N: usize>(fields: [(&str, Json); N]) -> OpOutput {
        OpOutput {
            data: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
            page: None,
        }
    }

    /// Attaches pagination state.
    pub fn with_page(mut self, page: Page) -> OpOutput {
        self.page = Some(page);
        self
    }
}

/// Assembles the v2 `ok` envelope: `v`, `status`, the canonical `data`
/// object, and `page` when the op paginates.
pub fn envelope_ok(out: OpOutput) -> Json {
    let mut resp = json_object([
        ("v", Json::from(ENVELOPE_VERSION)),
        ("status", Json::from("ok")),
    ]);
    resp.insert("data", json_object(out.data));
    if let Some(page) = &out.page {
        resp.insert("page", page.to_json());
    }
    resp
}

/// Assembles the v2 `error` envelope: typed `error.code`/`error.message`,
/// plus `error.retry_after_ms` for retryable conditions.
pub fn envelope_err(e: &ApiError) -> Json {
    let mut error = json_object([
        ("code", Json::from(e.code.as_str())),
        ("message", Json::from(e.message.as_str())),
    ]);
    if let Some(ms) = e.retry_after_ms {
        error.insert("retry_after_ms", Json::from(ms as i64));
    }
    json_object([
        ("v", Json::from(ENVELOPE_VERSION)),
        ("status", Json::from("error")),
        ("error", error),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<QueryRequest, ApiError> {
        QueryRequest::parse(&jsonlite::parse(body).unwrap())
    }

    #[test]
    fn window_validation_is_typed() {
        assert!(parse(r#"{"op":"events","from":0,"to":10}"#).is_ok());
        let e = parse(r#"{"op":"events","from":10,"to":0}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadWindow);
        let e = parse(r#"{"op":"events","from":5,"to":5}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::EmptyWindow);
    }

    #[test]
    fn limit_must_be_positive() {
        assert_eq!(
            parse(r#"{"op":"events","limit":3}"#).unwrap().limit,
            Some(3)
        );
        for bad in [r#"{"op":"e","limit":0}"#, r#"{"op":"e","limit":-2}"#] {
            assert_eq!(parse(bad).unwrap_err().code, ErrorCode::BadLimit);
        }
    }

    #[test]
    fn cursors_roundtrip() {
        let ev = Cursor::Event {
            ts_ms: 120_000,
            source: "c0-0c0s1n0".into(),
            event_type: "MCE".into(),
        };
        assert_eq!(Cursor::decode(&ev.encode()), Some(ev));
        let ap = Cursor::App {
            start_ms: 7,
            apid: 42,
        };
        assert_eq!(Cursor::decode(&ap.encode()), Some(ap));
        assert_eq!(Cursor::decode("garbage"), None);
        assert_eq!(Cursor::decode("ev:notanumber:a:b"), None);
        let e = parse(r#"{"op":"events","cursor":"zzz"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadCursor);
    }

    #[test]
    fn envelope_is_versioned_and_flat_free() {
        let out = OpOutput::data([("rows", Json::from(3i64))]).with_page(Page {
            cursor: Some("ev:1:a:b".into()),
            has_more: true,
        });
        let env = envelope_ok(out);
        assert_eq!(env["v"].as_i64(), Some(2), "the envelope-v2 cut");
        assert_eq!(env["status"].as_str(), Some("ok"));
        assert_eq!(env["data"]["rows"].as_i64(), Some(3));
        assert_eq!(env["page"]["has_more"].as_bool(), Some(true));
        assert!(env["rows"].is_null(), "flat mirrors are gone since v2");
        assert!(env["deprecated"].is_null(), "so is the deprecated list");

        let err = envelope_err(&ApiError::new(ErrorCode::EmptyWindow, "nothing to see"));
        assert_eq!(err["v"].as_i64(), Some(ENVELOPE_VERSION));
        assert_eq!(err["status"].as_str(), Some("error"));
        assert_eq!(err["error"]["code"].as_str(), Some("EMPTY_WINDOW"));
        assert_eq!(err["error"]["message"].as_str(), Some("nothing to see"));
        assert!(err["message"].is_null(), "flat error mirror is gone too");
    }

    #[test]
    fn topology_changing_maps_to_typed_retry_envelope() {
        let api: ApiError = DbError::TopologyChanging {
            retry_after_ms: 250,
        }
        .into();
        assert_eq!(api.code, ErrorCode::TopologyChanging);
        assert_eq!(api.retry_after_ms, Some(250));
        let env = envelope_err(&api);
        assert_eq!(env["error"]["code"].as_str(), Some("TOPOLOGY_CHANGING"));
        assert_eq!(env["error"]["retry_after_ms"].as_i64(), Some(250));
        // Non-retryable errors never carry the hint.
        let env = envelope_err(&ApiError::bad_request("nope"));
        assert!(env["error"]["retry_after_ms"].is_null());
        // Stream aborts surface as UNAVAILABLE (the transition rolled
        // back; the client may retry the whole admin op).
        let api: ApiError = DbError::StreamAborted("x".into()).into();
        assert_eq!(api.code, ErrorCode::Unavailable);
    }

    #[test]
    fn every_error_code_maps_to_its_documented_http_status() {
        for (code, status) in [
            (ErrorCode::BadJson, 400),
            (ErrorCode::BadRequest, 400),
            (ErrorCode::UnknownOp, 400),
            (ErrorCode::BadWindow, 400),
            (ErrorCode::EmptyWindow, 400),
            (ErrorCode::BadLimit, 400),
            (ErrorCode::BadCursor, 400),
            (ErrorCode::NotFound, 404),
            (ErrorCode::MethodNotAllowed, 405),
            (ErrorCode::PayloadTooLarge, 413),
            (ErrorCode::RateLimited, 429),
            (ErrorCode::Overloaded, 503),
            (ErrorCode::Unavailable, 503),
            (ErrorCode::TopologyChanging, 503),
            (ErrorCode::Internal, 500),
        ] {
            assert_eq!(code.http_status(), status, "{}", code.as_str());
        }
    }

    #[test]
    fn optional_int_accessors_reject_wrong_shapes() {
        let req = parse(r#"{"op":"histogram","bin_ms":600,"top":"five"}"#).unwrap();
        assert_eq!(req.i64_or("bin_ms", 1).unwrap(), 600);
        assert_eq!(req.i64_or("missing", 7).unwrap(), 7);
        assert_eq!(
            req.i64_or("top", 1).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(req.pos_i64_or("missing", 9).unwrap(), 9);
        let req = parse(r#"{"op":"histogram","bin_ms":-5}"#).unwrap();
        assert_eq!(
            req.pos_i64_or("bin_ms", 1).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(req.i64_field("bin_ms").unwrap(), -5);
        assert_eq!(
            req.i64_field("day").unwrap_err().code,
            ErrorCode::BadRequest
        );
    }
}
