//! A minimal HTTP/1.1 endpoint for the query engine — the stand-in for the
//! paper's Tornado web server. `POST /query` with a JSON body returns the
//! engine's JSON response (honoring an `X-Trace-Id` header when the body
//! doesn't carry its own `trace_id`); `GET /health` answers liveness
//! probes while `GET /healthz` adds SLO burn rates (503 when any op is
//! failing); `GET /metrics`, `GET /trace`, and `GET /slow_queries` expose
//! the global telemetry registry, span trace log, and slow-query flight
//! recorder as JSON.

use crate::server::engine::QueryEngine;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use telemetry::TraceContext;

/// A running HTTP server.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (0 = ephemeral) and serves in background
    /// threads until dropped.
    pub fn start(engine: Arc<QueryEngine>, port: u16) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("hpclog-http".to_owned())
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let engine = Arc::clone(&engine);
                            std::thread::spawn(move || {
                                let _ = handle_connection(stream, &engine);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(stream: TcpStream, engine: &QueryEngine) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    // Headers: we only need Content-Length and X-Trace-Id.
    let mut content_length = 0usize;
    let mut header_trace = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
        if let Some(v) = lower
            .strip_prefix("x-trace-id:")
            .map(str::trim)
            .and_then(TraceContext::parse_hex)
        {
            header_trace = Some(v);
        }
    }

    let mut stream = stream;
    match (method, path) {
        ("GET", "/health") => respond(&mut stream, 200, r#"{"status":"ok"}"#),
        ("GET", "/metrics") => {
            let body = crate::server::telemetry_export::metrics_json().to_string();
            respond(&mut stream, 200, &body)
        }
        ("GET", "/trace") => {
            let body = crate::server::telemetry_export::trace_json().to_string();
            respond(&mut stream, 200, &body)
        }
        ("GET", "/slow_queries") => {
            let body = engine.handle(r#"{"op":"slow_queries"}"#);
            respond(&mut stream, 200, &body)
        }
        ("GET", "/healthz") => {
            let body = engine.handle(r#"{"op":"health"}"#);
            let code = if engine.slo().overall() == "failing" {
                503
            } else {
                200
            };
            respond(&mut stream, code, &body)
        }
        ("POST", "/query") => {
            // Bound the body to keep hostile clients from exhausting memory.
            if content_length > 8 * 1024 * 1024 {
                return respond(
                    &mut stream,
                    413,
                    r#"{"status":"error","message":"body too large"}"#,
                );
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let body = String::from_utf8_lossy(&body);
            let response = engine.handle_traced(&body, header_trace);
            respond(&mut stream, 200, &response)
        }
        _ => respond(
            &mut stream,
            404,
            r#"{"status":"error","message":"use POST /query or GET /health, /healthz, /metrics, /trace, /slow_queries"}"#,
        ),
    }
}

fn respond(stream: &mut TcpStream, code: u16, body: &str) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Framework, FrameworkConfig};
    use loggen::topology::Topology;

    fn server() -> HttpServer {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            ..Default::default()
        })
        .unwrap();
        HttpServer::start(Arc::new(QueryEngine::new(Arc::new(fw))), 0).unwrap()
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn health_endpoint_answers() {
        let server = server();
        let resp = request(server.addr(), "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"));
        assert!(resp.contains(r#"{"status":"ok"}"#));
    }

    #[test]
    fn query_endpoint_runs_the_engine() {
        let server = server();
        let body = r#"{"op":"events","type":"MCE","from":0,"to":1000}"#;
        let raw = format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = request(server.addr(), &raw);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains(r#""status":"ok""#), "{resp}");
        assert!(resp.contains(r#""rows":[]"#), "{resp}");
    }

    #[test]
    fn metrics_and_trace_endpoints_serve_json() {
        let server = server();
        // Drive one query so the registry and trace have something in them.
        let body = r#"{"op":"events","type":"MCE","from":0,"to":1000}"#;
        let raw = format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        request(server.addr(), &raw);

        let resp = request(server.addr(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains(r#""histograms""#), "{resp}");

        // Other tests in this process may flood the trace ring between our
        // query and the read, so retry the pair a few times.
        let mut found = false;
        for _ in 0..5 {
            request(server.addr(), &raw);
            let resp = request(server.addr(), "GET /trace HTTP/1.1\r\nHost: x\r\n\r\n");
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            if resp.contains("server.engine.request") {
                found = true;
                break;
            }
        }
        assert!(found, "no server.engine.request span surfaced in /trace");
    }

    #[test]
    fn x_trace_id_header_is_adopted() {
        let server = server();
        let body = r#"{"op":"events","type":"MCE","from":0,"to":1000}"#;
        let raw = format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nX-Trace-Id: deadbeef\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = request(server.addr(), &raw);
        assert!(
            resp.contains(r#""trace_id":"00000000deadbeef""#),
            "header trace id should come back on the envelope: {resp}"
        );
    }

    #[test]
    fn slow_queries_and_healthz_endpoints_serve_json() {
        let server = server();
        let resp = request(
            server.addr(),
            "GET /slow_queries HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains(r#""threshold_ms":100"#), "{resp}");

        let resp = request(server.addr(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains(r#""status":"ok""#), "{resp}");
    }

    #[test]
    fn unknown_paths_get_404() {
        let server = server();
        let resp = request(server.addr(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let resp = request(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
                    assert!(resp.contains("ok"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
