//! The HTTP/1.1 frontend for the query engine — the stand-in for the
//! paper's Tornado web server, built for many concurrent dashboard
//! sessions rather than one thread per socket.
//!
//! # Architecture
//!
//! Three fixed thread roles replace the old unbounded
//! `thread::spawn`-per-connection model:
//!
//! * **acceptor** — accepts sockets and parks them (nonblocking) in the
//!   poller's list with a header-read deadline;
//! * **poller** — scans parked connections with a nonblocking
//!   [`TcpStream::peek`] (a std-only stand-in for epoll), promoting
//!   readable ones onto the bounded ready queue and dropping the ones
//!   whose deadline (header-read or keep-alive idle) expired — the
//!   slowloris defense;
//! * **workers** — `HttpConfig::workers` threads pull connections off the
//!   ready queue, serve every request already buffered (HTTP/1.1
//!   keep-alive with pipelining), and park the connection again when its
//!   buffer drains.
//!
//! A connection therefore cycles `accept → park → ready queue → worker →
//! park → …` until the client closes, asks for `Connection: close`, or a
//! deadline fires. Thread count is fixed at `2 + workers` no matter how
//! many clients connect.
//!
//! # Admission control
//!
//! Before a request reaches the engine it passes two gates, shed with
//! typed v2 envelopes and a mirrored `Retry-After` header:
//!
//! * a per-client token bucket (keyed by `X-Client-Id`, else the peer
//!   IP) → `429` / `RATE_LIMITED` with `error.retry_after_ms` telling the
//!   client when a token will be available;
//! * a global in-flight cap → `503` / `OVERLOADED` when every permitted
//!   slot is busy.
//!
//! Sheds are cheap (no engine work, connection stays open), which is what
//! keeps goodput high under overload: see `BENCH_serving_concurrency.json`
//! and the `loadgen` bench. Liveness/health paths bypass admission so
//! probes and operators keep visibility while the server sheds.
//!
//! # Routes
//!
//! `POST /v1/query` is the query endpoint; `GET /v1/{metrics,trace,
//! slow_queries,storage,healthz,topology}` alias the corresponding ops.
//! The pre-v1 paths (`/query`, `/metrics`, `/trace`, `/slow_queries`,
//! `/healthz`, `/health`) were removed in the v2 envelope cut: they now
//! answer `404` with a typed `NOT_FOUND` envelope naming the `/v1/*`
//! replacement. Every failure produced by this layer — malformed JSON,
//! unknown path, wrong method, oversized body, header-read timeout, shed
//! load — is a v2 envelope with a typed `error.code`, a `trace_id`, and
//! the HTTP status from [`ErrorCode::http_status`].

use crate::server::engine::QueryEngine;
use crate::server::request::{envelope_err, ApiError, ErrorCode};
use jsonlite::Value as Json;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::TraceContext;

/// Longest accepted request-line or header line, in bytes.
const MAX_HEADER_LINE: u64 = 16 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Retry hint attached to `OVERLOADED` sheds.
const OVERLOAD_RETRY_MS: u64 = 100;
/// Lock shards for the per-client token-bucket map.
const LIMITER_SHARDS: usize = 8;
/// Buckets per limiter shard before stale entries are swept.
const LIMITER_SWEEP_LEN: usize = 8 * 1024;

/// Tunables of the frontend. Worker-pool size and the in-flight cap are
/// also surfaced as `server.http.*` gauges so a running server's shape is
/// visible in `/v1/metrics`.
#[derive(Clone, Debug)]
pub struct HttpConfig {
    /// Worker threads serving requests (the only threads that touch the
    /// engine).
    pub workers: usize,
    /// Bounded ready-queue depth; readable connections beyond it stay
    /// parked until workers catch up.
    pub queue_depth: usize,
    /// Global cap on requests inside the engine at once; excess sheds
    /// with `503` / `OVERLOADED`.
    pub max_inflight: usize,
    /// Byte cap on request bodies; larger bodies get `413` /
    /// `PAYLOAD_TOO_LARGE`.
    pub max_body_bytes: usize,
    /// How long a promoted connection may take to deliver a full request
    /// (headers + body) before the worker answers `400` and closes.
    pub header_read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// How long a parked keep-alive connection may stay idle before the
    /// poller drops it.
    pub idle_timeout: Duration,
    /// Token-bucket refill rate per client, in requests/second; `<= 0`
    /// disables per-client rate limiting.
    pub rate_per_sec: f64,
    /// Token-bucket capacity (burst allowance) per client.
    pub rate_burst: f64,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            workers: 8,
            queue_depth: 256,
            max_inflight: 64,
            max_body_bytes: 1 << 20,
            header_read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            rate_per_sec: 500.0,
            rate_burst: 250.0,
        }
    }
}

/// A running HTTP server; dropping it stops every thread.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (0 = ephemeral) with the default
    /// [`HttpConfig`].
    pub fn start(engine: Arc<QueryEngine>, port: u16) -> std::io::Result<HttpServer> {
        HttpServer::start_with(engine, port, HttpConfig::default())
    }

    /// Binds `127.0.0.1:port` (0 = ephemeral) and serves with `cfg` until
    /// dropped.
    pub fn start_with(
        engine: Arc<QueryEngine>,
        port: u16,
        cfg: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let reg = telemetry::global();
        reg.gauge("server.http.workers").set(cfg.workers as i64);
        reg.gauge("server.http.max_inflight")
            .set(cfg.max_inflight as i64);
        reg.gauge("server.http.queue_depth")
            .set(cfg.queue_depth as i64);
        let stats = FrontendStats {
            requests: reg.counter("server.http.requests"),
            shed_rate_limited: reg.counter("server.http.shed.rate_limited"),
            shed_overloaded: reg.counter("server.http.shed.overloaded"),
            timeouts: reg.counter("server.http.timeouts"),
            connections: reg.gauge("server.http.connections"),
            inflight: reg.gauge("server.http.inflight"),
        };

        let shared = Arc::new(Shared {
            engine,
            limiter: Limiter::new(cfg.rate_per_sec, cfg.rate_burst),
            ready: ReadyQueue::new(cfg.queue_depth),
            parked: Mutex::new(Vec::new()),
            inflight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            stats,
            cfg,
        });

        let mut handles = Vec::new();
        let s = Arc::clone(&shared);
        handles.push(
            std::thread::Builder::new()
                .name("http-accept".to_owned())
                .spawn(move || accept_loop(&listener, &s))?,
        );
        let s = Arc::clone(&shared);
        handles.push(
            std::thread::Builder::new()
                .name("http-poll".to_owned())
                .spawn(move || poll_loop(&s))?,
        );
        for i in 0..shared.cfg.workers.max(1) {
            let s = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(&s))?,
            );
        }
        Ok(HttpServer {
            addr,
            shared,
            handles,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Parked connections close here; gauges settle via Conn::drop.
        lock(&self.shared.parked).clear();
    }
}

/// State every frontend thread shares.
struct Shared {
    engine: Arc<QueryEngine>,
    cfg: HttpConfig,
    limiter: Limiter,
    ready: ReadyQueue,
    parked: Mutex<Vec<Conn>>,
    inflight: AtomicUsize,
    stop: AtomicBool,
    stats: FrontendStats,
}

/// Pre-resolved `server.http.*` instrument handles (resolving by name on
/// every request would reintroduce the registry lock on the hot path).
struct FrontendStats {
    requests: Arc<telemetry::Counter>,
    shed_rate_limited: Arc<telemetry::Counter>,
    shed_overloaded: Arc<telemetry::Counter>,
    timeouts: Arc<telemetry::Counter>,
    connections: Arc<telemetry::Gauge>,
    inflight: Arc<telemetry::Gauge>,
}

/// One client connection moving between the poller and the workers.
struct Conn {
    /// The raw socket: `peek` while parked, writes from workers. Mode
    /// (nonblocking vs. blocking + timeouts) is flipped at each handoff.
    stream: TcpStream,
    /// Buffered reader over a dup of the socket; kept across parks so
    /// pipelined bytes already buffered are never lost (the poller's
    /// `peek` cannot see them, so a connection only parks when this
    /// buffer is empty).
    reader: BufReader<TcpStream>,
    /// Peer address, the default rate-limit key.
    peer: String,
    /// When the poller gives up on this connection: header-read deadline
    /// for fresh connections, idle deadline for parked keep-alive ones.
    deadline: Instant,
    /// Open-connection gauge, decremented on drop.
    gauge: Arc<telemetry::Gauge>,
}

impl Conn {
    fn new(
        stream: TcpStream,
        peer: String,
        deadline: Instant,
        gauge: Arc<telemetry::Gauge>,
    ) -> std::io::Result<Conn> {
        let reader = BufReader::new(stream.try_clone()?);
        gauge.add(1);
        Ok(Conn {
            stream,
            reader,
            peer,
            deadline,
            gauge,
        })
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.gauge.add(-1);
    }
}

/// The bounded connection queue between the poller and the workers.
struct ReadyQueue {
    inner: Mutex<VecDeque<Conn>>,
    cv: Condvar,
    cap: usize,
}

impl ReadyQueue {
    fn new(cap: usize) -> ReadyQueue {
        ReadyQueue {
            inner: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues unless full; a full queue hands the connection back so
    /// the poller keeps it parked (backpressure instead of an unbounded
    /// buffer).
    fn try_push(&self, conn: Conn) -> Result<(), Conn> {
        let mut q = lock(&self.inner);
        if q.len() >= self.cap {
            return Err(conn);
        }
        q.push_back(conn);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks up to `timeout` for a connection (workers re-check the stop
    /// flag between waits).
    fn pop(&self, timeout: Duration) -> Option<Conn> {
        let mut q = lock(&self.inner);
        if let Some(c) = q.pop_front() {
            return Some(c);
        }
        let (mut q, _) = self
            .cv
            .wait_timeout(q, timeout)
            .unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }
}

// --- acceptor / poller / workers -------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let deadline = Instant::now() + shared.cfg.header_read_timeout;
                if let Ok(conn) = Conn::new(
                    stream,
                    peer.ip().to_string(),
                    deadline,
                    Arc::clone(&shared.stats.connections),
                ) {
                    lock(&shared.parked).push(conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Scans parked connections: EOF and expired ones drop, readable ones are
/// promoted to the ready queue (unless it is full, which keeps them
/// parked — that is the backpressure path). The list is taken out of the
/// mutex for the scan so the acceptor never waits on a long sweep.
fn poll_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        let mut list = std::mem::take(&mut *lock(&shared.parked));
        let mut keep = Vec::with_capacity(list.len());
        let now = Instant::now();
        let mut queue_full = false;
        for conn in list.drain(..) {
            if queue_full {
                keep.push(conn);
                continue;
            }
            let mut probe = [0u8; 1];
            match conn.stream.peek(&mut probe) {
                Ok(0) => {} // client closed; drop
                Ok(_) => match shared.ready.try_push(conn) {
                    Ok(()) => {}
                    Err(conn) => {
                        queue_full = true;
                        keep.push(conn);
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if now >= conn.deadline {
                        shared.stats.timeouts.incr(1); // drop: slowloris or idle
                    } else {
                        keep.push(conn);
                    }
                }
                Err(_) => {} // socket error; drop
            }
        }
        lock(&shared.parked).append(&mut keep);
        std::thread::sleep(Duration::from_micros(500));
    }
}

fn worker_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        let Some(mut conn) = shared.ready.pop(Duration::from_millis(50)) else {
            continue;
        };
        if conn.stream.set_nonblocking(false).is_err() {
            continue; // drops the connection
        }
        let _ = conn
            .stream
            .set_read_timeout(Some(shared.cfg.header_read_timeout));
        let _ = conn
            .stream
            .set_write_timeout(Some(shared.cfg.write_timeout));
        if let Disposition::Park = serve_ready(shared, &mut conn) {
            conn.deadline = Instant::now() + shared.cfg.idle_timeout;
            if conn.stream.set_nonblocking(true).is_ok() {
                lock(&shared.parked).push(conn);
            }
        }
    }
}

enum Disposition {
    /// Keep-alive: back to the poller until more bytes arrive.
    Park,
    /// Drop the connection.
    Close,
}

/// Serves every request available on a promoted connection: at least one
/// (the poller saw bytes), then any pipelined requests already sitting in
/// the read buffer. Parks only when the buffer is empty — bytes in the
/// buffer are invisible to the poller's `peek`.
fn serve_ready(shared: &Shared, conn: &mut Conn) -> Disposition {
    loop {
        let req = match read_request(&mut conn.reader, shared.cfg.max_body_bytes) {
            Ok(Some(req)) => req,
            Ok(None) => return Disposition::Close, // clean EOF between requests
            Err(failure) => {
                let (code, message) = match failure {
                    ReadFailure::Timeout => {
                        shared.stats.timeouts.incr(1);
                        (ErrorCode::BadRequest, "request read timed out".to_owned())
                    }
                    ReadFailure::TooLarge => (
                        ErrorCode::PayloadTooLarge,
                        format!(
                            "request body exceeds the {}-byte cap",
                            shared.cfg.max_body_bytes
                        ),
                    ),
                    ReadFailure::Malformed(why) => (ErrorCode::BadRequest, why.to_owned()),
                    ReadFailure::Io => return Disposition::Close,
                };
                let trace = TraceContext::root();
                let reply = Reply::error(&ApiError::new(code, message), &trace);
                let _ = write_reply(&mut conn.stream, &reply, false);
                return Disposition::Close;
            }
        };
        shared.stats.requests.incr(1);
        let keep_alive = !req.close;
        let reply = route(shared, &req, &conn.peer);
        if write_reply(&mut conn.stream, &reply, keep_alive && !reply.close).is_err() {
            return Disposition::Close;
        }
        if !keep_alive || reply.close {
            return Disposition::Close;
        }
        if conn.reader.buffer().is_empty() {
            return Disposition::Park;
        }
    }
}

// --- request parsing --------------------------------------------------------

struct HttpRequest {
    method: String,
    path: String,
    body: String,
    /// Adopted `X-Trace-Id`, already parsed.
    trace: Option<u64>,
    /// `X-Client-Id`, the preferred rate-limit key.
    client_id: Option<String>,
    /// Client sent `Connection: close`.
    close: bool,
}

enum ReadFailure {
    /// The socket read timed out mid-request (slow headers or body).
    Timeout,
    /// `Content-Length` exceeds the configured body cap.
    TooLarge,
    /// Structurally invalid request.
    Malformed(&'static str),
    /// Any other socket error; not worth a response.
    Io,
}

fn classify(e: std::io::Error) -> ReadFailure {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadFailure::Timeout,
        _ => ReadFailure::Io,
    }
}

/// Reads one line, bounded by [`MAX_HEADER_LINE`]. `Ok(None)` is EOF
/// before any byte.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> Result<Option<()>, ReadFailure> {
    match reader.by_ref().take(MAX_HEADER_LINE).read_line(line) {
        Ok(0) => Ok(None),
        Ok(_) if !line.ends_with('\n') && line.len() as u64 >= MAX_HEADER_LINE => {
            Err(ReadFailure::Malformed("header line too long"))
        }
        Ok(_) => Ok(Some(())),
        Err(e) => Err(classify(e)),
    }
}

/// Reads one full request (request line, headers, body). `Ok(None)` means
/// the client closed cleanly at a request boundary.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> Result<Option<HttpRequest>, ReadFailure> {
    let mut line = String::new();
    if read_line_capped(reader, &mut line)?.is_none() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(ReadFailure::Malformed("malformed request line"));
    }

    let mut content_length = 0usize;
    let mut trace = None;
    let mut client_id = None;
    let mut close = false;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(ReadFailure::Malformed("too many headers"));
        }
        let mut line = String::new();
        if read_line_capped(reader, &mut line)?.is_none() {
            return Err(ReadFailure::Malformed("connection closed mid-headers"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let lower = trimmed.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v
                .trim()
                .parse()
                .map_err(|_| ReadFailure::Malformed("unparseable Content-Length"))?;
        } else if let Some(v) = lower.strip_prefix("x-trace-id:") {
            trace = TraceContext::parse_hex(v.trim());
        } else if let Some(v) = lower.strip_prefix("x-client-id:") {
            client_id = Some(v.trim().to_owned());
        } else if lower.strip_prefix("connection:").map(str::trim) == Some("close") {
            close = true;
        }
    }

    if content_length > max_body_bytes {
        return Err(ReadFailure::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(classify)?;
    Ok(Some(HttpRequest {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
        trace,
        client_id,
        close,
    }))
}

// --- routing + admission ----------------------------------------------------

/// A response ready to write.
struct Reply {
    status: u16,
    body: String,
    /// Mirrored into a `Retry-After` header (seconds, rounded up).
    retry_after_ms: Option<u64>,
    /// `Allow` header for 405s.
    allow: Option<&'static str>,
    /// Force `Connection: close` (e.g. unread body bytes on the socket).
    close: bool,
}

impl Reply {
    fn ok(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            retry_after_ms: None,
            allow: None,
            close: false,
        }
    }

    /// A typed v2 error envelope with a `trace_id`, status from
    /// [`ErrorCode::http_status`], and the retry hint mirrored.
    fn error(err: &ApiError, trace: &TraceContext) -> Reply {
        let mut env = envelope_err(err);
        env.insert("trace_id", Json::from(trace.hex()));
        Reply {
            status: err.code.http_status(),
            body: env.to_string(),
            retry_after_ms: err.retry_after_ms,
            allow: None,
            close: false,
        }
    }
}

/// Decrements the in-flight count (and gauge) when a request leaves the
/// engine, however it leaves.
struct InflightGuard<'a>(&'a Shared);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
        self.0.stats.inflight.add(-1);
    }
}

fn route(shared: &Shared, req: &HttpRequest, peer: &str) -> Reply {
    let trace = match req.trace {
        Some(t) => TraceContext::adopt(t),
        None => TraceContext::root(),
    };
    let path = req.path.split('?').next().unwrap_or("");

    // Liveness and health stay reachable while the server sheds load, so
    // probes and operators can see *why* it is shedding.
    let exempt = path == "/v1/healthz";
    let _guard = if exempt {
        None
    } else {
        // Gate 1: per-client token bucket.
        let key = req.client_id.as_deref().unwrap_or(peer);
        if let Err(retry_ms) = shared.limiter.admit(key, Instant::now()) {
            shared.stats.shed_rate_limited.incr(1);
            let err = ApiError::new(
                ErrorCode::RateLimited,
                format!("client '{key}' exceeded its request rate"),
            )
            .with_retry_after(retry_ms);
            return Reply::error(&err, &trace);
        }
        // Gate 2: global in-flight cap.
        if shared.inflight.fetch_add(1, Ordering::SeqCst) >= shared.cfg.max_inflight {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.stats.shed_overloaded.incr(1);
            let err = ApiError::new(
                ErrorCode::Overloaded,
                format!(
                    "server is at its in-flight cap ({})",
                    shared.cfg.max_inflight
                ),
            )
            .with_retry_after(OVERLOAD_RETRY_MS);
            return Reply::error(&err, &trace);
        }
        shared.stats.inflight.add(1);
        Some(InflightGuard(shared))
    };

    let engine = &shared.engine;
    match (req.method.as_str(), path) {
        ("POST", "/v1/query") => {
            let resp = engine.handle_http(&req.body, req.trace);
            let mut reply = Reply::ok(resp.status, resp.body);
            reply.retry_after_ms = resp.retry_after_ms;
            reply
        }
        ("GET", "/v1/metrics") => {
            let resp = engine.handle_http(r#"{"op":"metrics"}"#, req.trace);
            Reply::ok(resp.status, resp.body)
        }
        ("GET", "/v1/trace") => {
            let resp = engine.handle_http(r#"{"op":"trace"}"#, req.trace);
            Reply::ok(resp.status, resp.body)
        }
        ("GET", "/v1/slow_queries") => {
            let resp = engine.handle_http(r#"{"op":"slow_queries"}"#, req.trace);
            Reply::ok(resp.status, resp.body)
        }
        ("GET", "/v1/storage") => {
            let resp = engine.handle_http(r#"{"op":"storage"}"#, req.trace);
            Reply::ok(resp.status, resp.body)
        }
        ("GET", "/v1/topology") => {
            let resp = engine.handle_http(r#"{"op":"topology"}"#, req.trace);
            let mut reply = Reply::ok(resp.status, resp.body);
            reply.retry_after_ms = resp.retry_after_ms;
            reply
        }
        ("GET", "/v1/healthz") => {
            let resp = engine.handle_http(r#"{"op":"health"}"#, req.trace);
            let status = if engine.slo().overall() == "failing" {
                503
            } else {
                resp.status
            };
            Reply::ok(status, resp.body)
        }
        // The pre-v1 paths were removed in the v2 cut: answer 404 with a
        // typed pointer at the replacement so stale clients self-diagnose.
        (_, "/query" | "/metrics" | "/trace" | "/slow_queries" | "/healthz" | "/health") => {
            let replacement = match path {
                "/query" => "POST /v1/query",
                "/metrics" => "GET /v1/metrics",
                "/trace" => "GET /v1/trace",
                "/slow_queries" => "GET /v1/slow_queries",
                _ => "GET /v1/healthz",
            };
            let err = ApiError::new(
                ErrorCode::NotFound,
                format!("{path} was removed in the v2 API cut: use {replacement}"),
            );
            Reply::error(&err, &trace)
        }
        (
            _,
            "/v1/query" | "/v1/metrics" | "/v1/trace" | "/v1/slow_queries" | "/v1/storage"
            | "/v1/topology" | "/v1/healthz",
        ) => {
            let allow = if path == "/v1/query" { "POST" } else { "GET" };
            let err = ApiError::new(
                ErrorCode::MethodNotAllowed,
                format!("{} does not support {}", path, req.method),
            );
            let mut reply = Reply::error(&err, &trace);
            reply.allow = Some(allow);
            reply
        }
        _ => {
            let err = ApiError::new(
                ErrorCode::NotFound,
                "unknown path: use POST /v1/query or GET /v1/{metrics,trace,slow_queries,storage,healthz,topology}",
            );
            Reply::error(&err, &trace)
        }
    }
}

// --- per-client token-bucket rate limiter -----------------------------------

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Sharded per-client token buckets. One mutex per shard keeps concurrent
/// workers admitting different clients from serializing.
struct Limiter {
    shards: Vec<Mutex<HashMap<String, Bucket>>>,
    rate: f64,
    burst: f64,
}

impl Limiter {
    fn new(rate: f64, burst: f64) -> Limiter {
        Limiter {
            shards: (0..LIMITER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            rate,
            burst: burst.max(1.0),
        }
    }

    /// Takes one token for `key`, refilling by elapsed time first. `Err`
    /// carries the milliseconds until a token will be available.
    fn admit(&self, key: &str, now: Instant) -> Result<(), u64> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut shard = lock(&self.shards[(h % LIMITER_SHARDS as u64) as usize]);
        if shard.len() >= LIMITER_SWEEP_LEN && !shard.contains_key(key) {
            // Sweep buckets idle long enough to have refilled completely;
            // dropping one loses nothing but a full bucket.
            let horizon = Duration::from_secs_f64(self.burst / self.rate);
            shard.retain(|_, b| now.saturating_duration_since(b.last) < horizon);
        }
        let bucket = shard.entry(key.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let ms = ((1.0 - bucket.tokens) / self.rate * 1000.0).ceil();
            Err(ms.max(1.0) as u64)
        }
    }
}

// --- response writing -------------------------------------------------------

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn write_reply(stream: &mut TcpStream, reply: &Reply, keep_alive: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reply.status,
        reason(reply.status),
        reply.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(ms) = reply.retry_after_ms {
        // HTTP Retry-After is whole seconds; round up so clients never
        // retry before the hint.
        head.push_str(&format!("Retry-After: {}\r\n", ms.div_ceil(1000).max(1)));
    }
    if let Some(allow) = reply.allow {
        head.push_str(&format!("Allow: {allow}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(reply.body.as_bytes())?;
    stream.flush()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Framework, FrameworkConfig};
    use loggen::topology::Topology;

    fn server() -> HttpServer {
        server_with(HttpConfig::default())
    }

    fn server_with(cfg: HttpConfig) -> HttpServer {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            ..Default::default()
        })
        .unwrap();
        HttpServer::start_with(Arc::new(QueryEngine::new(Arc::new(fw))), 0, cfg).unwrap()
    }

    /// A keep-alive test client: sends raw requests on one connection and
    /// parses Content-Length-framed responses.
    struct TestClient {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    struct TestResponse {
        status: u16,
        headers: Vec<(String, String)>,
        body: String,
    }

    impl TestResponse {
        fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        }
    }

    impl TestClient {
        fn connect(addr: std::net::SocketAddr) -> TestClient {
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            TestClient { stream, reader }
        }

        fn send(&mut self, raw: &str) {
            self.stream.write_all(raw.as_bytes()).unwrap();
        }

        fn read_response(&mut self) -> TestResponse {
            let mut status_line = String::new();
            self.reader.read_line(&mut status_line).unwrap();
            let status: u16 = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
            let mut headers = Vec::new();
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                self.reader.read_line(&mut line).unwrap();
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some((k, v)) = line.split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        content_length = v.trim().parse().unwrap();
                    }
                    headers.push((k.to_owned(), v.trim().to_owned()));
                }
            }
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body).unwrap();
            TestResponse {
                status,
                headers,
                body: String::from_utf8(body).unwrap(),
            }
        }

        fn request(&mut self, raw: &str) -> TestResponse {
            self.send(raw);
            self.read_response()
        }
    }

    fn get(path: &str) -> String {
        format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n")
    }

    fn post_query(body: &str) -> String {
        format!(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> TestResponse {
        TestClient::connect(addr).request(raw)
    }

    #[test]
    fn health_endpoint_answers() {
        let server = server();
        let resp = request(server.addr(), &get("/v1/healthz"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains(r#""status":"ok""#), "{}", resp.body);
    }

    #[test]
    fn query_endpoint_runs_the_engine() {
        let server = server();
        let resp = request(
            server.addr(),
            &post_query(r#"{"op":"events","type":"MCE","from":0,"to":1000}"#),
        );
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains(r#""status":"ok""#), "{}", resp.body);
        assert!(resp.body.contains(r#""rows":[]"#), "{}", resp.body);
    }

    #[test]
    fn removed_legacy_paths_answer_404_with_a_v1_pointer() {
        let server = server();
        let body = r#"{"op":"events","type":"MCE","from":0,"to":1000}"#;
        let raw = format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = request(server.addr(), &raw);
        assert_eq!(resp.status, 404);
        let env = jsonlite::parse(&resp.body).unwrap();
        assert_eq!(env["error"]["code"].as_str(), Some("NOT_FOUND"));
        assert!(
            env["error"]["message"]
                .as_str()
                .unwrap()
                .contains("POST /v1/query"),
            "{}",
            resp.body
        );
        for (path, replacement) in [
            ("/metrics", "GET /v1/metrics"),
            ("/trace", "GET /v1/trace"),
            ("/slow_queries", "GET /v1/slow_queries"),
            ("/healthz", "GET /v1/healthz"),
            ("/health", "GET /v1/healthz"),
        ] {
            let resp = request(server.addr(), &get(path));
            assert_eq!(resp.status, 404, "{path}");
            let env = jsonlite::parse(&resp.body).unwrap();
            assert_eq!(env["error"]["code"].as_str(), Some("NOT_FOUND"), "{path}");
            assert!(
                env["error"]["message"]
                    .as_str()
                    .unwrap()
                    .contains(replacement),
                "{path}: {}",
                resp.body
            );
        }
    }

    #[test]
    fn metrics_and_trace_endpoints_serve_json() {
        let server = server();
        let raw = post_query(r#"{"op":"events","type":"MCE","from":0,"to":1000}"#);
        request(server.addr(), &raw);

        let resp = request(server.addr(), &get("/v1/metrics"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains(r#""histograms""#), "{}", resp.body);
        assert!(resp.body.contains(r#""v":2"#), "enveloped: {}", resp.body);

        // Other tests in this process may flood the trace ring between our
        // query and the read, so retry the pair a few times.
        let mut found = false;
        for _ in 0..5 {
            request(server.addr(), &raw);
            let resp = request(server.addr(), &get("/v1/trace"));
            assert_eq!(resp.status, 200);
            if resp.body.contains("server.engine.request") {
                found = true;
                break;
            }
        }
        assert!(found, "no server.engine.request span surfaced in /v1/trace");
    }

    #[test]
    fn x_trace_id_header_is_adopted() {
        let server = server();
        let body = r#"{"op":"events","type":"MCE","from":0,"to":1000}"#;
        let raw = format!(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nX-Trace-Id: deadbeef\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = request(server.addr(), &raw);
        assert!(
            resp.body.contains(r#""trace_id":"00000000deadbeef""#),
            "header trace id should come back on the envelope: {}",
            resp.body
        );
    }

    #[test]
    fn slow_queries_healthz_and_topology_endpoints_serve_json() {
        let server = server();
        let resp = request(server.addr(), &get("/v1/slow_queries"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains(r#""threshold_ms":100"#), "{}", resp.body);

        let resp = request(server.addr(), &get("/v1/healthz"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains(r#""status":"ok""#), "{}", resp.body);

        let resp = request(server.addr(), &get("/v1/topology"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains(r#""state":"stable""#), "{}", resp.body);

        let resp = request(server.addr(), &get("/v1/storage"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains(r#""blocks_built""#), "{}", resp.body);
        assert!(resp.body.contains(r#""zone_skips""#), "{}", resp.body);
    }

    #[test]
    fn unknown_paths_get_404_envelopes() {
        let server = server();
        let resp = request(server.addr(), &get("/nope"));
        assert_eq!(resp.status, 404);
        let env = jsonlite::parse(&resp.body).unwrap();
        assert_eq!(env["error"]["code"].as_str(), Some("NOT_FOUND"));
        assert!(env["trace_id"].as_str().is_some());
    }

    #[test]
    fn wrong_method_gets_405_with_allow_header() {
        let server = server();
        let resp = request(server.addr(), &get("/v1/query"));
        assert_eq!(resp.status, 405);
        assert_eq!(resp.header("Allow"), Some("POST"));
        let env = jsonlite::parse(&resp.body).unwrap();
        assert_eq!(env["error"]["code"].as_str(), Some("METHOD_NOT_ALLOWED"));
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = server();
        let mut client = TestClient::connect(server.addr());
        for _ in 0..3 {
            let resp = client.request(&post_query(
                r#"{"op":"events","type":"MCE","from":0,"to":1000}"#,
            ));
            assert_eq!(resp.status, 200);
            assert_eq!(resp.header("Connection"), Some("keep-alive"));
        }
        // `Connection: close` is honored.
        let body = r#"{"op":"events","type":"MCE","from":0,"to":1000}"#;
        let resp = client.request(&format!(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ));
        assert_eq!(resp.header("Connection"), Some("close"));
        let mut probe = [0u8; 1];
        assert_eq!(client.reader.read(&mut probe).unwrap(), 0, "socket closed");
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TestClient::connect(addr);
                    for _ in 0..4 {
                        let resp = client.request(&get("/v1/healthz"));
                        assert_eq!(resp.status, 200);
                        assert!(resp.body.contains("ok"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn no_thread_is_spawned_per_connection() {
        // The worker pool is the concurrency bound: a server with one
        // worker still serves more simultaneous connections than workers,
        // because idle keep-alive connections park in the poller instead
        // of pinning a thread.
        let server = server_with(HttpConfig {
            workers: 1,
            ..HttpConfig::default()
        });
        let addr = server.addr();
        let mut clients: Vec<_> = (0..8).map(|_| TestClient::connect(addr)).collect();
        for c in &mut clients {
            let resp = c.request(&get("/v1/healthz"));
            assert_eq!(resp.status, 200);
        }
        // All eight connections are still alive and serviceable.
        for c in &mut clients {
            let resp = c.request(&get("/v1/healthz"));
            assert_eq!(resp.status, 200);
        }
    }
}
