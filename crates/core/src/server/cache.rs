//! The analytics result cache: complete engine responses memoized behind
//! the typed query layer.
//!
//! Entries store an op's canonical `data` fields — never the envelope —
//! which is re-assembled per response, so any request producing the same
//! canonical form shares one entry. Each
//! entry carries the `(table, partition)` pairs the answer was computed
//! from, the cluster data version of each at snapshot time, and the
//! topology epoch. Validation is lazy: every hit re-checks those tags, so
//! any write path — batch ETL, direct inserts, streaming, CQL — drops
//! stale entries automatically, exactly like the partition-block cache
//! one tier below (see [`rasdb::cache`]).
//!
//! On top of lazy validation, entries whose window overlaps the *open*
//! hour (extends past the streaming ingest watermark) are tagged
//! [`ResultEntry::open`] and dropped eagerly by [`ResultCache::invalidate_open`]
//! whenever a streaming micro-batch commits: closed windows are immutable
//! and cache indefinitely, open windows live only until the next commit.
//!
//! # Concurrency
//!
//! The cache is built for the thread-pool HTTP frontend: many workers
//! probing concurrently. Two decisions keep the lock out of profiles under
//! that load (the single-mutex version was the top contention point the
//! `loadgen` bench exposed):
//!
//! * the key space is split across [`SHARDS`] independently locked LRUs
//!   (shard chosen by a hash of the canonical key), so concurrent probes
//!   for different panels don't serialize, and
//! * entry data is stored behind an [`Arc`], so a hit clones a pointer
//!   inside the lock and the deep copy the envelope assembly needs happens
//!   outside it.
//!
//! Eviction is LRU *per shard* under a per-shard slice of the byte
//! budget; with a canonical-key hash the shards stay balanced and the
//! aggregate behavior matches a global LRU closely enough for budgeting.

use jsonlite::Value as Json;
use rasdb::cache::LruCache;
use rasdb::cluster::Cluster;
use rasdb::stats::CacheStats;
use rasdb::types::Key;
use std::sync::{Arc, Mutex};

/// Default byte budget for the analytics result cache.
pub const DEFAULT_RESULT_CACHE_BYTES: usize = 8 << 20;

/// Number of independently locked LRU shards.
pub const SHARDS: usize = 16;

/// One memoized engine response with its validity tags.
#[derive(Debug, Clone)]
pub struct ResultEntry {
    /// The op's `data` fields, exactly as the uncached op returned them.
    /// Shared so hits clone a pointer, not the payload.
    pub data: Arc<Vec<(String, Json)>>,
    /// `(table, partition)` pairs the answer was computed from.
    pub deps: Vec<(String, Key)>,
    /// [`Cluster::data_version`] of each dep, snapshotted *before* the
    /// compute read any replica.
    pub versions: Vec<u64>,
    /// [`Cluster::topology_epoch`] at snapshot time.
    pub epoch: u64,
    /// Whether the query window extends past the ingest watermark: open
    /// entries are dropped on every streaming commit.
    pub open: bool,
}

/// Approximate footprint of an entry, for byte budgeting: serialized JSON
/// length plus dep tags and a fixed overhead. Exactness does not matter,
/// monotonicity in data size does.
fn footprint(key_len: usize, e: &ResultEntry) -> usize {
    let data: usize = e
        .data
        .iter()
        .map(|(k, v)| k.len() + v.to_string().len())
        .sum();
    let deps: usize = e
        .deps
        .iter()
        .map(|(t, p)| t.len() + p.encode().len() + 8)
        .sum();
    key_len + data + deps + 64
}

/// FNV-1a over the canonical key; cheap, stable, and well-spread for the
/// short `op\x1f...` keys the engine builds.
fn shard_of(key: &[u8]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

/// Per-shard slice of a byte budget. Rounds up so any nonzero budget keeps
/// every shard enabled; zero disables all of them.
fn shard_budget(budget_bytes: usize) -> usize {
    if budget_bytes == 0 {
        0
    } else {
        budget_bytes.div_ceil(SHARDS)
    }
}

/// A byte-budgeted, sharded LRU over complete analytics responses, keyed
/// by the canonical form of the typed
/// [`QueryRequest`](crate::server::QueryRequest).
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<LruCache<ResultEntry>>>,
    stats: CacheStats,
}

impl ResultCache {
    /// Creates a cache bounded by `budget_bytes` (0 disables it).
    pub fn new(budget_bytes: usize) -> ResultCache {
        let per_shard = shard_budget(budget_bytes);
        ResultCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            stats: CacheStats::new("result"),
        }
    }

    /// Replaces the byte budget; shrinking evicts, zero clears and
    /// disables.
    pub fn set_budget(&self, bytes: usize) {
        let per_shard = shard_budget(bytes);
        for shard in &self.shards {
            let evicted = lock(shard).set_budget(per_shard);
            self.stats.record_evictions(evicted);
        }
    }

    /// Hit/miss/evict/invalidate counters (`cache.result.*` in the global
    /// telemetry registry).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Live entries across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| lock(s).is_empty())
    }

    /// Looks up a canonical key, lazily validating the entry against the
    /// cluster's current data versions and topology epoch. A stale entry
    /// is removed and reported as an invalidation + miss. A hit returns a
    /// shared handle to the data — cloning the payload (if the caller
    /// needs to) happens outside the shard lock.
    pub fn lookup(&self, cluster: &Cluster, key: &[u8]) -> Option<Arc<Vec<(String, Json)>>> {
        let mut inner = lock(&self.shards[shard_of(key)]);
        if inner.budget() == 0 {
            return None;
        }
        let Some(entry) = inner.get(key) else {
            self.stats.record_miss();
            return None;
        };
        let valid = entry.epoch == cluster.topology_epoch()
            && entry
                .deps
                .iter()
                .zip(&entry.versions)
                .all(|((t, p), v)| cluster.data_version(t, p) == *v);
        if valid {
            let data = Arc::clone(&entry.data);
            self.stats.record_hit();
            Some(data)
        } else {
            inner.remove(key);
            self.stats.record_invalidations(1);
            self.stats.record_miss();
            None
        }
    }

    /// Stores a computed response under its canonical key.
    pub fn store(&self, key: Vec<u8>, entry: ResultEntry) {
        let mut inner = lock(&self.shards[shard_of(&key)]);
        if inner.budget() == 0 {
            return;
        }
        let bytes = footprint(key.len(), &entry);
        let evicted = inner.insert(key, entry, bytes);
        self.stats.record_evictions(evicted);
    }

    /// Drops every open-window (watermark-tagged) entry. Streaming
    /// ingestion calls this on each micro-batch commit.
    pub fn invalidate_open(&self) {
        let mut removed = 0;
        for shard in &self.shards {
            removed += lock(shard).retain(|_, e| !e.open);
        }
        self.stats.record_invalidations(removed);
    }
}

fn lock(shard: &Mutex<LruCache<ResultEntry>>) -> std::sync::MutexGuard<'_, LruCache<ResultEntry>> {
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasdb::cluster::ClusterConfig;
    use rasdb::query::Consistency;
    use rasdb::schema::{ColumnType, TableSchema};
    use rasdb::types::Value;

    fn cluster() -> Cluster {
        let c = Cluster::new(ClusterConfig {
            nodes: 2,
            replication_factor: 1,
            vnodes: 4,
        });
        c.create_table(
            TableSchema::builder("t")
                .partition_key("pk", ColumnType::BigInt)
                .clustering_key("ck", ColumnType::BigInt)
                .column("v", ColumnType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c
    }

    fn entry(cluster: &Cluster, open: bool) -> ResultEntry {
        let dep = ("t".to_owned(), Key(vec![Value::BigInt(1)]));
        ResultEntry {
            data: Arc::new(vec![("total".to_owned(), Json::from(42i64))]),
            versions: vec![cluster.data_version(&dep.0, &dep.1)],
            deps: vec![dep],
            epoch: cluster.topology_epoch(),
            open,
        }
    }

    fn write(cluster: &Cluster, pk: i64) {
        cluster
            .insert(
                "t",
                vec![
                    ("pk", Value::BigInt(pk)),
                    ("ck", Value::BigInt(0)),
                    ("v", Value::Int(1)),
                ],
                Consistency::One,
            )
            .unwrap();
    }

    #[test]
    fn hit_then_write_invalidates() {
        let c = cluster();
        let cache = ResultCache::new(1 << 20);
        cache.store(b"k".to_vec(), entry(&c, false));
        assert_eq!(
            cache.lookup(&c, b"k").unwrap()[0].1.as_i64(),
            Some(42),
            "valid entry hits"
        );
        assert_eq!(cache.stats().hits(), 1);
        // A write to the dep partition makes the tag stale.
        write(&c, 1);
        assert!(cache.lookup(&c, b"k").is_none());
        assert_eq!(cache.stats().invalidations(), 1);
        assert_eq!(cache.stats().misses(), 1);
        // A write elsewhere leaves a fresh entry valid.
        cache.store(b"k".to_vec(), entry(&c, false));
        write(&c, 2);
        assert!(cache.lookup(&c, b"k").is_some());
    }

    #[test]
    fn invalidate_open_drops_only_watermark_tagged_entries() {
        let c = cluster();
        let cache = ResultCache::new(1 << 20);
        cache.store(b"closed".to_vec(), entry(&c, false));
        cache.store(b"open".to_vec(), entry(&c, true));
        cache.invalidate_open();
        assert_eq!(cache.stats().invalidations(), 1);
        assert!(cache.lookup(&c, b"open").is_none());
        assert!(cache.lookup(&c, b"closed").is_some());
    }

    #[test]
    fn zero_budget_disables_without_stats_noise() {
        let c = cluster();
        let cache = ResultCache::new(0);
        cache.store(b"k".to_vec(), entry(&c, false));
        assert!(cache.lookup(&c, b"k").is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits() + cache.stats().misses(), 0);
    }

    #[test]
    fn entries_spread_across_shards_and_len_sums_them() {
        let c = cluster();
        let cache = ResultCache::new(1 << 20);
        let mut shards_seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            let key = format!("heatmap\x1fMCE\x1f{i}").into_bytes();
            shards_seen.insert(shard_of(&key));
            cache.store(key, entry(&c, false));
        }
        assert_eq!(cache.len(), 64);
        assert!(
            shards_seen.len() > SHARDS / 2,
            "canonical keys should spread over most shards, hit {shards_seen:?}"
        );
        // Concurrent probes from many threads agree with the stored data.
        let cache = Arc::new(cache);
        let c = Arc::new(c);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..64 {
                        let key = format!("heatmap\x1fMCE\x1f{}", (i + t * 7) % 64).into_bytes();
                        let data = cache.lookup(&c, &key).expect("entry present");
                        assert_eq!(data[0].1.as_i64(), Some(42));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
