//! Always-on slow-query flight recorder.
//!
//! Every completed request's coarse profile (total latency + per-phase
//! breakdown, see [`crate::server::engine`]) is offered to the recorder;
//! those at or above the configured latency threshold are kept in a
//! bounded ring. Unlike opt-in `"profile": true` requests, nothing has to
//! be decided *before* the slow request happens — the recorder is how a
//! p99 spike seen on `/metrics` (via its exemplar trace id) resolves to a
//! concrete profile after the fact.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Completed profiles retained; older ones fall off.
pub const FLIGHT_RECORDER_CAPACITY: usize = 128;

/// Default capture threshold in milliseconds.
pub const DEFAULT_SLOW_THRESHOLD_MS: u64 = 100;

/// One recorded request profile.
#[derive(Clone, Debug)]
pub struct RecordedQuery {
    /// The request's trace id (raw form; render with [`telemetry::trace_hex`]).
    pub trace_id: u64,
    /// The op, or `""` when the request failed before parsing one.
    pub op: String,
    /// `"ok"` or `"error"`.
    pub status: &'static str,
    /// End-to-end latency in microseconds.
    pub total_us: f64,
    /// Per-phase breakdown in microseconds, in pipeline order.
    pub phases: Vec<(&'static str, f64)>,
    /// Whether the request also asked for a detailed `"profile": true`.
    pub profiled: bool,
}

/// Bounded ring of slow-request profiles.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<RecordedQuery>>,
    threshold_us: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// An empty recorder at the default threshold.
    pub fn new() -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(FLIGHT_RECORDER_CAPACITY)),
            threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_MS * 1_000),
        }
    }

    /// The capture threshold in milliseconds.
    pub fn threshold_ms(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed) / 1_000
    }

    /// Replaces the capture threshold (0 records every request).
    pub fn set_threshold_ms(&self, ms: u64) {
        self.threshold_us
            .store(ms.saturating_mul(1_000), Ordering::Relaxed);
    }

    /// Offers one completed request; kept only when it is at or above the
    /// threshold. The fast path (below threshold) is one atomic load.
    pub fn observe(&self, rec: RecordedQuery) {
        if rec.total_us < self.threshold_us.load(Ordering::Relaxed) as f64 {
            return;
        }
        telemetry::global()
            .counter("server.recorder.captured")
            .incr(1);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= FLIGHT_RECORDER_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Recorded profiles, newest first.
    pub fn snapshot(&self) -> Vec<RecordedQuery> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .rev()
            .cloned()
            .collect()
    }

    /// Recorded profiles currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64, total_us: f64) -> RecordedQuery {
        RecordedQuery {
            trace_id,
            op: "events".to_owned(),
            status: "ok",
            total_us,
            phases: vec![("parse", 1.0), ("analyze", total_us - 1.0)],
            profiled: false,
        }
    }

    #[test]
    fn only_slow_requests_are_kept() {
        let r = FlightRecorder::new();
        r.observe(rec(1, 50_000.0)); // 50 ms: under the 100 ms default
        assert!(r.is_empty());
        r.observe(rec(2, 250_000.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot()[0].trace_id, 2);
    }

    #[test]
    fn threshold_zero_records_everything_and_ring_is_bounded() {
        let r = FlightRecorder::new();
        r.set_threshold_ms(0);
        assert_eq!(r.threshold_ms(), 0);
        for i in 0..(FLIGHT_RECORDER_CAPACITY as u64 + 10) {
            r.observe(rec(i, 1.0));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), FLIGHT_RECORDER_CAPACITY);
        // Newest first; the oldest ten fell off.
        assert_eq!(snap[0].trace_id, FLIGHT_RECORDER_CAPACITY as u64 + 9);
        assert_eq!(snap.last().unwrap().trace_id, 10);
    }
}
