//! Per-op latency objectives with rolling good/total windows and burn
//! rates — the data behind the `health` op and `GET /healthz`.
//!
//! Every completed request is classified *good* (answered `ok` within the
//! op's latency target) or *bad* and counted into a rolling window of
//! [`WINDOW_SECS`] one-second buckets. Health reports the **burn rate**
//! per op: the observed error ratio divided by the error budget the
//! objective allows,
//!
//! ```text
//! burn = (1 - good/total) / (1 - objective)
//! ```
//!
//! so `burn < 1` means the op is inside budget (`"ok"`), `burn >= 1`
//! means the budget is being consumed faster than allowed (`"degraded"`),
//! and `burn >= 10` means it is burning an order of magnitude too fast
//! (`"failing"`). The overall service status is the worst per-op status.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Length of the rolling window, in one-second buckets.
pub const WINDOW_SECS: u64 = 60;

/// Burn rate at which an op is reported `"degraded"`.
pub const DEGRADED_BURN: f64 = 1.0;

/// Burn rate at which an op is reported `"failing"`.
pub const FAILING_BURN: f64 = 10.0;

/// One op's objective: answer `ok` within `latency_ms`, for at least
/// `objective` of requests over the rolling window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloPolicy {
    /// A request slower than this is *bad* even when it answered `ok`.
    pub latency_ms: u64,
    /// Target good ratio in `[0, 1)`; the error budget is `1 - objective`.
    pub objective: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            latency_ms: 250,
            objective: 0.99,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bucket {
    epoch_s: u64,
    good: u64,
    total: u64,
}

struct OpSlo {
    policy: SloPolicy,
    buckets: [Bucket; WINDOW_SECS as usize],
}

impl OpSlo {
    fn new(policy: SloPolicy) -> Self {
        OpSlo {
            policy,
            buckets: [Bucket::default(); WINDOW_SECS as usize],
        }
    }

    fn record(&mut self, now_s: u64, good: bool) {
        let b = &mut self.buckets[(now_s % WINDOW_SECS) as usize];
        if b.epoch_s != now_s {
            *b = Bucket {
                epoch_s: now_s,
                good: 0,
                total: 0,
            };
        }
        b.total += 1;
        if good {
            b.good += 1;
        }
    }

    /// `(good, total)` over the still-live buckets of the window.
    fn window(&self, now_s: u64) -> (u64, u64) {
        self.buckets
            .iter()
            .filter(|b| now_s - b.epoch_s < WINDOW_SECS)
            .fold((0, 0), |(g, t), b| (g + b.good, t + b.total))
    }
}

/// One op's health row, as reported by [`SloRegistry::health`].
#[derive(Clone, Debug)]
pub struct OpHealth {
    /// The op name.
    pub op: String,
    /// The objective it is judged against.
    pub policy: SloPolicy,
    /// Good requests in the rolling window.
    pub good: u64,
    /// Total requests in the rolling window.
    pub total: u64,
    /// Error-budget burn rate (0 when the window is empty).
    pub burn_rate: f64,
    /// `"ok"`, `"degraded"`, or `"failing"`.
    pub status: &'static str,
}

/// The per-op SLO accounting behind the `health` op.
pub struct SloRegistry {
    start: Instant,
    ops: Mutex<BTreeMap<String, OpSlo>>,
}

impl Default for SloRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SloRegistry {
    /// An empty registry; ops appear on their first recorded request with
    /// the default policy unless [`SloRegistry::set_policy`] ran first.
    pub fn new() -> Self {
        SloRegistry {
            start: Instant::now(),
            ops: Mutex::new(BTreeMap::new()),
        }
    }

    fn now_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Installs (or replaces) an op's objective. Existing window counts
    /// are kept: the policy only changes how they are judged.
    pub fn set_policy(&self, op: &str, policy: SloPolicy) {
        let mut ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        ops.entry(op.to_owned())
            .or_insert_with(|| OpSlo::new(policy))
            .policy = policy;
    }

    /// Counts one completed request for `op`.
    pub fn record(&self, op: &str, ok: bool, total_us: u64) {
        let now_s = self.now_s();
        let mut ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        let slo = ops
            .entry(op.to_owned())
            .or_insert_with(|| OpSlo::new(SloPolicy::default()));
        let good = ok && total_us <= slo.policy.latency_ms.saturating_mul(1_000);
        slo.record(now_s, good);
    }

    /// Every op's health row (ops sorted by name) plus the overall status:
    /// the worst per-op status, `"ok"` when nothing was recorded.
    pub fn health(&self) -> (&'static str, Vec<OpHealth>) {
        let now_s = self.now_s();
        let ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        let mut overall = "ok";
        let rows = ops
            .iter()
            .map(|(op, slo)| {
                let (good, total) = slo.window(now_s);
                let burn_rate = burn_rate(good, total, slo.policy.objective);
                let status = status_for(burn_rate);
                if rank(status) > rank(overall) {
                    overall = status;
                }
                OpHealth {
                    op: op.clone(),
                    policy: slo.policy,
                    good,
                    total,
                    burn_rate,
                    status,
                }
            })
            .collect();
        (overall, rows)
    }

    /// The overall status alone (for the `/healthz` status code).
    pub fn overall(&self) -> &'static str {
        self.health().0
    }
}

/// Error-budget burn: observed error ratio over allowed error ratio. An
/// empty window burns nothing; an objective of 1.0 is clamped so a fully
/// good window still reports 0 instead of dividing by zero.
fn burn_rate(good: u64, total: u64, objective: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let error_ratio = 1.0 - good as f64 / total as f64;
    if error_ratio == 0.0 {
        return 0.0;
    }
    error_ratio / (1.0 - objective.clamp(0.0, 0.9999))
}

fn status_for(burn: f64) -> &'static str {
    if burn >= FAILING_BURN {
        "failing"
    } else if burn >= DEGRADED_BURN {
        "degraded"
    } else {
        "ok"
    }
}

fn rank(status: &str) -> u8 {
    match status {
        "failing" => 2,
        "degraded" => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_good_burns_nothing() {
        let slo = SloRegistry::new();
        for _ in 0..10 {
            slo.record("events", true, 1_000);
        }
        let (overall, rows) = slo.health();
        assert_eq!(overall, "ok");
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].good, rows[0].total), (10, 10));
        assert_eq!(rows[0].burn_rate, 0.0);
        assert_eq!(rows[0].status, "ok");
    }

    #[test]
    fn slow_requests_are_bad_even_when_ok() {
        let slo = SloRegistry::new();
        slo.set_policy(
            "heatmap",
            SloPolicy {
                latency_ms: 1,
                objective: 0.99,
            },
        );
        slo.record("heatmap", true, 5_000_000); // 5 s: over target
        let (overall, rows) = slo.health();
        assert_eq!(rows[0].good, 0);
        // One fully-bad request burns 1.0/0.01 = 100x the budget.
        assert!(rows[0].burn_rate > FAILING_BURN);
        assert_eq!(rows[0].status, "failing");
        assert_eq!(overall, "failing");
    }

    #[test]
    fn loose_objective_degrades_instead_of_failing() {
        let slo = SloRegistry::new();
        slo.set_policy(
            "events",
            SloPolicy {
                latency_ms: 0,
                objective: 0.5,
            },
        );
        slo.record("events", true, 1_000); // always over a 0ms target
        let (overall, rows) = slo.health();
        assert!((rows[0].burn_rate - 2.0).abs() < 1e-9);
        assert_eq!(rows[0].status, "degraded");
        assert_eq!(overall, "degraded");
    }

    #[test]
    fn errors_count_against_the_budget() {
        let slo = SloRegistry::new();
        for _ in 0..99 {
            slo.record("cql", true, 1_000);
        }
        slo.record("cql", false, 1_000);
        let (_, rows) = slo.health();
        assert_eq!((rows[0].good, rows[0].total), (99, 100));
        // 1% errors against a 1% budget: burning exactly at the line.
        assert!((rows[0].burn_rate - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].status, "degraded");
    }

    #[test]
    fn worst_op_wins_overall() {
        let slo = SloRegistry::new();
        slo.record("events", true, 1_000);
        slo.set_policy(
            "heatmap",
            SloPolicy {
                latency_ms: 0,
                objective: 0.5,
            },
        );
        slo.record("heatmap", true, 1_000);
        let (overall, rows) = slo.health();
        assert_eq!(overall, "degraded");
        assert_eq!(rows.len(), 2);
        assert_eq!(slo.overall(), "degraded");
    }
}
