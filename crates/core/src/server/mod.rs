//! The analytics server: JSON query protocol + a minimal HTTP endpoint.
//!
//! "Every interaction with the frontend is translated into a query in
//! JavaScript Object Notation (JSON) format and delivered to the analytic
//! server"; "query results are sent in JSON object format to avoid data
//! format conversion at the frontend."

pub mod cache;
pub mod engine;
pub mod http;
pub mod recorder;
pub mod request;
pub mod slo;
pub mod telemetry_export;
pub mod views;

pub use engine::{EngineResponse, QueryEngine};
pub use http::{HttpConfig, HttpServer};
pub use request::{ApiError, Cursor, ErrorCode, Page, QueryRequest};
