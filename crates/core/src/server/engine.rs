//! The query engine: JSON requests in, JSON responses out.
//!
//! "The user queries are received by the web server, translated by the
//! query engine, and either forwarded to the backend database, or the big
//! data processing unit depending on the type of a user query."

use crate::analytics::distribution::{distribution_of, GroupBy};
use crate::analytics::{correlation, heatmap, histogram, synopsis, text, transfer_entropy};
use crate::context::Context;
use crate::framework::Framework;
use crate::model::nodeinfo;
use jsonlite::{json_array, json_object, Value as Json};
use rasdb::cluster::ExecResult;
use std::sync::Arc;

/// The analytics server's query dispatcher.
pub struct QueryEngine {
    fw: Arc<Framework>,
}

impl QueryEngine {
    /// Wraps a framework.
    pub fn new(fw: Arc<Framework>) -> QueryEngine {
        QueryEngine { fw }
    }

    /// The wrapped framework.
    pub fn framework(&self) -> &Arc<Framework> {
        &self.fw
    }

    /// Handles one JSON request string; always returns a JSON response
    /// with a `"status"` field (`ok` / `error`).
    pub fn handle(&self, request: &str) -> String {
        let mut span = telemetry::span!("server.request");
        let response = match jsonlite::parse(request) {
            Err(e) => err(format!("bad JSON: {e}")),
            Ok(req) => {
                if let Some(op) = req["op"].as_str() {
                    span.tag("op", op);
                }
                self.dispatch(&req).unwrap_or_else(err)
            }
        };
        response.to_string()
    }

    fn dispatch(&self, req: &Json) -> Result<Json, String> {
        let op = req["op"]
            .as_str()
            .ok_or_else(|| "missing 'op' field".to_owned())?;
        match op {
            "events" => self.op_events(req),
            "heatmap" => self.op_heatmap(req),
            "distribution" => self.op_distribution(req),
            "histogram" => self.op_histogram(req),
            "transfer_entropy" => self.op_transfer_entropy(req),
            "cross_correlation" => self.op_cross_correlation(req),
            "wordcount" => self.op_wordcount(req),
            "apps" => self.op_apps(req),
            "nodeinfo" => self.op_nodeinfo(req),
            "synopsis" => self.op_synopsis(req),
            "rules" => self.op_rules(req),
            "profile" => self.op_profile(req),
            "predict" => self.op_predict(req),
            "render" => self.op_render(req),
            "cql" => self.op_cql(req),
            "metrics" => self.op_metrics(req),
            "trace" => Ok(ok([(
                "spans",
                crate::server::telemetry_export::trace_json(),
            )])),
            other => Err(format!("unknown op '{other}'")),
        }
    }

    fn window(&self, req: &Json) -> Result<(i64, i64), String> {
        let from = req["from"].as_i64().ok_or("missing 'from'")?;
        let to = req["to"].as_i64().ok_or("missing 'to'")?;
        if to < from {
            return Err("'to' before 'from'".to_owned());
        }
        Ok((from, to))
    }

    fn context(&self, req: &Json) -> Result<Context, String> {
        let (from, to) = self.window(req)?;
        let mut ctx = Context::window(from, to);
        if let Some(t) = req["type"].as_str() {
            ctx = ctx.with_type(t);
        }
        if let Some(s) = req["source"].as_str() {
            ctx = ctx.with_source(s);
        }
        if let Some(c) = req["cabinet"].as_i64() {
            ctx = ctx.with_cabinet(c as usize);
        }
        if let Some(u) = req["user"].as_str() {
            ctx = ctx.with_user(u);
        }
        if let Some(a) = req["app"].as_str() {
            ctx = ctx.with_app(a);
        }
        Ok(ctx)
    }

    fn op_events(&self, req: &Json) -> Result<Json, String> {
        let ctx = self.context(req)?;
        let events = ctx.fetch_events(&self.fw).map_err(|e| e.to_string())?;
        let rows = json_array(events.iter().map(|e| {
            json_object([
                ("ts", Json::from(e.ts_ms)),
                ("type", Json::from(e.event_type.as_str())),
                ("source", Json::from(e.source.as_str())),
                ("amount", Json::from(e.amount)),
                ("raw", Json::from(e.raw.as_str())),
            ])
        }));
        Ok(ok([("rows", rows)]))
    }

    fn op_heatmap(&self, req: &Json) -> Result<Json, String> {
        let (from, to) = self.window(req)?;
        let t = req["type"].as_str().ok_or("missing 'type'")?;
        let hm = heatmap::cabinet_heatmap(&self.fw, t, from, to).map_err(|e| e.to_string())?;
        Ok(ok([
            ("cabinets", json_array(hm.cabinets.clone())),
            ("total", Json::from(hm.total)),
            ("hottest", Json::from(hm.hottest)),
            ("mean", Json::from(hm.mean)),
            ("stddev", Json::from(hm.stddev)),
            (
                "outliers",
                json_array(hm.outliers(2.0).into_iter().map(Json::from)),
            ),
        ]))
    }

    fn op_distribution(&self, req: &Json) -> Result<Json, String> {
        let ctx = self.context(req)?;
        let by = match req["by"].as_str().unwrap_or("cabinet") {
            "cabinet" => GroupBy::Cabinet,
            "blade" => GroupBy::Blade,
            "node" => GroupBy::Node,
            "application" | "app" => GroupBy::Application,
            other => return Err(format!("unknown grouping '{other}'")),
        };
        let events = ctx.fetch_events(&self.fw).map_err(|e| e.to_string())?;
        let d = distribution_of(&self.fw, &events, by).map_err(|e| e.to_string())?;
        Ok(ok([
            (
                "entries",
                json_array(
                    d.entries
                        .iter()
                        .map(|(l, c)| json_array([Json::from(l.as_str()), Json::from(*c)])),
                ),
            ),
            ("unattributed", Json::from(d.unattributed)),
        ]))
    }

    fn op_histogram(&self, req: &Json) -> Result<Json, String> {
        let (from, to) = self.window(req)?;
        let t = req["type"].as_str().ok_or("missing 'type'")?;
        let bin = req["bin_ms"].as_i64().unwrap_or(3_600_000);
        if bin <= 0 {
            return Err("'bin_ms' must be positive".to_owned());
        }
        let h =
            histogram::event_histogram(&self.fw, t, from, to, bin).map_err(|e| e.to_string())?;
        Ok(ok([
            ("from", Json::from(h.from_ms)),
            ("bin_ms", Json::from(h.bin_ms)),
            ("bins", json_array(h.bins.clone())),
        ]))
    }

    fn op_transfer_entropy(&self, req: &Json) -> Result<Json, String> {
        let (from, to) = self.window(req)?;
        let x = req["x"].as_str().ok_or("missing 'x'")?;
        let y = req["y"].as_str().ok_or("missing 'y'")?;
        let bin = req["bin_ms"].as_i64().unwrap_or(60_000).max(1);
        let max_lag = req["max_lag"].as_i64().unwrap_or(10).max(1) as usize;
        let sweep = transfer_entropy::te_lag_sweep(&self.fw, x, y, from, to, bin, max_lag)
            .map_err(|e| e.to_string())?;
        Ok(ok([(
            "lags",
            json_array(sweep.iter().map(|(lag, te)| {
                json_object([
                    ("lag", Json::from(*lag)),
                    ("x_to_y", Json::from(te.x_to_y)),
                    ("y_to_x", Json::from(te.y_to_x)),
                ])
            })),
        )]))
    }

    fn op_cross_correlation(&self, req: &Json) -> Result<Json, String> {
        let (from, to) = self.window(req)?;
        let a = req["x"].as_str().ok_or("missing 'x'")?;
        let b = req["y"].as_str().ok_or("missing 'y'")?;
        let bin = req["bin_ms"].as_i64().unwrap_or(60_000).max(1);
        let max_lag = req["max_lag"].as_i64().unwrap_or(10).max(0) as usize;
        let xc = correlation::event_cross_correlation(&self.fw, a, b, from, to, bin, max_lag)
            .map_err(|e| e.to_string())?;
        Ok(ok([(
            "correlations",
            json_array(
                xc.iter()
                    .map(|(lag, r)| json_array([Json::from(*lag), Json::from(*r)])),
            ),
        )]))
    }

    fn op_wordcount(&self, req: &Json) -> Result<Json, String> {
        let (from, to) = self.window(req)?;
        let t = req["type"].as_str().unwrap_or("LUSTRE_ERR");
        let k = req["top"].as_i64().unwrap_or(20).max(1) as usize;
        let counts = text::word_count_events(&self.fw, t, from, to).map_err(|e| e.to_string())?;
        let top = text::top_k(&counts, k);
        Ok(ok([(
            "terms",
            json_array(
                top.iter()
                    .map(|(w, c)| json_array([Json::from(w.as_str()), Json::from(*c)])),
            ),
        )]))
    }

    fn op_apps(&self, req: &Json) -> Result<Json, String> {
        let runs = if let Some(user) = req["user"].as_str() {
            self.fw.apps_by_user(user)
        } else if let Some(app) = req["app"].as_str() {
            self.fw.apps_by_name(app)
        } else if let Some(cab) = req["cabinet"].as_i64() {
            self.fw.apps_by_location(cab)
        } else {
            let (from, to) = self.window(req)?;
            self.fw.apps_by_time(from, to)
        }
        .map_err(|e| e.to_string())?;
        Ok(ok([(
            "runs",
            json_array(runs.iter().map(|r| {
                json_object([
                    ("apid", Json::from(r.apid)),
                    ("user", Json::from(r.user.as_str())),
                    ("app", Json::from(r.app.as_str())),
                    ("start", Json::from(r.start_ms)),
                    ("end", Json::from(r.end_ms)),
                    ("node_first", Json::from(r.node_first)),
                    ("node_last", Json::from(r.node_last)),
                    ("exit_code", Json::from(r.exit_code)),
                ])
            })),
        )]))
    }

    fn op_nodeinfo(&self, req: &Json) -> Result<Json, String> {
        let cname = req["cname"].as_str().ok_or("missing 'cname'")?;
        match nodeinfo::lookup(self.fw.cluster(), cname).map_err(|e| e.to_string())? {
            None => Err(format!("unknown node '{cname}'")),
            Some(info) => Ok(ok([
                ("cname", Json::from(info.cname.as_str())),
                ("index", Json::from(info.index)),
                ("row", Json::from(info.row)),
                ("col", Json::from(info.col)),
                ("cage", Json::from(info.cage)),
                ("slot", Json::from(info.slot)),
                ("node", Json::from(info.node)),
                ("gemini", Json::from(info.gemini)),
            ])),
        }
    }

    fn op_synopsis(&self, req: &Json) -> Result<Json, String> {
        let day = req["day"].as_i64().ok_or("missing 'day'")?;
        let rows = synopsis::read_synopsis(&self.fw, day).map_err(|e| e.to_string())?;
        Ok(ok([(
            "rows",
            json_array(rows.iter().map(|r| {
                json_object([
                    ("hour", Json::from(r.hour)),
                    ("type", Json::from(r.event_type.as_str())),
                    ("events", Json::from(r.events)),
                    ("nodes", Json::from(r.nodes)),
                ])
            })),
        )]))
    }

    fn op_rules(&self, req: &Json) -> Result<Json, String> {
        use crate::analytics::composite::{mine_from_store, Scope};
        let (from, to) = self.window(req)?;
        let window_ms = req["window_ms"].as_i64().unwrap_or(60_000).max(1);
        let min_support = req["min_support"].as_i64().unwrap_or(3).max(1) as u64;
        let scope = match req["scope"].as_str().unwrap_or("node") {
            "node" => Scope::Node,
            "cabinet" => Scope::Cabinet,
            "system" => Scope::System,
            other => return Err(format!("unknown scope '{other}'")),
        };
        let rules = mine_from_store(&self.fw, from, to, window_ms, scope, min_support)
            .map_err(|e| e.to_string())?;
        Ok(ok([(
            "rules",
            json_array(rules.iter().take(50).map(|r| {
                json_object([
                    ("antecedent", Json::from(r.antecedent.as_str())),
                    ("consequent", Json::from(r.consequent.as_str())),
                    ("support", Json::from(r.support)),
                    ("confidence", Json::from(r.confidence)),
                    ("lift", Json::from(r.lift)),
                ])
            })),
        )]))
    }

    fn op_profile(&self, req: &Json) -> Result<Json, String> {
        use crate::analytics::profiles::application_profile;
        let app = req["app"].as_str().ok_or("missing 'app'")?;
        let p = application_profile(&self.fw, app).map_err(|e| e.to_string())?;
        Ok(ok([
            ("app", Json::from(p.app.as_str())),
            ("runs", Json::from(p.runs)),
            ("node_hours", Json::from(p.node_hours)),
            (
                "rates",
                json_object(p.rates.iter().map(|(t, r)| (t.clone(), Json::from(*r)))),
            ),
        ]))
    }

    fn op_predict(&self, req: &Json) -> Result<Json, String> {
        use crate::analytics::prediction::{train_and_evaluate, PredictorConfig};
        let (from, to) = self.window(req)?;
        let target = req["target"].as_str().ok_or("missing 'target'")?;
        let cfg = PredictorConfig {
            bin_ms: req["bin_ms"].as_i64().unwrap_or(60_000).max(1),
            lead_bins: req["lead_bins"].as_i64().unwrap_or(5).max(1) as usize,
            horizon_bins: req["horizon_bins"].as_i64().unwrap_or(5).max(1) as usize,
        };
        let (predictor, metrics) =
            train_and_evaluate(&self.fw, target, from, to, cfg, 0.7).map_err(|e| e.to_string())?;
        Ok(ok([
            ("target", Json::from(target)),
            ("precision", Json::from(metrics.precision)),
            ("recall", Json::from(metrics.recall)),
            ("alarms", Json::from(metrics.alarms)),
            ("failures", Json::from(metrics.failures)),
            (
                "weights",
                json_object(
                    predictor
                        .weights
                        .iter()
                        .map(|(t, w)| (t.clone(), Json::from(*w))),
                ),
            ),
        ]))
    }

    /// Server-side rendering: the named view as an SVG document.
    fn op_render(&self, req: &Json) -> Result<Json, String> {
        use crate::server::views;
        let (from, to) = self.window(req)?;
        let view = req["view"].as_str().ok_or("missing 'view'")?;
        let etype = req["type"].as_str().unwrap_or("LUSTRE_ERR");
        let svg = match view {
            "heatmap" => views::heatmap_svg(&self.fw, etype, from, to),
            "node_heatmap" => views::node_heatmap_svg(&self.fw, etype, from, to),
            "histogram" => views::histogram_svg(
                &self.fw,
                etype,
                from,
                to,
                req["bin_ms"].as_i64().unwrap_or(3_600_000).max(1),
            ),
            "te" => views::te_plot_svg(
                &self.fw,
                req["x"].as_str().ok_or("missing 'x'")?,
                req["y"].as_str().ok_or("missing 'y'")?,
                from,
                to,
                req["bin_ms"].as_i64().unwrap_or(60_000).max(1),
                req["max_lag"].as_i64().unwrap_or(10).max(1) as usize,
            ),
            "bubbles" => views::word_bubbles_svg(
                &self.fw,
                etype,
                from,
                to,
                req["top"].as_i64().unwrap_or(15).max(1) as usize,
            ),
            other => return Err(format!("unknown view '{other}'")),
        }
        .map_err(|e| e.to_string())?;
        Ok(ok([("view", Json::from(view)), ("svg", Json::from(svg))]))
    }

    /// The global telemetry registry: counters, gauges, and latency
    /// histograms. Pass `"reset": true` to zero everything after reading.
    fn op_metrics(&self, req: &Json) -> Result<Json, String> {
        let snap = crate::server::telemetry_export::metrics_json();
        let mut resp = ok([("enabled", Json::from(telemetry::enabled()))]);
        resp.insert("counters", snap["counters"].clone());
        resp.insert("gauges", snap["gauges"].clone());
        resp.insert("histograms", snap["histograms"].clone());
        if req["reset"].as_bool() == Some(true) {
            telemetry::global().reset();
        }
        Ok(resp)
    }

    /// Simple queries go "directly handled by the query engine" — raw CQL
    /// pass-through to the backend.
    fn op_cql(&self, req: &Json) -> Result<Json, String> {
        let q = req["q"].as_str().ok_or("missing 'q'")?;
        match self
            .fw
            .cluster()
            .execute(q, self.fw.consistency())
            .map_err(|e| e.to_string())?
        {
            ExecResult::Applied => Ok(ok([("applied", Json::from(true))])),
            ExecResult::Rows(rows) => Ok(ok([(
                "rows",
                json_array(rows.iter().map(|r| {
                    let mut obj = json_object(
                        r.cells
                            .iter()
                            .map(|(k, v)| (k.clone(), db_value_to_json(v))),
                    );
                    obj.insert(
                        "_key",
                        json_array(r.clustering.0.iter().map(db_value_to_json)),
                    );
                    obj
                })),
            )])),
        }
    }
}

fn db_value_to_json(v: &rasdb::types::Value) -> Json {
    use rasdb::types::Value as V;
    match v {
        V::Text(s) => Json::from(s.as_str()),
        V::Int(n) => Json::from(*n),
        V::BigInt(n) | V::Timestamp(n) => Json::from(*n),
        V::Double(f) => Json::from(*f),
        V::Bool(b) => Json::from(*b),
        V::Blob(b) => Json::from(format!(
            "0x{}",
            b.iter().map(|x| format!("{x:02x}")).collect::<String>()
        )),
        V::List(items) => json_array(items.iter().map(db_value_to_json)),
        V::Map(m) => json_object(m.iter().map(|(k, v)| (k.clone(), db_value_to_json(v)))),
    }
}

fn ok<const N: usize>(fields: [(&str, Json); N]) -> Json {
    let mut obj = json_object(fields);
    obj.insert("status", "ok");
    obj
}

fn err(message: impl Into<String>) -> Json {
    json_object([
        ("status", Json::from("error")),
        ("message", Json::from(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::event::EventRecord;
    use loggen::topology::Topology;

    fn engine() -> QueryEngine {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap();
        for i in 0..10i64 {
            fw.insert_event(&EventRecord {
                ts_ms: i * 60_000,
                event_type: "MCE".into(),
                source: format!("c0-0c0s{}n0", i % 4),
                amount: 1,
                raw: format!("Machine Check Exception: bank {i}"),
            })
            .unwrap();
        }
        QueryEngine::new(Arc::new(fw))
    }

    fn call(e: &QueryEngine, req: &str) -> Json {
        let resp = e.handle(req);
        jsonlite::parse(&resp).expect("valid response JSON")
    }

    #[test]
    fn events_roundtrip_through_json() {
        let e = engine();
        let resp = call(&e, r#"{"op":"events","type":"MCE","from":0,"to":3600000}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["rows"].as_array().unwrap().len(), 10);
        assert_eq!(resp["rows"][0]["type"].as_str(), Some("MCE"));
        assert!(resp["rows"][0]["raw"].as_str().unwrap().contains("bank"));
    }

    #[test]
    fn heatmap_and_histogram_ops() {
        let e = engine();
        let resp = call(&e, r#"{"op":"heatmap","type":"MCE","from":0,"to":3600000}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["cabinets"].as_array().unwrap().len(), 4);
        assert_eq!(resp["total"].as_f64(), Some(10.0));

        let resp = call(
            &e,
            r#"{"op":"histogram","type":"MCE","from":0,"to":3600000,"bin_ms":600000}"#,
        );
        assert_eq!(resp["bins"].as_array().unwrap().len(), 6);
    }

    #[test]
    fn distribution_op_groups() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"distribution","type":"MCE","from":0,"to":3600000,"by":"node"}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["entries"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn te_and_correlation_ops_return_curves() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"transfer_entropy","x":"MCE","y":"GPU_DBE","from":0,"to":3600000,"bin_ms":60000,"max_lag":5}"#,
        );
        assert_eq!(resp["lags"].as_array().unwrap().len(), 5);
        let resp = call(
            &e,
            r#"{"op":"cross_correlation","x":"MCE","y":"GPU_DBE","from":0,"to":3600000,"bin_ms":60000,"max_lag":3}"#,
        );
        assert_eq!(resp["correlations"].as_array().unwrap().len(), 7);
    }

    #[test]
    fn wordcount_op_counts_terms() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"wordcount","type":"MCE","from":0,"to":3600000,"top":5}"#,
        );
        let terms = resp["terms"].as_array().unwrap();
        assert!(!terms.is_empty());
        // "Machine" appears in every raw message.
        assert!(terms.iter().any(|t| t[0].as_str() == Some("Machine")));
    }

    #[test]
    fn nodeinfo_and_cql_ops() {
        let e = engine();
        let resp = call(&e, r#"{"op":"nodeinfo","cname":"c1-1c2s7n3"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["row"].as_i64(), Some(1));

        let resp = call(
            &e,
            r#"{"op":"cql","q":"SELECT * FROM event_by_time WHERE hour = 0 AND type = 'MCE' LIMIT 3"}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["rows"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn rules_profile_predict_ops() {
        let e = engine();
        // Seed a causal pair so `rules` finds something.
        for i in 0..20i64 {
            for (t, at) in [
                ("NET_LINK", i * 120_000),
                ("LUSTRE_ERR", i * 120_000 + 5_000),
            ] {
                e.framework()
                    .insert_event(&EventRecord {
                        ts_ms: at,
                        event_type: t.into(),
                        source: "c0-0c0s0n0".into(),
                        amount: 1,
                        raw: String::new(),
                    })
                    .unwrap();
            }
        }
        let resp = call(
            &e,
            r#"{"op":"rules","from":0,"to":3600000,"window_ms":10000,"scope":"node","min_support":5}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        let rules = resp["rules"].as_array().unwrap();
        assert!(rules
            .iter()
            .any(|r| r["antecedent"].as_str() == Some("NET_LINK")
                && r["consequent"].as_str() == Some("LUSTRE_ERR")));

        let resp = call(&e, r#"{"op":"profile","app":"VASP"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["runs"].as_i64(), Some(0));

        let resp = call(
            &e,
            r#"{"op":"predict","target":"LUSTRE_ERR","from":0,"to":3600000,"bin_ms":60000}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert!(resp["weights"].as_object().is_some());
    }

    #[test]
    fn render_op_returns_svg() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"render","view":"heatmap","type":"MCE","from":0,"to":3600000}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        let svg = resp["svg"].as_str().unwrap();
        assert!(svg.starts_with("<svg"));
        let resp = call(&e, r#"{"op":"render","view":"nope","from":0,"to":1}"#);
        assert_eq!(resp["status"].as_str(), Some("error"));
    }

    #[test]
    fn errors_are_structured_not_panics() {
        let e = engine();
        for bad in [
            "not json at all",
            r#"{"no_op":1}"#,
            r#"{"op":"zap"}"#,
            r#"{"op":"events","from":100,"to":0}"#,
            r#"{"op":"heatmap","from":0,"to":1}"#,
            r#"{"op":"nodeinfo","cname":"c9-9c9s9n9"}"#,
            r#"{"op":"cql","q":"DROP TABLE x"}"#,
            r#"{"op":"histogram","type":"MCE","from":0,"to":1,"bin_ms":-5}"#,
        ] {
            let resp = call(&e, bad);
            assert_eq!(resp["status"].as_str(), Some("error"), "{bad}");
            assert!(!resp["message"].as_str().unwrap().is_empty());
        }
    }
}
