//! The query engine: JSON requests in, JSON responses out.
//!
//! "The user queries are received by the web server, translated by the
//! query engine, and either forwarded to the backend database, or the big
//! data processing unit depending on the type of a user query."
//!
//! Every op goes through one [`QueryRequest`] parse step (window, context
//! filters, `limit`, `cursor`) and answers in the uniform envelope built
//! by [`envelope_ok`] / [`envelope_err`] — see [`crate::server::request`]
//! for the wire format. `events` and `apps` paginate with opaque cursors
//! backed by the coordinator's scatter-gather `read_multi`.

use crate::analytics::distribution::{distribution_of, GroupBy};
use crate::analytics::{correlation, heatmap, histogram, synopsis, text, transfer_entropy};
use crate::framework::Framework;
use crate::model::keys::{DAY_MS, HOUR_MS};
use crate::model::nodeinfo;
use crate::server::cache::ResultEntry;
use crate::server::recorder::{FlightRecorder, RecordedQuery};
use crate::server::request::{
    envelope_err, envelope_ok, ApiError, Cursor, ErrorCode, OpOutput, Page, QueryRequest,
};
use crate::server::slo::SloRegistry;
use jsonlite::{json_array, json_object, Value as Json};
use rasdb::cluster::ExecResult;
use rasdb::types::Key;
use std::sync::Arc;
use std::time::Instant;
use telemetry::{SpanRecord, TraceContext};

/// The analytics server's query dispatcher.
pub struct QueryEngine {
    fw: Arc<Framework>,
    recorder: FlightRecorder,
    slo: SloRegistry,
}

/// One handled request with the transport-level facts the HTTP frontend
/// needs: the envelope body, the HTTP status implied by the typed error
/// code (200 on success), and the retry hint to mirror into a
/// `Retry-After` header when present.
pub struct EngineResponse {
    /// The v2 envelope, serialized.
    pub body: String,
    /// [`ErrorCode::http_status`] of the error, or 200.
    pub status: u16,
    /// `error.retry_after_ms`, when the error carries one.
    pub retry_after_ms: Option<u64>,
}

/// The request phases reported in profiles and flight-recorder entries,
/// in pipeline order. They partition the end-to-end latency: `parse` +
/// `serialize` are measured directly, and the execute interval splits
/// into `cache_probe` / `plan` / `fan_out` / `merge` (from the request's
/// coordinator spans) with the remainder attributed to `analyze`.
const PHASES: [&str; 7] = [
    "parse",
    "cache_probe",
    "plan",
    "fan_out",
    "merge",
    "analyze",
    "serialize",
];

impl QueryEngine {
    /// Wraps a framework.
    pub fn new(fw: Arc<Framework>) -> QueryEngine {
        QueryEngine {
            fw,
            recorder: FlightRecorder::new(),
            slo: SloRegistry::new(),
        }
    }

    /// The wrapped framework.
    pub fn framework(&self) -> &Arc<Framework> {
        &self.fw
    }

    /// The slow-query flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The per-op SLO accounting behind the `health` op.
    pub fn slo(&self) -> &SloRegistry {
        &self.slo
    }

    /// Handles one JSON request string; always returns a JSON response
    /// in the v2 envelope format (`v`, `status`, `data`/`error`, `page`,
    /// `trace_id`).
    pub fn handle(&self, request: &str) -> String {
        self.handle_traced(request, None)
    }

    /// [`QueryEngine::handle`] with an optional caller-supplied trace id
    /// (e.g. from an `X-Trace-Id` header). Precedence: a `"trace_id"`
    /// request field wins, then `adopted`, else a fresh id is minted — so
    /// the envelope always carries one. `"profile": true` additionally
    /// collects every span of the request and returns a per-phase
    /// breakdown under `profile`.
    pub fn handle_traced(&self, request: &str, adopted: Option<u64>) -> String {
        self.handle_http(request, adopted).body
    }

    /// [`QueryEngine::handle_traced`] returning the transport view: the
    /// body plus the HTTP status and retry hint the frontend maps the
    /// typed error code to (see [`ErrorCode::http_status`]).
    pub fn handle_http(&self, request: &str, adopted: Option<u64>) -> EngineResponse {
        let t_start = Instant::now();
        let parsed = jsonlite::parse(request);
        let parse_ns = elapsed_ns(t_start);

        let (trace, profiled) = match &parsed {
            Ok(body) => (
                body["trace_id"]
                    .as_str()
                    .and_then(TraceContext::parse_hex)
                    .or(adopted),
                body["profile"].as_bool() == Some(true),
            ),
            Err(_) => (adopted, false),
        };
        let ctx = match trace {
            Some(t) => TraceContext::adopt(t),
            None => TraceContext::root(),
        };
        if profiled {
            telemetry::begin_profile(ctx.trace_id);
        }
        let engine_thread = telemetry::current_thread();

        let t_exec = Instant::now();
        let mut op = String::new();
        let mut error: Option<ApiError> = None;
        let mut response = {
            let mut span = telemetry::SpanGuard::enter_in("server.engine.request", &ctx);
            match &parsed {
                Err(e) => {
                    let api = ApiError::new(ErrorCode::BadJson, format!("bad JSON: {e}"));
                    let env = envelope_err(&api);
                    error = Some(api);
                    env
                }
                Ok(body) => match QueryRequest::parse(body) {
                    Err(e) => {
                        let env = envelope_err(&e);
                        error = Some(e);
                        env
                    }
                    Ok(req) => {
                        op = req.op.clone();
                        span.tag("op", &req.op);
                        match self.dispatch(&req) {
                            Ok(out) => envelope_ok(out),
                            Err(e) => {
                                let env = envelope_err(&e);
                                error = Some(e);
                                env
                            }
                        }
                    }
                },
            }
            // Request span closes here so its duration (and its trace's
            // profile) covers exactly the execute interval.
        };
        let exec_ns = elapsed_ns(t_exec);
        let ok = error.is_none();

        response.insert("trace_id", Json::from(ctx.hex()));
        let t_ser = Instant::now();
        let mut text = response.to_string();
        let serialize_ns = elapsed_ns(t_ser);
        let total_us = (parse_ns + exec_ns + serialize_ns) as f64 / 1_000.0;

        let spans = if profiled {
            telemetry::take_profile(ctx.trace_id)
        } else {
            Vec::new()
        };
        let phases = phase_breakdown(parse_ns, exec_ns, serialize_ns, &spans, engine_thread);
        if profiled {
            response.insert("profile", profile_json(&ctx, total_us, &phases, &spans));
            text = response.to_string();
        }

        self.recorder.observe(RecordedQuery {
            trace_id: ctx.trace_id,
            op: op.clone(),
            status: if ok { "ok" } else { "error" },
            total_us,
            phases: phases.clone(),
            profiled,
        });
        if known_op(&op) {
            self.slo.record(&op, ok, total_us as u64);
        }
        EngineResponse {
            body: text,
            status: error.as_ref().map(|e| e.code.http_status()).unwrap_or(200),
            retry_after_ms: error.and_then(|e| e.retry_after_ms),
        }
    }

    /// Whether a window ending at `to` extends past the streaming ingest
    /// watermark (i.e. overlaps the open, still-filling hour).
    fn window_open(&self, to: i64) -> bool {
        to > self.fw.ingest_watermark()
    }

    /// Runs `compute` through the result cache. A validated hit returns
    /// the memoized `data` fields verbatim; a miss snapshots the topology
    /// epoch and every dependency's data version *before* computing (so a
    /// write racing the compute can only make the stored entry stale,
    /// never silently current), then stores the result. Errors are never
    /// cached.
    fn cached(
        &self,
        key: Vec<u8>,
        deps: Vec<(String, Key)>,
        open: bool,
        compute: impl FnOnce() -> Result<OpOutput, ApiError>,
    ) -> Result<OpOutput, ApiError> {
        let cache = self.fw.result_cache();
        let cluster = self.fw.cluster();
        {
            let mut probe = telemetry::span!("cache.result.probe");
            if let Some(data) = cache.lookup(cluster, &key) {
                probe.tag("outcome", "hit");
                // The deep clone happens here, outside the shard lock.
                return Ok(OpOutput {
                    data: (*data).clone(),
                    page: None,
                });
            }
            probe.tag("outcome", "miss");
        }
        let epoch = cluster.topology_epoch();
        let versions = deps
            .iter()
            .map(|(t, p)| cluster.data_version(t, p))
            .collect();
        let out = compute()?;
        cache.store(
            key,
            ResultEntry {
                data: Arc::new(out.data.clone()),
                deps,
                versions,
                epoch,
                open,
            },
        );
        Ok(out)
    }

    fn dispatch(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        match req.op.as_str() {
            "events" => self.op_events(req),
            "heatmap" => self.op_heatmap(req),
            "distribution" => self.op_distribution(req),
            "histogram" => self.op_histogram(req),
            "transfer_entropy" => self.op_transfer_entropy(req),
            "cross_correlation" => self.op_cross_correlation(req),
            "wordcount" => self.op_wordcount(req),
            "apps" => self.op_apps(req),
            "nodeinfo" => self.op_nodeinfo(req),
            "synopsis" => self.op_synopsis(req),
            "rules" => self.op_rules(req),
            "profile" => self.op_profile(req),
            "predict" => self.op_predict(req),
            "render" => self.op_render(req),
            "cql" => self.op_cql(req),
            "topology" => self.op_topology(req),
            "dlq" => self.op_dlq(req),
            "dlq_requeue" => self.op_dlq_requeue(req),
            "metrics" => self.op_metrics(req),
            "storage" => self.op_storage(req),
            "slow_queries" => self.op_slow_queries(req),
            "health" => self.op_health(req),
            "trace" => Ok(OpOutput::data([(
                "spans",
                crate::server::telemetry_export::trace_json(),
            )])),
            other => Err(ApiError::new(
                ErrorCode::UnknownOp,
                format!("unknown op '{other}'"),
            )),
        }
    }

    fn op_events(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let ctx = req.context()?;
        let mut events = ctx.fetch_events(&self.fw)?;
        events.sort_by(|a, b| {
            (a.ts_ms, &a.source, &a.event_type).cmp(&(b.ts_ms, &b.source, &b.event_type))
        });
        if let Some(cursor) = &req.cursor {
            let Cursor::Event {
                ts_ms,
                source,
                event_type,
            } = cursor
            else {
                return Err(ApiError::new(
                    ErrorCode::BadCursor,
                    "cursor is not an 'events' cursor",
                ));
            };
            let key = (*ts_ms, source.as_str(), event_type.as_str());
            events.retain(|e| (e.ts_ms, e.source.as_str(), e.event_type.as_str()) > key);
        }
        let mut page = None;
        if let Some(limit) = req.limit {
            let has_more = events.len() > limit;
            events.truncate(limit);
            let cursor = if has_more {
                events.last().map(|e| {
                    Cursor::Event {
                        ts_ms: e.ts_ms,
                        source: e.source.clone(),
                        event_type: e.event_type.clone(),
                    }
                    .encode()
                })
            } else {
                None
            };
            page = Some(Page { cursor, has_more });
        } else if req.cursor.is_some() {
            page = Some(Page {
                cursor: None,
                has_more: false,
            });
        }
        let rows = json_array(events.iter().map(|e| {
            json_object([
                ("ts", Json::from(e.ts_ms)),
                ("type", Json::from(e.event_type.as_str())),
                ("source", Json::from(e.source.as_str())),
                ("amount", Json::from(e.amount)),
                ("raw", Json::from(e.raw.as_str())),
            ])
        }));
        let mut out = OpOutput::data([("rows", rows)]);
        if let Some(page) = page {
            out = out.with_page(page);
        }
        Ok(out)
    }

    fn op_heatmap(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let (from, to) = req.window()?;
        let t = req.str_field("type")?.to_owned();
        let key = cache_key(&["heatmap", &t, &from.to_string(), &to.to_string()]);
        let deps = Framework::window_deps("event_by_time", Some(&t), from, to);
        self.cached(key, deps, self.window_open(to), || {
            let hm = heatmap::cabinet_heatmap(&self.fw, &t, from, to)?;
            Ok(OpOutput::data([
                ("cabinets", json_array(hm.cabinets.clone())),
                ("total", Json::from(hm.total)),
                ("hottest", Json::from(hm.hottest)),
                ("mean", Json::from(hm.mean)),
                ("stddev", Json::from(hm.stddev)),
                (
                    "outliers",
                    json_array(hm.outliers(2.0).into_iter().map(Json::from)),
                ),
            ]))
        })
    }

    fn op_distribution(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let ctx = req.context()?;
        let by_name = req.opt_str("by").unwrap_or("cabinet");
        let by = match by_name {
            "cabinet" => GroupBy::Cabinet,
            "blade" => GroupBy::Blade,
            "node" => GroupBy::Node,
            "application" | "app" => GroupBy::Application,
            other => return Err(ApiError::bad_request(format!("unknown grouping '{other}'"))),
        };
        let compute = || {
            let events = ctx.fetch_events(&self.fw)?;
            let d = distribution_of(&self.fw, &events, by)?;
            Ok(OpOutput::data([
                (
                    "entries",
                    json_array(
                        d.entries
                            .iter()
                            .map(|(l, c)| json_array([Json::from(l.as_str()), Json::from(*c)])),
                    ),
                ),
                ("unattributed", Json::from(d.unattributed)),
            ]))
        };
        // Only the pure (type, window) selection is memoized; source,
        // cabinet, user, and app filters join per-request state whose
        // dependencies are not expressible as hour partitions.
        let Some(t) = ctx.event_type.clone() else {
            return compute();
        };
        if ctx.source.is_some() || ctx.cabinet.is_some() || ctx.user.is_some() || ctx.app.is_some()
        {
            return compute();
        }
        let (from, to) = (ctx.from_ms, ctx.to_ms);
        let key = cache_key(&[
            "distribution",
            &t,
            by_name,
            &from.to_string(),
            &to.to_string(),
        ]);
        let mut deps = Framework::window_deps("event_by_time", Some(&t), from, to);
        if by == GroupBy::Application {
            // Attribution joins runs that may have started up to a day
            // earlier (see `distribution_of`): depend on that superset.
            deps.extend(Framework::window_deps(
                "application_by_time",
                None,
                from.saturating_sub(24 * HOUR_MS),
                to,
            ));
        }
        self.cached(key, deps, self.window_open(to), compute)
    }

    fn op_histogram(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let (from, to) = req.window()?;
        let t = req.str_field("type")?.to_owned();
        let bin = req.pos_i64_or("bin_ms", 3_600_000)?;
        let key = cache_key(&[
            "histogram",
            &t,
            &from.to_string(),
            &to.to_string(),
            &bin.to_string(),
        ]);
        let deps = Framework::window_deps("event_by_time", Some(&t), from, to);
        self.cached(key, deps, self.window_open(to), || {
            let h = histogram::event_histogram(&self.fw, &t, from, to, bin)?;
            Ok(OpOutput::data([
                ("from", Json::from(h.from_ms)),
                ("bin_ms", Json::from(h.bin_ms)),
                ("bins", json_array(h.bins.clone())),
            ]))
        })
    }

    fn op_transfer_entropy(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let (from, to) = req.window()?;
        let x = req.str_field("x")?.to_owned();
        let y = req.str_field("y")?.to_owned();
        let bin = req.pos_i64_or("bin_ms", 60_000)?;
        let max_lag = req.pos_i64_or("max_lag", 10)? as usize;
        let key = cache_key(&[
            "transfer_entropy",
            &x,
            &y,
            &from.to_string(),
            &to.to_string(),
            &bin.to_string(),
            &max_lag.to_string(),
        ]);
        let mut deps = Framework::window_deps("event_by_time", Some(&x), from, to);
        deps.extend(Framework::window_deps("event_by_time", Some(&y), from, to));
        self.cached(key, deps, self.window_open(to), || {
            let sweep = transfer_entropy::te_lag_sweep(&self.fw, &x, &y, from, to, bin, max_lag)?;
            Ok(OpOutput::data([(
                "lags",
                json_array(sweep.iter().map(|(lag, te)| {
                    json_object([
                        ("lag", Json::from(*lag)),
                        ("x_to_y", Json::from(te.x_to_y)),
                        ("y_to_x", Json::from(te.y_to_x)),
                    ])
                })),
            )]))
        })
    }

    fn op_cross_correlation(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let (from, to) = req.window()?;
        let a = req.str_field("x")?.to_owned();
        let b = req.str_field("y")?.to_owned();
        let bin = req.pos_i64_or("bin_ms", 60_000)?;
        let max_lag = req.i64_or("max_lag", 10)?;
        if max_lag < 0 {
            return Err(ApiError::bad_request("'max_lag' must be non-negative"));
        }
        let max_lag = max_lag as usize;
        let key = cache_key(&[
            "cross_correlation",
            &a,
            &b,
            &from.to_string(),
            &to.to_string(),
            &bin.to_string(),
            &max_lag.to_string(),
        ]);
        let mut deps = Framework::window_deps("event_by_time", Some(&a), from, to);
        deps.extend(Framework::window_deps("event_by_time", Some(&b), from, to));
        self.cached(key, deps, self.window_open(to), || {
            let xc =
                correlation::event_cross_correlation(&self.fw, &a, &b, from, to, bin, max_lag)?;
            Ok(OpOutput::data([(
                "correlations",
                json_array(
                    xc.iter()
                        .map(|(lag, r)| json_array([Json::from(*lag), Json::from(*r)])),
                ),
            )]))
        })
    }

    fn op_wordcount(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let (from, to) = req.window()?;
        let t = req.event_type.as_deref().unwrap_or("LUSTRE_ERR").to_owned();
        let k = req.pos_i64_or("top", 20)? as usize;
        let key = cache_key(&[
            "wordcount",
            &t,
            &from.to_string(),
            &to.to_string(),
            &k.to_string(),
        ]);
        let deps = Framework::window_deps("event_by_time", Some(&t), from, to);
        self.cached(key, deps, self.window_open(to), || {
            let counts = text::word_count_events(&self.fw, &t, from, to)?;
            let top = text::top_k(&counts, k);
            Ok(OpOutput::data([(
                "terms",
                json_array(
                    top.iter()
                        .map(|(w, c)| json_array([Json::from(w.as_str()), Json::from(*c)])),
                ),
            )]))
        })
    }

    fn op_apps(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let mut runs = if let Some(user) = &req.user {
            self.fw.apps_by_user(user)
        } else if let Some(app) = &req.app {
            self.fw.apps_by_name(app)
        } else if let Some(cab) = req.cabinet {
            self.fw.apps_by_location(cab)
        } else {
            let (from, to) = req.window()?;
            self.fw.apps_by_time(from, to)
        }?;
        runs.sort_by_key(|r| (r.start_ms, r.apid));
        if let Some(cursor) = &req.cursor {
            let Cursor::App { start_ms, apid } = cursor else {
                return Err(ApiError::new(
                    ErrorCode::BadCursor,
                    "cursor is not an 'apps' cursor",
                ));
            };
            let key = (*start_ms, *apid);
            runs.retain(|r| (r.start_ms, r.apid) > key);
        }
        let mut page = None;
        if let Some(limit) = req.limit {
            let has_more = runs.len() > limit;
            runs.truncate(limit);
            let cursor = if has_more {
                runs.last().map(|r| {
                    Cursor::App {
                        start_ms: r.start_ms,
                        apid: r.apid,
                    }
                    .encode()
                })
            } else {
                None
            };
            page = Some(Page { cursor, has_more });
        } else if req.cursor.is_some() {
            page = Some(Page {
                cursor: None,
                has_more: false,
            });
        }
        let rows = json_array(runs.iter().map(|r| {
            json_object([
                ("apid", Json::from(r.apid)),
                ("user", Json::from(r.user.as_str())),
                ("app", Json::from(r.app.as_str())),
                ("start", Json::from(r.start_ms)),
                ("end", Json::from(r.end_ms)),
                ("node_first", Json::from(r.node_first)),
                ("node_last", Json::from(r.node_last)),
                ("exit_code", Json::from(r.exit_code)),
            ])
        }));
        let mut out = OpOutput::data([("runs", rows)]);
        if let Some(page) = page {
            out = out.with_page(page);
        }
        Ok(out)
    }

    fn op_nodeinfo(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let cname = req.str_field("cname")?;
        match nodeinfo::lookup(self.fw.cluster(), cname)? {
            None => Err(ApiError::new(
                ErrorCode::NotFound,
                format!("unknown node '{cname}'"),
            )),
            Some(info) => Ok(OpOutput::data([
                ("cname", Json::from(info.cname.as_str())),
                ("index", Json::from(info.index)),
                ("row", Json::from(info.row)),
                ("col", Json::from(info.col)),
                ("cage", Json::from(info.cage)),
                ("slot", Json::from(info.slot)),
                ("node", Json::from(info.node)),
                ("gemini", Json::from(info.gemini)),
            ])),
        }
    }

    /// Topology admin and status. `action` defaults to `"status"`; `"join"`
    /// adds a new node and streams its ranges in, `"decommission"` drains
    /// the named node's ranges and retires it. A concurrent transition
    /// surfaces as `TOPOLOGY_CHANGING` with a retry hint.
    fn op_topology(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let cluster = self.fw.cluster();
        match req.opt_str("action").unwrap_or("status") {
            "status" => {
                let s = cluster.topology_status();
                Ok(OpOutput::data([
                    ("epoch", Json::from(s.epoch as i64)),
                    (
                        "replication_factor",
                        Json::from(s.replication_factor as i64),
                    ),
                    ("state", Json::from(s.state.as_str())),
                    (
                        "members",
                        json_array(s.members.iter().map(|m| {
                            json_object([
                                ("id", Json::from(m.id.0 as i64)),
                                ("up", Json::from(m.up)),
                                ("in_ring", Json::from(m.in_ring)),
                            ])
                        })),
                    ),
                ]))
            }
            "join" => {
                let report = cluster.join_node()?;
                Ok(transition_json(&report))
            }
            "decommission" => {
                let id = req.i64_field("node")?;
                if id < 0 {
                    return Err(ApiError::bad_request("'node' must be non-negative"));
                }
                let report = cluster.decommission_node(rasdb::ring::NodeId(id as usize))?;
                Ok(transition_json(&report))
            }
            other => Err(ApiError::bad_request(format!(
                "unknown topology action '{other}'"
            ))),
        }
    }

    fn op_synopsis(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let day = req.i64_field("day")?;
        let key = cache_key(&["synopsis", &day.to_string()]);
        let deps = vec![(
            "eventsynopsis".to_owned(),
            Key(vec![rasdb::types::Value::BigInt(day)]),
        )];
        let day_end = day.saturating_add(1).saturating_mul(DAY_MS);
        self.cached(key, deps, self.window_open(day_end), || {
            let rows = synopsis::read_synopsis(&self.fw, day)?;
            Ok(OpOutput::data([(
                "rows",
                json_array(rows.iter().map(|r| {
                    json_object([
                        ("hour", Json::from(r.hour)),
                        ("type", Json::from(r.event_type.as_str())),
                        ("events", Json::from(r.events)),
                        ("nodes", Json::from(r.nodes)),
                    ])
                })),
            )]))
        })
    }

    fn op_rules(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        use crate::analytics::composite::{mine_from_store, Scope};
        let (from, to) = req.window()?;
        let window_ms = req.pos_i64_or("window_ms", 60_000)?;
        let min_support = req.pos_i64_or("min_support", 3)? as u64;
        let scope = match req.opt_str("scope").unwrap_or("node") {
            "node" => Scope::Node,
            "cabinet" => Scope::Cabinet,
            "system" => Scope::System,
            other => return Err(ApiError::bad_request(format!("unknown scope '{other}'"))),
        };
        let rules = mine_from_store(&self.fw, from, to, window_ms, scope, min_support)?;
        Ok(OpOutput::data([(
            "rules",
            json_array(rules.iter().take(50).map(|r| {
                json_object([
                    ("antecedent", Json::from(r.antecedent.as_str())),
                    ("consequent", Json::from(r.consequent.as_str())),
                    ("support", Json::from(r.support)),
                    ("confidence", Json::from(r.confidence)),
                    ("lift", Json::from(r.lift)),
                ])
            })),
        )]))
    }

    fn op_profile(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        use crate::analytics::profiles::application_profile;
        let app = req
            .app
            .as_deref()
            .ok_or_else(|| ApiError::bad_request("missing 'app'"))?;
        let p = application_profile(&self.fw, app)?;
        Ok(OpOutput::data([
            ("app", Json::from(p.app.as_str())),
            ("runs", Json::from(p.runs)),
            ("node_hours", Json::from(p.node_hours)),
            (
                "rates",
                json_object(p.rates.iter().map(|(t, r)| (t.clone(), Json::from(*r)))),
            ),
        ]))
    }

    fn op_predict(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        use crate::analytics::prediction::{train_and_evaluate, PredictorConfig};
        let (from, to) = req.window()?;
        let target = req.str_field("target")?;
        let cfg = PredictorConfig {
            bin_ms: req.pos_i64_or("bin_ms", 60_000)?,
            lead_bins: req.pos_i64_or("lead_bins", 5)? as usize,
            horizon_bins: req.pos_i64_or("horizon_bins", 5)? as usize,
        };
        let (predictor, metrics) = train_and_evaluate(&self.fw, target, from, to, cfg, 0.7)?;
        Ok(OpOutput::data([
            ("target", Json::from(target)),
            ("precision", Json::from(metrics.precision)),
            ("recall", Json::from(metrics.recall)),
            ("alarms", Json::from(metrics.alarms)),
            ("failures", Json::from(metrics.failures)),
            (
                "weights",
                json_object(
                    predictor
                        .weights
                        .iter()
                        .map(|(t, w)| (t.clone(), Json::from(*w))),
                ),
            ),
        ]))
    }

    /// Server-side rendering: the named view as an SVG document.
    fn op_render(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        use crate::server::views;
        let (from, to) = req.window()?;
        let view = req.str_field("view")?;
        let etype = req.event_type.as_deref().unwrap_or("LUSTRE_ERR");
        let svg = match view {
            "heatmap" => views::heatmap_svg(&self.fw, etype, from, to),
            "node_heatmap" => views::node_heatmap_svg(&self.fw, etype, from, to),
            "histogram" => views::histogram_svg(
                &self.fw,
                etype,
                from,
                to,
                req.pos_i64_or("bin_ms", 3_600_000)?,
            ),
            "te" => views::te_plot_svg(
                &self.fw,
                req.str_field("x")?,
                req.str_field("y")?,
                from,
                to,
                req.pos_i64_or("bin_ms", 60_000)?,
                req.pos_i64_or("max_lag", 10)? as usize,
            ),
            "bubbles" => views::word_bubbles_svg(
                &self.fw,
                etype,
                from,
                to,
                req.pos_i64_or("top", 15)? as usize,
            ),
            other => {
                return Err(ApiError::new(
                    ErrorCode::NotFound,
                    format!("unknown view '{other}'"),
                ))
            }
        }?;
        Ok(OpOutput::data([
            ("view", Json::from(view)),
            ("svg", Json::from(svg)),
        ]))
    }

    /// Inspects the ingestion dead-letter queue: current depth plus up to
    /// `max` entries (default 20), without consuming anything.
    fn op_dlq(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        use crate::etl::stream::{dlq_depth, dlq_peek};
        let max = req.pos_i64_or("max", 20)? as usize;
        let depth = dlq_depth(&self.fw).map_err(bus_err)?;
        let entries = dlq_peek(&self.fw, max).map_err(bus_err)?;
        Ok(OpOutput::data([
            ("depth", Json::from(depth as i64)),
            (
                "entries",
                json_array(entries.iter().map(|r| {
                    json_object([
                        ("partition", Json::from(r.partition as i64)),
                        ("offset", Json::from(r.offset as i64)),
                        (
                            "key",
                            match &r.key {
                                Some(k) => Json::from(k.as_str()),
                                None => Json::Null,
                            },
                        ),
                        ("value", Json::from(r.value.as_str())),
                    ])
                })),
            ),
        ]))
    }

    /// Replays up to `max` dead-letter entries (default 100): serialized
    /// events re-insert into the event tables, raw lines republish to the
    /// ingest topic. Entries that fail to replay stay queued.
    fn op_dlq_requeue(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        use crate::etl::stream::dlq_requeue;
        let max = req.pos_i64_or("max", 100)? as usize;
        let r = dlq_requeue(&self.fw, max)?;
        Ok(OpOutput::data([
            ("events_reinserted", Json::from(r.events_reinserted as i64)),
            ("lines_republished", Json::from(r.lines_republished as i64)),
            ("poison_dropped", Json::from(r.poison_dropped as i64)),
            ("remaining", Json::from(r.remaining as i64)),
        ]))
    }

    /// The global telemetry registry: counters, gauges, and latency
    /// histograms. Pass `"reset": true` to zero everything after reading.
    fn op_metrics(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let snap = crate::server::telemetry_export::metrics_json();
        let out = OpOutput::data([
            ("enabled", Json::from(telemetry::enabled())),
            ("counters", snap["counters"].clone()),
            ("gauges", snap["gauges"].clone()),
            ("histograms", snap["histograms"].clone()),
        ]);
        if req.raw["reset"].as_bool() == Some(true) {
            telemetry::global().reset();
        }
        Ok(out)
    }

    /// Columnar analytics storage stats: blocks built/resident/evicted,
    /// byte residency against the budget, dictionary compression, and
    /// zone-map skip counts. Never cached — it *is* the cache readout.
    fn op_storage(&self, _req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let s = self.fw.columnar().stats();
        Ok(OpOutput::data([
            ("blocks_built", Json::from(s.blocks_built as i64)),
            ("blocks_evicted", Json::from(s.blocks_evicted as i64)),
            ("blocks_resident", Json::from(s.blocks_resident as i64)),
            ("bytes_budget", Json::from(s.bytes_budget as i64)),
            ("bytes_resident", Json::from(s.bytes_resident as i64)),
            ("dict_compression", Json::from(s.dict_compression())),
            (
                "dict_encoded_bytes",
                Json::from(s.dict_encoded_bytes as i64),
            ),
            ("dict_raw_bytes", Json::from(s.dict_raw_bytes as i64)),
            ("hits", Json::from(s.hits as i64)),
            ("invalidations", Json::from(s.invalidations as i64)),
            ("misses", Json::from(s.misses as i64)),
            ("zone_skips", Json::from(s.zone_skips as i64)),
        ]))
    }

    /// Flight-recorder readout: the most recent slow queries, newest
    /// first. An optional `threshold_ms` field re-arms the recorder (0
    /// captures every request); `max` caps the returned rows (default 32).
    fn op_slow_queries(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        if !req.raw["threshold_ms"].is_null() {
            let Some(ms) = req.raw["threshold_ms"].as_i64().filter(|ms| *ms >= 0) else {
                return Err(ApiError::bad_request(
                    "threshold_ms must be a non-negative integer".to_owned(),
                ));
            };
            self.recorder.set_threshold_ms(ms as u64);
        }
        let max = match req.raw["max"].as_i64() {
            None => 32,
            Some(n) if n >= 1 => n as usize,
            Some(_) => {
                return Err(ApiError::bad_request(
                    "max must be a positive integer".to_owned(),
                ))
            }
        };
        let mut queries = self.recorder.snapshot();
        queries.truncate(max);
        Ok(OpOutput::data([
            ("count", Json::from(queries.len())),
            (
                "queries",
                json_array(queries.iter().map(|q| {
                    json_object([
                        ("op", Json::from(q.op.as_str())),
                        (
                            "phases",
                            json_object(
                                q.phases
                                    .iter()
                                    .map(|(name, us)| (name.to_string(), Json::from(*us))),
                            ),
                        ),
                        ("profiled", Json::from(q.profiled)),
                        ("status", Json::from(q.status)),
                        ("total_us", Json::from(q.total_us)),
                        ("trace_id", Json::from(telemetry::trace_hex(q.trace_id))),
                    ])
                })),
            ),
            (
                "threshold_ms",
                Json::from(self.recorder.threshold_ms() as i64),
            ),
        ]))
    }

    /// Per-op SLO health rows plus the overall status (the worst row).
    fn op_health(&self, _req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let (status, rows) = self.slo.health();
        Ok(OpOutput::data([
            (
                "ops",
                json_array(rows.iter().map(|h| {
                    json_object([
                        ("burn_rate", Json::from(h.burn_rate)),
                        ("good", Json::from(h.good as i64)),
                        ("latency_ms", Json::from(h.policy.latency_ms as i64)),
                        ("objective", Json::from(h.policy.objective)),
                        ("op", Json::from(h.op.as_str())),
                        ("status", Json::from(h.status)),
                        ("total", Json::from(h.total as i64)),
                    ])
                })),
            ),
            // `overall`, not `status`: the envelope already owns that
            // name.
            ("overall", Json::from(status)),
            (
                "window_ms",
                Json::from((crate::server::slo::WINDOW_SECS * 1_000) as i64),
            ),
        ]))
    }

    /// Simple queries go "directly handled by the query engine" — raw CQL
    /// pass-through to the backend.
    fn op_cql(&self, req: &QueryRequest) -> Result<OpOutput, ApiError> {
        let q = req.str_field("q")?;
        match self.fw.cluster().execute(q, self.fw.consistency())? {
            ExecResult::Applied => Ok(OpOutput::data([("applied", Json::from(true))])),
            ExecResult::Rows(rows) => Ok(OpOutput::data([(
                "rows",
                json_array(rows.iter().map(|r| {
                    let mut obj = json_object(
                        r.cells
                            .iter()
                            .map(|(k, v)| (k.clone(), db_value_to_json(v))),
                    );
                    obj.insert(
                        "_key",
                        json_array(r.clustering.0.iter().map(db_value_to_json)),
                    );
                    obj
                })),
            )])),
        }
    }
}

/// Canonical result-cache key: the op name plus every validated request
/// field that can change the answer, joined with an unprintable separator
/// (so `("a", "b\x1fc")` and `("a\x1fb", "c")` cannot collide on any
/// realistic field value). Keys are built *after* validation, from the
/// typed [`QueryRequest`] fields — never from the raw body — so requests
/// that produce identical answers share one entry regardless of field
/// order or whitespace.
fn cache_key(parts: &[&str]) -> Vec<u8> {
    parts.join("\x1f").into_bytes()
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Splits a request's wall clock across [`PHASES`]. `parse` and
/// `serialize` come from direct timestamps; within the execute interval,
/// `cache_probe` / `plan` / `merge` are the summed durations of the
/// request's same-named spans **on the dispatch thread** (worker-thread
/// replica reads overlap each other, so counting them would double-bill
/// wall time), `fan_out` is the coordinator's `read_multi` time not spent
/// planning or merging, and `analyze` is whatever execute time remains.
/// Without a profile (`spans` empty) the span-derived phases are 0 and
/// the whole execute interval lands in `analyze`.
fn phase_breakdown(
    parse_ns: u64,
    exec_ns: u64,
    serialize_ns: u64,
    spans: &[SpanRecord],
    engine_thread: u64,
) -> Vec<(&'static str, f64)> {
    let sum = |name: &str| -> u64 {
        spans
            .iter()
            .filter(|s| s.thread == engine_thread && s.name == name)
            .map(|s| s.duration_ns)
            .sum()
    };
    let probe = sum("cache.result.probe");
    let plan = sum("rasdb.coordinator.plan");
    let merge = sum("rasdb.coordinator.merge");
    let read_multi = sum("rasdb.coordinator.read_multi");
    let fan_out = read_multi.saturating_sub(plan).saturating_sub(merge);
    let analyze = exec_ns.saturating_sub(probe).saturating_sub(read_multi);
    let vals = [parse_ns, probe, plan, fan_out, merge, analyze, serialize_ns];
    PHASES
        .iter()
        .zip(vals)
        .map(|(name, ns)| (*name, ns as f64 / 1_000.0))
        .collect()
}

/// The `profile` envelope section for `"profile": true` requests: the
/// phase breakdown, the result-cache outcome, coordinator fan-out stats
/// (scatter/retry/hedge counts from the `read_multi` span tags), and the
/// trace's full span list (ids in the same hex form as `trace_id`).
fn profile_json(
    ctx: &TraceContext,
    total_us: f64,
    phases: &[(&'static str, f64)],
    spans: &[SpanRecord],
) -> Json {
    let mut profile = json_object([
        (
            "phases",
            json_object(
                phases
                    .iter()
                    .map(|(name, us)| (name.to_string(), Json::from(*us))),
            ),
        ),
        ("span_count", Json::from(spans.len())),
        ("total_us", Json::from(total_us)),
        ("trace_id", Json::from(ctx.hex())),
    ]);
    if let Some(probe) = spans.iter().find(|s| s.name == "cache.result.probe") {
        if let Some((_, outcome)) = probe.tags.iter().find(|(k, _)| *k == "outcome") {
            profile.insert(
                "cache",
                json_object([("result", Json::from(outcome.as_str()))]),
            );
        }
    }
    if let Some(rm) = spans
        .iter()
        .find(|s| s.name == "rasdb.coordinator.read_multi")
    {
        profile.insert(
            "fan_out",
            json_object(rm.tags.iter().map(|(k, v)| {
                let val = v
                    .parse::<i64>()
                    .map(Json::from)
                    .unwrap_or_else(|_| Json::from(v.as_str()));
                (k.to_string(), val)
            })),
        );
    }
    profile.insert(
        "spans",
        json_array(spans.iter().map(|s| {
            json_object([
                ("duration_us", Json::from(s.duration_ns as f64 / 1_000.0)),
                ("id", Json::from(telemetry::trace_hex(s.id))),
                ("name", Json::from(s.name)),
                (
                    "parent",
                    s.parent
                        .map(|p| Json::from(telemetry::trace_hex(p)))
                        .unwrap_or(Json::Null),
                ),
                (
                    "tags",
                    json_object(
                        s.tags
                            .iter()
                            .map(|(k, v)| (k.to_string(), Json::from(v.as_str()))),
                    ),
                ),
                ("thread", Json::from(s.thread)),
            ])
        })),
    );
    profile
}

/// Ops that feed SLO accounting — the dispatchable op set. Unknown ops
/// and pre-dispatch failures are excluded so a typo'd op name cannot
/// page anyone.
fn known_op(op: &str) -> bool {
    matches!(
        op,
        "events"
            | "heatmap"
            | "distribution"
            | "histogram"
            | "transfer_entropy"
            | "cross_correlation"
            | "wordcount"
            | "apps"
            | "nodeinfo"
            | "synopsis"
            | "rules"
            | "profile"
            | "predict"
            | "render"
            | "cql"
            | "topology"
            | "dlq"
            | "dlq_requeue"
            | "metrics"
            | "storage"
            | "slow_queries"
            | "health"
            | "trace"
    )
}

/// Shared shape for committed join/decommission reports.
fn transition_json(r: &rasdb::TransitionReport) -> OpOutput {
    OpOutput::data([
        ("action", Json::from(r.kind.as_str())),
        ("node", Json::from(r.node.0 as i64)),
        ("epoch", Json::from(r.epoch as i64)),
        (
            "partitions_streamed",
            Json::from(r.partitions_streamed as i64),
        ),
        ("rows_streamed", Json::from(r.rows_streamed as i64)),
        ("chunks_streamed", Json::from(r.chunks_streamed as i64)),
        ("chunk_retries", Json::from(r.chunk_retries as i64)),
        ("stream_resumes", Json::from(r.stream_resumes as i64)),
        ("hints_rerouted", Json::from(r.hints_rerouted as i64)),
    ])
}

fn bus_err(e: logbus::BusError) -> ApiError {
    ApiError::new(ErrorCode::Internal, format!("bus error: {e}"))
}

fn db_value_to_json(v: &rasdb::types::Value) -> Json {
    use rasdb::types::Value as V;
    match v {
        V::Text(s) => Json::from(s.as_str()),
        V::Int(n) => Json::from(*n),
        V::BigInt(n) | V::Timestamp(n) => Json::from(*n),
        V::Double(f) => Json::from(*f),
        V::Bool(b) => Json::from(*b),
        V::Blob(b) => Json::from(format!(
            "0x{}",
            b.iter().map(|x| format!("{x:02x}")).collect::<String>()
        )),
        V::List(items) => json_array(items.iter().map(db_value_to_json)),
        V::Map(m) => json_object(m.iter().map(|(k, v)| (k.clone(), db_value_to_json(v)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::apprun::AppRun;
    use crate::model::event::EventRecord;
    use crate::model::keys::HOUR_MS;
    use loggen::topology::Topology;

    fn engine() -> QueryEngine {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap();
        for i in 0..10i64 {
            fw.insert_event(&EventRecord {
                ts_ms: i * 60_000,
                event_type: "MCE".into(),
                source: format!("c0-0c0s{}n0", i % 4),
                amount: 1,
                raw: format!("Machine Check Exception: bank {i}"),
            })
            .unwrap();
        }
        QueryEngine::new(Arc::new(fw))
    }

    fn call(e: &QueryEngine, req: &str) -> Json {
        let resp = e.handle(req);
        jsonlite::parse(&resp).expect("valid response JSON")
    }

    #[test]
    fn events_roundtrip_through_json() {
        let e = engine();
        let resp = call(&e, r#"{"op":"events","type":"MCE","from":0,"to":3600000}"#);
        assert_eq!(resp["v"].as_i64(), Some(2), "the envelope-v2 cut");
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["rows"].as_array().unwrap().len(), 10);
        assert_eq!(resp["data"]["rows"][0]["type"].as_str(), Some("MCE"));
        assert!(resp["data"]["rows"][0]["raw"]
            .as_str()
            .unwrap()
            .contains("bank"));
        assert!(resp["rows"].is_null(), "flat mirrors are gone since v2");
        assert!(resp["deprecated"].is_null(), "so is the deprecated list");
    }

    #[test]
    fn events_paginate_to_exhaustion() {
        let e = engine();
        let mut seen = Vec::new();
        let mut cursor: Option<String> = None;
        let mut pages = 0;
        loop {
            let req = match &cursor {
                None => {
                    r#"{"op":"events","type":"MCE","from":0,"to":3600000,"limit":3}"#.to_owned()
                }
                Some(c) => format!(
                    r#"{{"op":"events","type":"MCE","from":0,"to":3600000,"limit":3,"cursor":"{c}"}}"#
                ),
            };
            let resp = call(&e, &req);
            assert_eq!(resp["status"].as_str(), Some("ok"), "{req}");
            let rows = resp["data"]["rows"].as_array().unwrap();
            assert!(rows.len() <= 3);
            seen.extend(rows.iter().map(|r| r["ts"].as_i64().unwrap()));
            pages += 1;
            if resp["page"]["has_more"].as_bool() == Some(true) {
                cursor = Some(resp["page"]["cursor"].as_str().unwrap().to_owned());
            } else {
                break;
            }
        }
        assert_eq!(pages, 4, "10 events at limit 3");
        assert_eq!(seen.len(), 10);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "no duplicates or gaps across pages");
    }

    #[test]
    fn apps_paginate_with_cursor() {
        let e = engine();
        for apid in 0..7i64 {
            e.framework()
                .insert_app_run(&AppRun {
                    apid,
                    user: "usr0001".into(),
                    app: "VASP".into(),
                    start_ms: apid * 1000,
                    end_ms: HOUR_MS,
                    node_first: 0,
                    node_last: 3,
                    exit_code: 0,
                    other_info: Default::default(),
                })
                .unwrap();
        }
        let resp = call(&e, r#"{"op":"apps","from":0,"to":3600000,"limit":4}"#);
        assert_eq!(resp["data"]["runs"].as_array().unwrap().len(), 4);
        assert_eq!(resp["page"]["has_more"].as_bool(), Some(true));
        let cursor = resp["page"]["cursor"].as_str().unwrap().to_owned();
        let resp = call(
            &e,
            &format!(r#"{{"op":"apps","from":0,"to":3600000,"limit":4,"cursor":"{cursor}"}}"#),
        );
        assert_eq!(resp["data"]["runs"].as_array().unwrap().len(), 3);
        assert_eq!(resp["page"]["has_more"].as_bool(), Some(false));
        assert!(resp["page"]["cursor"].is_null());
    }

    #[test]
    fn typed_error_codes_on_bad_requests() {
        let e = engine();
        for (req, code) in [
            ("not json at all", "BAD_JSON"),
            (r#"{"no_op":1}"#, "BAD_REQUEST"),
            (r#"{"op":"zap"}"#, "UNKNOWN_OP"),
            (r#"{"op":"events","from":100,"to":0}"#, "BAD_WINDOW"),
            (r#"{"op":"events","from":100,"to":100}"#, "EMPTY_WINDOW"),
            (r#"{"op":"events","from":0,"to":1,"limit":0}"#, "BAD_LIMIT"),
            (
                r#"{"op":"events","from":0,"to":1,"cursor":"junk"}"#,
                "BAD_CURSOR",
            ),
            (
                r#"{"op":"events","from":0,"to":1,"cursor":"ap:1:2"}"#,
                "BAD_CURSOR",
            ),
            (r#"{"op":"nodeinfo","cname":"c9-9c9s9n9"}"#, "NOT_FOUND"),
        ] {
            let resp = call(&e, req);
            assert_eq!(resp["status"].as_str(), Some("error"), "{req}");
            assert_eq!(resp["error"]["code"].as_str(), Some(code), "{req}");
            assert!(!resp["error"]["message"].as_str().unwrap().is_empty());
            assert!(resp["message"].is_null(), "flat error mirror gone in v2");
        }
    }

    #[test]
    fn heatmap_and_histogram_ops() {
        let e = engine();
        let resp = call(&e, r#"{"op":"heatmap","type":"MCE","from":0,"to":3600000}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["cabinets"].as_array().unwrap().len(), 4);
        assert_eq!(resp["data"]["total"].as_f64(), Some(10.0));

        let resp = call(
            &e,
            r#"{"op":"histogram","type":"MCE","from":0,"to":3600000,"bin_ms":600000}"#,
        );
        assert_eq!(resp["data"]["bins"].as_array().unwrap().len(), 6);
    }

    #[test]
    fn distribution_op_groups() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"distribution","type":"MCE","from":0,"to":3600000,"by":"node"}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["entries"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn te_and_correlation_ops_return_curves() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"transfer_entropy","x":"MCE","y":"GPU_DBE","from":0,"to":3600000,"bin_ms":60000,"max_lag":5}"#,
        );
        assert_eq!(resp["data"]["lags"].as_array().unwrap().len(), 5);
        let resp = call(
            &e,
            r#"{"op":"cross_correlation","x":"MCE","y":"GPU_DBE","from":0,"to":3600000,"bin_ms":60000,"max_lag":3}"#,
        );
        assert_eq!(resp["data"]["correlations"].as_array().unwrap().len(), 7);
    }

    #[test]
    fn wordcount_op_counts_terms() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"wordcount","type":"MCE","from":0,"to":3600000,"top":5}"#,
        );
        let terms = resp["data"]["terms"].as_array().unwrap();
        assert!(!terms.is_empty());
        // "Machine" appears in every raw message.
        assert!(terms.iter().any(|t| t[0].as_str() == Some("Machine")));
    }

    #[test]
    fn nodeinfo_and_cql_ops() {
        let e = engine();
        let resp = call(&e, r#"{"op":"nodeinfo","cname":"c1-1c2s7n3"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["row"].as_i64(), Some(1));

        let resp = call(
            &e,
            r#"{"op":"cql","q":"SELECT * FROM event_by_time WHERE hour = 0 AND type = 'MCE' LIMIT 3"}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["rows"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn rules_profile_predict_ops() {
        let e = engine();
        // Seed a causal pair so `rules` finds something.
        for i in 0..20i64 {
            for (t, at) in [
                ("NET_LINK", i * 120_000),
                ("LUSTRE_ERR", i * 120_000 + 5_000),
            ] {
                e.framework()
                    .insert_event(&EventRecord {
                        ts_ms: at,
                        event_type: t.into(),
                        source: "c0-0c0s0n0".into(),
                        amount: 1,
                        raw: String::new(),
                    })
                    .unwrap();
            }
        }
        let resp = call(
            &e,
            r#"{"op":"rules","from":0,"to":3600000,"window_ms":10000,"scope":"node","min_support":5}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        let rules = resp["data"]["rules"].as_array().unwrap();
        assert!(rules
            .iter()
            .any(|r| r["antecedent"].as_str() == Some("NET_LINK")
                && r["consequent"].as_str() == Some("LUSTRE_ERR")));

        let resp = call(&e, r#"{"op":"profile","app":"VASP"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["runs"].as_i64(), Some(0));

        let resp = call(
            &e,
            r#"{"op":"predict","target":"LUSTRE_ERR","from":0,"to":3600000,"bin_ms":60000}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert!(resp["data"]["weights"].as_object().is_some());
    }

    #[test]
    fn render_op_returns_svg() {
        let e = engine();
        let resp = call(
            &e,
            r#"{"op":"render","view":"heatmap","type":"MCE","from":0,"to":3600000}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"));
        let svg = resp["data"]["svg"].as_str().unwrap();
        assert!(svg.starts_with("<svg"));
        let resp = call(&e, r#"{"op":"render","view":"nope","from":0,"to":1}"#);
        assert_eq!(resp["status"].as_str(), Some("error"));
    }

    #[test]
    fn dlq_ops_inspect_and_requeue() {
        use crate::etl::stream::{publish_lines, StreamIngester};
        use loggen::trace::{Facility, RawLine};
        let e = engine();
        // An empty DLQ reports zero depth.
        let resp = call(&e, r#"{"op":"dlq"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["depth"].as_i64(), Some(0));
        // Ingest a poison line: it dead-letters.
        publish_lines(
            e.framework(),
            &[RawLine {
                ts_ms: 0,
                facility: Facility::Console,
                source: "c0-0c0s0n0".to_owned(),
                text: "~~~ unparseable gibberish ~~~".to_owned(),
            }],
        )
        .unwrap();
        StreamIngester::new(e.framework(), "g", 0)
            .unwrap()
            .run_to_completion(16)
            .unwrap();
        let resp = call(&e, r#"{"op":"dlq","max":5}"#);
        assert_eq!(resp["data"]["depth"].as_i64(), Some(1));
        let entries = resp["data"]["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0]["value"]
            .as_str()
            .unwrap()
            .contains("unparseable gibberish"));
        // Requeue republishes the line and empties the queue.
        let resp = call(&e, r#"{"op":"dlq_requeue"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["lines_republished"].as_i64(), Some(1));
        assert_eq!(resp["data"]["remaining"].as_i64(), Some(0));
        let resp = call(&e, r#"{"op":"dlq"}"#);
        assert_eq!(resp["data"]["depth"].as_i64(), Some(0));
    }

    #[test]
    fn topology_op_status_join_decommission() {
        let e = engine();
        let resp = call(&e, r#"{"op":"topology"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"));
        assert_eq!(resp["data"]["state"].as_str(), Some("stable"));
        assert_eq!(resp["data"]["members"].as_array().unwrap().len(), 3);
        let epoch0 = resp["data"]["epoch"].as_i64().unwrap();

        // Join a fourth node: ranges stream in, epoch bumps once.
        let resp = call(&e, r#"{"op":"topology","action":"join"}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"), "{resp}");
        assert_eq!(resp["data"]["action"].as_str(), Some("join"));
        assert_eq!(resp["data"]["node"].as_i64(), Some(3));
        assert_eq!(resp["data"]["epoch"].as_i64(), Some(epoch0 + 1));
        let resp = call(&e, r#"{"op":"topology"}"#);
        assert_eq!(resp["data"]["members"].as_array().unwrap().len(), 4);

        // Decommission it again: back to three ring members, retired slot
        // stays listed.
        let resp = call(&e, r#"{"op":"topology","action":"decommission","node":3}"#);
        assert_eq!(resp["status"].as_str(), Some("ok"), "{resp}");
        assert_eq!(resp["data"]["action"].as_str(), Some("decommission"));
        let resp = call(&e, r#"{"op":"topology"}"#);
        let members = resp["data"]["members"].as_array().unwrap();
        assert_eq!(members.len(), 4);
        assert_eq!(members[3]["in_ring"].as_bool(), Some(false));
        assert_eq!(members[3]["up"].as_bool(), Some(false));

        // Bad actions and bad targets are typed errors.
        let resp = call(&e, r#"{"op":"topology","action":"warp"}"#);
        assert_eq!(resp["error"]["code"].as_str(), Some("BAD_REQUEST"));
        let resp = call(&e, r#"{"op":"topology","action":"decommission"}"#);
        assert_eq!(resp["error"]["code"].as_str(), Some("BAD_REQUEST"));
        let resp = call(&e, r#"{"op":"topology","action":"decommission","node":3}"#);
        assert_eq!(resp["error"]["code"].as_str(), Some("BAD_REQUEST"));
    }

    #[test]
    fn errors_are_structured_not_panics() {
        let e = engine();
        for bad in [
            "not json at all",
            r#"{"no_op":1}"#,
            r#"{"op":"zap"}"#,
            r#"{"op":"events","from":100,"to":0}"#,
            r#"{"op":"heatmap","from":0,"to":1}"#,
            r#"{"op":"nodeinfo","cname":"c9-9c9s9n9"}"#,
            r#"{"op":"cql","q":"DROP TABLE x"}"#,
            r#"{"op":"histogram","type":"MCE","from":0,"to":1,"bin_ms":-5}"#,
        ] {
            let resp = call(&e, bad);
            assert_eq!(resp["status"].as_str(), Some("error"), "{bad}");
            assert!(!resp["error"]["message"].as_str().unwrap().is_empty());
            assert!(!resp["error"]["code"].as_str().unwrap().is_empty());
        }
    }

    #[test]
    fn repeated_queries_hit_the_result_cache_until_new_data_lands() {
        let e = engine();
        let req = r#"{"op":"heatmap","type":"MCE","from":0,"to":3600000}"#;
        // Each response carries its own trace id; strip it before the
        // byte-identical comparison.
        let strip_trace = |resp: &str| {
            let mut v = jsonlite::parse(resp).unwrap();
            assert!(v["trace_id"].as_str().is_some(), "trace_id on envelope");
            v.remove("trace_id");
            v.to_string()
        };
        let first = strip_trace(&e.handle(req));
        let hits0 = e.framework().result_cache().stats().hits();
        let second = strip_trace(&e.handle(req));
        assert_eq!(first, second, "cached response is byte-identical");
        assert_eq!(e.framework().result_cache().stats().hits(), hits0 + 1);
        // An equivalent request with different field order shares the
        // entry (canonical keys)...
        let reordered = e.handle(r#"{"to":3600000,"from":0,"type":"MCE","op":"heatmap"}"#);
        assert_eq!(e.framework().result_cache().stats().hits(), hits0 + 2);
        let reordered = jsonlite::parse(&reordered).unwrap();
        assert_eq!(reordered["data"]["total"].as_f64(), Some(10.0));
        assert!(reordered["total"].is_null(), "flat mirrors gone in v2");
        // ...and new data in the window invalidates lazily.
        e.framework()
            .insert_event(&EventRecord {
                ts_ms: 30_000,
                event_type: "MCE".into(),
                source: "c0-0c0s1n0".into(),
                amount: 1,
                raw: "one more".into(),
            })
            .unwrap();
        let third = strip_trace(&e.handle(req));
        assert_ne!(second, third);
        let parsed = jsonlite::parse(&third).unwrap();
        assert_eq!(parsed["data"]["total"].as_f64(), Some(11.0));
        assert!(e.framework().result_cache().stats().invalidations() >= 1);
    }
}
