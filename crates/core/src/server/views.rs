//! Server-side rendering of the frontend's views: each function turns a
//! framework query into a complete SVG document (the D3 substitute).

use crate::analytics::heatmap::{cabinet_heatmap, node_heatmap};
use crate::analytics::histogram::event_histogram;
use crate::analytics::text::{top_k, word_count_events};
use crate::analytics::transfer_entropy::te_lag_sweep;
use crate::framework::Framework;
use loggen::topology::NODES_PER_CABINET;
use rasdb::error::DbError;
use viz::sysmap::SystemMapSpec;

fn map_spec(fw: &Framework, title: String) -> SystemMapSpec {
    SystemMapSpec {
        rows: fw.topology().rows,
        cols: fw.topology().cols,
        title,
    }
}

/// The Fig 5 cabinet heat map as SVG.
pub fn heatmap_svg(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
) -> Result<String, DbError> {
    let hm = cabinet_heatmap(fw, event_type, from_ms, to_ms)?;
    Ok(viz::render_cabinet_heatmap(
        &map_spec(fw, format!("{event_type} occurrences per cabinet")),
        &hm.cabinets,
    ))
}

/// The node-level heat map as SVG.
pub fn node_heatmap_svg(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
) -> Result<String, DbError> {
    let nodes = node_heatmap(fw, event_type, from_ms, to_ms)?;
    Ok(viz::render_node_heatmap(
        &map_spec(fw, format!("{event_type} occurrences per node")),
        &nodes,
        NODES_PER_CABINET,
    ))
}

/// The temporal map (hourly histogram) as SVG.
pub fn histogram_svg(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
    bin_ms: i64,
) -> Result<String, DbError> {
    let h = event_histogram(fw, event_type, from_ms, to_ms, bin_ms)?;
    let labels: Vec<String> = (0..h.bins.len()).map(|i| i.to_string()).collect();
    Ok(viz::render_histogram(
        &format!("{event_type} per bin ({} s)", bin_ms / 1000),
        &labels,
        &h.bins,
    ))
}

/// The Fig 7 transfer-entropy plot as SVG.
pub fn te_plot_svg(
    fw: &Framework,
    type_x: &str,
    type_y: &str,
    from_ms: i64,
    to_ms: i64,
    bin_ms: i64,
    max_lag: usize,
) -> Result<String, DbError> {
    let sweep = te_lag_sweep(fw, type_x, type_y, from_ms, to_ms, bin_ms, max_lag)?;
    let triples: Vec<(usize, f64, f64)> = sweep
        .iter()
        .map(|(lag, te)| (*lag, te.x_to_y, te.y_to_x))
        .collect();
    Ok(viz::teplot::render_te_plot(type_x, type_y, &triples))
}

/// The Fig 7 word bubbles as SVG.
pub fn word_bubbles_svg(
    fw: &Framework,
    event_type: &str,
    from_ms: i64,
    to_ms: i64,
    top: usize,
) -> Result<String, DbError> {
    let counts = word_count_events(fw, event_type, from_ms, to_ms)?;
    let terms: Vec<(String, f64)> = top_k(&counts, top)
        .into_iter()
        .map(|(w, c)| (w, c as f64))
        .collect();
    Ok(viz::render_word_bubbles(
        &format!("Top terms in raw {event_type} messages"),
        &terms,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::model::event::EventRecord;
    use crate::model::keys::HOUR_MS;
    use loggen::topology::Topology;

    fn fw() -> Framework {
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap();
        for i in 0..30i64 {
            fw.insert_event(&EventRecord {
                ts_ms: i * 60_000,
                event_type: "LUSTRE_ERR".into(),
                source: fw.topology().node((i as usize * 7) % 384).cname,
                amount: 1,
                raw: format!("LustreError: OST0041 timeout attempt {i}"),
            })
            .unwrap();
        }
        fw
    }

    #[test]
    fn every_view_renders_valid_svg() {
        let fw = fw();
        for svg in [
            heatmap_svg(&fw, "LUSTRE_ERR", 0, HOUR_MS).unwrap(),
            node_heatmap_svg(&fw, "LUSTRE_ERR", 0, HOUR_MS).unwrap(),
            histogram_svg(&fw, "LUSTRE_ERR", 0, HOUR_MS, 600_000).unwrap(),
            te_plot_svg(&fw, "LUSTRE_ERR", "MCE", 0, HOUR_MS, 60_000, 4).unwrap(),
            word_bubbles_svg(&fw, "LUSTRE_ERR", 0, HOUR_MS, 8).unwrap(),
        ] {
            assert!(svg.starts_with("<svg"), "{}", &svg[..40.min(svg.len())]);
            assert!(svg.ends_with("</svg>"));
        }
    }

    #[test]
    fn bubbles_surface_the_ost() {
        let fw = fw();
        let svg = word_bubbles_svg(&fw, "LUSTRE_ERR", 0, HOUR_MS, 5).unwrap();
        assert!(svg.contains("OST0041"));
    }
}
