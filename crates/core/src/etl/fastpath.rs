//! Zero-copy byte-slice fast path for batch ETL.
//!
//! The regex path ([`crate::etl::parsers::EventParser`]) runs every raw
//! line through eleven Pike-VM patterns; at Titan scale that engine *is*
//! the batch-import hot loop. This module replaces it with byte-level
//! scanning over `&[u8]`:
//!
//! - **chunk splitting** ([`split_chunks`]): the corpus is cut into
//!   near-equal byte chunks, each extended to the last newline it
//!   contains, so **no line ever crosses a chunk** and chunks parse in
//!   parallel with zero coordination;
//! - **field-boundary detection** ([`Lines`], the envelope scanner):
//!   `memchr`-style searches find the three envelope spaces and the
//!   newline terminators — no per-line allocation, no UTF-8 decode;
//! - **lazy field extraction**: fields stay borrowed `&[u8]` slices until
//!   a line is known to produce a row; only the fields the table writer
//!   consumes (`source`, `raw`, job `user`/`app`) are materialized;
//! - **predicate pushdown** ([`ScanPredicate`]): window and event-type
//!   filters run *during* the scan — a line outside the window is dropped
//!   after parsing nothing but its timestamp, and a type-filtered line is
//!   dropped before any `String` is built;
//! - **fallback to the regex oracle**: any line that is not pure ASCII is
//!   handed to the [`EventParser`] (after UTF-8 validation; invalid UTF-8
//!   rejects the line, mirroring the regex path's `&str` precondition).
//!
//! The regex engine remains the **reference oracle**: for every line the
//! fast path must produce exactly the [`ParsedLine`] the regex path
//! produces (or exactly the same rejection). [`reference_scan_line`] is
//! the executable statement of that contract — the regex backend of
//! [`crate::etl::batch::import_bytes`] and the differential equivalence
//! suite (`tests/etl_equivalence.rs`) both run it.
//!
//! Telemetry: `etl.fastpath.lines`, `etl.fastpath.fallbacks`, and
//! `etl.fastpath.pushdown_skips` counters (flushed once per chunk via
//! [`ScanStats::flush_telemetry`]).

use crate::etl::parsers::{EventParser, ParsedLine};
use crate::model::event::EventRecord;
use std::collections::HashSet;

/// What became of one scanned line.
///
/// # Example
/// ```
/// use hpclog_core::etl::fastpath::{FastParser, LineOutcome, ScanPredicate, ScanStats};
/// let p = FastParser::new();
/// let (pred, mut stats) = (ScanPredicate::default(), ScanStats::default());
/// let line = b"1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 4";
/// match p.scan_line(line, &pred, &mut stats) {
///     LineOutcome::Event(ev) => assert_eq!(ev.event_type, "MCE"),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineOutcome {
    /// The line is a system event that survived the predicate.
    Event(EventRecord),
    /// The line is a job fragment ([`ParsedLine::JobStart`] or
    /// [`ParsedLine::JobEnd`]) — never filtered by predicates.
    Job(ParsedLine),
    /// No pattern matched (or a matched number overflowed its type).
    Skipped,
    /// An event line the [`ScanPredicate`] dropped during the scan.
    Filtered,
}

/// Filters applied *during* the byte scan (predicate pushdown), instead
/// of after rows have been materialized.
///
/// Predicates apply to **event** lines only; job start/end fragments are
/// always imported (they must pair across the whole log). For non-`app`
/// facilities the window check runs right after the timestamp is parsed —
/// before the message body is even classified; the type check runs after
/// classification but before any field is materialized.
///
/// # Example
/// ```
/// use hpclog_core::etl::fastpath::ScanPredicate;
/// let pred = ScanPredicate::default().with_window(0, 1000).with_types(["MCE"]);
/// assert!(pred.keeps(500, "MCE"));
/// assert!(!pred.keeps(1000, "MCE"));   // window is half-open
/// assert!(!pred.keeps(500, "GPU_DBE"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScanPredicate {
    /// Half-open event-time window `[from_ms, to_ms)`; `None` keeps all.
    pub window_ms: Option<(i64, i64)>,
    /// Event-type allowlist; `None` keeps all types.
    pub types: Option<HashSet<String>>,
}

impl ScanPredicate {
    /// Restricts the import to events with `from_ms <= ts < to_ms`.
    pub fn with_window(mut self, from_ms: i64, to_ms: i64) -> ScanPredicate {
        self.window_ms = Some((from_ms, to_ms));
        self
    }

    /// Restricts the import to the named event types.
    pub fn with_types<I, S>(mut self, types: I) -> ScanPredicate
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.types = Some(types.into_iter().map(Into::into).collect());
        self
    }

    /// True when no filter is configured.
    pub fn is_empty(&self) -> bool {
        self.window_ms.is_none() && self.types.is_none()
    }

    /// Would an event at `ts_ms` of `event_type` survive?
    pub fn keeps(&self, ts_ms: i64, event_type: &str) -> bool {
        self.window_in(ts_ms) && self.type_in(event_type)
    }

    fn window_in(&self, ts_ms: i64) -> bool {
        match self.window_ms {
            Some((from, to)) => ts_ms >= from && ts_ms < to,
            None => true,
        }
    }

    fn type_in(&self, event_type: &str) -> bool {
        match &self.types {
            Some(set) => set.contains(event_type),
            None => true,
        }
    }
}

/// Per-chunk scan counters, flushed to telemetry once per chunk.
///
/// # Example
/// ```
/// use hpclog_core::etl::fastpath::ScanStats;
/// let mut stats = ScanStats::default();
/// stats.lines += 10;
/// stats.flush_telemetry(); // increments the etl.fastpath.* counters
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Lines scanned.
    pub lines: u64,
    /// Lines routed through the regex oracle (non-ASCII bytes, including
    /// invalid UTF-8 rejections).
    pub fallbacks: u64,
    /// Event lines dropped by the [`ScanPredicate`] during the scan.
    pub pushdown_skips: u64,
}

impl ScanStats {
    /// Adds the counts into the global `etl.fastpath.*` counters.
    pub fn flush_telemetry(&self) {
        let g = telemetry::global();
        g.counter("etl.fastpath.lines").incr(self.lines);
        g.counter("etl.fastpath.fallbacks").incr(self.fallbacks);
        g.counter("etl.fastpath.pushdown_skips")
            .incr(self.pushdown_skips);
    }
}

// ---------------------------------------------------------------------------
// Chunk splitting and line iteration
// ---------------------------------------------------------------------------

/// Splits a corpus into parse chunks of roughly `target_bytes` each, every
/// chunk boundary placed immediately **after** a newline, so no line ever
/// crosses a chunk (the chunk-split invariant).
///
/// A chunk whose tentative cut lands mid-line is shortened to the last
/// newline it contains; a single line longer than `target_bytes` extends
/// its chunk to the line's own newline (or end of input). An empty corpus
/// yields no chunks; chunk ranges are contiguous, non-empty, and cover
/// the corpus exactly.
///
/// # Example
/// ```
/// use hpclog_core::etl::fastpath::split_chunks;
/// let corpus = b"aa\nbbbb\ncc\n";
/// let chunks = split_chunks(corpus, 4);
/// // Every chunk ends right after a newline.
/// assert_eq!(chunks, vec![(0, 3), (3, 8), (8, 11)]);
/// assert!(split_chunks(b"", 4).is_empty());
/// ```
pub fn split_chunks(corpus: &[u8], target_bytes: usize) -> Vec<(usize, usize)> {
    let target = target_bytes.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < corpus.len() {
        let tentative = start.saturating_add(target).min(corpus.len());
        let end = if tentative == corpus.len() {
            corpus.len()
        } else {
            match rmemchr(b'\n', &corpus[start..tentative]) {
                // Cut just after the last newline the tentative chunk holds.
                Some(i) => start + i + 1,
                // A single line larger than the chunk: extend to its end.
                None => match memchr(b'\n', &corpus[tentative..]) {
                    Some(i) => tentative + i + 1,
                    None => corpus.len(),
                },
            }
        };
        chunks.push((start, end));
        start = end;
    }
    chunks
}

/// Iterates the lines of a chunk: `\n` is a **terminator** (a trailing
/// newline does not produce a final empty line), and one trailing `\r`
/// per line is stripped (CRLF input parses like LF input). Interior empty
/// lines are yielded (and rejected by the parsers, like any other
/// unparseable line).
///
/// # Example
/// ```
/// use hpclog_core::etl::fastpath::Lines;
/// let got: Vec<&[u8]> = Lines::new(b"a\r\n\nbb").collect();
/// assert_eq!(got, vec![b"a" as &[u8], b"", b"bb"]);
/// ```
#[derive(Debug, Clone)]
pub struct Lines<'a> {
    rest: &'a [u8],
}

impl<'a> Lines<'a> {
    /// Starts iterating `chunk`.
    pub fn new(chunk: &'a [u8]) -> Lines<'a> {
        Lines { rest: chunk }
    }
}

impl<'a> Iterator for Lines<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        let mut line = match memchr(b'\n', self.rest) {
            Some(i) => {
                let line = &self.rest[..i];
                self.rest = &self.rest[i + 1..];
                line
            }
            None => {
                let line = self.rest;
                self.rest = &[];
                line
            }
        };
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        Some(line)
    }
}

// ---------------------------------------------------------------------------
// Byte-level scanning primitives
// ---------------------------------------------------------------------------

/// First position of `b` in `s` (forward memchr).
#[inline]
fn memchr(b: u8, s: &[u8]) -> Option<usize> {
    s.iter().position(|&x| x == b)
}

/// Last position of `b` in `s` (reverse memchr).
#[inline]
fn rmemchr(b: u8, s: &[u8]) -> Option<usize> {
    s.iter().rposition(|&x| x == b)
}

/// First occurrence of `needle` in `haystack` (first-byte-gated scan).
#[inline]
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    let first = *needle.first()?;
    if needle.len() > haystack.len() {
        return None;
    }
    let mut at = 0;
    while let Some(i) = memchr(first, &haystack[at..haystack.len() - needle.len() + 1]) {
        let pos = at + i;
        if haystack[pos..pos + needle.len()] == *needle {
            return Some(pos);
        }
        at = pos + 1;
    }
    None
}

/// `rex`'s `\s` class, byte-level: `[ \t\n\r\x0B\x0C]`.
#[inline]
fn is_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0B | 0x0C)
}

/// `rex`'s `\w` class, byte-level: `[A-Za-z0-9_]`.
#[inline]
fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The `app=` name class from the job-start pattern: `[A-Za-z0-9+._\-]`.
#[inline]
fn is_app_name(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'+' | b'.' | b'_' | b'-')
}

/// End of the ASCII-digit run starting at `i` (exclusive).
#[inline]
fn digits_end(s: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < s.len() && s[j].is_ascii_digit() {
        j += 1;
    }
    j
}

/// Exact byte-level mirror of `str::parse::<i64>()`: optional `+`/`-`
/// sign, one or more ASCII digits, nothing else; overflow fails.
/// Accumulates on the negative side so `i64::MIN` parses.
fn parse_i64(s: &[u8]) -> Option<i64> {
    let (neg, digits) = match s.first()? {
        b'+' => (false, &s[1..]),
        b'-' => (true, &s[1..]),
        _ => (false, s),
    };
    if digits.is_empty() {
        return None;
    }
    let mut v: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_sub(i64::from(b - b'0'))?;
    }
    if neg {
        Some(v)
    } else {
        v.checked_neg()
    }
}

/// Byte-level mirror of `str::parse::<i32>()` (same shape as
/// [`parse_i64`], 32-bit range).
fn parse_i32(s: &[u8]) -> Option<i32> {
    let v = parse_i64(s)?;
    i32::try_from(v).ok()
}

/// Byte-level mirror of `str::parse::<u32>()` for all-digit input (the
/// only shape a `(\d+)` capture can take).
fn parse_u32_digits(s: &[u8]) -> Option<u32> {
    if s.is_empty() {
        return None;
    }
    let mut v: u32 = 0;
    for &b in s {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u32::from(b - b'0'))?;
    }
    Some(v)
}

// ---------------------------------------------------------------------------
// The fast parser
// ---------------------------------------------------------------------------

/// The borrowed envelope `<ts_ms> <facility> <source> <text>` — every
/// field a slice into the input line; nothing materialized.
struct Envelope<'a> {
    ts_ms: i64,
    facility: &'a [u8],
    source: &'a [u8],
    text: &'a [u8],
}

/// Splits the envelope exactly like `str::splitn(4, ' ')` + `parse::<i64>`.
fn envelope(line: &[u8]) -> Option<Envelope<'_>> {
    let s0 = memchr(b' ', line)?;
    let ts_ms = parse_i64(&line[..s0])?;
    let rest = &line[s0 + 1..];
    let s1 = memchr(b' ', rest)?;
    let facility = &rest[..s1];
    let rest = &rest[s1 + 1..];
    let s2 = memchr(b' ', rest)?;
    Some(Envelope {
        ts_ms,
        facility,
        source: &rest[..s2],
        text: &rest[s2 + 1..],
    })
}

/// Outcome of a structural job-line match: distinguishes "pattern did not
/// match" (fall through to classification) from "pattern matched but a
/// number overflowed" (the regex path rejects the whole line).
enum JobMatch {
    No,
    BadNumber,
    Ok(ParsedLine),
}

/// Byte-scanner equivalent of [`EventParser`], with the regex engine kept
/// as fallback oracle for non-ASCII lines.
///
/// For pure-ASCII input every decision — pattern order, greedy-run
/// semantics, numeric overflow rejection — mirrors the compiled pattern
/// set bit for bit; `tests/etl_equivalence.rs` proves it differentially
/// against the oracle on the loggen corpus and on adversarial inputs.
///
/// # Example
/// ```
/// use hpclog_core::etl::fastpath::FastParser;
/// use hpclog_core::etl::parsers::{EventParser, ParsedLine};
/// let fast = FastParser::new();
/// let line = "1500000000000 app alps apid 7 start user=u0 app=VASP nodes=0-63 width=64";
/// // Byte path and regex path agree exactly.
/// assert_eq!(fast.parse_line(line.as_bytes()), EventParser::new().parse(line));
/// match fast.parse_line(line.as_bytes()) {
///     Some(ParsedLine::JobStart { apid, .. }) => assert_eq!(apid, 7),
///     other => panic!("{other:?}"),
/// }
/// ```
pub struct FastParser {
    oracle: EventParser,
}

impl Default for FastParser {
    fn default() -> Self {
        FastParser::new()
    }
}

impl FastParser {
    /// Builds the parser (compiles the fallback oracle's pattern set).
    pub fn new() -> FastParser {
        FastParser {
            oracle: EventParser::new(),
        }
    }

    /// Parses one full raw line, byte-identically to
    /// [`EventParser::parse`]. Non-ASCII lines go through the regex
    /// oracle; invalid UTF-8 is rejected (`None`), mirroring the regex
    /// path's `&str` precondition.
    ///
    /// # Example
    /// ```
    /// use hpclog_core::etl::fastpath::FastParser;
    /// let p = FastParser::new();
    /// assert!(p.parse_line(b"garbage").is_none());
    /// assert!(p.parse_line(b"1500 console n0 DVS: file_node_down").is_some());
    /// ```
    pub fn parse_line(&self, line: &[u8]) -> Option<ParsedLine> {
        if !line.is_ascii() {
            let s = std::str::from_utf8(line).ok()?;
            return self.oracle.parse(s);
        }
        self.parse_ascii(line)
    }

    /// Scans one line with predicate pushdown, updating `stats`. This is
    /// the batch fast path's per-line entry point: filtered lines cost at
    /// most a timestamp parse plus classification — no materialization.
    ///
    /// Disposition is identical to [`reference_scan_line`] on the same
    /// input (the differential suite proves it).
    pub fn scan_line(
        &self,
        line: &[u8],
        pred: &ScanPredicate,
        stats: &mut ScanStats,
    ) -> LineOutcome {
        stats.lines += 1;
        if !line.is_ascii() {
            stats.fallbacks += 1;
            let outcome = match std::str::from_utf8(line) {
                Ok(s) => reference_scan_line(&self.oracle, s, pred),
                Err(_) => LineOutcome::Skipped,
            };
            if outcome == LineOutcome::Filtered {
                stats.pushdown_skips += 1;
            }
            return outcome;
        }
        let Some(env) = envelope(line) else {
            return LineOutcome::Skipped;
        };
        if env.facility != b"app" {
            // Window pushdown: nothing past the timestamp is touched.
            if !pred.window_in(env.ts_ms) && pred.window_ms.is_some() {
                stats.pushdown_skips += 1;
                return LineOutcome::Filtered;
            }
            return match classify_ascii(env.text) {
                Some(event_type) => {
                    if !pred.type_in(event_type) {
                        stats.pushdown_skips += 1;
                        LineOutcome::Filtered
                    } else {
                        LineOutcome::Event(materialize(&env, event_type))
                    }
                }
                None => LineOutcome::Skipped,
            };
        }
        // app facility: job fragments first (always kept), then events
        // (predicate applies after classification — app-facility event
        // lines exist, e.g. scheduler-class occurrences).
        match job_start(env.text, env.ts_ms) {
            JobMatch::Ok(job) => return LineOutcome::Job(job),
            JobMatch::BadNumber => return LineOutcome::Skipped,
            JobMatch::No => {}
        }
        match job_end(env.text, env.ts_ms) {
            JobMatch::Ok(job) => return LineOutcome::Job(job),
            JobMatch::BadNumber => return LineOutcome::Skipped,
            JobMatch::No => {}
        }
        match classify_ascii(env.text) {
            Some(event_type) => {
                if !pred.keeps(env.ts_ms, event_type) {
                    stats.pushdown_skips += 1;
                    LineOutcome::Filtered
                } else {
                    LineOutcome::Event(materialize(&env, event_type))
                }
            }
            None => LineOutcome::Skipped,
        }
    }

    /// The pure-ASCII scan (no predicate): mirror of
    /// [`EventParser::parse`].
    fn parse_ascii(&self, line: &[u8]) -> Option<ParsedLine> {
        let env = envelope(line)?;
        if env.facility == b"app" {
            match job_start(env.text, env.ts_ms) {
                JobMatch::Ok(job) => return Some(job),
                JobMatch::BadNumber => return None,
                JobMatch::No => {}
            }
            match job_end(env.text, env.ts_ms) {
                JobMatch::Ok(job) => return Some(job),
                JobMatch::BadNumber => return None,
                JobMatch::No => {}
            }
        }
        let event_type = classify_ascii(env.text)?;
        Some(ParsedLine::Event(materialize(&env, event_type)))
    }
}

/// Materializes an event record — the only place the fast path allocates
/// for an event line, and only for the fields the table writer consumes.
fn materialize(env: &Envelope<'_>, event_type: &'static str) -> EventRecord {
    EventRecord {
        ts_ms: env.ts_ms,
        event_type: event_type.to_owned(),
        // ASCII (or oracle-validated UTF-8) by construction.
        source: String::from_utf8_lossy(env.source).into_owned(),
        amount: 1,
        raw: String::from_utf8_lossy(env.text).into_owned(),
    }
}

/// Byte-level mirror of [`EventParser::classify`] for ASCII text: the
/// same patterns checked in the same order, with the same quirks (an
/// `NVRM: Xid` line whose error code overflows `u32` rejects the line
/// outright, exactly like the regex path's `parse::<u32>().ok()?`).
fn classify_ascii(text: &[u8]) -> Option<&'static str> {
    // ^Machine Check Exception: bank (\d+)
    const MCE: &[u8] = b"Machine Check Exception: bank ";
    if text.len() > MCE.len() && text.starts_with(MCE) && text[MCE.len()].is_ascii_digit() {
        return Some("MCE");
    }
    // ^EDAC MC\d+: (CE|UE) "
    const EDAC: &[u8] = b"EDAC MC";
    if text.starts_with(EDAC) {
        let d = digits_end(text, EDAC.len());
        if d > EDAC.len() && text[d..].starts_with(b": ") {
            let rest = &text[d + 2..];
            if rest.starts_with(b"CE ") {
                return Some("MEM_ECC");
            }
            if rest.starts_with(b"UE ") {
                return Some("MEM_UE");
            }
        }
    }
    // ^NVRM: Xid \([0-9a-f:]+\): (\d+),
    const XID: &[u8] = b"NVRM: Xid (";
    if text.starts_with(XID) {
        let mut i = XID.len();
        let bus_start = i;
        while i < text.len() && matches!(text[i], b'0'..=b'9' | b'a'..=b'f' | b':') {
            i += 1;
        }
        if i > bus_start && text[i..].starts_with(b"): ") {
            let code_start = i + 3;
            let code_end = digits_end(text, code_start);
            if code_end > code_start && text.get(code_end) == Some(&b',') {
                // The regex path rejects the whole line on u32 overflow.
                return match parse_u32_digits(&text[code_start..code_end])? {
                    48 => Some("GPU_DBE"),
                    79 => Some("GPU_OFF_BUS"),
                    62 => Some("GPU_SXM_PWR"),
                    _ => Some("GPU_DBE"), // unknown Xids still count as GPU errors
                };
            }
        }
    }
    // ^Lustre(Error)?: " with the evict/restore sub-pattern anywhere.
    if text.starts_with(b"Lustre: ") || text.starts_with(b"LustreError: ") {
        return Some(
            if find(text, b"evicted").is_some() || find(text, b"Connection restored").is_some() {
                "LUSTRE_EVICT"
            } else {
                "LUSTRE_ERR"
            },
        );
    }
    // ^DVS: "
    if text.starts_with(b"DVS: ") {
        return Some("DVS_ERR");
    }
    // Gemini LCB lcb=\S+ failed   (unanchored)
    const LCB: &[u8] = b"Gemini LCB lcb=";
    let mut at = 0;
    while let Some(i) = find(&text[at..], LCB) {
        let run_start = at + i + LCB.len();
        let mut j = run_start;
        while j < text.len() && !is_space(text[j]) {
            j += 1;
        }
        if j > run_start && text[j..].starts_with(b" failed") {
            return Some("NET_LINK");
        }
        at = at + i + 1;
    }
    // congestion protection engaged   (unanchored)
    if find(text, b"congestion protection engaged").is_some() {
        return Some("NET_THROTTLE");
    }
    // ^Kernel panic
    if text.starts_with(b"Kernel panic") {
        return Some("KERNEL_PANIC");
    }
    None
}

/// `^apid (\d+) start user=(\w+) app=([A-Za-z0-9+._\-]+) nodes=(\d+)-(\d+)`
fn job_start(text: &[u8], ts_ms: i64) -> JobMatch {
    let Some(rest) = text.strip_prefix(b"apid ") else {
        return JobMatch::No;
    };
    let apid_end = digits_end(rest, 0);
    if apid_end == 0 || !rest[apid_end..].starts_with(b" start user=") {
        return JobMatch::No;
    }
    let user_start = apid_end + b" start user=".len();
    let mut user_end = user_start;
    while user_end < rest.len() && is_word(rest[user_end]) {
        user_end += 1;
    }
    if user_end == user_start || !rest[user_end..].starts_with(b" app=") {
        return JobMatch::No;
    }
    let app_start = user_end + b" app=".len();
    let mut app_end = app_start;
    while app_end < rest.len() && is_app_name(rest[app_end]) {
        app_end += 1;
    }
    if app_end == app_start || !rest[app_end..].starts_with(b" nodes=") {
        return JobMatch::No;
    }
    let first_start = app_end + b" nodes=".len();
    let first_end = digits_end(rest, first_start);
    if first_end == first_start || rest.get(first_end) != Some(&b'-') {
        return JobMatch::No;
    }
    let last_start = first_end + 1;
    let last_end = digits_end(rest, last_start);
    if last_end == last_start {
        return JobMatch::No;
    }
    // Structure matched: numeric overflow now rejects the whole line,
    // exactly like the regex path's `parse().ok()?`.
    let (Some(apid), Some(node_first), Some(node_last)) = (
        parse_i64(&rest[..apid_end]),
        parse_i64(&rest[first_start..first_end]),
        parse_i64(&rest[last_start..last_end]),
    ) else {
        return JobMatch::BadNumber;
    };
    JobMatch::Ok(ParsedLine::JobStart {
        apid,
        ts_ms,
        user: String::from_utf8_lossy(&rest[user_start..user_end]).into_owned(),
        app: String::from_utf8_lossy(&rest[app_start..app_end]).into_owned(),
        node_first,
        node_last,
    })
}

/// `^apid (\d+) end exit=(-?\d+)`
fn job_end(text: &[u8], ts_ms: i64) -> JobMatch {
    let Some(rest) = text.strip_prefix(b"apid ") else {
        return JobMatch::No;
    };
    let apid_end = digits_end(rest, 0);
    if apid_end == 0 || !rest[apid_end..].starts_with(b" end exit=") {
        return JobMatch::No;
    }
    let exit_start = apid_end + b" end exit=".len();
    let digit_start = if rest.get(exit_start) == Some(&b'-') {
        exit_start + 1
    } else {
        exit_start
    };
    let exit_end = digits_end(rest, digit_start);
    if exit_end == digit_start {
        return JobMatch::No;
    }
    let (Some(apid), Some(exit_code)) = (
        parse_i64(&rest[..apid_end]),
        parse_i32(&rest[exit_start..exit_end]),
    ) else {
        return JobMatch::BadNumber;
    };
    JobMatch::Ok(ParsedLine::JobEnd {
        apid,
        ts_ms,
        exit_code,
    })
}

/// The **reference disposition**: what the regex backend does with one
/// line under the same predicate semantics as the fast path. This is the
/// contract both backends of [`crate::etl::batch::import_bytes`] follow;
/// the differential suite asserts the fast path never diverges from it.
///
/// Order of decisions (shared with the fast path):
/// 1. envelope unparseable → [`LineOutcome::Skipped`];
/// 2. non-`app` facility with the timestamp outside the window →
///    [`LineOutcome::Filtered`] *without parsing the body* (this is the
///    pushdown contract: disposition may not depend on whether the body
///    would have matched);
/// 3. full parse: job fragments always kept; events checked against the
///    predicate; everything else skipped.
///
/// # Example
/// ```
/// use hpclog_core::etl::fastpath::{reference_scan_line, LineOutcome, ScanPredicate};
/// use hpclog_core::etl::parsers::EventParser;
/// let parser = EventParser::new();
/// let pred = ScanPredicate::default().with_window(0, 1000);
/// let line = "5000 console n0 whatever chatter";
/// // Out-of-window console line: filtered before the body is looked at.
/// assert_eq!(reference_scan_line(&parser, line, &pred), LineOutcome::Filtered);
/// ```
pub fn reference_scan_line(parser: &EventParser, line: &str, pred: &ScanPredicate) -> LineOutcome {
    let Some((ts_ms, facility, _, _)) = parser.parse_envelope(line) else {
        return LineOutcome::Skipped;
    };
    if facility != "app" && pred.window_ms.is_some() && !pred.window_in(ts_ms) {
        return LineOutcome::Filtered;
    }
    match parser.parse(line) {
        Some(ParsedLine::Event(ev)) => {
            if pred.keeps(ev.ts_ms, &ev.event_type) {
                LineOutcome::Event(ev)
            } else {
                LineOutcome::Filtered
            }
        }
        Some(job) => LineOutcome::Job(job),
        None => LineOutcome::Skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- chunk splitter --------------------------------------------------

    /// Chunks must be contiguous, cover the corpus, and end on newlines.
    fn assert_invariants(corpus: &[u8], chunks: &[(usize, usize)]) {
        let mut pos = 0;
        for &(s, e) in chunks {
            assert_eq!(s, pos, "chunks are contiguous");
            assert!(e > s, "chunks are non-empty");
            if e < corpus.len() {
                assert_eq!(corpus[e - 1], b'\n', "chunk ends after a newline");
            }
            pos = e;
        }
        assert_eq!(pos, corpus.len(), "chunks cover the corpus");
    }

    #[test]
    fn empty_corpus_yields_no_chunks() {
        assert!(split_chunks(b"", 16).is_empty());
    }

    #[test]
    fn chunk_ending_exactly_on_newline_keeps_the_boundary() {
        // target 3 lands exactly on the first newline's successor.
        let corpus = b"ab\ncd\n";
        let chunks = split_chunks(corpus, 3);
        assert_eq!(chunks, vec![(0, 3), (3, 6)]);
        assert_invariants(corpus, &chunks);
    }

    #[test]
    fn single_line_larger_than_a_chunk_extends_to_its_newline() {
        let corpus = b"0123456789012345\nx\n";
        let chunks = split_chunks(corpus, 4);
        assert_eq!(chunks[0], (0, 17), "oversized line stays whole");
        assert_invariants(corpus, &chunks);
    }

    #[test]
    fn oversized_final_line_without_newline_is_one_chunk_tail() {
        let corpus = b"a\n0123456789";
        let chunks = split_chunks(corpus, 3);
        assert_invariants(corpus, &chunks);
        assert_eq!(*chunks.last().unwrap(), (2, corpus.len()));
    }

    #[test]
    fn chunked_lines_equal_unchunked_lines_for_any_target() {
        let corpus: Vec<u8> = b"one\ntwo two\n\nthree\r\nfour has spaces\nlast-no-newline".to_vec();
        let whole: Vec<&[u8]> = Lines::new(&corpus).collect();
        for target in 1..corpus.len() + 2 {
            let chunks = split_chunks(&corpus, target);
            assert_invariants(&corpus, &chunks);
            let rejoined: Vec<&[u8]> = chunks
                .iter()
                .flat_map(|&(s, e)| Lines::new(&corpus[s..e]))
                .collect();
            assert_eq!(rejoined, whole, "target {target}");
        }
    }

    // -- line iterator ---------------------------------------------------

    #[test]
    fn trailing_newline_is_a_terminator_not_an_empty_line() {
        let got: Vec<&[u8]> = Lines::new(b"a\nb\n").collect();
        assert_eq!(got, vec![b"a" as &[u8], b"b"]);
    }

    #[test]
    fn crlf_strips_one_cr_and_keeps_interior_crs() {
        let got: Vec<&[u8]> = Lines::new(b"a\r\r\nb\rc\n").collect();
        assert_eq!(got, vec![b"a\r" as &[u8], b"b\rc"]);
    }

    // -- numeric parsing mirrors str::parse ------------------------------

    #[test]
    fn parse_i64_matches_str_parse() {
        let cases: &[&str] = &[
            "0",
            "+7",
            "-7",
            "9223372036854775807",
            "-9223372036854775808",
            "9223372036854775808",  // overflow
            "-9223372036854775809", // underflow
            "",
            "+",
            "-",
            "12x",
            " 12",
            "1_2",
        ];
        for c in cases {
            assert_eq!(parse_i64(c.as_bytes()), c.parse::<i64>().ok(), "case {c:?}");
        }
    }

    #[test]
    fn parse_u32_digits_matches_str_parse_on_digit_runs() {
        for c in ["0", "48", "4294967295", "4294967296", "99999999999"] {
            assert_eq!(
                parse_u32_digits(c.as_bytes()),
                c.parse::<u32>().ok(),
                "case {c:?}"
            );
        }
    }

    // -- parser equivalence spot checks ----------------------------------

    fn both(line: &str) -> (Option<ParsedLine>, Option<ParsedLine>) {
        let fast = FastParser::new();
        let oracle = EventParser::new();
        (fast.parse_line(line.as_bytes()), oracle.parse(line))
    }

    #[test]
    fn tricky_lines_agree_with_the_oracle() {
        let lines = [
            // plain hits, one per type
            "1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 4: b2 addr 3f cpu 1",
            "1 console n0 EDAC MC0: CE page 0x3aa2f, offset 0x630",
            "1 console n0 EDAC MC2: UE page 0x1f00a, offset 0x0",
            "1 console n0 NVRM: Xid (0000:02:00): 48, Double Bit ECC Error",
            "1 console n0 NVRM: Xid (0000:03:00): 79, GPU has fallen off the bus.",
            "1 console n0 NVRM: Xid (0000:02:00): 62, power excursion",
            "1 console n0 NVRM: Xid (0000:02:00): 13, Graphics Exception",
            "1 console n0 LustreError: 11-0: atlas1-OST0041-osc: op failed with -110",
            "1 console n0 Lustre: Connection restored to atlas1-OST0041",
            "1 console n0 LustreError: 167-0: client was evicted by atlas1-MDT0000",
            "1 console n0 DVS: file_node_down: removing c0-1c0s2n1",
            "1 netwatch n0 HSN error: Gemini LCB lcb=g21l07 failed; recovering",
            "1 netwatch n0 Gemini HSN congestion protection engaged: throttle=on",
            "1 console n0 Kernel panic - not syncing: Fatal exception",
            "1500000000000 app alps apid 1000001 start user=usr0042 app=DCA++ nodes=128-255 width=128",
            "1500000360000 app alps apid 1000001 end exit=-9 runtime_s=360",
            // structural near-misses that must fall through or reject
            "1 console n0 Machine Check Exception: bank x",
            "1 console n0 EDAC MC: CE page",
            "1 console n0 EDAC MC7: XE page",
            "1 console n0 NVRM: Xid (): 48,",
            "1 console n0 NVRM: Xid (0000:02:00): 48 no comma",
            "1 console n0 NVRM: Xid (0000:02:00): 99999999999,", // u32 overflow -> line rejected
            "1 console n0 Lustre:no space",
            "1 console n0 DVS:no space",
            "1 netwatch n0 Gemini LCB lcb= failed",      // empty \S+ run
            "1 netwatch n0 Gemini LCB lcb=xfailed",      // no space before failed
            "1 netwatch n0 Gemini LCB lcb=a b Gemini LCB lcb=c failed", // second occurrence wins
            "1 netwatch n0 Gemini LCB lcb=a\tfailed",    // tab is not the literal space
            "1 console n0 a Kernel panic mentioned mid-line",
            "1 console n0 Kernel panic plus congestion protection engaged", // order: net_throttle first
            // app facility quirks
            "1 app alps apid 99999999999999999999 start user=u app=A nodes=0-1", // i64 overflow -> rejected
            "1 app alps apid 12 start user=u app=A nodes=0-99999999999999999999", // node overflow
            "1 app alps apid 12 end exit=99999999999", // i32 overflow -> rejected
            "1 app alps apid 12 end exit=--3",
            "1 app alps apid 12 start user= app=A nodes=0-1", // empty user
            "1 app alps apid 12 start user=u- app=A nodes=0-1", // '-' not in \w, then " app=" missing
            "1 app alps Machine Check Exception: bank 2: on the app stream",
            // envelope quirks
            "",
            "   ",
            "12 console",
            "12 console n0",
            "12 console n0 ",
            "+12 console n0 DVS: x",
            "-12 console n0 DVS: x",
            "12  console n0 DVS: x", // empty facility field
            "notanumber console n0 DVS: x",
            "9223372036854775808 console n0 DVS: x", // ts overflow
        ];
        for line in lines {
            let (f, o) = both(line);
            assert_eq!(f, o, "line {line:?}");
        }
    }

    #[test]
    fn non_ascii_lines_fall_back_and_agree() {
        let lines = [
            "1 console n0 Lustre: évicted client", // non-ASCII in text
            "1 console nö0 DVS: x",                // non-ASCII in source
            "1 cönsole n0 DVS: x",                 // non-ASCII in facility
        ];
        let fast = FastParser::new();
        let oracle = EventParser::new();
        for line in lines {
            assert_eq!(
                fast.parse_line(line.as_bytes()),
                oracle.parse(line),
                "line {line:?}"
            );
        }
        // Invalid UTF-8 rejects (the regex path cannot even receive it).
        let mut stats = ScanStats::default();
        let bad = b"1 console n0 DVS: \xff\xfe";
        assert_eq!(fast.parse_line(bad), None);
        assert_eq!(
            fast.scan_line(bad, &ScanPredicate::default(), &mut stats),
            LineOutcome::Skipped
        );
        assert_eq!(stats.fallbacks, 1);
    }

    #[test]
    fn embedded_nul_is_handled_like_any_ascii_byte() {
        // NUL is ASCII and non-space: it extends the \S+ run.
        let (f, o) = both("1 netwatch n0 Gemini LCB lcb=a\0b failed");
        assert_eq!(f, o);
        assert!(f.is_some());
        let (f, o) = both("1 console n0 DVS: x\0y");
        assert_eq!(f, o);
    }

    // -- pushdown --------------------------------------------------------

    #[test]
    fn window_pushdown_filters_without_classification() {
        let fast = FastParser::new();
        let pred = ScanPredicate::default().with_window(1000, 2000);
        let mut stats = ScanStats::default();
        // In-window event passes; out-of-window chatter AND out-of-window
        // events are both filtered (disposition is body-independent).
        assert!(matches!(
            fast.scan_line(b"1500 console n0 DVS: x", &pred, &mut stats),
            LineOutcome::Event(_)
        ));
        assert_eq!(
            fast.scan_line(b"2000 console n0 DVS: x", &pred, &mut stats),
            LineOutcome::Filtered,
            "window is half-open"
        );
        assert_eq!(
            fast.scan_line(b"500 console n0 chatter here", &pred, &mut stats),
            LineOutcome::Filtered
        );
        assert_eq!(stats.pushdown_skips, 2);
        // Job fragments are never filtered.
        assert!(matches!(
            fast.scan_line(b"5000 app alps apid 1 end exit=0", &pred, &mut stats),
            LineOutcome::Job(_)
        ));
    }

    #[test]
    fn type_pushdown_filters_after_classification() {
        let fast = FastParser::new();
        let pred = ScanPredicate::default().with_types(["MCE"]);
        let mut stats = ScanStats::default();
        assert!(matches!(
            fast.scan_line(
                b"1 console n0 Machine Check Exception: bank 2",
                &pred,
                &mut stats
            ),
            LineOutcome::Event(_)
        ));
        assert_eq!(
            fast.scan_line(b"1 console n0 DVS: x", &pred, &mut stats),
            LineOutcome::Filtered
        );
        assert_eq!(
            fast.scan_line(b"1 console n0 chatter", &pred, &mut stats),
            LineOutcome::Skipped,
            "unparseable stays skipped, not filtered"
        );
        assert_eq!(stats.pushdown_skips, 1);
    }

    #[test]
    fn scan_matches_reference_disposition_under_predicates() {
        let fast = FastParser::new();
        let oracle = EventParser::new();
        let preds = [
            ScanPredicate::default(),
            ScanPredicate::default().with_window(1000, 3000),
            ScanPredicate::default().with_types(["MCE", "DVS_ERR"]),
            ScanPredicate::default()
                .with_window(0, 2000)
                .with_types(["LUSTRE_ERR"]),
        ];
        let lines = [
            "500 console n0 Machine Check Exception: bank 1",
            "1500 console n0 Machine Check Exception: bank 1",
            "1500 console n0 LustreError: 11-0: broken",
            "2500 console n0 DVS: x",
            "1500 console n0 chatter",
            "500 app alps apid 3 start user=u app=A nodes=0-1",
            "9000 app alps apid 3 end exit=0",
            "1500 app alps Machine Check Exception: bank 1: app-stream event",
            "bogus line",
        ];
        for pred in &preds {
            for line in lines {
                let mut stats = ScanStats::default();
                assert_eq!(
                    fast.scan_line(line.as_bytes(), pred, &mut stats),
                    reference_scan_line(&oracle, line, pred),
                    "line {line:?} pred {pred:?}"
                );
            }
        }
    }

    #[test]
    fn generated_corpus_parses_identically_without_fallbacks() {
        let topo = loggen::topology::Topology::scaled(2, 2);
        let scenario = loggen::trace::Scenario::generate(
            &topo,
            &loggen::trace::ScenarioConfig {
                rate_scale: 15.0,
                ..loggen::trace::ScenarioConfig::quiet_day(3)
            },
            23,
        );
        let fast = FastParser::new();
        let oracle = EventParser::new();
        let mut stats = ScanStats::default();
        let pred = ScanPredicate::default();
        for line in &scenario.lines {
            let rendered = line.render();
            assert_eq!(
                fast.parse_line(rendered.as_bytes()),
                oracle.parse(&rendered),
                "line {rendered:?}"
            );
            fast.scan_line(rendered.as_bytes(), &pred, &mut stats);
        }
        assert_eq!(stats.lines, scenario.lines.len() as u64);
        assert_eq!(stats.fallbacks, 0, "loggen corpus is pure ASCII");
        assert_eq!(stats.pushdown_skips, 0);
    }
}
