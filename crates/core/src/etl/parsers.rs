//! Regex-based log parsing: raw lines → typed events and job records.
//!
//! The paper's batch import parses "the data in search for known patterns
//! for each event type (typically defined as regular expressions)". The
//! patterns below are matched with the in-repo `rex` engine.

use crate::model::event::EventRecord;
use rex::Regex;

/// A successfully parsed line.
///
/// # Example
/// ```
/// use hpclog_core::etl::parsers::{EventParser, ParsedLine};
/// let p = EventParser::new();
/// match p.parse("1500000360000 app alps apid 7 end exit=-9 runtime_s=360") {
///     Some(ParsedLine::JobEnd { apid, exit_code, .. }) => {
///         assert_eq!((apid, exit_code), (7, -9));
///     }
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedLine {
    /// A system event.
    Event(EventRecord),
    /// An application launch (from the app log).
    JobStart {
        /// ALPS application id.
        apid: i64,
        /// Launch time (ms).
        ts_ms: i64,
        /// Owning user.
        user: String,
        /// Application name.
        app: String,
        /// First allocated node.
        node_first: i64,
        /// Last allocated node.
        node_last: i64,
    },
    /// An application exit.
    JobEnd {
        /// ALPS application id.
        apid: i64,
        /// Exit time (ms).
        ts_ms: i64,
        /// Exit code.
        exit_code: i32,
    },
}

/// Compiled pattern set. Build once per thread/partition; matching is
/// allocation-light and linear in the line length.
///
/// This is the **reference oracle** for the ingest pipeline: the
/// zero-copy byte scanner ([`crate::etl::fastpath::FastParser`]) must
/// agree with it on every line, and falls back to it for non-ASCII
/// input.
///
/// # Example
/// ```
/// use hpclog_core::etl::parsers::{EventParser, ParsedLine};
/// let p = EventParser::new();
/// let line = "1500000000123 console c0-0c0s0n0 EDAC MC0: CE page 0x3aa2f";
/// match p.parse(line) {
///     Some(ParsedLine::Event(ev)) => assert_eq!(ev.event_type, "MEM_ECC"),
///     other => panic!("{other:?}"),
/// }
/// ```
pub struct EventParser {
    mce: Regex,
    edac: Regex,
    xid: Regex,
    lustre: Regex,
    lustre_evict: Regex,
    dvs: Regex,
    net_link: Regex,
    net_throttle: Regex,
    panic: Regex,
    job_start: Regex,
    job_end: Regex,
}

impl Default for EventParser {
    fn default() -> Self {
        EventParser::new()
    }
}

impl EventParser {
    /// Compiles the pattern set.
    pub fn new() -> EventParser {
        let re = |p: &str| Regex::new(p).expect("static pattern");
        EventParser {
            mce: re(r"^Machine Check Exception: bank (\d+)"),
            edac: re(r"^EDAC MC\d+: (CE|UE) "),
            xid: re(r"^NVRM: Xid \([0-9a-f:]+\): (\d+),"),
            lustre: re(r"^Lustre(Error)?: "),
            lustre_evict: re(r"(evicted|Connection restored)"),
            dvs: re(r"^DVS: "),
            net_link: re(r"Gemini LCB lcb=\S+ failed"),
            net_throttle: re(r"congestion protection engaged"),
            panic: re(r"^Kernel panic"),
            job_start: re(
                r"^apid (\d+) start user=(\w+) app=([A-Za-z0-9+._\-]+) nodes=(\d+)-(\d+)",
            ),
            job_end: re(r"^apid (\d+) end exit=(-?\d+)"),
        }
    }

    /// Splits the envelope `<ts_ms> <facility> <source> <text>`.
    ///
    /// # Example
    /// ```
    /// use hpclog_core::etl::parsers::EventParser;
    /// let p = EventParser::new();
    /// let (ts, fac, src, text) = p.parse_envelope("1500 console n0 DVS: down").unwrap();
    /// assert_eq!((ts, fac, src, text), (1500, "console", "n0", "DVS: down"));
    /// assert!(p.parse_envelope("not-a-timestamp console n0 x").is_none());
    /// ```
    pub fn parse_envelope<'l>(&self, line: &'l str) -> Option<(i64, &'l str, &'l str, &'l str)> {
        let mut parts = line.splitn(4, ' ');
        let ts: i64 = parts.next()?.parse().ok()?;
        let facility = parts.next()?;
        let source = parts.next()?;
        let text = parts.next()?;
        Some((ts, facility, source, text))
    }

    /// Classifies the message text into an event type name.
    ///
    /// # Example
    /// ```
    /// use hpclog_core::etl::parsers::EventParser;
    /// let p = EventParser::new();
    /// assert_eq!(p.classify("Kernel panic - not syncing"), Some("KERNEL_PANIC"));
    /// assert_eq!(p.classify("routine chatter"), None);
    /// ```
    pub fn classify(&self, text: &str) -> Option<&'static str> {
        if self.mce.is_match(text) {
            return Some("MCE");
        }
        if let Some(caps) = self.edac.captures(text) {
            return Some(match caps.get(1) {
                Some("CE") => "MEM_ECC",
                _ => "MEM_UE",
            });
        }
        if let Some(caps) = self.xid.captures(text) {
            return match caps.get(1)?.parse::<u32>().ok()? {
                48 => Some("GPU_DBE"),
                79 => Some("GPU_OFF_BUS"),
                62 => Some("GPU_SXM_PWR"),
                _ => Some("GPU_DBE"), // unknown Xids still count as GPU errors
            };
        }
        if self.lustre.is_match(text) {
            return Some(if self.lustre_evict.is_match(text) {
                "LUSTRE_EVICT"
            } else {
                "LUSTRE_ERR"
            });
        }
        if self.dvs.is_match(text) {
            return Some("DVS_ERR");
        }
        if self.net_link.is_match(text) {
            return Some("NET_LINK");
        }
        if self.net_throttle.is_match(text) {
            return Some("NET_THROTTLE");
        }
        if self.panic.is_match(text) {
            return Some("KERNEL_PANIC");
        }
        None
    }

    /// Parses one full raw line.
    ///
    /// # Example
    /// ```
    /// use hpclog_core::etl::parsers::EventParser;
    /// let p = EventParser::new();
    /// assert!(p.parse("1500 console n0 Machine Check Exception: bank 2").is_some());
    /// assert!(p.parse("1500 console n0 routine chatter").is_none());
    /// ```
    pub fn parse(&self, line: &str) -> Option<ParsedLine> {
        let (ts_ms, facility, source, text) = self.parse_envelope(line)?;
        if facility == "app" {
            if let Some(caps) = self.job_start.captures(text) {
                return Some(ParsedLine::JobStart {
                    apid: caps.get(1)?.parse().ok()?,
                    ts_ms,
                    user: caps.get(2)?.to_owned(),
                    app: caps.get(3)?.to_owned(),
                    node_first: caps.get(4)?.parse().ok()?,
                    node_last: caps.get(5)?.parse().ok()?,
                });
            }
            if let Some(caps) = self.job_end.captures(text) {
                return Some(ParsedLine::JobEnd {
                    apid: caps.get(1)?.parse().ok()?,
                    ts_ms,
                    exit_code: caps.get(2)?.parse().ok()?,
                });
            }
        }
        let event_type = self.classify(text)?;
        Some(ParsedLine::Event(EventRecord {
            ts_ms,
            event_type: event_type.to_owned(),
            source: source.to_owned(),
            amount: 1,
            raw: text.to_owned(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> EventParser {
        EventParser::new()
    }

    #[test]
    fn envelope_splits_and_keeps_text_spaces() {
        let p = parser();
        let (ts, fac, src, text) = p
            .parse_envelope("1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 4")
            .unwrap();
        assert_eq!(ts, 1_500_000_000_123);
        assert_eq!(fac, "console");
        assert_eq!(src, "c0-0c0s0n0");
        assert_eq!(text, "Machine Check Exception: bank 4");
        assert!(p.parse_envelope("notanumber console x y").is_none());
        assert!(p.parse_envelope("12 console").is_none());
    }

    #[test]
    fn classification_per_type() {
        let p = parser();
        let cases = [
            ("Machine Check Exception: bank 4: b200 addr 3f cpu 1", "MCE"),
            ("EDAC MC0: CE page 0x3aa2f, offset 0x630", "MEM_ECC"),
            ("EDAC MC2: UE page 0x1f00a, offset 0x0", "MEM_UE"),
            ("NVRM: Xid (0000:02:00): 48, Double Bit ECC Error at 0xdead", "GPU_DBE"),
            ("NVRM: Xid (0000:03:00): 79, GPU has fallen off the bus.", "GPU_OFF_BUS"),
            ("NVRM: Xid (0000:02:00): 62, GPU power excursion detected", "GPU_SXM_PWR"),
            (
                "LustreError: 11-0: atlas1-OST0041-osc-ffff00: Communicating with 10.36.1.1@o2ib, operation ost_read failed with -110",
                "LUSTRE_ERR",
            ),
            (
                "Lustre: atlas1-OST0041-osc-ffff00: Connection restored to atlas1-OST0041 (at 10.36.1.1@o2ib)",
                "LUSTRE_EVICT",
            ),
            (
                "LustreError: 167-0: atlas1-MDT0000-mdc-ffff00: This client was evicted by atlas1-MDT0000; in progress operations using this service will fail.",
                "LUSTRE_EVICT",
            ),
            ("DVS: file_node_down: removing c0-1c0s2n1 from list", "DVS_ERR"),
            ("HSN detected critical error: Gemini LCB lcb=g21l07 failed; initiating link recovery", "NET_LINK"),
            ("Gemini HSN congestion protection engaged: throttle=on watermark=0x7f", "NET_THROTTLE"),
            ("Kernel panic - not syncing: Fatal exception in interrupt", "KERNEL_PANIC"),
        ];
        for (text, want) in cases {
            assert_eq!(p.classify(text), Some(want), "{text}");
        }
        assert_eq!(p.classify("some harmless chatter"), None);
    }

    #[test]
    fn job_lines_parse_with_odd_app_names() {
        let p = parser();
        let line = "1500000000000 app alps apid 1000001 start user=usr0042 app=DCA++ nodes=128-255 width=128";
        match p.parse(line).unwrap() {
            ParsedLine::JobStart {
                apid,
                user,
                app,
                node_first,
                node_last,
                ts_ms,
            } => {
                assert_eq!(apid, 1_000_001);
                assert_eq!(user, "usr0042");
                assert_eq!(app, "DCA++");
                assert_eq!((node_first, node_last), (128, 255));
                assert_eq!(ts_ms, 1_500_000_000_000);
            }
            other => panic!("{other:?}"),
        }
        let line = "1500000360000 app alps apid 1000001 end exit=-9 runtime_s=360";
        match p.parse(line).unwrap() {
            ParsedLine::JobEnd {
                apid, exit_code, ..
            } => {
                assert_eq!(apid, 1_000_001);
                assert_eq!(exit_code, -9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn event_lines_become_event_records_with_raw() {
        let p = parser();
        let line =
            "1500000000123 console c3-2c1s4n2 Machine Check Exception: bank 4: b2 addr 3f cpu 12";
        match p.parse(line).unwrap() {
            ParsedLine::Event(ev) => {
                assert_eq!(ev.event_type, "MCE");
                assert_eq!(ev.source, "c3-2c1s4n2");
                assert_eq!(ev.amount, 1);
                assert!(ev.raw.starts_with("Machine Check Exception"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unparseable_lines_yield_none() {
        let p = parser();
        assert!(p.parse("").is_none());
        assert!(p
            .parse("1500 console c0-0c0s0n0 just some chatter")
            .is_none());
        assert!(p.parse("garbage").is_none());
    }

    #[test]
    fn generated_lines_all_parse() {
        // The ETL must understand everything loggen can emit.
        let topo = loggen::topology::Topology::scaled(2, 2);
        let scenario = loggen::trace::Scenario::generate(
            &topo,
            &loggen::trace::ScenarioConfig {
                rate_scale: 20.0,
                ..loggen::trace::ScenarioConfig::quiet_day(4)
            },
            11,
        );
        let p = parser();
        for line in &scenario.lines {
            assert!(
                p.parse(&line.render()).is_some(),
                "unparsed: {}",
                line.render()
            );
        }
    }

    #[test]
    fn parsed_event_types_match_ground_truth_counts() {
        let topo = loggen::topology::Topology::scaled(2, 2);
        let scenario = loggen::trace::Scenario::generate(
            &topo,
            &loggen::trace::ScenarioConfig {
                rate_scale: 10.0,
                ..loggen::trace::ScenarioConfig::quiet_day(6)
            },
            13,
        );
        let p = parser();
        let mut truth: std::collections::HashMap<&str, usize> = Default::default();
        for o in &scenario.truth {
            *truth.entry(o.event_type).or_default() += 1;
        }
        let mut parsed: std::collections::HashMap<String, usize> = Default::default();
        for line in &scenario.lines {
            if let Some(ParsedLine::Event(ev)) = p.parse(&line.render()) {
                *parsed.entry(ev.event_type).or_default() += 1;
            }
        }
        for (t, n) in truth {
            assert_eq!(parsed.get(t).copied().unwrap_or(0), n, "type {t}");
        }
    }
}
