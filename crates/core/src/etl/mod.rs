//! Extract–transform–load: batch regex import and real-time streaming.

pub mod batch;
pub mod parsers;
pub mod stream;
