//! Extract–transform–load: batch regex import and real-time streaming.
//!
//! Two parse paths feed the event/job tables:
//!
//! - [`parsers`] — the compiled `rex` pattern set, the **reference
//!   oracle** for what a raw line means;
//! - [`fastpath`] — a zero-copy byte scanner over `&[u8]` that mirrors
//!   the oracle bit for bit on ASCII input and falls back to it
//!   otherwise (see `DESIGN.md` §13).
//!
//! [`batch`] drives either path chunk-parallel over a rendered corpus;
//! [`stream`] consumes the log bus with at-least-once semantics.
#![deny(missing_docs)]

pub mod batch;
pub mod fastpath;
pub mod parsers;
pub mod stream;
