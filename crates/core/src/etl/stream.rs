//! Real-time streaming ingestion: bus → 1-second windows → coalesce →
//! store (paper §III-D), with an at-least-once delivery contract.
//!
//! Producers publish raw lines to the [`crate::framework::RAW_LOG_TOPIC`]
//! topic keyed by source, an ingester consumes them, windows them by event
//! time with "the time window of the Spark streaming ... set to one
//! second", coalesces occurrences "of the same type and same location ...
//! timestamped the same", and uploads the survivors to both event tables.
//!
//! # Delivery contract
//!
//! The ingester commits bus offsets **only after** the rasdb write batch
//! covering them is durably acked (or dead-lettered): per partition it
//! commits the lowest offset still buffered in an open window, so a crash
//! replays unacked records rather than losing them. Duplicates from replay
//! are absorbed two ways: records the ingester has already seen in this
//! life are skipped by offset, and records whose window was already
//! flushed are suppressed as late by seeding the restarted batcher from
//! the checkpointed watermark (offsets and watermark commit atomically).
//! Store failures (`DbError::Unavailable`) are retried with exponential
//! backoff + jitter; retry-exhausted windows and unparseable lines go to
//! the [`crate::framework::RAW_LOG_DLQ_TOPIC`] dead-letter topic, which
//! [`dlq_peek`] / [`dlq_requeue`] inspect and replay.

use crate::etl::fastpath::FastParser;
use crate::etl::parsers::ParsedLine;
use crate::framework::{Framework, RAW_LOG_DLQ_TOPIC, RAW_LOG_TOPIC};
use crate::model::event::EventRecord;
use logbus::{BusError, Consumer, Producer, Record};
use loggen::trace::RawLine;
use rand::{Rng, SeedableRng, StdRng};
use rasdb::error::DbError;
use sparklet::streaming::{coalesce, MicroBatcher};
use std::collections::{BTreeSet, HashMap};

/// The streaming window (paper: one second).
pub const WINDOW_MS: i64 = 1000;

/// The consumer group used by the DLQ drain/requeue helpers.
pub const DLQ_GROUP: &str = "dlq-drain";

/// Prefix marking a dead-lettered *event* (vs a raw line) in the DLQ.
const DLQ_EVENT_PREFIX: &str = "EVT|";

/// Attempts a producer makes per line before giving up on a send that
/// keeps failing (backpressure or injected drops).
const PUBLISH_ATTEMPTS: u32 = 64;

/// Tuning for the at-least-once ingestion loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Out-of-order tolerance across sources (window lateness).
    pub lateness_ms: i64,
    /// Store attempts per window before the batch is dead-lettered.
    pub max_store_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling (pre-jitter).
    pub backoff_cap_ms: u64,
    /// Batcher high-watermark: buffered items above this trigger load
    /// shedding by window widening (0 disables).
    pub high_watermark: usize,
    /// Seed for the backoff jitter RNG (deterministic tests).
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            lateness_ms: 0,
            max_store_attempts: 5,
            backoff_base_ms: 2,
            backoff_cap_ms: 64,
            high_watermark: 8192,
            seed: 42,
        }
    }
}

/// Publishes raw lines to the bus, keyed by source so per-node order is
/// preserved. Retries sends that hit backpressure ([`BusError::Full`]) or
/// an injected drop; a record is either appended exactly once or the
/// publish fails loudly — never silently lost.
pub fn publish_lines(fw: &Framework, lines: &[RawLine]) -> Result<usize, BusError> {
    let producer = Producer::new(fw.bus());
    for line in lines {
        send_with_retry(
            &producer,
            RAW_LOG_TOPIC,
            Some(&line.source),
            &line.render(),
            line.ts_ms,
        )?;
    }
    Ok(lines.len())
}

/// Bounded-retry send: immediate retry on injected drops, short sleep on
/// backpressure (giving a concurrent consumer a chance to commit).
fn send_with_retry(
    producer: &Producer<'_>,
    topic: &str,
    key: Option<&str>,
    value: &str,
    ts_ms: i64,
) -> Result<(usize, u64), BusError> {
    let mut attempts = 0;
    loop {
        match producer.send_at(topic, key, value, ts_ms) {
            Ok(at) => return Ok(at),
            Err(e @ (BusError::Full { .. } | BusError::Injected(_))) => {
                attempts += 1;
                if attempts >= PUBLISH_ATTEMPTS {
                    return Err(e);
                }
                if let BusError::Full { retry_after_ms, .. } = e {
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(2)));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// What a streaming drain did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Records polled off the bus.
    pub polled: usize,
    /// Lines parsed into events.
    pub events_in: usize,
    /// Events written after coalescing.
    pub events_out: usize,
    /// Lines that were not events (jobs handled by batch; junk skipped).
    pub non_events: usize,
    /// Items dropped for arriving behind the watermark (includes replayed
    /// records suppressed because their window was already flushed).
    pub late_drops: u64,
    /// Redelivered records skipped by the offset guard.
    pub duplicates: u64,
    /// Unparseable lines routed to the dead-letter topic.
    pub parse_failures: u64,
    /// Store retries performed (after `DbError::Unavailable`).
    pub retries: u64,
    /// Events dead-lettered after exhausting store retries.
    pub dlq_events: usize,
    /// Offset commits that failed (retried on the next step).
    pub commit_failures: u64,
}

/// An event record plus the bus offsets whose durability it carries.
/// Offsets accumulate when records coalesce, so a flushed window knows
/// exactly which bus records it made durable.
struct Tracked {
    ev: EventRecord,
    offsets: Vec<(usize, u64)>,
}

/// A long-lived streaming ingester (one consumer-group member).
pub struct StreamIngester<'f> {
    fw: &'f Framework,
    consumer: Consumer,
    batcher: MicroBatcher<Tracked>,
    /// The zero-copy scanner (with regex-oracle fallback for non-ASCII
    /// lines) — byte-identical to the batch path, see `fastpath`.
    parser: FastParser,
    cfg: StreamConfig,
    rng: StdRng,
    /// Per-partition offsets buffered in open windows (not yet durable);
    /// the commit position for a partition is its minimum.
    pending: HashMap<usize, BTreeSet<u64>>,
    /// Per-partition highest offset processed in this ingester's lifetime;
    /// redeliveries at or below it are skipped.
    max_seen: HashMap<usize, u64>,
    /// Event-time watermark (max event ts fed), checkpointed with commits.
    watermark: i64,
    report: StreamReport,
}

impl<'f> StreamIngester<'f> {
    /// Joins the ingester group. `lateness_ms` tolerates out-of-order
    /// arrival across sources.
    pub fn new(fw: &'f Framework, group: &str, lateness_ms: i64) -> Result<Self, BusError> {
        StreamIngester::with_config(
            fw,
            group,
            StreamConfig {
                lateness_ms,
                ..StreamConfig::default()
            },
        )
    }

    /// Joins the ingester group with explicit tuning.
    pub fn with_config(
        fw: &'f Framework,
        group: &str,
        cfg: StreamConfig,
    ) -> Result<Self, BusError> {
        let consumer = Consumer::new(fw.bus(), group, RAW_LOG_TOPIC)?;
        // Every flushed window is about to land in the event tables, so any
        // memoized answer over the still-open hour is about to go stale.
        let result_cache = std::sync::Arc::clone(fw.result_cache());
        let mut batcher = MicroBatcher::with_lateness(WINDOW_MS, cfg.lateness_ms)
            .with_high_watermark(cfg.high_watermark)
            .with_flush_listener(move |_window_start| result_cache.invalidate_open())
            .with_compactor(|bucket: Vec<Tracked>| {
                coalesce(
                    bucket,
                    |t| (t.ev.event_type.clone(), t.ev.source.clone()),
                    |a, b| {
                        a.ev.amount += b.ev.amount;
                        a.offsets.extend(b.offsets);
                    },
                )
            });
        // Resume from the checkpoint: records replayed from committed
        // offsets whose windows were already flushed must be dropped as
        // late, not re-written as partial windows.
        let checkpoint = consumer.checkpoint_watermark();
        batcher.advance_watermark(checkpoint);
        Ok(StreamIngester {
            fw,
            consumer,
            batcher,
            parser: FastParser::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            pending: HashMap::new(),
            max_seen: HashMap::new(),
            watermark: checkpoint,
            report: StreamReport::default(),
        })
    }

    /// Polls once and processes every ready window; commits offsets made
    /// durable by the flushes. Returns the number of bus records consumed
    /// (0 = idle).
    pub fn step(&mut self, max_records: usize) -> Result<usize, DbError> {
        // Each step is a root trace: window flushes, store retries, and the
        // commit hook below all record spans under one trace id, so a slow
        // ingest step can be reconstructed exactly like a slow query.
        let ctx = telemetry::TraceContext::root();
        let _span = telemetry::SpanGuard::enter_in("etl.stream.step", &ctx);
        let records = self.consumer.poll(max_records);
        let polled = records.len();
        self.report.polled += polled;
        for record in records {
            self.ingest_record(record);
        }
        for (window_start, batch) in self.batcher.drain_ready() {
            self.flush_window(window_start, batch)?;
        }
        self.commit_safe();
        telemetry::global()
            .gauge("etl.stream.ingest_lag")
            .set(self.consumer.lag() as i64);
        Ok(polled)
    }

    fn ingest_record(&mut self, record: Record) {
        let (p, off) = (record.partition, record.offset);
        if self.max_seen.get(&p).is_some_and(|m| off <= *m) {
            self.report.duplicates += 1;
            telemetry::global()
                .counter("ingest.consume.duplicates")
                .incr(1);
            return;
        }
        self.max_seen.insert(p, off);
        match self.parser.parse_line(record.value.as_bytes()) {
            Some(ParsedLine::Event(ev)) => {
                self.report.events_in += 1;
                self.watermark = self.watermark.max(ev.ts_ms);
                let ts = ev.ts_ms;
                if self.batcher.feed(
                    ts,
                    Tracked {
                        ev,
                        offsets: vec![(p, off)],
                    },
                ) {
                    self.pending.entry(p).or_default().insert(off);
                }
                // Late drops are final (counted by the batcher): nothing
                // buffered, so the offset is immediately committable.
            }
            Some(_) => self.report.non_events += 1,
            None => {
                // Unparseable: dead-letter the raw line as-is.
                self.report.parse_failures += 1;
                self.dead_letter(record.key.as_deref(), &record.value);
            }
        }
    }

    /// Flushes everything still buffered (end of stream).
    pub fn finish(mut self) -> Result<StreamReport, DbError> {
        for (window_start, batch) in self.batcher.drain_all() {
            self.flush_window(window_start, batch)?;
        }
        self.commit_safe();
        self.report.late_drops = self.batcher.late_drops();
        Ok(self.report)
    }

    /// Drains the topic until it is idle, then flushes.
    pub fn run_to_completion(mut self, max_records: usize) -> Result<StreamReport, DbError> {
        while self.step(max_records)? > 0 {}
        self.finish()
    }

    /// The live report (also returned by [`StreamIngester::finish`], which
    /// additionally folds in the final late-drop count).
    pub fn report(&self) -> StreamReport {
        let mut r = self.report;
        r.late_drops = self.batcher.late_drops();
        r
    }

    fn flush_window(&mut self, window_start: i64, batch: Vec<Tracked>) -> Result<(), DbError> {
        let mut span = telemetry::span!("etl.stream.window");
        span.tag("window_start_ms", window_start.to_string());
        let mut offsets: Vec<(usize, u64)> = Vec::new();
        let mut events = Vec::with_capacity(batch.len());
        for t in batch {
            offsets.extend(t.offsets);
            events.push(t.ev);
        }
        let events_in = events.len();
        // Coalesce same (type, source) within the window into one event
        // stamped at the window start, amounts summed.
        let merged = coalesce(
            events,
            |e| (e.event_type.clone(), e.source.clone()),
            |a, b| a.amount += b.amount,
        );
        let merged: Vec<EventRecord> = merged
            .into_iter()
            .map(|mut e| {
                e.ts_ms = window_start;
                e
            })
            .collect();
        self.report.events_out += merged.len();
        let g = telemetry::global();
        g.gauge("etl.stream.window_events_in").set(events_in as i64);
        g.gauge("etl.stream.window_events_out")
            .set(merged.len() as i64);
        g.counter("etl.stream.events_out").incr(merged.len() as u64);
        match self.store_with_retry(&merged) {
            Ok(()) => {}
            Err(DbError::Unavailable { .. }) => {
                // Retries exhausted: dead-letter the whole window so the
                // records are recoverable once the cluster heals.
                self.report.dlq_events += merged.len();
                for ev in &merged {
                    self.dead_letter(Some(&ev.source), &serialize_event(ev));
                }
            }
            // Anything else is a programming error (schema drift): leave
            // the offsets pending so nothing is committed past them.
            Err(e) => return Err(e),
        }
        // Durable (stored or dead-lettered): these offsets may commit.
        for (p, off) in offsets {
            if let Some(set) = self.pending.get_mut(&p) {
                set.remove(&off);
            }
        }
        Ok(())
    }

    /// Writes the batch, retrying `DbError::Unavailable` with exponential
    /// backoff + jitter up to the configured attempt budget.
    fn store_with_retry(&mut self, merged: &[EventRecord]) -> Result<(), DbError> {
        let mut span = telemetry::span!("etl.stream.store");
        let mut attempt: u32 = 0;
        loop {
            span.tag("attempt", (attempt + 1).to_string());
            match self.fw.insert_events(merged) {
                Ok(_) => return Ok(()),
                Err(e @ DbError::Unavailable { .. }) => {
                    attempt += 1;
                    if attempt >= self.cfg.max_store_attempts {
                        return Err(e);
                    }
                    let exp = self
                        .cfg
                        .backoff_base_ms
                        .saturating_mul(1 << (attempt - 1).min(16))
                        .min(self.cfg.backoff_cap_ms)
                        .max(1);
                    let delay = exp + self.rng.gen_range(0..=exp / 2);
                    self.report.retries += 1;
                    let g = telemetry::global();
                    g.counter("ingest.store.retries").incr(1);
                    g.counter("ingest.store.backoff_ms").incr(delay);
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Publishes one payload to the dead-letter topic. DLQ overflow (the
    /// DLQ itself full past retries) is the one boundary where data is
    /// dropped — counted, never silent.
    fn dead_letter(&mut self, key: Option<&str>, value: &str) {
        let producer = Producer::new(self.fw.bus());
        match send_with_retry(&producer, RAW_LOG_DLQ_TOPIC, key, value, 0) {
            Ok(_) => {
                telemetry::global().gauge("ingest.dlq.depth").add(1);
            }
            Err(_) => {
                telemetry::global()
                    .counter("ingest.dlq.publish_failures")
                    .incr(1);
            }
        }
    }

    /// Commits, per partition, the lowest offset still buffered in an open
    /// window (everything below it is durable) — or the poll position when
    /// nothing is buffered — together with the event-time watermark.
    fn commit_safe(&mut self) {
        let _span = telemetry::span!("etl.stream.commit");
        let safe: Vec<(usize, u64)> = self
            .consumer
            .positions()
            .iter()
            .map(
                |(p, pos)| match self.pending.get(p).and_then(|s| s.first()) {
                    Some(min) => (*p, *min),
                    None => (*p, *pos),
                },
            )
            .collect();
        if self.consumer.commit_through(&safe, self.watermark).is_ok() {
            // Advance the framework's ingest watermark and drop memoized
            // answers over the (previously) open hour: a window closes only
            // once its data is durably committed.
            if self.watermark != i64::MIN {
                self.fw.note_ingest_commit(self.watermark);
            }
        } else {
            // Injected commit fault: positions are untouched, the next
            // step's commit covers this one (at-least-once, maybe replay).
            self.report.commit_failures += 1;
            telemetry::global()
                .counter("ingest.commit.failures")
                .incr(1);
        }
    }
}

/// Serializes an event for the dead-letter topic (`raw` last — it may
/// contain the separator).
fn serialize_event(ev: &EventRecord) -> String {
    format!(
        "{}{}|{}|{}|{}|{}",
        DLQ_EVENT_PREFIX, ev.ts_ms, ev.event_type, ev.source, ev.amount, ev.raw
    )
}

/// Parses a dead-lettered event serialized by [`serialize_event`].
fn parse_dlq_event(value: &str) -> Option<EventRecord> {
    let rest = value.strip_prefix(DLQ_EVENT_PREFIX)?;
    let mut parts = rest.splitn(5, '|');
    Some(EventRecord {
        ts_ms: parts.next()?.parse().ok()?,
        event_type: parts.next()?.to_owned(),
        source: parts.next()?.to_owned(),
        amount: parts.next()?.parse().ok()?,
        raw: parts.next().unwrap_or_default().to_owned(),
    })
}

/// Dead-letter entries not yet consumed by the drain group.
pub fn dlq_depth(fw: &Framework) -> Result<u64, BusError> {
    let consumer = Consumer::new(fw.bus(), DLQ_GROUP, RAW_LOG_DLQ_TOPIC)?;
    Ok(consumer.lag())
}

/// Inspects up to `max` dead-letter entries without consuming them (the
/// next peek or requeue sees them again).
pub fn dlq_peek(fw: &Framework, max: usize) -> Result<Vec<Record>, BusError> {
    let mut consumer = Consumer::new(fw.bus(), DLQ_GROUP, RAW_LOG_DLQ_TOPIC)?;
    Ok(consumer.poll(max)) // positions die with the consumer: no commit
}

/// What a DLQ requeue pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DlqRequeueReport {
    /// Dead-lettered events re-inserted into the event tables.
    pub events_reinserted: usize,
    /// Raw lines republished to the ingest topic.
    pub lines_republished: usize,
    /// Poison entries (unparseable as either form) dropped.
    pub poison_dropped: usize,
    /// Entries left in the DLQ (hit an error mid-pass; retry later).
    pub remaining: u64,
}

/// Replays up to `max` dead-letter entries: serialized events are
/// re-inserted into the event tables, raw lines are republished to the
/// ingest topic (to be re-parsed by the stream). Entries are committed
/// (removed from the DLQ) only once their replay succeeded; on a store or
/// publish failure the pass stops early and the remainder stays queued.
pub fn dlq_requeue(fw: &Framework, max: usize) -> Result<DlqRequeueReport, DbError> {
    let _span = telemetry::span!("etl.stream.dlq_requeue");
    let mut consumer = Consumer::new(fw.bus(), DLQ_GROUP, RAW_LOG_DLQ_TOPIC)
        .expect("dlq topic is provisioned by Framework::new");
    let producer = Producer::new(fw.bus());
    let mut report = DlqRequeueReport::default();
    let mut done: HashMap<usize, u64> = HashMap::new();
    let mut processed: i64 = 0;
    'records: for record in consumer.poll(max) {
        if record.value.starts_with(DLQ_EVENT_PREFIX) {
            match parse_dlq_event(&record.value) {
                Some(ev) => match fw.insert_events(&[ev]) {
                    Ok(_) => report.events_reinserted += 1,
                    Err(DbError::Unavailable { .. }) => break 'records,
                    Err(e) => return Err(e),
                },
                None => report.poison_dropped += 1,
            }
        } else {
            match send_with_retry(
                &producer,
                RAW_LOG_TOPIC,
                record.key.as_deref(),
                &record.value,
                0,
            ) {
                Ok(_) => report.lines_republished += 1,
                Err(_) => break 'records,
            }
        }
        processed += 1;
        done.insert(record.partition, record.offset + 1);
    }
    let commits: Vec<(usize, u64)> = done.into_iter().collect();
    // A failed commit leaves entries queued for the next pass — requeue is
    // idempotent for events (LWW upsert) and lines (stream re-coalesces).
    let _ = consumer.commit_through(&commits, i64::MIN);
    telemetry::global()
        .gauge("ingest.dlq.depth")
        .add(-processed);
    report.remaining = consumer.lag();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use loggen::topology::Topology;
    use loggen::trace::Facility;

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    fn mce_line(ts: i64, src: &str) -> RawLine {
        RawLine {
            ts_ms: ts,
            facility: Facility::Console,
            source: src.to_owned(),
            text: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".to_owned(),
        }
    }

    #[test]
    fn stream_ingests_and_coalesces_same_second_same_source() {
        let fw = fw();
        let t0 = 1_500_000_000_000i64;
        // Three MCEs on one node within one second + one on another node.
        let lines = vec![
            mce_line(t0 + 100, "c0-0c0s0n0"),
            mce_line(t0 + 400, "c0-0c0s0n0"),
            mce_line(t0 + 900, "c0-0c0s0n0"),
            mce_line(t0 + 500, "c0-0c0s1n0"),
            mce_line(t0 + 2500, "c0-0c0s0n0"), // later window
        ];
        publish_lines(&fw, &lines).unwrap();
        let ingester = StreamIngester::new(&fw, "test", 10_000).unwrap();
        let report = ingester.run_to_completion(64).unwrap();
        assert_eq!(report.polled, 5);
        assert_eq!(report.events_in, 5);
        assert_eq!(report.events_out, 3, "3+1 coalesce to 1+1, plus 1 later");
        assert_eq!(report.late_drops, 0);

        let stored = fw.events_by_type("MCE", t0, t0 + 10_000).unwrap();
        assert_eq!(stored.len(), 3);
        let big = stored
            .iter()
            .find(|e| e.source == "c0-0c0s0n0" && e.ts_ms == t0)
            .unwrap();
        assert_eq!(big.amount, 3, "coalesced amount sums occurrences");
    }

    #[test]
    fn total_occurrence_mass_is_conserved() {
        let fw = fw();
        let t0 = 1_500_000_000_000i64;
        let lines: Vec<RawLine> = (0..100)
            .map(|i| mce_line(t0 + (i % 10) * 300, &format!("c0-0c0s{}n0", i % 4)))
            .collect();
        publish_lines(&fw, &lines).unwrap();
        let report = StreamIngester::new(&fw, "g", 60_000)
            .unwrap()
            .run_to_completion(32)
            .unwrap();
        assert_eq!(report.events_in, 100);
        let stored = fw.events_by_type("MCE", t0, t0 + 60_000).unwrap();
        let mass: i32 = stored.iter().map(|e| e.amount).sum();
        assert_eq!(mass, 100, "coalescing preserves counts");
        assert_eq!(stored.len(), report.events_out);
        assert!(report.events_out < 100);
    }

    #[test]
    fn non_event_lines_are_counted_not_stored() {
        let fw = fw();
        let lines = vec![RawLine {
            ts_ms: 1_500_000_000_000,
            facility: Facility::App,
            source: "alps".to_owned(),
            text: "apid 1 start user=u app=VASP nodes=0-1 width=2".to_owned(),
        }];
        publish_lines(&fw, &lines).unwrap();
        let report = StreamIngester::new(&fw, "g", 0)
            .unwrap()
            .run_to_completion(16)
            .unwrap();
        assert_eq!(report.non_events, 1);
        assert_eq!(report.events_out, 0);
    }

    #[test]
    fn two_group_members_share_the_work() {
        let fw = fw();
        let t0 = 1_500_000_000_000i64;
        let lines: Vec<RawLine> = (0..60)
            .map(|i| mce_line(t0 + i * 10, &format!("c{}-0c0s0n0", i % 2)))
            .collect();
        publish_lines(&fw, &lines).unwrap();
        let mut a = StreamIngester::new(&fw, "shared", 60_000).unwrap();
        let mut b = StreamIngester::new(&fw, "shared", 60_000).unwrap();
        while a.step(8).unwrap() + b.step(8).unwrap() > 0 {}
        let ra = a.finish().unwrap();
        let rb = b.finish().unwrap();
        assert_eq!(ra.polled + rb.polled, 60);
        assert!(ra.polled > 0 && rb.polled > 0, "both members consumed");
        let mass: i32 = fw
            .events_by_type("MCE", t0, t0 + 60_000)
            .unwrap()
            .iter()
            .map(|e| e.amount)
            .sum();
        assert_eq!(mass, 60);
    }

    #[test]
    fn unparseable_lines_go_to_the_dlq_and_requeue_republishes() {
        let fw = fw();
        let garbage = RawLine {
            ts_ms: 1_500_000_000_000,
            facility: Facility::Console,
            source: "c0-0c0s0n0".to_owned(),
            text: "%%% not a recognizable event %%%".to_owned(),
        };
        publish_lines(&fw, &[garbage]).unwrap();
        let report = StreamIngester::new(&fw, "g", 0)
            .unwrap()
            .run_to_completion(16)
            .unwrap();
        assert_eq!(report.parse_failures, 1);
        assert_eq!(dlq_depth(&fw).unwrap(), 1);
        let peeked = dlq_peek(&fw, 10).unwrap();
        assert_eq!(peeked.len(), 1);
        assert!(peeked[0].value.contains("not a recognizable event"));
        // Peek is non-destructive.
        assert_eq!(dlq_depth(&fw).unwrap(), 1);
        // Requeue republishes the line to the ingest topic.
        let rq = dlq_requeue(&fw, 10).unwrap();
        assert_eq!(rq.lines_republished, 1);
        assert_eq!(rq.remaining, 0);
        assert_eq!(dlq_depth(&fw).unwrap(), 0);
    }

    #[test]
    fn dlq_event_serialization_round_trips() {
        let ev = EventRecord {
            ts_ms: 1_500_000_000_000,
            event_type: "MCE".to_owned(),
            source: "c0-0c0s0n0".to_owned(),
            amount: 3,
            raw: "Machine Check | with pipes | inside".to_owned(),
        };
        let parsed = parse_dlq_event(&serialize_event(&ev)).unwrap();
        assert_eq!(parsed, ev);
    }

    #[test]
    fn crash_and_restart_replays_without_loss_or_double_count() {
        let fw = fw();
        let t0 = 1_500_000_000_000i64;
        // One source (one partition, monotonic ts) so the test isolates
        // crash/replay from cross-partition watermark skew.
        let lines: Vec<RawLine> = (0..40)
            .map(|i| mce_line(t0 + i * 200, "c0-0c0s0n0"))
            .collect();
        publish_lines(&fw, &lines).unwrap();
        // First ingester life: a few steps flush the early windows and
        // commit their offsets, then it "crashes" (dropped without finish —
        // buffered windows die with it).
        {
            let mut first = StreamIngester::new(&fw, "g", 1000).unwrap();
            for _ in 0..3 {
                first.step(8).unwrap();
            }
            let r = first.report();
            assert!(r.events_out > 0, "first life flushed some windows");
        }
        // Second life resumes from the checkpointed offsets + watermark.
        let report = StreamIngester::new(&fw, "g", 1000)
            .unwrap()
            .run_to_completion(8)
            .unwrap();
        assert!(report.polled > 0, "replayed the unacked suffix");
        assert!(report.polled < 40, "committed prefix was not replayed");
        let stored = fw.events_by_type("MCE", t0, t0 + 60_000).unwrap();
        let mass: i32 = stored.iter().map(|e| e.amount).sum();
        assert_eq!(mass, 40, "no loss, no double count after replay");
    }
}
