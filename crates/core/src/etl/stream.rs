//! Real-time streaming ingestion: bus → 1-second windows → coalesce →
//! store (paper §III-D).
//!
//! Producers publish raw lines to the [`crate::framework::RAW_LOG_TOPIC`]
//! topic keyed by source, an ingester consumes them, windows them by event
//! time with "the time window of the Spark streaming ... set to one
//! second", coalesces occurrences "of the same type and same location ...
//! timestamped the same", and uploads the survivors to both event tables.

use crate::etl::parsers::{EventParser, ParsedLine};
use crate::framework::{Framework, RAW_LOG_TOPIC};
use crate::model::event::EventRecord;
use logbus::{BusError, Consumer, Producer};
use loggen::trace::RawLine;
use rasdb::error::DbError;
use sparklet::streaming::{coalesce, MicroBatcher};

/// The streaming window (paper: one second).
pub const WINDOW_MS: i64 = 1000;

/// Publishes raw lines to the bus, keyed by source so per-node order is
/// preserved.
pub fn publish_lines(fw: &Framework, lines: &[RawLine]) -> Result<usize, BusError> {
    let producer = Producer::new(fw.bus());
    for line in lines {
        producer.send_at(RAW_LOG_TOPIC, Some(&line.source), line.render(), line.ts_ms)?;
    }
    Ok(lines.len())
}

/// What a streaming drain did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Records polled off the bus.
    pub polled: usize,
    /// Lines parsed into events.
    pub events_in: usize,
    /// Events written after coalescing.
    pub events_out: usize,
    /// Lines that were not events (jobs handled by batch; junk skipped).
    pub non_events: usize,
    /// Items dropped for arriving behind the watermark.
    pub late_drops: u64,
}

/// A long-lived streaming ingester (one consumer-group member).
pub struct StreamIngester<'f> {
    fw: &'f Framework,
    consumer: Consumer,
    batcher: MicroBatcher<EventRecord>,
    parser: EventParser,
    report: StreamReport,
}

impl<'f> StreamIngester<'f> {
    /// Joins the ingester group. `lateness_ms` tolerates out-of-order
    /// arrival across sources.
    pub fn new(fw: &'f Framework, group: &str, lateness_ms: i64) -> Result<Self, BusError> {
        Ok(StreamIngester {
            fw,
            consumer: Consumer::new(fw.bus(), group, RAW_LOG_TOPIC)?,
            batcher: MicroBatcher::with_lateness(WINDOW_MS, lateness_ms),
            parser: EventParser::new(),
            report: StreamReport::default(),
        })
    }

    /// Polls once and processes every ready window. Returns the number of
    /// bus records consumed (0 = idle).
    pub fn step(&mut self, max_records: usize) -> Result<usize, DbError> {
        let _span = telemetry::span!("etl.stream.step");
        let records = self.consumer.poll(max_records);
        let polled = records.len();
        self.report.polled += polled;
        for record in records {
            match self.parser.parse(&record.value) {
                Some(ParsedLine::Event(ev)) => {
                    self.report.events_in += 1;
                    if !self.batcher.feed(ev.ts_ms, ev) {
                        // Late drop: counted via the batcher.
                    }
                }
                _ => self.report.non_events += 1,
            }
        }
        for (window_start, batch) in self.batcher.drain_ready() {
            self.flush_window(window_start, batch)?;
        }
        self.consumer.commit();
        telemetry::global()
            .gauge("etl.stream.ingest_lag")
            .set(self.consumer.lag() as i64);
        Ok(polled)
    }

    /// Flushes everything still buffered (end of stream).
    pub fn finish(mut self) -> Result<StreamReport, DbError> {
        for (window_start, batch) in self.batcher.drain_all() {
            self.flush_window(window_start, batch)?;
        }
        self.report.late_drops = self.batcher.late_drops();
        Ok(self.report)
    }

    /// Drains the topic until it is idle, then flushes.
    pub fn run_to_completion(mut self, max_records: usize) -> Result<StreamReport, DbError> {
        while self.step(max_records)? > 0 {}
        self.finish()
    }

    fn flush_window(&mut self, window_start: i64, batch: Vec<EventRecord>) -> Result<(), DbError> {
        let mut span = telemetry::span!("etl.stream.window");
        span.tag("window_start_ms", window_start.to_string());
        let events_in = batch.len();
        // Coalesce same (type, source) within the window into one event
        // stamped at the window start, amounts summed.
        let merged = coalesce(
            batch,
            |e| (e.event_type.clone(), e.source.clone()),
            |a, b| a.amount += b.amount,
        );
        let merged: Vec<EventRecord> = merged
            .into_iter()
            .map(|mut e| {
                e.ts_ms = window_start;
                e
            })
            .collect();
        self.report.events_out += merged.len();
        let g = telemetry::global();
        g.gauge("etl.stream.window_events_in").set(events_in as i64);
        g.gauge("etl.stream.window_events_out")
            .set(merged.len() as i64);
        g.counter("etl.stream.events_out").incr(merged.len() as u64);
        self.fw.insert_events(&merged)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use loggen::topology::Topology;
    use loggen::trace::Facility;

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 3,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    fn mce_line(ts: i64, src: &str) -> RawLine {
        RawLine {
            ts_ms: ts,
            facility: Facility::Console,
            source: src.to_owned(),
            text: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".to_owned(),
        }
    }

    #[test]
    fn stream_ingests_and_coalesces_same_second_same_source() {
        let fw = fw();
        let t0 = 1_500_000_000_000i64;
        // Three MCEs on one node within one second + one on another node.
        let lines = vec![
            mce_line(t0 + 100, "c0-0c0s0n0"),
            mce_line(t0 + 400, "c0-0c0s0n0"),
            mce_line(t0 + 900, "c0-0c0s0n0"),
            mce_line(t0 + 500, "c0-0c0s1n0"),
            mce_line(t0 + 2500, "c0-0c0s0n0"), // later window
        ];
        publish_lines(&fw, &lines).unwrap();
        let ingester = StreamIngester::new(&fw, "test", 10_000).unwrap();
        let report = ingester.run_to_completion(64).unwrap();
        assert_eq!(report.polled, 5);
        assert_eq!(report.events_in, 5);
        assert_eq!(report.events_out, 3, "3+1 coalesce to 1+1, plus 1 later");
        assert_eq!(report.late_drops, 0);

        let stored = fw.events_by_type("MCE", t0, t0 + 10_000).unwrap();
        assert_eq!(stored.len(), 3);
        let big = stored
            .iter()
            .find(|e| e.source == "c0-0c0s0n0" && e.ts_ms == t0)
            .unwrap();
        assert_eq!(big.amount, 3, "coalesced amount sums occurrences");
    }

    #[test]
    fn total_occurrence_mass_is_conserved() {
        let fw = fw();
        let t0 = 1_500_000_000_000i64;
        let lines: Vec<RawLine> = (0..100)
            .map(|i| mce_line(t0 + (i % 10) * 300, &format!("c0-0c0s{}n0", i % 4)))
            .collect();
        publish_lines(&fw, &lines).unwrap();
        let report = StreamIngester::new(&fw, "g", 60_000)
            .unwrap()
            .run_to_completion(32)
            .unwrap();
        assert_eq!(report.events_in, 100);
        let stored = fw.events_by_type("MCE", t0, t0 + 60_000).unwrap();
        let mass: i32 = stored.iter().map(|e| e.amount).sum();
        assert_eq!(mass, 100, "coalescing preserves counts");
        assert_eq!(stored.len(), report.events_out);
        assert!(report.events_out < 100);
    }

    #[test]
    fn non_event_lines_are_counted_not_stored() {
        let fw = fw();
        let lines = vec![RawLine {
            ts_ms: 1_500_000_000_000,
            facility: Facility::App,
            source: "alps".to_owned(),
            text: "apid 1 start user=u app=VASP nodes=0-1 width=2".to_owned(),
        }];
        publish_lines(&fw, &lines).unwrap();
        let report = StreamIngester::new(&fw, "g", 0)
            .unwrap()
            .run_to_completion(16)
            .unwrap();
        assert_eq!(report.non_events, 1);
        assert_eq!(report.events_out, 0);
    }

    #[test]
    fn two_group_members_share_the_work() {
        let fw = fw();
        let t0 = 1_500_000_000_000i64;
        let lines: Vec<RawLine> = (0..60)
            .map(|i| mce_line(t0 + i * 10, &format!("c{}-0c0s0n0", i % 2)))
            .collect();
        publish_lines(&fw, &lines).unwrap();
        let mut a = StreamIngester::new(&fw, "shared", 60_000).unwrap();
        let mut b = StreamIngester::new(&fw, "shared", 60_000).unwrap();
        while a.step(8).unwrap() + b.step(8).unwrap() > 0 {}
        let ra = a.finish().unwrap();
        let rb = b.finish().unwrap();
        assert_eq!(ra.polled + rb.polled, 60);
        assert!(ra.polled > 0 && rb.polled > 0, "both members consumed");
        let mass: i32 = fw
            .events_by_type("MCE", t0, t0 + 60_000)
            .unwrap()
            .iter()
            .map(|e| e.amount)
            .sum();
        assert_eq!(mass, 60);
    }
}
