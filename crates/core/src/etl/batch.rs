//! Batch import: the "traditional ETL procedure" of the paper, with
//! "parsing and uploading using Apache Spark" — here, `sparklet`.
//!
//! Raw lines are partitioned over the executor pool; each partition
//! compiles the pattern set once, parses its lines, and uploads event rows
//! straight to the store (parallel upload). Job start/end fragments come
//! back to the driver, which pairs them into application runs.

use crate::etl::parsers::{EventParser, ParsedLine};
use crate::framework::Framework;
use crate::model::apprun::AppRun;
use loggen::trace::RawLine;
use rasdb::error::DbError;
use std::collections::HashMap;
use std::sync::Arc;

/// What a batch import did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImportReport {
    /// Lines successfully parsed.
    pub parsed: usize,
    /// Lines no pattern matched.
    pub skipped: usize,
    /// Event rows written (counting both table views).
    pub event_rows: usize,
    /// Application runs stored (matched start+end pairs).
    pub jobs: usize,
    /// Job fragments without a partner (start without end or vice versa).
    pub unmatched_jobs: usize,
}

/// Runs the batch import.
pub fn import(fw: &Framework, lines: &[RawLine]) -> Result<ImportReport, DbError> {
    let rendered: Vec<String> = lines.iter().map(RawLine::render).collect();
    import_rendered(fw, rendered)
}

/// Runs the batch import over pre-rendered raw text lines.
pub fn import_rendered(fw: &Framework, rendered: Vec<String>) -> Result<ImportReport, DbError> {
    let _span = telemetry::span!("etl.batch.import");
    let nparts = (fw.engine().workers() * 2).max(1);
    let rdd = fw.engine().parallelize(rendered, nparts);
    let cluster = Arc::clone(fw.cluster());
    let consistency = fw.consistency();

    // Map stage: parse + upload events in place; ship job fragments and
    // counters back to the driver.
    #[derive(Clone)]
    struct PartResult {
        parsed: usize,
        skipped: usize,
        event_rows: usize,
        job_lines: Vec<ParsedLine>,
    }
    let results: Vec<PartResult> = fw.engine().run_job(&rdd, move |_, lines: Vec<String>| {
        let parser = EventParser::new();
        let mut events = Vec::new();
        let mut job_lines = Vec::new();
        let mut skipped = 0usize;
        for line in &lines {
            match parser.parse(line) {
                Some(ParsedLine::Event(ev)) => events.push(ev),
                Some(job) => job_lines.push(job),
                None => skipped += 1,
            }
        }
        let parsed = lines.len() - skipped;
        let time_rows = events.iter().map(|e| e.to_time_row()).collect();
        let loc_rows = events.iter().map(|e| e.to_location_row()).collect();
        let mut event_rows = 0;
        event_rows += cluster
            .insert_batch("event_by_time", time_rows, consistency)
            .expect("event upload");
        event_rows += cluster
            .insert_batch("event_by_location", loc_rows, consistency)
            .expect("event upload");
        PartResult {
            parsed,
            skipped,
            event_rows,
            job_lines,
        }
    });

    // Driver: pair job fragments into runs.
    let mut report = ImportReport::default();
    let mut starts: HashMap<i64, (i64, String, String, i64, i64)> = HashMap::new();
    let mut ends: HashMap<i64, (i64, i32)> = HashMap::new();
    for part in results {
        report.parsed += part.parsed;
        report.skipped += part.skipped;
        report.event_rows += part.event_rows;
        for job in part.job_lines {
            match job {
                ParsedLine::JobStart {
                    apid,
                    ts_ms,
                    user,
                    app,
                    node_first,
                    node_last,
                } => {
                    starts.insert(apid, (ts_ms, user, app, node_first, node_last));
                }
                ParsedLine::JobEnd {
                    apid,
                    ts_ms,
                    exit_code,
                } => {
                    ends.insert(apid, (ts_ms, exit_code));
                }
                ParsedLine::Event(_) => unreachable!("events handled in tasks"),
            }
        }
    }
    for (apid, (start_ms, user, app, node_first, node_last)) in starts {
        let Some((end_ms, exit_code)) = ends.remove(&apid) else {
            report.unmatched_jobs += 1;
            continue;
        };
        fw.insert_app_run(&AppRun {
            apid,
            user,
            app,
            start_ms,
            end_ms,
            node_first,
            node_last,
            exit_code,
            other_info: Default::default(),
        })?;
        report.jobs += 1;
    }
    report.unmatched_jobs += ends.len();
    let g = telemetry::global();
    g.counter("etl.batch.lines_parsed")
        .incr(report.parsed as u64);
    g.counter("etl.batch.lines_skipped")
        .incr(report.skipped as u64);
    g.counter("etl.batch.event_rows")
        .incr(report.event_rows as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use loggen::topology::Topology;
    use loggen::trace::{Scenario, ScenarioConfig};

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 4,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn full_scenario_import_matches_ground_truth() {
        let fw = fw();
        let cfg = ScenarioConfig {
            rate_scale: 10.0,
            ..ScenarioConfig::quiet_day(4)
        };
        let scenario = Scenario::generate(fw.topology(), &cfg, 21);
        let report = fw.batch_import(&scenario.lines).unwrap();

        assert_eq!(report.parsed, scenario.lines.len());
        assert_eq!(report.skipped, 0);
        assert_eq!(report.event_rows, scenario.truth.len() * 2);
        // Jobs whose end falls inside the scenario window pair up; the rest
        // are unmatched starts.
        let complete = scenario
            .jobs
            .iter()
            .filter(|j| j.end_ms < cfg.start_ms + cfg.duration_ms)
            .count();
        // Job end lines are always emitted in the trace (even past the
        // window), so all jobs pair.
        assert_eq!(report.jobs, scenario.jobs.len());
        assert!(complete <= report.jobs);
        assert_eq!(report.unmatched_jobs, 0);

        // Spot-check a stored event type count against the truth.
        let t0 = cfg.start_ms;
        let t1 = cfg.start_ms + cfg.duration_ms + 48 * 3_600_000;
        let mce_truth = scenario
            .truth
            .iter()
            .filter(|o| o.event_type == "MCE")
            .count();
        let got = fw.events_by_type("MCE", t0, t1).unwrap();
        assert_eq!(got.len(), mce_truth);
    }

    #[test]
    fn unmatched_job_fragments_are_counted() {
        let fw = fw();
        let lines = vec![
            "1500000000000 app alps apid 7 start user=u app=VASP nodes=0-1 width=2".to_owned(),
            "1500000000000 app alps apid 8 end exit=0 runtime_s=10".to_owned(),
        ];
        let report = import_rendered(&fw, lines).unwrap();
        assert_eq!(report.jobs, 0);
        assert_eq!(report.unmatched_jobs, 2);
        assert_eq!(report.parsed, 2);
    }

    #[test]
    fn junk_lines_are_skipped_not_fatal() {
        let fw = fw();
        let lines = vec![
            "not a log line at all".to_owned(),
            "1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 1: b2 addr 3f cpu 0"
                .to_owned(),
            "1500000000124 console c0-0c0s0n0 routine chatter nothing matches".to_owned(),
        ];
        let report = import_rendered(&fw, lines).unwrap();
        assert_eq!(report.parsed, 1);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.event_rows, 2);
    }

    #[test]
    fn empty_import_is_a_noop() {
        let fw = fw();
        let report = import_rendered(&fw, Vec::new()).unwrap();
        assert_eq!(report, ImportReport::default());
    }
}
