//! Batch import: the "traditional ETL procedure" of the paper, with
//! "parsing and uploading using Apache Spark" — here, `sparklet`.
//!
//! The corpus is split into byte chunks on newline boundaries
//! ([`fastpath::split_chunks`]), the chunk ranges are partitioned over
//! the executor pool, and each task scans its chunks zero-copy with the
//! byte-slice fast path ([`fastpath::FastParser`]) — or, when
//! [`ParserBackend::Regex`] is selected, with the compiled `rex` oracle —
//! uploading event rows straight to the store (parallel upload). Job
//! start/end fragments come back to the driver, which pairs them into
//! application runs. Window/type predicates push down into the scan:
//! filtered lines never materialize a row.

use crate::etl::fastpath::{
    self, reference_scan_line, FastParser, LineOutcome, Lines, ScanPredicate, ScanStats,
};
use crate::etl::parsers::{EventParser, ParsedLine};
use crate::framework::Framework;
use crate::model::apprun::AppRun;
use loggen::trace::RawLine;
use rasdb::error::DbError;
use std::collections::HashMap;
use std::sync::Arc;

/// What a batch import did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImportReport {
    /// Lines successfully parsed (kept events plus job fragments).
    pub parsed: usize,
    /// Lines no pattern matched.
    pub skipped: usize,
    /// Event lines dropped by the import predicate during the scan.
    pub filtered: usize,
    /// Lines the fast path routed through the regex oracle (non-ASCII).
    pub fallbacks: usize,
    /// Event rows written (counting both table views).
    pub event_rows: usize,
    /// Application runs stored (matched start+end pairs).
    pub jobs: usize,
    /// Job fragments without a partner (start without end or vice versa).
    pub unmatched_jobs: usize,
}

/// Which parse engine the batch import runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParserBackend {
    /// The zero-copy byte scanner ([`fastpath::FastParser`]) — the
    /// production path.
    #[default]
    Fast,
    /// The compiled `rex` pattern set — the reference oracle, kept for
    /// differential testing and benchmarking.
    Regex,
}

/// Knobs for [`import_bytes`].
///
/// # Example
/// ```
/// use hpclog_core::etl::batch::{ImportOptions, ParserBackend};
/// use hpclog_core::etl::fastpath::ScanPredicate;
/// let opts = ImportOptions {
///     predicate: ScanPredicate::default().with_types(["MCE"]),
///     ..ImportOptions::default()
/// };
/// assert_eq!(opts.backend, ParserBackend::Fast);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ImportOptions {
    /// Window/type filters pushed down into the scan.
    pub predicate: ScanPredicate,
    /// Parse engine; defaults to the fast path.
    pub backend: ParserBackend,
    /// Target chunk size in bytes; `None` sizes chunks so every executor
    /// partition gets work.
    pub chunk_target_bytes: Option<usize>,
}

/// Runs the batch import.
pub fn import(fw: &Framework, lines: &[RawLine]) -> Result<ImportReport, DbError> {
    let rendered: Vec<String> = lines.iter().map(RawLine::render).collect();
    import_rendered(fw, rendered)
}

/// Runs the batch import over pre-rendered raw text lines (each string
/// one log line, no embedded newlines).
pub fn import_rendered(fw: &Framework, rendered: Vec<String>) -> Result<ImportReport, DbError> {
    let mut corpus = Vec::with_capacity(rendered.iter().map(|l| l.len() + 1).sum());
    for line in &rendered {
        corpus.extend_from_slice(line.as_bytes());
        corpus.push(b'\n');
    }
    import_bytes(fw, corpus, &ImportOptions::default())
}

/// Runs the chunk-parallel batch import over a raw corpus.
///
/// The corpus is chunked on newline boundaries (no line crosses a
/// chunk), chunk ranges are distributed over the executor pool, and each
/// task scans its chunks with the selected [`ParserBackend`] under the
/// pushed-down [`ScanPredicate`]. Both backends follow the same
/// disposition contract ([`reference_scan_line`]), so reports and tables
/// are identical between them — the differential equivalence suite
/// asserts exactly that.
pub fn import_bytes(
    fw: &Framework,
    corpus: Vec<u8>,
    opts: &ImportOptions,
) -> Result<ImportReport, DbError> {
    let _span = telemetry::span!("etl.batch.import");
    let nparts = (fw.engine().workers() * 2).max(1);
    let target = opts
        .chunk_target_bytes
        .unwrap_or_else(|| (corpus.len() / nparts).max(64 * 1024));
    let chunks = fastpath::split_chunks(&corpus, target);
    let corpus: Arc<Vec<u8>> = Arc::new(corpus);
    let rdd = fw.engine().parallelize(chunks, nparts);
    let cluster = Arc::clone(fw.cluster());
    let consistency = fw.consistency();
    let backend = opts.backend;
    let pred = opts.predicate.clone();

    // Map stage: scan + upload events in place; ship job fragments and
    // counters back to the driver.
    #[derive(Clone, Default)]
    struct PartResult {
        parsed: usize,
        skipped: usize,
        filtered: usize,
        fallbacks: usize,
        event_rows: usize,
        job_lines: Vec<ParsedLine>,
    }
    let results: Vec<PartResult> =
        fw.engine()
            .run_job(&rdd, move |_, ranges: Vec<(usize, usize)>| {
                let fast = FastParser::new();
                let oracle = EventParser::new();
                let mut stats = ScanStats::default();
                let mut out = PartResult::default();
                let mut events = Vec::new();
                for (start, end) in ranges {
                    for line in Lines::new(&corpus[start..end]) {
                        let outcome = match backend {
                            ParserBackend::Fast => fast.scan_line(line, &pred, &mut stats),
                            ParserBackend::Regex => match std::str::from_utf8(line) {
                                Ok(s) => reference_scan_line(&oracle, s, &pred),
                                Err(_) => LineOutcome::Skipped,
                            },
                        };
                        match outcome {
                            LineOutcome::Event(ev) => events.push(ev),
                            LineOutcome::Job(job) => out.job_lines.push(job),
                            LineOutcome::Skipped => out.skipped += 1,
                            LineOutcome::Filtered => out.filtered += 1,
                        }
                    }
                }
                if backend == ParserBackend::Fast {
                    stats.flush_telemetry();
                    out.fallbacks = stats.fallbacks as usize;
                }
                out.parsed = events.len() + out.job_lines.len();
                let time_rows = events.iter().map(|e| e.to_time_row()).collect();
                let loc_rows = events.iter().map(|e| e.to_location_row()).collect();
                out.event_rows += cluster
                    .insert_batch("event_by_time", time_rows, consistency)
                    .expect("event upload");
                out.event_rows += cluster
                    .insert_batch("event_by_location", loc_rows, consistency)
                    .expect("event upload");
                out
            });

    // Driver: pair job fragments into runs.
    let mut report = ImportReport::default();
    let mut starts: HashMap<i64, (i64, String, String, i64, i64)> = HashMap::new();
    let mut ends: HashMap<i64, (i64, i32)> = HashMap::new();
    for part in results {
        report.parsed += part.parsed;
        report.skipped += part.skipped;
        report.filtered += part.filtered;
        report.fallbacks += part.fallbacks;
        report.event_rows += part.event_rows;
        for job in part.job_lines {
            match job {
                ParsedLine::JobStart {
                    apid,
                    ts_ms,
                    user,
                    app,
                    node_first,
                    node_last,
                } => {
                    starts.insert(apid, (ts_ms, user, app, node_first, node_last));
                }
                ParsedLine::JobEnd {
                    apid,
                    ts_ms,
                    exit_code,
                } => {
                    ends.insert(apid, (ts_ms, exit_code));
                }
                ParsedLine::Event(_) => unreachable!("events handled in tasks"),
            }
        }
    }
    for (apid, (start_ms, user, app, node_first, node_last)) in starts {
        let Some((end_ms, exit_code)) = ends.remove(&apid) else {
            report.unmatched_jobs += 1;
            continue;
        };
        fw.insert_app_run(&AppRun {
            apid,
            user,
            app,
            start_ms,
            end_ms,
            node_first,
            node_last,
            exit_code,
            other_info: Default::default(),
        })?;
        report.jobs += 1;
    }
    report.unmatched_jobs += ends.len();
    let g = telemetry::global();
    g.counter("etl.batch.lines_parsed")
        .incr(report.parsed as u64);
    g.counter("etl.batch.lines_skipped")
        .incr(report.skipped as u64);
    g.counter("etl.batch.lines_filtered")
        .incr(report.filtered as u64);
    g.counter("etl.batch.event_rows")
        .incr(report.event_rows as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use loggen::topology::Topology;
    use loggen::trace::{Scenario, ScenarioConfig};

    fn fw() -> Framework {
        Framework::new(FrameworkConfig {
            db_nodes: 4,
            replication_factor: 2,
            vnodes: 8,
            topology: Topology::scaled(2, 2),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn full_scenario_import_matches_ground_truth() {
        let fw = fw();
        let cfg = ScenarioConfig {
            rate_scale: 10.0,
            ..ScenarioConfig::quiet_day(4)
        };
        let scenario = Scenario::generate(fw.topology(), &cfg, 21);
        let report = fw.batch_import(&scenario.lines).unwrap();

        assert_eq!(report.parsed, scenario.lines.len());
        assert_eq!(report.skipped, 0);
        assert_eq!(report.filtered, 0);
        assert_eq!(report.fallbacks, 0, "loggen corpus is pure ASCII");
        assert_eq!(report.event_rows, scenario.truth.len() * 2);
        // Jobs whose end falls inside the scenario window pair up; the rest
        // are unmatched starts.
        let complete = scenario
            .jobs
            .iter()
            .filter(|j| j.end_ms < cfg.start_ms + cfg.duration_ms)
            .count();
        // Job end lines are always emitted in the trace (even past the
        // window), so all jobs pair.
        assert_eq!(report.jobs, scenario.jobs.len());
        assert!(complete <= report.jobs);
        assert_eq!(report.unmatched_jobs, 0);

        // Spot-check a stored event type count against the truth.
        let t0 = cfg.start_ms;
        let t1 = cfg.start_ms + cfg.duration_ms + 48 * 3_600_000;
        let mce_truth = scenario
            .truth
            .iter()
            .filter(|o| o.event_type == "MCE")
            .count();
        let got = fw.events_by_type("MCE", t0, t1).unwrap();
        assert_eq!(got.len(), mce_truth);
    }

    #[test]
    fn unmatched_job_fragments_are_counted() {
        let fw = fw();
        let lines = vec![
            "1500000000000 app alps apid 7 start user=u app=VASP nodes=0-1 width=2".to_owned(),
            "1500000000000 app alps apid 8 end exit=0 runtime_s=10".to_owned(),
        ];
        let report = import_rendered(&fw, lines).unwrap();
        assert_eq!(report.jobs, 0);
        assert_eq!(report.unmatched_jobs, 2);
        assert_eq!(report.parsed, 2);
    }

    #[test]
    fn junk_lines_are_skipped_not_fatal() {
        let fw = fw();
        let lines = vec![
            "not a log line at all".to_owned(),
            "1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 1: b2 addr 3f cpu 0"
                .to_owned(),
            "1500000000124 console c0-0c0s0n0 routine chatter nothing matches".to_owned(),
        ];
        let report = import_rendered(&fw, lines).unwrap();
        assert_eq!(report.parsed, 1);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.event_rows, 2);
    }

    #[test]
    fn empty_import_is_a_noop() {
        let fw = fw();
        let report = import_rendered(&fw, Vec::new()).unwrap();
        assert_eq!(report, ImportReport::default());
    }

    #[test]
    fn pushdown_window_limits_stored_rows() {
        let fw = fw();
        let corpus = b"\
1000 console n0 DVS: early\n\
2000 console n0 DVS: inside\n\
3000 console n0 DVS: late\n\
2500 app alps apid 1 start user=u app=A nodes=0-1\n\
9999 app alps apid 1 end exit=0\n"
            .to_vec();
        let opts = ImportOptions {
            predicate: ScanPredicate::default().with_window(1500, 2500),
            ..Default::default()
        };
        let report = import_bytes(&fw, corpus, &opts).unwrap();
        assert_eq!(report.filtered, 2);
        assert_eq!(report.event_rows, 2, "one event, two table views");
        // Jobs pair regardless of the window.
        assert_eq!(report.jobs, 1);
        assert_eq!(report.parsed, 3);
    }

    #[test]
    fn fast_and_regex_backends_produce_identical_reports() {
        let fw_fast = fw();
        let fw_regex = fw();
        let cfg = ScenarioConfig {
            rate_scale: 8.0,
            ..ScenarioConfig::mce_hotspot(3, 0)
        };
        let scenario = Scenario::generate(fw_fast.topology(), &cfg, 77);
        let corpus = scenario.render_corpus();
        for pred in [
            ScanPredicate::default(),
            ScanPredicate::default().with_types(["MCE", "LUSTRE_ERR"]),
            ScanPredicate::default().with_window(cfg.start_ms, cfg.start_ms + 3_600_000),
        ] {
            let fast = import_bytes(
                &fw_fast,
                corpus.clone(),
                &ImportOptions {
                    predicate: pred.clone(),
                    backend: ParserBackend::Fast,
                    chunk_target_bytes: Some(4096),
                },
            )
            .unwrap();
            let regex = import_bytes(
                &fw_regex,
                corpus.clone(),
                &ImportOptions {
                    predicate: pred,
                    backend: ParserBackend::Regex,
                    chunk_target_bytes: Some(4096),
                },
            )
            .unwrap();
            // Backends must agree on every count except `fallbacks`
            // (only the fast path counts oracle handoffs).
            assert_eq!(
                ImportReport {
                    fallbacks: 0,
                    jobs: 0,
                    unmatched_jobs: 0,
                    ..fast
                },
                ImportReport {
                    fallbacks: 0,
                    jobs: 0,
                    unmatched_jobs: 0,
                    ..regex
                }
            );
            // Job counts include re-imported pairs; compare directly.
            assert_eq!(fast.jobs, regex.jobs);
            assert_eq!(fast.unmatched_jobs, regex.unmatched_jobs);
        }
    }
}
