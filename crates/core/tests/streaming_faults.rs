//! Bus fault-schedule integration tests: the at-least-once contract under
//! injected drops, duplicate deliveries, delayed records, failed commits,
//! and a mid-stream ingester crash. The acceptance bar is *zero loss* and
//! tables byte-identical to a fault-free run.

use hpclog_core::etl::stream::{dlq_depth, dlq_requeue, publish_lines, StreamIngester};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use logbus::FaultPlan;
use loggen::topology::Topology;
use loggen::trace::{Facility, RawLine};
use rasdb::ring::NodeId;

fn boot() -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: 3,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .unwrap()
}

fn mce_line(ts: i64, src: &str) -> RawLine {
    RawLine {
        ts_ms: ts,
        facility: Facility::Console,
        source: src.to_owned(),
        text: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".to_owned(),
    }
}

const T0: i64 = 1_500_000_000_000;

/// One source (one partition, monotonic event time) so the clean and the
/// faulted run see identical watermark behaviour and the comparison is
/// exact, not statistical.
fn storm(n: i64) -> Vec<RawLine> {
    (0..n)
        .map(|i| mce_line(T0 + i * 200, "c0-0c0s0n0"))
        .collect()
}

/// All stored MCE rows in deterministic order.
fn table_rows(fw: &Framework) -> Vec<EventRecord> {
    let mut rows = fw.events_by_type("MCE", T0, T0 + 600_000).unwrap();
    rows.sort_by(|a, b| {
        (a.ts_ms, &a.source, &a.event_type).cmp(&(b.ts_ms, &b.source, &b.event_type))
    });
    rows
}

#[test]
fn fault_schedule_zero_loss_byte_identical_tables() {
    let lines = storm(400);

    // Reference: fault-free ingestion.
    let clean = boot();
    publish_lines(&clean, &lines).unwrap();
    let clean_report = StreamIngester::new(&clean, "g", 2000)
        .unwrap()
        .run_to_completion(32)
        .unwrap();
    assert_eq!(clean_report.events_in, 400);

    // Faulted: drop every 7th send, redeliver every 5th read, delay every
    // 11th send for 3 more sends, fail the first 4 commits — and crash the
    // ingester mid-stream on top.
    let faulted = boot();
    faulted.bus().inject_faults(
        FaultPlan::new()
            .drop_every(7)
            .duplicate_every(5)
            .delay_every(11, 3)
            .fail_commits(4),
    );
    publish_lines(&faulted, &lines).unwrap();
    // Any delay holds still parked after the last send become visible now.
    faulted.bus().release_delayed();
    {
        let mut first = StreamIngester::new(&faulted, "g", 2000).unwrap();
        for _ in 0..6 {
            first.step(32).unwrap();
        }
        // Crash: buffered windows and uncommitted progress die here.
    }
    let report = StreamIngester::new(&faulted, "g", 2000)
        .unwrap()
        .run_to_completion(32)
        .unwrap();

    // Zero loss: every one of the 400 occurrences is accounted for.
    let clean_rows = table_rows(&clean);
    let faulted_rows = table_rows(&faulted);
    let clean_mass: i32 = clean_rows.iter().map(|e| e.amount).sum();
    let faulted_mass: i32 = faulted_rows.iter().map(|e| e.amount).sum();
    assert_eq!(clean_mass, 400, "clean run stored every occurrence");
    assert_eq!(faulted_mass, 400, "faults + crash lost nothing");
    assert_eq!(
        clean_rows, faulted_rows,
        "faulted tables byte-identical to the fault-free run"
    );
    // The schedule actually exercised the recovery paths.
    assert!(report.duplicates > 0, "redeliveries hit the offset guard");
    assert_eq!(dlq_depth(&faulted).unwrap(), 0, "nothing dead-lettered");
}

#[test]
fn commit_faults_alone_cause_replay_not_loss() {
    let lines = storm(100);
    let fw = boot();
    publish_lines(&fw, &lines).unwrap();
    // Every commit in the first life fails; the crash then forces a full
    // replay, absorbed by the duplicate guards and LWW upserts.
    fw.bus()
        .inject_faults(FaultPlan::new().fail_commits(u64::MAX));
    {
        let mut first = StreamIngester::new(&fw, "g", 2000).unwrap();
        let mut r = first.step(32).unwrap();
        while r > 0 {
            r = first.step(32).unwrap();
        }
    }
    fw.bus().clear_faults();
    StreamIngester::new(&fw, "g", 2000)
        .unwrap()
        .run_to_completion(32)
        .unwrap();
    let mass: i32 = table_rows(&fw).iter().map(|e| e.amount).sum();
    assert_eq!(mass, 100, "replayed windows overwrite, never double-count");
}

#[test]
fn replica_outage_retries_then_dead_letters_then_requeues() {
    let fw = boot();
    let lines = storm(50);
    publish_lines(&fw, &lines).unwrap();
    // Take 2 of 3 nodes down: quorum writes fail with Unavailable, the
    // ingester retries with backoff, exhausts its budget, dead-letters.
    fw.cluster().take_node_down(NodeId(1));
    fw.cluster().take_node_down(NodeId(2));
    let report = StreamIngester::new(&fw, "g", 2000)
        .unwrap()
        .run_to_completion(32)
        .unwrap();
    assert!(report.retries > 0, "store retries happened");
    assert!(report.dlq_events > 0, "exhausted windows dead-lettered");
    let parked = dlq_depth(&fw).unwrap();
    assert_eq!(parked as usize, report.dlq_events);

    // Cluster heals; requeue drains the DLQ back into the tables.
    fw.cluster().bring_node_up(NodeId(1));
    fw.cluster().bring_node_up(NodeId(2));
    let rq = dlq_requeue(&fw, 10_000).unwrap();
    assert_eq!(rq.events_reinserted, report.dlq_events);
    assert_eq!(rq.remaining, 0);
    let mass: i32 = table_rows(&fw).iter().map(|e| e.amount).sum();
    assert_eq!(mass, 50, "every occurrence recovered after the outage");
}
