//! Frontend contract suite: keep-alive reuse, pipelining, concurrent
//! correctness, deadline enforcement, admission control, and the golden
//! envelope rows for every HTTP-layer failure.
//!
//! The HTTP contract under test (see `hpclog_core::server::http`):
//! - every HTTP-layer failure is a v2 envelope with a typed `error.code`,
//!   a `trace_id`, and the real HTTP status from `ErrorCode::http_status`;
//! - sheds (`429` / `503`) carry `error.retry_after_ms` and mirror it in a
//!   `Retry-After` header (whole seconds, rounded up);
//! - the pre-v1 paths are gone: they answer `404` with a typed
//!   `NOT_FOUND` envelope naming the `/v1/*` replacement.

use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::server::{HttpConfig, HttpServer, QueryEngine};
use loggen::topology::Topology;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn server_with(cfg: HttpConfig) -> HttpServer {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 2,
        replication_factor: 1,
        vnodes: 4,
        topology: Topology::scaled(1, 1),
        ..Default::default()
    })
    .unwrap();
    HttpServer::start_with(Arc::new(QueryEngine::new(Arc::new(fw))), 0, cfg).unwrap()
}

fn server() -> HttpServer {
    server_with(HttpConfig::default())
}

/// A keep-alive client that parses Content-Length-framed responses, so
/// several requests can share one connection (`read_to_string` would wait
/// for EOF that keep-alive never sends).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> jsonlite::Value {
        jsonlite::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON ({e:?}): {}", self.body))
    }
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).unwrap();
    }

    fn read_response(&mut self) -> Response {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap();
                }
                headers.push((k.to_owned(), v.trim().to_owned()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        Response {
            status,
            headers,
            body: String::from_utf8(body).unwrap(),
        }
    }

    fn request(&mut self, raw: &str) -> Response {
        self.send(raw);
        self.read_response()
    }

    /// True once the server has closed the connection.
    fn at_eof(&mut self) -> bool {
        let mut probe = [0u8; 1];
        matches!(self.reader.read(&mut probe), Ok(0))
    }
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n")
}

fn post_query(body: &str) -> String {
    format!(
        "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
}

const EVENTS: &str = r#"{"op":"events","type":"MCE","from":0,"to":1000}"#;

/// Asserts the HTTP-error envelope contract shared by every failure row.
fn assert_error_envelope(resp: &Response, status: u16, code: &str) {
    assert_eq!(resp.status, status, "{}", resp.body);
    let env = resp.json();
    assert_eq!(env["v"].as_i64(), Some(2), "{}", resp.body);
    assert_eq!(env["status"].as_str(), Some("error"), "{}", resp.body);
    assert_eq!(env["error"]["code"].as_str(), Some(code), "{}", resp.body);
    assert!(
        env["error"]["message"]
            .as_str()
            .is_some_and(|m| !m.is_empty()),
        "error.message must explain the failure: {}",
        resp.body
    );
    assert_eq!(
        env["trace_id"].as_str().map(str::len),
        Some(16),
        "every HTTP-layer failure carries a trace_id: {}",
        resp.body
    );
}

/// One golden row per HTTP-layer failure class: the exact status and
/// typed code each must produce. Changing either is an API break and must
/// show up here.
#[test]
fn golden_http_error_rows() {
    let server = server();
    let addr = server.addr();

    // Malformed JSON body → 400 / BAD_JSON (engine-level parse failure).
    let resp = Client::connect(addr).request(&post_query("{not json"));
    assert_error_envelope(&resp, 400, "BAD_JSON");

    // Unknown path → 404 / NOT_FOUND.
    let resp = Client::connect(addr).request(&get("/v2/query"));
    assert_error_envelope(&resp, 404, "NOT_FOUND");

    // Known path, unsupported method → 405 / METHOD_NOT_ALLOWED + Allow.
    let resp = Client::connect(addr).request(&get("/v1/query"));
    assert_error_envelope(&resp, 405, "METHOD_NOT_ALLOWED");
    assert_eq!(resp.header("Allow"), Some("POST"));
    let resp = Client::connect(addr)
        .request("POST /v1/metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
    assert_error_envelope(&resp, 405, "METHOD_NOT_ALLOWED");
    assert_eq!(resp.header("Allow"), Some("GET"));

    // Malformed request line → 400 / BAD_REQUEST.
    let mut c = Client::connect(addr);
    c.send("NONSENSE\r\n\r\n");
    let resp = c.read_response();
    assert_error_envelope(&resp, 400, "BAD_REQUEST");
}

#[test]
fn oversized_body_gets_413_and_the_connection_closes() {
    let server = server_with(HttpConfig {
        max_body_bytes: 64,
        ..HttpConfig::default()
    });
    let big = "x".repeat(256);
    let mut c = Client::connect(server.addr());
    let resp = c.request(&post_query(&big));
    assert_error_envelope(&resp, 413, "PAYLOAD_TOO_LARGE");
    // The unread body bytes poison the stream, so the server must close.
    assert_eq!(resp.header("Connection"), Some("close"));
    assert!(c.at_eof(), "connection must close after a 413");
}

#[test]
fn slow_header_client_gets_400_then_the_socket_closes() {
    let server = server_with(HttpConfig {
        header_read_timeout: Duration::from_millis(200),
        ..HttpConfig::default()
    });
    // A client that starts a request but never finishes the headers.
    let mut c = Client::connect(server.addr());
    c.send("GET /health HTTP/1.1\r\nHost: x\r\nX-Slow:");
    let resp = c.read_response();
    assert_error_envelope(&resp, 400, "BAD_REQUEST");
    assert!(
        resp.body.contains("timed out"),
        "the envelope should say why: {}",
        resp.body
    );
    assert!(c.at_eof(), "slowloris connection must be closed");

    // A client that never sends a byte is dropped silently at the deadline.
    let mut idle = Client::connect(server.addr());
    idle.stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert!(idle.at_eof(), "fully idle connection must be dropped");
}

#[test]
fn rate_limited_bursts_get_429_envelopes_with_retry_after() {
    let server = server_with(HttpConfig {
        rate_per_sec: 1.0,
        rate_burst: 2.0,
        ..HttpConfig::default()
    });
    let mut c = Client::connect(server.addr());
    // The burst allowance admits the first two; the third sheds.
    for _ in 0..2 {
        let resp = c.request(&post_query(EVENTS));
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let resp = c.request(&post_query(EVENTS));
    assert_error_envelope(&resp, 429, "RATE_LIMITED");
    let retry_ms = resp.json()["error"]["retry_after_ms"].as_i64().unwrap();
    assert!(retry_ms > 0, "retry hint must be positive: {}", resp.body);
    let retry_s: u64 = resp.header("Retry-After").unwrap().parse().unwrap();
    assert!(retry_s >= 1, "Retry-After mirrors the hint, rounded up");
    // A shed is cheap: the connection stays open and another client id
    // has its own bucket.
    let resp = c.request(&format!(
        "POST /v1/query HTTP/1.1\r\nHost: x\r\nX-Client-Id: other\r\nContent-Length: {}\r\n\r\n{}",
        EVENTS.len(),
        EVENTS
    ));
    assert_eq!(resp.status, 200, "per-client buckets: {}", resp.body);
}

#[test]
fn overload_sheds_503_but_health_stays_reachable() {
    let server = server_with(HttpConfig {
        max_inflight: 0,
        ..HttpConfig::default()
    });
    let mut c = Client::connect(server.addr());
    let resp = c.request(&post_query(EVENTS));
    assert_error_envelope(&resp, 503, "OVERLOADED");
    let retry_ms = resp.json()["error"]["retry_after_ms"].as_i64().unwrap();
    assert!(retry_ms > 0);
    assert!(resp.header("Retry-After").is_some());
    // Liveness and health bypass admission so probes keep working while
    // the server sheds.
    let resp = c.request(&get("/v1/healthz"));
    assert_eq!(resp.status, 200, "{}", resp.body);
}

#[test]
fn keep_alive_reuses_one_connection_for_sequential_requests() {
    let server = server();
    let mut c = Client::connect(server.addr());
    let first = c.request(&post_query(EVENTS));
    assert_eq!(first.status, 200);
    assert_eq!(first.header("Connection"), Some("keep-alive"));
    let second = c.request(&get("/v1/slow_queries"));
    assert_eq!(second.status, 200);
    assert!(second.body.contains("threshold_ms"), "{}", second.body);
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = server();
    let mut c = Client::connect(server.addr());
    // Two complete requests in one write; responses must come back in
    // request order, each under its own trace id.
    let mk = |trace: &str| {
        format!(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nX-Trace-Id: {}\r\nContent-Length: {}\r\n\r\n{}",
            trace,
            EVENTS.len(),
            EVENTS
        )
    };
    c.send(&format!("{}{}", mk("1111aaaa"), mk("2222bbbb")));
    let first = c.read_response();
    let second = c.read_response();
    assert_eq!(
        first.json()["trace_id"].as_str(),
        Some("000000001111aaaa"),
        "{}",
        first.body
    );
    assert_eq!(
        second.json()["trace_id"].as_str(),
        Some("000000002222bbbb"),
        "{}",
        second.body
    );
}

#[test]
fn concurrent_clients_get_their_own_uninterleaved_responses() {
    // More clients than workers, every request tagged with a unique trace
    // id that must come back on exactly its own response.
    let server = server_with(HttpConfig {
        workers: 4,
        ..HttpConfig::default()
    });
    let addr = server.addr();
    let handles: Vec<_> = (0..12)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for i in 0..6 {
                    let trace = format!("{:08x}", (t + 1) * 1000 + i);
                    let raw = format!(
                        "POST /v1/query HTTP/1.1\r\nHost: x\r\nX-Trace-Id: {}\r\nContent-Length: {}\r\n\r\n{}",
                        trace,
                        EVENTS.len(),
                        EVENTS
                    );
                    let resp = c.request(&raw);
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert_eq!(
                        resp.json()["trace_id"].as_str(),
                        Some(format!("00000000{trace}").as_str()),
                        "response must belong to this client's request: {}",
                        resp.body
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn removed_legacy_paths_404_with_typed_pointers_v1_paths_serve() {
    let server = server();
    let addr = server.addr();
    for path in [
        "/query",
        "/metrics",
        "/trace",
        "/slow_queries",
        "/healthz",
        "/health",
    ] {
        let resp = Client::connect(addr).request(&get(path));
        assert_error_envelope(&resp, 404, "NOT_FOUND");
        assert!(
            resp.json()["error"]["message"]
                .as_str()
                .unwrap()
                .contains("/v1/"),
            "{path}: the 404 must point at the v1 replacement: {}",
            resp.body
        );
        assert_eq!(resp.header("Deprecation"), None, "{path}: header is gone");
    }
    for path in [
        "/v1/metrics",
        "/v1/trace",
        "/v1/slow_queries",
        "/v1/storage",
        "/v1/healthz",
        "/v1/topology",
    ] {
        let resp = Client::connect(addr).request(&get(path));
        assert_eq!(resp.status, 200, "{path}");
        assert_eq!(resp.header("Deprecation"), None, "{path}");
    }
}

#[test]
fn frontend_shape_is_surfaced_in_metrics() {
    let server = server();
    let resp = Client::connect(server.addr()).request(&get("/v1/metrics"));
    assert_eq!(resp.status, 200);
    let env = resp.json();
    let gauges = &env["data"]["gauges"];
    // The telemetry registry is process-global and other tests start their
    // own servers concurrently, so assert presence and sanity rather than
    // exact values.
    for g in [
        "server.http.workers",
        "server.http.max_inflight",
        "server.http.queue_depth",
    ] {
        assert!(
            gauges[g].as_i64().is_some_and(|v| v >= 1),
            "gauge {g} must surface the frontend shape: {}",
            resp.body
        );
    }
}
