//! Differential equivalence: the zero-copy ETL fast path against the
//! regex reference oracle.
//!
//! The contract (DESIGN.md §13): for every input line — well-formed,
//! malformed, truncated, CRLF, embedded-NUL, non-ASCII, or raw byte
//! garbage — the fast path must produce exactly the `ParsedLine` the
//! regex path produces (or exactly the same rejection), and a
//! chunk-parallel `import_bytes` through either backend must load
//! byte-identical event and job tables.

use hpclog_core::etl::batch::{ImportOptions, ParserBackend};
use hpclog_core::etl::fastpath::{
    reference_scan_line, split_chunks, FastParser, LineOutcome, Lines, ScanPredicate, ScanStats,
};
use hpclog_core::etl::parsers::EventParser;
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use loggen::topology::Topology;
use loggen::trace::{Scenario, ScenarioConfig};
use proptest::prelude::*;

/// Every event type the catalog can emit.
const EVENT_TYPES: [&str; 12] = [
    "MCE",
    "MEM_ECC",
    "MEM_UE",
    "GPU_DBE",
    "GPU_OFF_BUS",
    "GPU_SXM_PWR",
    "LUSTRE_ERR",
    "LUSTRE_EVICT",
    "DVS_ERR",
    "NET_LINK",
    "NET_THROTTLE",
    "KERNEL_PANIC",
];

fn fw(topo: Topology) -> Framework {
    Framework::new(FrameworkConfig {
        db_nodes: 4,
        replication_factor: 2,
        vnodes: 8,
        topology: topo,
        ..Default::default()
    })
    .unwrap()
}

/// Adversarial lines appended to every corpus: malformed envelopes,
/// truncations, CRLF, NULs, non-ASCII (fallback), and overflow quirks.
fn adversarial_lines() -> Vec<&'static str> {
    vec![
        "",
        "garbage",
        "1500000000123 console",
        "1500000000123 console c0-0c0s0n0",
        "1500000000123 console c0-0c0s0n0 ",
        "1500000000123 console c0-0c0s0n0 Machine Check Exception: bank",
        "1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 4\r",
        "1500000000124 console c0-0c0s0n0 DVS: with\0embedded nul",
        "1500000000125 console c0-0c0s0n0 Lustre: évicted client", // non-ASCII
        "1500000000126 console c0-0c0s0n0 NVRM: Xid (0000:02:00): 99999999999,",
        "1500000000127 app alps apid 99999999999999999999 start user=u app=A nodes=0-1",
        "1500000000128 app alps apid 12 end exit=99999999999",
        "1500000000129 app alps apid 13 start user=u app=A nodes=0-1", // unmatched start
        "9223372036854775808 console n0 DVS: ts overflow",
        "-5 console n0 DVS: negative ts is legal",
    ]
}

/// Query windows that cover everything a test corpus can contain: the
/// scenario era (plus the 48h job-end spillover) and the hour around
/// zero where the negative-timestamp adversarial line lands.
fn query_windows(cfg: &ScenarioConfig) -> [(i64, i64); 2] {
    [
        (
            cfg.start_ms - 3_600_000,
            cfg.start_ms + cfg.duration_ms + 72 * 3_600_000,
        ),
        (-3_600_000, 3_600_000),
    ]
}

fn sorted(mut rows: Vec<EventRecord>) -> Vec<EventRecord> {
    rows.sort_by(|a, b| {
        (a.ts_ms, &a.event_type, &a.source, &a.raw).cmp(&(
            b.ts_ms,
            &b.event_type,
            &b.source,
            &b.raw,
        ))
    });
    rows
}

/// The tentpole proof: a Titan-scale loggen corpus (plus adversarial
/// tail) imported through both backends loads byte-identical event and
/// job tables, and the fast path needs the oracle only for the one
/// non-ASCII adversarial line.
#[test]
fn titan_corpus_tables_are_byte_identical_across_backends() {
    let topo = Topology::titan();
    let cfg = ScenarioConfig {
        rate_scale: 2.0,
        ..ScenarioConfig::storm_day(2, 41)
    };
    let scenario = Scenario::generate(&topo, &cfg, 4242);
    let mut corpus = scenario.render_corpus();
    for line in adversarial_lines() {
        corpus.extend_from_slice(line.as_bytes());
        corpus.push(b'\n');
    }
    assert!(
        scenario.lines.len() > 10_000,
        "Titan-scale corpus expected, got {} lines",
        scenario.lines.len()
    );

    let fw_fast = fw(topo.clone());
    let fw_regex = fw(topo.clone());
    // Different chunk sizes on purpose: table content must not depend on
    // the chunking.
    let fast = fw_fast
        .batch_import_bytes(
            corpus.clone(),
            &ImportOptions {
                backend: ParserBackend::Fast,
                chunk_target_bytes: Some(16 * 1024),
                ..Default::default()
            },
        )
        .unwrap();
    let regex = fw_regex
        .batch_import_bytes(
            corpus,
            &ImportOptions {
                backend: ParserBackend::Regex,
                chunk_target_bytes: Some(256 * 1024),
                ..Default::default()
            },
        )
        .unwrap();

    assert_eq!(fast.parsed, regex.parsed);
    assert_eq!(fast.skipped, regex.skipped);
    assert_eq!(fast.event_rows, regex.event_rows);
    assert_eq!(fast.jobs, regex.jobs);
    assert_eq!(fast.unmatched_jobs, regex.unmatched_jobs);
    assert_eq!(fast.fallbacks, 1, "exactly the one non-ASCII line");

    // Byte-identical event_by_time table, per type.
    for (t0, t1) in query_windows(&cfg) {
        for etype in EVENT_TYPES {
            let a = sorted(fw_fast.events_by_type(etype, t0, t1).unwrap());
            let b = sorted(fw_regex.events_by_type(etype, t0, t1).unwrap());
            assert_eq!(a, b, "event_by_time rows diverge for {etype}");
        }
    }
    // Byte-identical job table.
    let (t0, t1) = query_windows(&cfg)[0];
    let mut jobs_a = fw_fast.apps_by_time(t0, t1).unwrap();
    let mut jobs_b = fw_regex.apps_by_time(t0, t1).unwrap();
    jobs_a.sort_by_key(|j| j.apid);
    jobs_b.sort_by_key(|j| j.apid);
    assert_eq!(jobs_a, jobs_b, "job tables diverge");
    assert_eq!(jobs_a.len(), scenario.jobs.len());
}

/// The event_by_location view is also byte-identical, checked per
/// source on a smaller topology where enumerating sources is cheap.
#[test]
fn location_table_is_byte_identical_across_backends() {
    let topo = Topology::scaled(3, 3);
    let cfg = ScenarioConfig {
        rate_scale: 12.0,
        ..ScenarioConfig::mce_hotspot(3, 2)
    };
    let scenario = Scenario::generate(&topo, &cfg, 99);
    let mut corpus = scenario.render_corpus();
    for line in adversarial_lines() {
        corpus.extend_from_slice(line.as_bytes());
        corpus.push(b'\n');
    }

    let fw_fast = fw(topo.clone());
    let fw_regex = fw(topo.clone());
    for (f, backend) in [
        (&fw_fast, ParserBackend::Fast),
        (&fw_regex, ParserBackend::Regex),
    ] {
        f.batch_import_bytes(
            corpus.clone(),
            &ImportOptions {
                backend,
                chunk_target_bytes: Some(8 * 1024),
                ..Default::default()
            },
        )
        .unwrap();
    }
    for (t0, t1) in query_windows(&cfg) {
        for i in 0..topo.node_count() {
            let source = topo.node(i).cname;
            let a = sorted(fw_fast.events_by_source(&source, t0, t1).unwrap());
            let b = sorted(fw_regex.events_by_source(&source, t0, t1).unwrap());
            assert_eq!(a, b, "event_by_location rows diverge for {source}");
        }
    }
}

/// Predicate pushdown keeps the backends in lockstep: same kept tables
/// AND same report counters under window + type filters.
#[test]
fn pushdown_equivalence_across_backends() {
    let topo = Topology::scaled(2, 2);
    let cfg = ScenarioConfig {
        rate_scale: 15.0,
        ..ScenarioConfig::quiet_day(4)
    };
    let scenario = Scenario::generate(&topo, &cfg, 7);
    let corpus = scenario.render_corpus();
    let preds = [
        ScanPredicate::default().with_window(cfg.start_ms + 3_600_000, cfg.start_ms + 7_200_000),
        ScanPredicate::default().with_types(["MCE", "LUSTRE_ERR", "NET_THROTTLE"]),
        ScanPredicate::default()
            .with_window(cfg.start_ms, cfg.start_ms + 2 * 3_600_000)
            .with_types(["DVS_ERR", "MEM_ECC"]),
    ];
    for pred in preds {
        let fw_fast = fw(topo.clone());
        let fw_regex = fw(topo.clone());
        let fast = fw_fast
            .batch_import_bytes(
                corpus.clone(),
                &ImportOptions {
                    predicate: pred.clone(),
                    backend: ParserBackend::Fast,
                    chunk_target_bytes: Some(4 * 1024),
                },
            )
            .unwrap();
        let regex = fw_regex
            .batch_import_bytes(
                corpus.clone(),
                &ImportOptions {
                    predicate: pred.clone(),
                    backend: ParserBackend::Regex,
                    chunk_target_bytes: Some(4 * 1024),
                },
            )
            .unwrap();
        assert_eq!(fast.parsed, regex.parsed, "pred {pred:?}");
        assert_eq!(fast.filtered, regex.filtered, "pred {pred:?}");
        assert_eq!(fast.skipped, regex.skipped, "pred {pred:?}");
        assert_eq!(fast.event_rows, regex.event_rows, "pred {pred:?}");
        assert_eq!(fast.jobs, regex.jobs, "jobs never filtered, pred {pred:?}");
        let (t0, t1) = query_windows(&cfg)[0];
        for etype in EVENT_TYPES {
            let a = sorted(fw_fast.events_by_type(etype, t0, t1).unwrap());
            let b = sorted(fw_regex.events_by_type(etype, t0, t1).unwrap());
            assert_eq!(a, b, "type {etype} pred {pred:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests: per-line stream equivalence on hostile input
// ---------------------------------------------------------------------------

/// Well-formed-ish fragments the mutator starts from — every pattern
/// family plus near-misses.
fn template_lines() -> Vec<&'static str> {
    vec![
        "1500000000123 console c0-0c0s0n0 Machine Check Exception: bank 4: b2 addr 3f cpu 1",
        "1500000000124 console c1-2c0s3n1 EDAC MC0: CE page 0x3aa2f, offset 0x630",
        "1500000000125 console c1-2c0s3n1 EDAC MC2: UE page 0x1f00a, offset 0x0",
        "1500000000126 console c0-0c1s2n3 NVRM: Xid (0000:02:00): 48, Double Bit ECC Error",
        "1500000000127 console c0-0c1s2n3 NVRM: Xid (0000:03:00): 79, GPU has fallen off the bus.",
        "1500000000128 console c0-0c0s0n0 LustreError: 11-0: atlas1-OST0041-osc: op failed",
        "1500000000129 console c0-0c0s0n0 Lustre: Connection restored to atlas1-OST0041",
        "1500000000130 console c0-0c0s0n0 DVS: file_node_down: removing c0-1c0s2n1",
        "1500000000131 netwatch c0-0c0s0n0 HSN: Gemini LCB lcb=g21l07 failed; recovering",
        "1500000000132 netwatch c0-0c0s0n0 Gemini HSN congestion protection engaged: throttle=on",
        "1500000000133 console c0-0c0s0n0 Kernel panic - not syncing: Fatal exception",
        "1500000000000 app alps apid 1000001 start user=usr0042 app=DCA++ nodes=128-255 width=128",
        "1500000360000 app alps apid 1000001 end exit=-9 runtime_s=360",
        "1500000000134 console c0-0c0s0n0 routine chatter nothing matches",
    ]
}

/// Fast path and oracle must agree on a single line, both bare parse and
/// predicated scan.
fn assert_line_equiv(fast: &FastParser, oracle: &EventParser, line: &[u8], pred: &ScanPredicate) {
    let via_oracle = std::str::from_utf8(line).ok().and_then(|s| oracle.parse(s));
    assert_eq!(
        fast.parse_line(line),
        via_oracle,
        "parse diverges on {:?}",
        String::from_utf8_lossy(line)
    );
    let mut stats = ScanStats::default();
    let reference = match std::str::from_utf8(line) {
        Ok(s) => reference_scan_line(oracle, s, pred),
        Err(_) => LineOutcome::Skipped,
    };
    assert_eq!(
        fast.scan_line(line, pred, &mut stats),
        reference,
        "scan diverges on {:?} pred {pred:?}",
        String::from_utf8_lossy(line)
    );
}

fn arb_pred() -> impl Strategy<Value = ScanPredicate> {
    prop_oneof![
        Just(ScanPredicate::default()),
        Just(ScanPredicate::default().with_window(1_500_000_000_000, 1_500_000_000_200)),
        Just(ScanPredicate::default().with_types(["MCE", "DVS_ERR", "GPU_DBE"])),
        Just(
            ScanPredicate::default()
                .with_window(0, 1_500_000_000_130)
                .with_types(["LUSTRE_ERR", "LUSTRE_EVICT"])
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Raw byte garbage: identical ParsedLine streams (or identical
    /// rejections) on both paths, line by line, for any chunking.
    #[test]
    fn byte_garbage_streams_are_identical(
        corpus in proptest::collection::vec(any::<u8>(), 0..600),
        target in 1usize..128,
        pred in arb_pred(),
    ) {
        let fast = FastParser::new();
        let oracle = EventParser::new();
        for line in Lines::new(&corpus) {
            assert_line_equiv(&fast, &oracle, line, &pred);
        }
        // Chunking never changes the line stream.
        let rejoined: Vec<&[u8]> = split_chunks(&corpus, target)
            .into_iter()
            .flat_map(|(s, e)| Lines::new(&corpus[s..e]))
            .collect();
        let whole: Vec<&[u8]> = Lines::new(&corpus).collect();
        prop_assert_eq!(rejoined, whole);
    }

    /// Mutated realistic lines: truncation, byte substitution (incl. \r,
    /// \0, space, and non-ASCII bytes), and random predicates.
    #[test]
    fn mutated_template_lines_agree(
        idx in 0usize..14,
        cut in 0usize..100,
        mutate_at in 0usize..100,
        mutate_to in prop_oneof![
            Just(b'\r'), Just(b'\0'), Just(b' '), Just(b'\t'),
            Just(0xC3u8), Just(0xA9u8), Just(0xFFu8),
            Just(b'9'), Just(b'-'), Just(b'x'),
        ],
        pred in arb_pred(),
    ) {
        let templates = template_lines();
        let mut line = templates[idx % templates.len()].as_bytes().to_vec();
        // Truncate the tail (models a torn final line in a chunk).
        let keep = line.len().saturating_sub(cut % (line.len() + 1));
        line.truncate(keep);
        if !line.is_empty() {
            let at = mutate_at % line.len();
            line[at] = mutate_to;
        }
        let fast = FastParser::new();
        let oracle = EventParser::new();
        assert_line_equiv(&fast, &oracle, &line, &pred);
    }

    /// A corpus truncated at an arbitrary byte (torn download / partial
    /// flush) still parses identically on both paths.
    #[test]
    fn truncated_corpus_streams_are_identical(
        cut in 0usize..4096,
        pred in arb_pred(),
    ) {
        let templates = template_lines();
        let mut corpus = Vec::new();
        for (i, t) in templates.iter().cycle().take(40).enumerate() {
            corpus.extend_from_slice(t.as_bytes());
            // Alternate LF and CRLF terminators.
            if i % 3 == 1 {
                corpus.push(b'\r');
            }
            corpus.push(b'\n');
        }
        corpus.truncate(cut.min(corpus.len()));
        let fast = FastParser::new();
        let oracle = EventParser::new();
        for line in Lines::new(&corpus) {
            assert_line_equiv(&fast, &oracle, line, &pred);
        }
    }

    /// Chunk-splitter invariants hold for arbitrary corpora and targets.
    #[test]
    fn chunk_invariants_hold(
        corpus in proptest::collection::vec(any::<u8>(), 0..500),
        target in 1usize..64,
    ) {
        let chunks = split_chunks(&corpus, target);
        let mut pos = 0usize;
        for (s, e) in chunks {
            prop_assert_eq!(s, pos, "contiguous");
            prop_assert!(e > s, "non-empty");
            if e < corpus.len() {
                prop_assert_eq!(corpus[e - 1], b'\n', "ends after newline");
            }
            pos = e;
        }
        prop_assert_eq!(pos, corpus.len(), "covers corpus");
    }
}
