//! End-to-end tracing and profiling contracts:
//!
//! - every envelope hands out a trace id, and caller-supplied ids (body
//!   field) are adopted verbatim;
//! - `"profile": true` returns a per-phase breakdown whose phases sum to
//!   the end-to-end latency within 10%;
//! - a profile is a closed span tree: every parent id resolves within the
//!   same profile (no orphan spans across the `read_multi` worker pool),
//!   and concurrent profiled requests never leak spans into each other;
//! - the streaming ingester's per-step trace keeps its store/commit spans
//!   parented (no orphans across `StreamIngester` steps);
//! - histogram exemplars and the flight recorder agree on trace ids.

use hpclog_core::etl::stream::{publish_lines, StreamIngester};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::server::QueryEngine;
use jsonlite::Value as Json;
use loggen::topology::Topology;
use loggen::trace::{Facility, RawLine};
use std::collections::HashSet;
use std::sync::Arc;

fn engine() -> QueryEngine {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 3,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .unwrap();
    for i in 0..50i64 {
        fw.insert_event(&EventRecord {
            ts_ms: i * 60_000,
            event_type: "MCE".into(),
            source: format!("c0-0c0s{}n0", i % 4),
            amount: 1,
            raw: format!("Machine Check Exception: bank {i}"),
        })
        .unwrap();
    }
    QueryEngine::new(Arc::new(fw))
}

fn call(e: &QueryEngine, req: &str) -> Json {
    jsonlite::parse(&e.handle(req)).expect("valid response JSON")
}

/// Asserts the profile is a closed tree rooted at exactly one
/// `server.engine.request` span: no parent id dangles outside the
/// profile's own span set. Returns the span names seen.
fn assert_closed_span_tree(resp: &Json) -> Vec<String> {
    let spans = resp["profile"]["spans"].as_array().expect("profile spans");
    let ids: HashSet<&str> = spans.iter().filter_map(|s| s["id"].as_str()).collect();
    let mut roots = 0;
    for s in spans {
        match s["parent"].as_str() {
            None => {
                assert_eq!(
                    s["name"].as_str(),
                    Some("server.engine.request"),
                    "only the request span may be parentless: {s}"
                );
                roots += 1;
            }
            Some(p) => assert!(
                ids.contains(p),
                "orphan span: parent {p} of {} not in this profile",
                s["name"]
            ),
        }
    }
    assert_eq!(roots, 1, "exactly one request root per profile");
    spans
        .iter()
        .map(|s| s["name"].as_str().unwrap().to_owned())
        .collect()
}

#[test]
fn body_trace_ids_are_adopted_and_fresh_ones_are_minted() {
    let e = engine();
    let resp = call(
        &e,
        r#"{"op":"events","type":"MCE","from":0,"to":3600000,"trace_id":"cafe1234"}"#,
    );
    assert_eq!(resp["trace_id"].as_str(), Some("00000000cafe1234"));
    // Without a caller id, two requests get distinct fresh ids.
    let a = call(&e, r#"{"op":"events","type":"MCE","from":0,"to":3600000}"#);
    let b = call(&e, r#"{"op":"events","type":"MCE","from":0,"to":3600000}"#);
    assert_ne!(a["trace_id"], b["trace_id"]);
    assert_eq!(a["trace_id"].as_str().map(str::len), Some(16));
}

#[test]
fn profile_phases_sum_to_the_end_to_end_latency() {
    let e = engine();
    // Cold (computes through the cluster) and warm (result-cache hit)
    // profiles must both account for their wall clock.
    for pass in ["cold", "warm"] {
        let resp = call(
            &e,
            r#"{"op":"heatmap","type":"MCE","from":0,"to":3600000,"profile":true}"#,
        );
        assert_eq!(resp["status"].as_str(), Some("ok"), "{pass}: {resp}");
        let profile = &resp["profile"];
        assert_eq!(
            profile["trace_id"], resp["trace_id"],
            "{pass}: profile and envelope agree on the trace"
        );
        let total = profile["total_us"].as_f64().unwrap();
        assert!(total > 0.0);
        let phases = profile["phases"].as_object().unwrap();
        assert_eq!(phases.len(), 7, "{pass}: all seven phases reported");
        let sum: f64 = phases.values().map(|v| v.as_f64().unwrap()).sum();
        let drift = (sum - total).abs() / total;
        assert!(
            drift <= 0.10,
            "{pass}: phases sum to {sum}µs but the request took {total}µs ({:.1}% off)",
            drift * 100.0
        );
        let cache = profile["cache"]["result"].as_str();
        match pass {
            "cold" => assert_eq!(cache, Some("miss"), "{resp}"),
            _ => assert_eq!(cache, Some("hit"), "{resp}"),
        }
    }
}

#[test]
fn cold_profiles_cover_the_scatter_gather_fan_out() {
    let e = engine();
    let resp = call(
        &e,
        r#"{"op":"events","type":"MCE","from":0,"to":3600000,"profile":true}"#,
    );
    assert_eq!(resp["status"].as_str(), Some("ok"), "{resp}");
    let names = assert_closed_span_tree(&resp);
    for expected in [
        "server.engine.request",
        "rasdb.coordinator.read_multi",
        "rasdb.coordinator.plan",
        "rasdb.coordinator.replica_read",
        "rasdb.coordinator.merge",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "span '{expected}' missing from profile: {names:?}"
        );
    }
    // Fan-out stats ride on the read_multi span tags.
    let fan_out = &resp["profile"]["fan_out"];
    assert!(fan_out["plans"].as_i64().unwrap_or(0) > 0, "{resp}");
}

#[test]
fn interleaved_profiled_requests_do_not_cross_contaminate() {
    let e = Arc::new(engine());
    let mut handles = Vec::new();
    for worker in 0..4 {
        let e = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            for round in 0..8 {
                // Distinct windows per worker/round defeat the result
                // cache, keeping the span mix rich on every request.
                let to = 3_600_000 - worker * 60_000 - round * 1_000;
                let req =
                    format!(r#"{{"op":"heatmap","type":"MCE","from":0,"to":{to},"profile":true}}"#);
                let resp = jsonlite::parse(&e.handle(&req)).expect("valid JSON");
                assert_eq!(resp["status"].as_str(), Some("ok"), "{resp}");
                assert_eq!(resp["profile"]["trace_id"], resp["trace_id"]);
                // A leaked span from a concurrent request would surface
                // as a second root or a dangling parent.
                assert_closed_span_tree(&resp);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn stream_ingester_steps_keep_their_spans_parented() {
    let fw = Arc::new(
        Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            ..Default::default()
        })
        .unwrap(),
    );
    let mut ing = StreamIngester::new(&fw, "obs", 0).unwrap();
    let lines: Vec<RawLine> = (0..4)
        .map(|i| RawLine {
            ts_ms: 1_500_000_000_000 + i * 1_000,
            facility: Facility::Console,
            source: fw.topology().node(0).cname.clone(),
            text: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".to_owned(),
        })
        .collect();
    publish_lines(&fw, &lines).unwrap();
    ing.step(16).unwrap();

    let spans = telemetry::trace_snapshot();
    let by_id: std::collections::HashMap<u64, &telemetry::SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    let stream_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.name.starts_with("etl.stream."))
        .collect();
    assert!(
        stream_spans.iter().any(|s| s.name == "etl.stream.step"),
        "no ingest step span recorded"
    );
    for s in &stream_spans {
        assert!(s.trace.is_some(), "{} span lost its trace", s.name);
        if let Some(parent) = s.parent {
            let Some(p) = by_id.get(&parent) else {
                // The bounded ring may have evicted the parent; that is
                // retention, not an orphan.
                continue;
            };
            assert_eq!(
                p.trace, s.trace,
                "{} dangles off a different trace than its parent {}",
                s.name, p.name
            );
        } else {
            assert_eq!(
                s.name, "etl.stream.step",
                "only the step root may be parentless"
            );
        }
    }
}

#[test]
fn exemplars_and_the_flight_recorder_agree_on_trace_ids() {
    let e = engine();
    e.recorder().set_threshold_ms(0);
    let mut issued = HashSet::new();
    for to in [3_600_000, 3_500_000, 3_400_000] {
        let resp = call(
            &e,
            &format!(r#"{{"op":"heatmap","type":"MCE","from":0,"to":{to}}}"#),
        );
        issued.insert(resp["trace_id"].as_str().unwrap().to_owned());
    }
    // Every recorded query carries a well-formed trace id, and our
    // requests are all in the recorder (threshold 0 captures everything).
    let recorded: HashSet<String> = call(&e, r#"{"op":"slow_queries"}"#)["data"]["queries"]
        .as_array()
        .unwrap()
        .iter()
        .map(|q| q["trace_id"].as_str().unwrap().to_owned())
        .collect();
    for t in &issued {
        assert!(recorded.contains(t), "trace {t} missing from recorder");
    }
    // The request-latency histogram links its tail to a trace id in the
    // same hex form (the registry is process-global, so the exemplar may
    // belong to a concurrent test's request — when it is ours, the
    // recorder must know it).
    let metrics = call(&e, r#"{"op":"metrics"}"#);
    let hist = &metrics["data"]["histograms"]["server.engine.request"];
    let max_exemplar = hist["max_exemplar"].as_str().expect("max exemplar");
    assert_eq!(max_exemplar.len(), 16);
    assert!(max_exemplar.chars().all(|c| c.is_ascii_hexdigit()));
    if issued.contains(max_exemplar) {
        assert!(recorded.contains(max_exemplar));
    }
}
