//! Golden envelope suite: one good request per op pinned against the v2
//! envelope contract, plus the typed error code each op's characteristic
//! bad input must produce.
//!
//! The contract under test (see `hpclog_core::server::request`):
//! - every response carries `"v": 2` and `"status"`;
//! - ok responses nest all op fields under `data` — nothing flat, no
//!   `deprecated` list (the v1-era mirror flag was removed in the v2
//!   cut);
//! - error responses carry `error.code` / `error.message` and nothing
//!   flat.

use hpclog_core::analytics::synopsis;
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::apprun::AppRun;
use hpclog_core::model::event::EventRecord;
use hpclog_core::model::keys::HOUR_MS;
use hpclog_core::server::QueryEngine;
use jsonlite::Value as Json;
use loggen::topology::Topology;
use std::sync::Arc;

fn engine() -> QueryEngine {
    let fw = Framework::new(FrameworkConfig {
        db_nodes: 3,
        replication_factor: 2,
        vnodes: 8,
        topology: Topology::scaled(2, 2),
        ..Default::default()
    })
    .unwrap();
    for i in 0..10i64 {
        fw.insert_event(&EventRecord {
            ts_ms: i * 60_000,
            event_type: "MCE".into(),
            source: format!("c0-0c0s{}n0", i % 4),
            amount: 1,
            raw: format!("Machine Check Exception: bank {i}"),
        })
        .unwrap();
    }
    fw.insert_app_run(&AppRun {
        apid: 1,
        user: "usr0001".into(),
        app: "VASP".into(),
        start_ms: 0,
        end_ms: HOUR_MS,
        node_first: 0,
        node_last: 3,
        exit_code: 0,
        other_info: Default::default(),
    })
    .unwrap();
    synopsis::build_synopsis(&fw, 0, HOUR_MS).unwrap();
    QueryEngine::new(Arc::new(fw))
}

fn call(e: &QueryEngine, req: &str) -> Json {
    jsonlite::parse(&e.handle(req)).expect("valid response JSON")
}

/// One golden good request per op, with the exact `data` field names the
/// op must answer with. Changing a field name (or leaking a new one) is an
/// API break and must show up here.
fn golden_ops() -> Vec<(&'static str, String, Vec<&'static str>)> {
    vec![
        (
            "events",
            r#"{"op":"events","type":"MCE","from":0,"to":3600000}"#.into(),
            vec!["rows"],
        ),
        (
            "heatmap",
            r#"{"op":"heatmap","type":"MCE","from":0,"to":3600000}"#.into(),
            vec!["cabinets", "hottest", "mean", "outliers", "stddev", "total"],
        ),
        (
            "distribution",
            r#"{"op":"distribution","type":"MCE","from":0,"to":3600000,"by":"node"}"#.into(),
            vec!["entries", "unattributed"],
        ),
        (
            "histogram",
            r#"{"op":"histogram","type":"MCE","from":0,"to":3600000,"bin_ms":600000}"#.into(),
            vec!["bin_ms", "bins", "from"],
        ),
        (
            "transfer_entropy",
            r#"{"op":"transfer_entropy","x":"MCE","y":"GPU_DBE","from":0,"to":3600000,"bin_ms":60000,"max_lag":5}"#.into(),
            vec!["lags"],
        ),
        (
            "cross_correlation",
            r#"{"op":"cross_correlation","x":"MCE","y":"GPU_DBE","from":0,"to":3600000,"bin_ms":60000,"max_lag":3}"#.into(),
            vec!["correlations"],
        ),
        (
            "wordcount",
            r#"{"op":"wordcount","type":"MCE","from":0,"to":3600000,"top":5}"#.into(),
            vec!["terms"],
        ),
        (
            "apps",
            r#"{"op":"apps","from":0,"to":3600000}"#.into(),
            vec!["runs"],
        ),
        (
            "nodeinfo",
            r#"{"op":"nodeinfo","cname":"c0-0c0s0n0"}"#.into(),
            vec!["cage", "cname", "col", "gemini", "index", "node", "row", "slot"],
        ),
        (
            "synopsis",
            r#"{"op":"synopsis","day":0}"#.into(),
            vec!["rows"],
        ),
        (
            "rules",
            r#"{"op":"rules","from":0,"to":3600000,"window_ms":10000,"scope":"node","min_support":1}"#.into(),
            vec!["rules"],
        ),
        (
            "profile",
            r#"{"op":"profile","app":"VASP"}"#.into(),
            vec!["app", "node_hours", "rates", "runs"],
        ),
        (
            "predict",
            r#"{"op":"predict","target":"MCE","from":0,"to":3600000,"bin_ms":60000}"#.into(),
            vec!["alarms", "failures", "precision", "recall", "target", "weights"],
        ),
        (
            "render",
            r#"{"op":"render","view":"heatmap","type":"MCE","from":0,"to":3600000}"#.into(),
            vec!["svg", "view"],
        ),
        (
            "cql",
            r#"{"op":"cql","q":"SELECT * FROM event_by_time WHERE hour = 0 AND type = 'MCE' LIMIT 3"}"#.into(),
            vec!["rows"],
        ),
        (
            "topology",
            r#"{"op":"topology"}"#.into(),
            vec!["epoch", "members", "replication_factor", "state"],
        ),
        ("dlq", r#"{"op":"dlq"}"#.into(), vec!["depth", "entries"]),
        (
            "dlq_requeue",
            r#"{"op":"dlq_requeue"}"#.into(),
            vec![
                "events_reinserted",
                "lines_republished",
                "poison_dropped",
                "remaining",
            ],
        ),
        (
            "metrics",
            r#"{"op":"metrics"}"#.into(),
            vec!["counters", "enabled", "gauges", "histograms"],
        ),
        (
            "storage",
            r#"{"op":"storage"}"#.into(),
            vec![
                "blocks_built",
                "blocks_evicted",
                "blocks_resident",
                "bytes_budget",
                "bytes_resident",
                "dict_compression",
                "dict_encoded_bytes",
                "dict_raw_bytes",
                "hits",
                "invalidations",
                "misses",
                "zone_skips",
            ],
        ),
        (
            "slow_queries",
            r#"{"op":"slow_queries"}"#.into(),
            vec!["count", "queries", "threshold_ms"],
        ),
        (
            "health",
            r#"{"op":"health"}"#.into(),
            vec!["ops", "overall", "window_ms"],
        ),
        ("trace", r#"{"op":"trace"}"#.into(), vec!["spans"]),
    ]
}

#[test]
fn every_op_answers_in_the_v2_envelope_with_no_flat_leakage() {
    let e = engine();
    for (op, req, fields) in golden_ops() {
        let resp = call(&e, &req);
        assert_eq!(resp["v"].as_i64(), Some(2), "op {op}: envelope version");
        assert_eq!(resp["status"].as_str(), Some("ok"), "op {op}: {resp}");
        assert_eq!(
            resp["trace_id"].as_str().map(str::len),
            Some(16),
            "op {op}: every envelope carries a 16-hex-digit trace_id"
        );
        let data = resp["data"].as_object().unwrap_or_else(|| {
            panic!("op {op}: 'data' must be an object, got {resp}");
        });
        let keys: Vec<&str> = data.keys().map(String::as_str).collect();
        assert_eq!(keys, fields, "op {op}: golden data field set");
        assert!(
            resp["deprecated"].is_null(),
            "op {op}: the deprecated list was removed in the v2 cut"
        );
        for field in &fields {
            assert!(
                resp[*field].is_null(),
                "op {op}: field '{field}' leaked flat (v2 has no mirrors)"
            );
        }
    }
}

/// While a join is streaming, admin ops are refused with the typed
/// `TOPOLOGY_CHANGING` code and a machine-readable retry hint; once the
/// transition commits, the same request succeeds (or fails for its own
/// reasons, not the transition's).
#[test]
fn concurrent_admin_op_gets_topology_changing_with_retry_hint() {
    let e = engine();
    let cluster = Arc::clone(e.framework().cluster());
    // Tiny chunks plus a stall per chunk keep the join window open long
    // enough for the probe below to land inside it.
    cluster.set_stream_chunk_rows(1);
    let plan =
        rasdb::TopologyFaultPlan::none().slow_chunk_every(1, std::time::Duration::from_millis(20));
    let join = std::thread::spawn(move || cluster.join_node_with(plan).unwrap());
    // Wait until the status op reports the join in flight — probing with a
    // mutating op any earlier could win the race and start its own
    // transition instead.
    let mut joining = false;
    for _ in 0..5000 {
        let resp = call(&e, r#"{"op":"topology"}"#);
        if resp["data"]["state"]
            .as_str()
            .unwrap()
            .starts_with("joining")
        {
            joining = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(joining, "status never reported the join in flight");
    let resp = call(&e, r#"{"op":"topology","action":"decommission","node":0}"#);
    assert_eq!(
        resp["error"]["code"].as_str(),
        Some("TOPOLOGY_CHANGING"),
        "{resp}"
    );
    assert!(
        resp["error"]["retry_after_ms"].as_i64().unwrap() > 0,
        "retry hint must be positive: {resp}"
    );
    join.join().unwrap();
    // After commit the cluster is stable again: the same op now runs (and
    // succeeds — four members at rf 2 can lose one).
    let resp = call(&e, r#"{"op":"topology","action":"decommission","node":0}"#);
    assert_eq!(resp["status"].as_str(), Some("ok"), "{resp}");
}

#[test]
fn each_op_reports_its_characteristic_typed_error_code() {
    let e = engine();
    for (req, code) in [
        ("not json at all", "BAD_JSON"),
        (r#"{"no_op":1}"#, "BAD_REQUEST"),
        (r#"{"op":"zap"}"#, "UNKNOWN_OP"),
        (r#"{"op":"events","from":100,"to":0}"#, "BAD_WINDOW"),
        (r#"{"op":"events","from":100,"to":100}"#, "EMPTY_WINDOW"),
        (r#"{"op":"events","from":0,"to":1,"limit":0}"#, "BAD_LIMIT"),
        (
            r#"{"op":"events","from":0,"to":1,"cursor":"junk"}"#,
            "BAD_CURSOR",
        ),
        (
            r#"{"op":"events","from":0,"to":1,"cursor":"ap:1:2"}"#,
            "BAD_CURSOR",
        ),
        (r#"{"op":"heatmap","from":0,"to":1}"#, "BAD_REQUEST"),
        (
            r#"{"op":"distribution","type":"MCE","from":0,"to":1,"by":"galaxy"}"#,
            "BAD_REQUEST",
        ),
        (
            r#"{"op":"histogram","type":"MCE","from":0,"to":1,"bin_ms":0}"#,
            "BAD_REQUEST",
        ),
        (
            r#"{"op":"transfer_entropy","y":"MCE","from":0,"to":1}"#,
            "BAD_REQUEST",
        ),
        (
            r#"{"op":"cross_correlation","x":"MCE","y":"MCE","from":0,"to":1,"max_lag":-1}"#,
            "BAD_REQUEST",
        ),
        (
            r#"{"op":"wordcount","type":"MCE","from":0,"to":1,"top":0}"#,
            "BAD_REQUEST",
        ),
        (r#"{"op":"apps"}"#, "BAD_REQUEST"),
        (r#"{"op":"nodeinfo","cname":"c9-9c9s9n9"}"#, "NOT_FOUND"),
        (r#"{"op":"synopsis"}"#, "BAD_REQUEST"),
        (
            r#"{"op":"rules","from":0,"to":1,"scope":"continent"}"#,
            "BAD_REQUEST",
        ),
        (r#"{"op":"profile"}"#, "BAD_REQUEST"),
        (r#"{"op":"predict","from":0,"to":1}"#, "BAD_REQUEST"),
        (
            r#"{"op":"render","view":"nope","from":0,"to":1}"#,
            "NOT_FOUND",
        ),
        (r#"{"op":"cql"}"#, "BAD_REQUEST"),
        (r#"{"op":"cql","q":"DROP TABLE x"}"#, "BAD_REQUEST"),
        (r#"{"op":"topology","action":"warp"}"#, "BAD_REQUEST"),
        (
            r#"{"op":"topology","action":"decommission"}"#,
            "BAD_REQUEST",
        ),
        (
            r#"{"op":"topology","action":"decommission","node":99}"#,
            "BAD_REQUEST",
        ),
        (r#"{"op":"dlq","max":0}"#, "BAD_REQUEST"),
        (r#"{"op":"dlq_requeue","max":-3}"#, "BAD_REQUEST"),
    ] {
        let resp = call(&e, req);
        assert_eq!(resp["v"].as_i64(), Some(2), "{req}");
        assert_eq!(resp["status"].as_str(), Some("error"), "{req}: {resp}");
        assert_eq!(resp["error"]["code"].as_str(), Some(code), "{req}: {resp}");
        assert!(!resp["error"]["message"].as_str().unwrap().is_empty());
        assert!(resp["message"].is_null(), "{req}: no flat mirror");
        assert!(resp["data"].is_null(), "{req}: errors carry no data");
        assert_eq!(
            resp["trace_id"].as_str().map(str::len),
            Some(16),
            "{req}: errors carry a trace_id too"
        );
    }
}

/// The flight recorder links slow queries back to the trace ids the
/// envelopes handed out. Re-arming the threshold to 0 captures every
/// request, so the next query must show up with its phases.
#[test]
fn flight_recorder_surfaces_queries_with_their_trace_ids() {
    let e = engine();
    let resp = call(&e, r#"{"op":"slow_queries","threshold_ms":0}"#);
    assert_eq!(resp["data"]["threshold_ms"].as_i64(), Some(0));
    let q = call(&e, r#"{"op":"heatmap","type":"MCE","from":0,"to":3600000}"#);
    let trace = q["trace_id"].as_str().unwrap().to_owned();
    let resp = call(&e, r#"{"op":"slow_queries"}"#);
    let rows = resp["data"]["queries"].as_array().unwrap();
    assert_eq!(
        resp["data"]["count"].as_i64(),
        Some(rows.len() as i64),
        "{resp}"
    );
    let row = rows
        .iter()
        .find(|r| r["trace_id"].as_str() == Some(&trace))
        .unwrap_or_else(|| panic!("query {trace} not in recorder: {resp}"));
    assert_eq!(row["op"].as_str(), Some("heatmap"));
    assert_eq!(row["status"].as_str(), Some("ok"));
    assert!(row["total_us"].as_f64().unwrap() > 0.0);
    for phase in [
        "parse",
        "cache_probe",
        "plan",
        "fan_out",
        "merge",
        "analyze",
        "serialize",
    ] {
        assert!(
            row["phases"][phase].as_f64().is_some(),
            "phase '{phase}' missing: {row}"
        );
    }
}

/// An op whose objective cannot be met (0 ms latency target at a 50%
/// objective) must drive the health surface to `degraded`; untouched ops
/// stay `ok` and the overall status is the worst row.
#[test]
fn health_reports_forced_degradation() {
    use hpclog_core::server::slo::SloPolicy;
    let e = engine();
    e.slo().set_policy(
        "events",
        SloPolicy {
            latency_ms: 0,
            objective: 0.5,
        },
    );
    call(&e, r#"{"op":"events","type":"MCE","from":0,"to":3600000}"#);
    call(&e, r#"{"op":"heatmap","type":"MCE","from":0,"to":3600000}"#);
    let resp = call(&e, r#"{"op":"health"}"#);
    assert_eq!(resp["status"].as_str(), Some("ok"), "envelope itself is ok");
    assert_eq!(resp["data"]["overall"].as_str(), Some("degraded"), "{resp}");
    let ops = resp["data"]["ops"].as_array().unwrap();
    let events = ops
        .iter()
        .find(|r| r["op"].as_str() == Some("events"))
        .unwrap();
    assert_eq!(events["status"].as_str(), Some("degraded"), "{resp}");
    assert!(events["burn_rate"].as_f64().unwrap() >= 1.0);
    assert_eq!(events["latency_ms"].as_i64(), Some(0));
    let heatmap = ops
        .iter()
        .find(|r| r["op"].as_str() == Some("heatmap"))
        .unwrap();
    assert_eq!(heatmap["status"].as_str(), Some("ok"), "{resp}");
}
