//! Cache equivalence: for any interleaving of direct writes, streaming
//! ingestion (with watermark commits), synopsis rebuilds, columnar-block
//! churn, topology-epoch bumps, and queries, a framework with both cache
//! tiers (and the columnar analytics store) enabled must answer every
//! request **byte-for-byte identically** to a framework with all of them
//! disabled.
//!
//! This is the correctness contract of the whole caching design: hits,
//! misses, lazy invalidation, open-window (watermark) invalidation,
//! columnar block builds/evictions, and epoch-driven drops must never be
//! observable through the API.

use hpclog_core::analytics::synopsis;
use hpclog_core::etl::stream::{publish_lines, StreamIngester};
use hpclog_core::framework::{Framework, FrameworkConfig};
use hpclog_core::model::event::EventRecord;
use hpclog_core::server::QueryEngine;
use loggen::topology::Topology;
use loggen::trace::{Facility, RawLine};
use proptest::prelude::*;
use std::sync::Arc;

const T0: i64 = 1_500_000_000_000;
const SPAN_MS: i64 = 2 * 3_600_000;

/// One step of the interleaved workload, applied to both frameworks.
#[derive(Debug, Clone)]
enum Step {
    /// Direct insert through the batch path (bumps data versions).
    Insert { dt: i64, node: usize },
    /// Publish one raw line to the bus and run a streaming step — flushed
    /// windows commit offsets + watermark, invalidating open entries.
    Stream { dt: i64, node: usize },
    /// Rebuild the synopsis table over the whole span.
    Synopsis,
    /// Evict every resident columnar block (budget to zero and back), so
    /// later scans rebuild from the row path mid-script.
    ColumnarChurn,
    /// Join a node into both clusters: the topology epoch moves, which
    /// must drop columnar blocks and result-cache entries alike.
    EpochBump,
    /// Run one query from the fixed list against both engines.
    Query(usize),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..SPAN_MS, 0usize..8).prop_map(|(dt, node)| Step::Insert { dt, node }),
        4 => (0..SPAN_MS, 0usize..8).prop_map(|(dt, node)| Step::Stream { dt, node }),
        2 => Just(Step::Synopsis),
        2 => Just(Step::ColumnarChurn),
        1 => Just(Step::EpochBump),
        6 => (0usize..7).prop_map(Step::Query),
    ]
}

fn queries() -> Vec<String> {
    let (a, b) = (T0, T0 + SPAN_MS);
    vec![
        format!(r#"{{"op":"heatmap","type":"MCE","from":{a},"to":{b}}}"#),
        format!(r#"{{"op":"histogram","type":"MCE","from":{a},"to":{b},"bin_ms":600000}}"#),
        format!(r#"{{"op":"wordcount","type":"MCE","from":{a},"to":{b},"top":10}}"#),
        format!(r#"{{"op":"distribution","type":"MCE","from":{a},"to":{b},"by":"node"}}"#),
        format!(r#"{{"op":"events","type":"MCE","from":{a},"to":{b}}}"#),
        format!(
            r#"{{"op":"cross_correlation","x":"MCE","y":"MCE","from":{a},"to":{b},"bin_ms":600000,"max_lag":3}}"#
        ),
        format!(r#"{{"op":"synopsis","day":{}}}"#, T0 / (24 * 3_600_000)),
    ]
}

fn boot(caches_on: bool) -> Arc<Framework> {
    let (block, result) = if caches_on {
        (4 << 20, 4 << 20)
    } else {
        (0, 0)
    };
    Arc::new(
        Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            block_cache_bytes: block,
            result_cache_bytes: result,
            ..Default::default()
        })
        .unwrap(),
    )
}

fn mce_line(topo: &Topology, dt: i64, node: usize) -> RawLine {
    RawLine {
        ts_ms: T0 + dt,
        facility: Facility::Console,
        source: topo.node(node % topo.node_count()).cname,
        text: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".to_owned(),
    }
}

/// Strips the per-request `trace_id` before comparing: every response
/// carries a fresh one by design, so it is the only envelope field allowed
/// to differ between the cached and uncached frameworks.
fn sans_trace(resp: String) -> String {
    let mut v = jsonlite::parse(&resp).expect("valid response JSON");
    assert!(v.remove("trace_id").is_some(), "envelope carries trace_id");
    v.to_string()
}

fn mce_event(topo: &Topology, dt: i64, node: usize) -> EventRecord {
    EventRecord {
        ts_ms: T0 + dt,
        event_type: "MCE".into(),
        source: topo.node(node % topo.node_count()).cname,
        amount: 1,
        raw: "Machine Check Exception: bank 1: b2 addr 3f cpu 0".into(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_and_uncached_frameworks_answer_byte_identically(
        script in prop::collection::vec(arb_step(), 1..28),
    ) {
        let cached_fw = boot(true);
        let plain_fw = boot(false);
        let cached = QueryEngine::new(Arc::clone(&cached_fw));
        let plain = QueryEngine::new(Arc::clone(&plain_fw));
        let mut cached_ing = StreamIngester::new(&cached_fw, "eq", 0).unwrap();
        let mut plain_ing = StreamIngester::new(&plain_fw, "eq", 0).unwrap();
        let queries = queries();

        for step in &script {
            match step {
                Step::Insert { dt, node } => {
                    cached_fw
                        .insert_event(&mce_event(cached_fw.topology(), *dt, *node))
                        .unwrap();
                    plain_fw
                        .insert_event(&mce_event(plain_fw.topology(), *dt, *node))
                        .unwrap();
                }
                Step::Stream { dt, node } => {
                    publish_lines(&cached_fw, &[mce_line(cached_fw.topology(), *dt, *node)])
                        .unwrap();
                    publish_lines(&plain_fw, &[mce_line(plain_fw.topology(), *dt, *node)])
                        .unwrap();
                    cached_ing.step(16).unwrap();
                    plain_ing.step(16).unwrap();
                }
                Step::Synopsis => {
                    synopsis::build_synopsis(&cached_fw, T0, T0 + SPAN_MS).unwrap();
                    synopsis::build_synopsis(&plain_fw, T0, T0 + SPAN_MS).unwrap();
                }
                Step::ColumnarChurn => {
                    // Drop to zero (evicting everything resident) and
                    // restore the original budget. On the plain framework
                    // the budget is already zero, so this keeps it a pure
                    // row-path reference.
                    for fw in [&cached_fw, &plain_fw] {
                        let budget = fw.columnar().stats().bytes_budget as usize;
                        fw.columnar().set_budget(0);
                        fw.columnar().set_budget(budget);
                    }
                }
                Step::EpochBump => {
                    cached_fw.cluster().join_node().unwrap();
                    plain_fw.cluster().join_node().unwrap();
                }
                Step::Query(i) => {
                    let q = &queries[*i];
                    prop_assert_eq!(
                        sans_trace(cached.handle(q)),
                        sans_trace(plain.handle(q)),
                        "query {}",
                        q
                    );
                }
            }
        }
        // Final sweep: every query, twice (the second pass reads the
        // cached side's warm entries), must still match the uncached
        // framework exactly.
        for q in &queries {
            prop_assert_eq!(
                sans_trace(cached.handle(q)),
                sans_trace(plain.handle(q)),
                "final {}",
                q
            );
            prop_assert_eq!(
                sans_trace(cached.handle(q)),
                sans_trace(plain.handle(q)),
                "warm {}",
                q
            );
        }
    }
}
