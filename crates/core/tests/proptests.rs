//! Property tests across the framework's pipelines.

use hpclog_core::analytics::bin_counts;
use hpclog_core::analytics::composite::{mine_rules, Scope};
use hpclog_core::analytics::transfer_entropy::transfer_entropy_binary;
use hpclog_core::etl::parsers::{EventParser, ParsedLine};
use hpclog_core::model::event::EventRecord;
use loggen::topology::Topology;
use loggen::trace::{Facility, RawLine};
use proptest::prelude::*;

fn arb_event_type() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("MCE"),
        Just("MEM_ECC"),
        Just("MEM_UE"),
        Just("GPU_DBE"),
        Just("GPU_OFF_BUS"),
        Just("LUSTRE_ERR"),
        Just("DVS_ERR"),
        Just("NET_THROTTLE"),
        Just("KERNEL_PANIC"),
    ]
}

/// A raw line whose text matches the given type's ETL pattern.
fn line_for(etype: &str, ts: i64, node: usize) -> RawLine {
    let topo = Topology::scaled(2, 2);
    let text = match etype {
        "MCE" => "Machine Check Exception: bank 2: b200 addr 3f cpu 7".to_owned(),
        "MEM_ECC" => "EDAC MC1: CE page 0x3aa2f, offset 0x630".to_owned(),
        "MEM_UE" => "EDAC MC1: UE page 0x3aa2f, offset 0x0".to_owned(),
        "GPU_DBE" => "NVRM: Xid (0000:02:00): 48, Double Bit ECC Error".to_owned(),
        "GPU_OFF_BUS" => "NVRM: Xid (0000:02:00): 79, GPU has fallen off the bus.".to_owned(),
        "LUSTRE_ERR" => "LustreError: 11-0: atlas1-OST0041-osc-ffff00: operation failed".to_owned(),
        "DVS_ERR" => "DVS: file_node_down: removing server".to_owned(),
        "NET_THROTTLE" => "Gemini HSN congestion protection engaged: throttle=on".to_owned(),
        "KERNEL_PANIC" => "Kernel panic - not syncing: test".to_owned(),
        other => panic!("unknown type {other}"),
    };
    RawLine {
        ts_ms: ts,
        facility: Facility::Console,
        source: topo.node(node % topo.node_count()).cname,
        text,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn etl_parse_recovers_type_source_and_time(
        etype in arb_event_type(),
        ts in 0i64..10_000_000_000_000,
        node in 0usize..384,
    ) {
        let line = line_for(etype, ts, node);
        let parser = EventParser::new();
        match parser.parse(&line.render()) {
            Some(ParsedLine::Event(ev)) => {
                prop_assert_eq!(ev.event_type, etype);
                prop_assert_eq!(ev.ts_ms, ts);
                prop_assert_eq!(ev.source, line.source);
                prop_assert_eq!(ev.raw, line.text);
            }
            other => prop_assert!(false, "parsed {:?}", other),
        }
    }

    #[test]
    fn bin_counts_conserve_in_window_mass(
        events in prop::collection::vec((0i64..100_000, 1i32..5), 0..200),
        bin_ms in 1i64..10_000,
    ) {
        let records: Vec<EventRecord> = events
            .iter()
            .map(|(ts, amount)| EventRecord {
                ts_ms: *ts,
                event_type: "MCE".into(),
                source: "n".into(),
                amount: *amount,
                raw: String::new(),
            })
            .collect();
        let bins = bin_counts(&records, 0, 100_000, bin_ms);
        let total: f64 = bins.iter().sum();
        let want: i32 = events.iter().map(|(_, a)| *a).sum();
        prop_assert_eq!(total as i32, want);
    }

    #[test]
    fn te_is_nonnegative_and_finite_on_arbitrary_series(
        x in prop::collection::vec(any::<bool>(), 0..300),
        y in prop::collection::vec(any::<bool>(), 0..300),
        lag in 1usize..6,
    ) {
        let te = transfer_entropy_binary(&x, &y, lag);
        prop_assert!(te >= 0.0, "te = {}", te);
        prop_assert!(te.is_finite());
        // TE is bounded by 1 bit for binary targets.
        prop_assert!(te <= 1.0 + 1e-9, "te = {}", te);
    }

    #[test]
    fn mined_rule_support_never_exceeds_antecedent_count(
        raw in prop::collection::vec((0i64..60_000, 0usize..8, arb_event_type()), 0..80),
        window in 1i64..30_000,
    ) {
        let topo = Topology::scaled(2, 2);
        let events: Vec<EventRecord> = raw
            .iter()
            .map(|(ts, node, t)| EventRecord {
                ts_ms: *ts,
                event_type: (*t).to_owned(),
                source: topo.node(*node).cname,
                amount: 1,
                raw: String::new(),
            })
            .collect();
        let rules = mine_rules(&events, &topo, window, Scope::Node, 1);
        for rule in &rules {
            let count_a = events.iter().filter(|e| e.event_type == rule.antecedent).count() as u64;
            prop_assert!(rule.support <= count_a);
            prop_assert!(rule.confidence <= 1.0 + 1e-9);
            prop_assert!(rule.lift >= 0.0);
        }
        // Node scope can never out-support system scope.
        let sys_rules = mine_rules(&events, &topo, window, Scope::System, 1);
        for rule in &rules {
            let sys = sys_rules
                .iter()
                .find(|r| r.antecedent == rule.antecedent && r.consequent == rule.consequent);
            if let Some(sys) = sys {
                prop_assert!(rule.support <= sys.support);
            }
        }
    }

    #[test]
    fn streaming_coalesce_preserves_mass_for_any_burst(
        bursts in prop::collection::vec((0i64..5_000, 0usize..8), 1..60),
    ) {
        use hpclog_core::etl::stream::{publish_lines, StreamIngester};
        use hpclog_core::framework::{Framework, FrameworkConfig};
        let fw = Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            ..Default::default()
        })
        .unwrap();
        let t0 = 1_500_000_000_000i64;
        let lines: Vec<RawLine> = bursts
            .iter()
            .map(|(dt, node)| {
                let mut l = line_for("MCE", t0 + dt, *node);
                l.ts_ms = t0 + dt;
                l
            })
            .collect();
        publish_lines(&fw, &lines).unwrap();
        let report = StreamIngester::new(&fw, "p", 60_000)
            .unwrap()
            .run_to_completion(64)
            .unwrap();
        prop_assert_eq!(report.events_in, lines.len());
        let mass: i32 = fw
            .events_by_type("MCE", t0, t0 + 10_000)
            .unwrap()
            .iter()
            .map(|e| e.amount)
            .sum();
        prop_assert_eq!(mass as usize, lines.len());
    }

    /// Replay idempotence: for any burst and any crash point, a restarted
    /// ingester that replays from the checkpoint converges to exactly the
    /// tables a crash-free run produces — duplicates are fully absorbed by
    /// the offset guard, the checkpointed watermark, and LWW upserts.
    #[test]
    fn streaming_replay_after_crash_is_idempotent(
        bursts in prop::collection::vec((0i64..90_000, 0usize..8), 1..80),
        crash_after_steps in 0usize..6,
        chunk in 1usize..24,
    ) {
        use hpclog_core::etl::stream::{publish_lines, StreamIngester};
        use hpclog_core::framework::{Framework, FrameworkConfig};
        use hpclog_core::model::event::EventRecord;
        let boot = || Framework::new(FrameworkConfig {
            db_nodes: 2,
            replication_factor: 1,
            vnodes: 4,
            topology: Topology::scaled(1, 1),
            ..Default::default()
        })
        .unwrap();
        let t0 = 1_500_000_000_000i64;
        let lines: Vec<RawLine> = bursts
            .iter()
            .map(|(dt, node)| {
                let mut l = line_for("MCE", t0 + dt, *node);
                l.ts_ms = t0 + dt;
                l
            })
            .collect();
        let rows_of = |fw: &Framework| -> Vec<EventRecord> {
            let mut rows = fw.events_by_type("MCE", t0, t0 + 120_000).unwrap();
            rows.sort_by(|a, b| (a.ts_ms, &a.source).cmp(&(b.ts_ms, &b.source)));
            rows
        };

        // Reference: no crash.
        let clean = boot();
        publish_lines(&clean, &lines).unwrap();
        StreamIngester::new(&clean, "p", 120_000)
            .unwrap()
            .run_to_completion(chunk)
            .unwrap();

        // Crashing run: ingest some steps, drop the ingester cold, resume.
        let fw = boot();
        publish_lines(&fw, &lines).unwrap();
        {
            let mut first = StreamIngester::new(&fw, "p", 120_000).unwrap();
            for _ in 0..crash_after_steps {
                first.step(chunk).unwrap();
            }
        }
        StreamIngester::new(&fw, "p", 120_000)
            .unwrap()
            .run_to_completion(chunk)
            .unwrap();

        let mass: i32 = rows_of(&fw).iter().map(|e| e.amount).sum();
        prop_assert_eq!(mass as usize, lines.len(), "no loss, no double count");
        prop_assert_eq!(rows_of(&fw), rows_of(&clean), "tables identical to crash-free run");
    }
}
