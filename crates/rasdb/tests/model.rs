//! Model-based property tests: the full stack (commit log, memtable,
//! SSTables, compaction, replication, failures) must agree with a plain
//! `BTreeMap` model under arbitrary operation sequences.

use proptest::prelude::*;
use rasdb::cluster::{Cluster, ClusterConfig};
use rasdb::query::Consistency;
use rasdb::ring::NodeId;
use rasdb::schema::{ColumnType, TableSchema};
use rasdb::types::{Key, Value};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    /// Insert (hour, ts) -> value.
    Insert { hour: i64, ts: i64, v: i32 },
    /// Delete a row.
    Delete { hour: i64, ts: i64 },
    /// Force flush + compaction everywhere.
    Flush,
    /// Crash/restart one node (commit-log replay).
    Restart(usize),
    /// Take a node down, write something, bring it back (hints replay).
    Blip {
        node: usize,
        hour: i64,
        ts: i64,
        v: i32,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..6i64, 0..50i64, any::<i32>()).prop_map(|(hour, ts, v)| Op::Insert { hour, ts, v }),
        2 => (0..6i64, 0..50i64).prop_map(|(hour, ts)| Op::Delete { hour, ts }),
        1 => Just(Op::Flush),
        1 => (0..4usize).prop_map(Op::Restart),
        1 => (0..4usize, 0..6i64, 0..50i64, any::<i32>())
            .prop_map(|(node, hour, ts, v)| Op::Blip { node, hour, ts, v }),
    ]
}

fn schema() -> TableSchema {
    TableSchema::builder("t")
        .partition_key("hour", ColumnType::BigInt)
        .clustering_key("ts", ColumnType::Timestamp)
        .column("v", ColumnType::Int)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cluster_matches_btreemap_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let cluster = Cluster::new(ClusterConfig { nodes: 4, replication_factor: 3, vnodes: 8 });
        cluster.create_table(schema()).unwrap();
        let mut model: BTreeMap<(i64, i64), i32> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert { hour, ts, v } => {
                    cluster.insert(
                        "t",
                        vec![
                            ("hour", Value::BigInt(*hour)),
                            ("ts", Value::Timestamp(*ts)),
                            ("v", Value::Int(*v)),
                        ],
                        Consistency::Quorum,
                    ).unwrap();
                    model.insert((*hour, *ts), *v);
                }
                Op::Delete { hour, ts } => {
                    cluster.delete(
                        "t",
                        vec![Value::BigInt(*hour)],
                        vec![Value::Timestamp(*ts)],
                        Consistency::Quorum,
                    ).unwrap();
                    model.remove(&(*hour, *ts));
                }
                Op::Flush => cluster.flush_all(),
                Op::Restart(n) => cluster.node(NodeId(*n)).restart(),
                Op::Blip { node, hour, ts, v } => {
                    cluster.take_node_down(NodeId(*node));
                    // RF 3 on 4 nodes: quorum still reachable with 1 down.
                    cluster.insert(
                        "t",
                        vec![
                            ("hour", Value::BigInt(*hour)),
                            ("ts", Value::Timestamp(*ts)),
                            ("v", Value::Int(*v)),
                        ],
                        Consistency::Quorum,
                    ).unwrap();
                    model.insert((*hour, *ts), *v);
                    cluster.bring_node_up(NodeId(*node));
                }
            }
        }

        // Every partition read at QUORUM must equal the model exactly.
        for hour in 0..6i64 {
            let rows = cluster
                .select("t")
                .partition(vec![Value::BigInt(hour)])
                .run(Consistency::Quorum)
                .unwrap();
            let got: Vec<(i64, i32)> = rows
                .iter()
                .map(|r| {
                    let ts = r.clustering.0[0].as_i64().unwrap();
                    let v = match r.cell("v") {
                        Some(Value::Int(v)) => *v,
                        other => panic!("bad cell {other:?}"),
                    };
                    (ts, v)
                })
                .collect();
            let want: Vec<(i64, i32)> = model
                .range((hour, i64::MIN)..=(hour, i64::MAX))
                .map(|((_, ts), v)| (*ts, *v))
                .collect();
            prop_assert_eq!(got, want, "partition hour={}", hour);
        }
    }

    #[test]
    fn range_queries_match_model(
        inserts in prop::collection::vec((0..100i64, any::<i32>()), 1..80),
        lo in 0..100i64,
        width in 1..60i64,
    ) {
        let cluster = Cluster::new(ClusterConfig { nodes: 3, replication_factor: 2, vnodes: 8 });
        cluster.create_table(schema()).unwrap();
        let mut model: BTreeMap<i64, i32> = BTreeMap::new();
        for (ts, v) in &inserts {
            cluster.insert(
                "t",
                vec![
                    ("hour", Value::BigInt(0)),
                    ("ts", Value::Timestamp(*ts)),
                    ("v", Value::Int(*v)),
                ],
                Consistency::All,
            ).unwrap();
            model.insert(*ts, *v);
        }
        cluster.flush_all();
        let hi = lo + width;
        let rows = cluster
            .select("t")
            .partition(vec![Value::BigInt(0)])
            .from_inclusive(Value::Timestamp(lo))
            .to_exclusive(Value::Timestamp(hi))
            .run(Consistency::All)
            .unwrap();
        let got: Vec<i64> = rows.iter().map(|r| r.clustering.0[0].as_i64().unwrap()).collect();
        let want: Vec<i64> = model.range(lo..hi).map(|(ts, _)| *ts).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bloom_filters_skip_foreign_sstables(hours in prop::collection::vec(0..32i64, 8..24)) {
        let cluster = Cluster::new(ClusterConfig { nodes: 1, replication_factor: 1, vnodes: 8 });
        cluster.create_table(schema()).unwrap();
        // One SSTable per distinct partition: insert, then flush each round.
        let distinct: std::collections::BTreeSet<i64> = hours.iter().copied().collect();
        for hour in &distinct {
            cluster.insert(
                "t",
                vec![
                    ("hour", Value::BigInt(*hour)),
                    ("ts", Value::Timestamp(0)),
                    ("v", Value::Int(1)),
                ],
                Consistency::One,
            ).unwrap();
            cluster.flush_all();
        }
        // Compaction may have merged some tables; whatever count is left is
        // stable during the reads below (reads never compact).
        let sstables = cluster.node(NodeId(0)).sstable_count("t") as u64;
        prop_assert!(sstables >= 1);
        let before = cluster.stats();
        for hour in &distinct {
            let rows = cluster
                .select("t")
                .partition(vec![Value::BigInt(*hour)])
                .run(Consistency::One)
                .unwrap();
            prop_assert_eq!(rows.len(), 1);
        }
        let after = cluster.stats();
        let probes = after.sstable_probes - before.sstable_probes;
        let skips = after.bloom_skips - before.bloom_skips;
        // Conservation: every (read, sstable) pair is either probed or
        // bloom-skipped.
        let reads = distinct.len() as u64;
        prop_assert_eq!(probes + skips, reads * sstables);
        // Every partition lives in exactly one sstable, so each read must
        // probe at least that one...
        prop_assert!(probes >= reads, "probes={} reads={}", probes, reads);
        // ...and with several sstables the blooms must skip foreign ones
        // (false positives would have to fire on every single pair to make
        // this 0, which a working filter never does at this scale).
        if sstables > 1 {
            prop_assert!(skips > 0, "no bloom skips across {} sstables", sstables);
        }
    }

    #[test]
    fn replica_sets_are_stable_and_distinct(keys in prop::collection::vec(any::<i64>(), 1..50)) {
        let cluster = Cluster::new(ClusterConfig { nodes: 8, replication_factor: 3, vnodes: 16 });
        for k in keys {
            let key = Key(vec![Value::BigInt(k)]);
            let a = cluster.owners(&key);
            let b = cluster.owners(&key);
            prop_assert_eq!(&a, &b);
            let distinct: std::collections::HashSet<_> = a.iter().collect();
            prop_assert_eq!(distinct.len(), 3);
        }
    }
}
