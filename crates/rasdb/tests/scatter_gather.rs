//! Equivalence property: `read_multi` over N plans must return exactly
//! what N sequential `read` calls return — row for row, error for error —
//! including under a down node with hinted handoff still pending.
//!
//! The path-comparison properties disable the partition-block cache so
//! they keep comparing two *independent* read paths (with the cache on,
//! the sequential read would simply replay the batch's cached blocks); a
//! dedicated property then pits a caching cluster against a cache-free
//! twin across write/read interleavings.

use proptest::prelude::*;
use rasdb::cluster::{full_range, Cluster, ClusterConfig};
use rasdb::query::{Consistency, ReadPlan};
use rasdb::ring::NodeId;
use rasdb::schema::{ColumnType, TableSchema};
use rasdb::types::{Key, Value};
use std::ops::Bound;

const HOURS: i64 = 6;

#[derive(Debug, Clone)]
struct Write {
    hour: i64,
    ts: i64,
    v: i32,
}

#[derive(Debug, Clone)]
struct PlanSpec {
    hour: i64,
    /// Optional `[from, from+span)` clustering range on `ts`.
    range: Option<(i64, i64)>,
    limit: Option<usize>,
    descending: bool,
}

fn arb_write() -> impl Strategy<Value = Write> {
    (0..HOURS, 0..40i64, any::<i32>()).prop_map(|(hour, ts, v)| Write { hour, ts, v })
}

fn arb_plan() -> impl Strategy<Value = PlanSpec> {
    (
        0..HOURS,
        prop_oneof![
            3 => Just(None),
            2 => (0..40i64, 1..20i64).prop_map(Some),
        ],
        prop_oneof![
            3 => Just(None),
            1 => (1..10usize).prop_map(Some),
        ],
        any::<bool>(),
    )
        .prop_map(|(hour, range, limit, descending)| PlanSpec {
            hour,
            range: range.map(|(from, span)| (from, from + span)),
            limit,
            descending,
        })
}

fn schema() -> TableSchema {
    TableSchema::builder("t")
        .partition_key("hour", ColumnType::BigInt)
        .clustering_key("ts", ColumnType::Timestamp)
        .column("v", ColumnType::Int)
        .build()
        .unwrap()
}

fn to_plan(spec: &PlanSpec) -> ReadPlan {
    let range = match spec.range {
        None => full_range(),
        Some((from, to)) => (
            Bound::Included(Key(vec![Value::Timestamp(from)])),
            Bound::Excluded(Key(vec![Value::Timestamp(to)])),
        ),
    };
    ReadPlan {
        table: "t".into(),
        partition: Key(vec![Value::BigInt(spec.hour)]),
        range,
        limit: spec.limit,
        descending: spec.descending,
    }
}

fn apply_writes(cluster: &Cluster, writes: &[Write]) {
    for w in writes {
        cluster
            .insert(
                "t",
                vec![
                    ("hour", Value::BigInt(w.hour)),
                    ("ts", Value::Timestamp(w.ts)),
                    ("v", Value::Int(w.v)),
                ],
                Consistency::Quorum,
            )
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Healthy cluster: batched results equal sequential results.
    #[test]
    fn read_multi_equals_sequential_reads(
        writes in prop::collection::vec(arb_write(), 1..80),
        specs in prop::collection::vec(arb_plan(), 1..12),
    ) {
        let cluster = Cluster::new(ClusterConfig { nodes: 4, replication_factor: 3, vnodes: 8 });
        cluster.set_block_cache_budget(0);
        cluster.create_table(schema()).unwrap();
        apply_writes(&cluster, &writes);

        let plans: Vec<ReadPlan> = specs.iter().map(to_plan).collect();
        let batched = cluster.read_multi(&plans, Consistency::Quorum).unwrap();
        prop_assert_eq!(batched.len(), plans.len());
        for (plan, rows) in plans.iter().zip(&batched) {
            let sequential = cluster.read(plan, Consistency::Quorum).unwrap();
            prop_assert_eq!(rows, &sequential);
        }
    }

    /// One node down with hinted handoff pending: the surviving quorum
    /// must still answer, and batched == sequential throughout.
    #[test]
    fn read_multi_equals_sequential_with_node_down(
        before in prop::collection::vec(arb_write(), 1..40),
        after in prop::collection::vec(arb_write(), 1..40),
        down in 0..5usize,
        specs in prop::collection::vec(arb_plan(), 1..12),
    ) {
        let cluster = Cluster::new(ClusterConfig { nodes: 5, replication_factor: 3, vnodes: 8 });
        cluster.set_block_cache_budget(0);
        cluster.create_table(schema()).unwrap();
        apply_writes(&cluster, &before);
        cluster.take_node_down(NodeId(down));
        // Writes land on the surviving replicas; hints queue for the down
        // node and stay pending for the whole read phase.
        apply_writes(&cluster, &after);

        let plans: Vec<ReadPlan> = specs.iter().map(to_plan).collect();
        let batched = cluster.read_multi(&plans, Consistency::Quorum).unwrap();
        for (plan, rows) in plans.iter().zip(&batched) {
            let sequential = cluster.read(plan, Consistency::Quorum).unwrap();
            prop_assert_eq!(rows, &sequential);
        }
    }

    /// Error equivalence: with too many replicas down, both paths fail
    /// Unavailable rather than silently returning partial data.
    #[test]
    fn read_multi_fails_like_sequential_when_unavailable(
        writes in prop::collection::vec(arb_write(), 1..20),
        specs in prop::collection::vec(arb_plan(), 1..6),
    ) {
        let cluster = Cluster::new(ClusterConfig { nodes: 3, replication_factor: 3, vnodes: 8 });
        cluster.set_block_cache_budget(0);
        cluster.create_table(schema()).unwrap();
        apply_writes(&cluster, &writes);
        cluster.take_node_down(NodeId(0));
        cluster.take_node_down(NodeId(1));

        let plans: Vec<ReadPlan> = specs.iter().map(to_plan).collect();
        // Quorum of rf=3 needs 2; only one replica is up.
        prop_assert!(cluster.read_multi(&plans, Consistency::Quorum).is_err());
        prop_assert!(cluster.read(&plans[0], Consistency::Quorum).is_err());
        // Consistency::One still works on both paths and agrees.
        let batched = cluster.read_multi(&plans, Consistency::One).unwrap();
        for (plan, rows) in plans.iter().zip(&batched) {
            prop_assert_eq!(rows, &cluster.read(plan, Consistency::One).unwrap());
        }
    }

    /// Block-cache transparency: a cluster with the cache enabled must be
    /// indistinguishable from a cache-free twin across arbitrary
    /// interleavings of writes and reads (repeat reads of a partition hit
    /// the cache; writes invalidate by version).
    #[test]
    fn cached_reads_equal_uncached_across_interleavings(
        steps in prop::collection::vec(
            prop_oneof![
                2 => arb_write().prop_map(Step::Write),
                3 => arb_plan().prop_map(Step::Read),
            ],
            1..60,
        ),
    ) {
        let cached = Cluster::new(ClusterConfig { nodes: 4, replication_factor: 3, vnodes: 8 });
        let plain = Cluster::new(ClusterConfig { nodes: 4, replication_factor: 3, vnodes: 8 });
        plain.set_block_cache_budget(0);
        cached.create_table(schema()).unwrap();
        plain.create_table(schema()).unwrap();

        for step in &steps {
            match step {
                Step::Write(w) => {
                    apply_writes(&cached, std::slice::from_ref(w));
                    apply_writes(&plain, std::slice::from_ref(w));
                }
                Step::Read(spec) => {
                    let plan = to_plan(spec);
                    // Exercise both coordinator read paths on both sides.
                    let a = cached.read(&plan, Consistency::Quorum).unwrap();
                    let b = plain.read(&plan, Consistency::Quorum).unwrap();
                    prop_assert_eq!(&a, &b);
                    let a = cached.read_multi(std::slice::from_ref(&plan), Consistency::Quorum).unwrap();
                    let b = plain.read_multi(std::slice::from_ref(&plan), Consistency::Quorum).unwrap();
                    prop_assert_eq!(a, b);
                }
            }
        }
    }
}

/// One interleaving step for the cache-transparency property.
#[derive(Debug, Clone)]
enum Step {
    Write(Write),
    Read(PlanSpec),
}
