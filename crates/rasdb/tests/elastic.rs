//! Elastic membership: live join/decommission under fault-injected range
//! streaming must never lose an acked row, must bump the topology epoch
//! exactly once per committed transition (and never on abort), and must
//! keep the partition-block cache honest across the commit.

use proptest::prelude::*;
use rasdb::cluster::{Cluster, ClusterConfig};
use rasdb::error::DbError;
use rasdb::query::Consistency;
use rasdb::ring::NodeId;
use rasdb::schema::{ColumnType, TableSchema};
use rasdb::topology::TopologyFaultPlan;
use rasdb::types::{Row, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn schema() -> TableSchema {
    TableSchema::builder("t")
        .partition_key("hour", ColumnType::BigInt)
        .clustering_key("ts", ColumnType::Timestamp)
        .column("v", ColumnType::Int)
        .build()
        .unwrap()
}

fn cluster(nodes: usize, rf: usize) -> Cluster {
    let c = Cluster::new(ClusterConfig {
        nodes,
        replication_factor: rf,
        vnodes: 8,
    });
    c.create_table(schema()).unwrap();
    c
}

fn put(c: &Cluster, hour: i64, ts: i64, v: i32) {
    c.insert(
        "t",
        vec![
            ("hour", Value::BigInt(hour)),
            ("ts", Value::Timestamp(ts)),
            ("v", Value::Int(v)),
        ],
        Consistency::Quorum,
    )
    .unwrap();
}

/// Full-table scan at ALL: every partition's rows, strongest read the
/// cluster offers. Used to compare churned clusters against controls.
fn scan(c: &Cluster, hours: i64) -> Vec<Vec<Row>> {
    (0..hours)
        .map(|h| {
            c.select("t")
                .partition(vec![Value::BigInt(h)])
                .run(Consistency::All)
                .unwrap()
        })
        .collect()
}

#[test]
fn join_streams_ranges_and_bumps_epoch_exactly_once() {
    let c = cluster(3, 2);
    for h in 0..16i64 {
        for ts in 0..8i64 {
            put(&c, h, ts, (h * 100 + ts) as i32);
        }
    }
    c.flush_all();
    let epoch0 = c.topology_epoch();

    let report = c.join_node().unwrap();
    assert_eq!(report.node, NodeId(3));
    assert!(report.rows_streamed > 0, "joiner must receive data");
    assert!(report.chunks_streamed > 0);
    assert_eq!(report.epoch, epoch0 + 1, "exactly one epoch bump");
    assert_eq!(c.topology_epoch(), epoch0 + 1);
    assert_eq!(c.member_count(), 4);
    assert_eq!(c.topology_status().state, "stable");
    assert!(
        !c.local_partition_keys("t", NodeId(3)).is_empty(),
        "joiner must own streamed partitions"
    );
    assert_eq!(c.topology_stats().joins(), 1);

    // Nothing went missing: every row still reads back at ALL on the new
    // topology (ALL spans the joiner wherever it is now a replica).
    for h in 0..16i64 {
        let rows = c
            .select("t")
            .partition(vec![Value::BigInt(h)])
            .run(Consistency::All)
            .unwrap();
        assert_eq!(rows.len(), 8, "hour {h}");
    }
}

#[test]
fn stale_block_cache_entry_is_never_served_after_commit() {
    let c = cluster(3, 2);
    for ts in 0..32i64 {
        put(&c, 7, ts, ts as i32);
    }
    let read = || {
        c.select("t")
            .partition(vec![Value::BigInt(7)])
            .run(Consistency::Quorum)
            .unwrap()
    };
    let before = read();
    let hits0 = c.block_cache_stats().hits();
    assert_eq!(read(), before);
    assert_eq!(c.block_cache_stats().hits(), hits0 + 1, "warm entry hits");

    // The commit bumps the epoch, so the entry filled under the old epoch
    // must be invalidated, not served: replica sets changed underneath it.
    c.join_node().unwrap();
    let inval0 = c.block_cache_stats().invalidations();
    let hits1 = c.block_cache_stats().hits();
    assert_eq!(read(), before, "data unchanged by the move");
    assert!(
        c.block_cache_stats().invalidations() > inval0,
        "stale-epoch entry must be evicted on next lookup"
    );
    assert_eq!(
        c.block_cache_stats().hits(),
        hits1,
        "the stale entry must not count as a hit"
    );
}

#[test]
fn aborted_join_restores_pre_join_topology_without_epoch_or_cache_churn() {
    let c = cluster(3, 2);
    for h in 0..64i64 {
        put(&c, h, 0, h as i32);
        put(&c, h, 1, (h + 1000) as i32);
    }
    let epoch0 = c.topology_epoch();
    let members0 = c.ring().members().to_vec();

    // Warm a cache entry under the pre-join epoch.
    let read = || {
        c.select("t")
            .partition(vec![Value::BigInt(3)])
            .run(Consistency::Quorum)
            .unwrap()
    };
    let warm = read();

    // Every chunk-send attempt drops; the retry budget exhausts and the
    // join must abort cleanly.
    let plan = TopologyFaultPlan::none()
        .drop_chunk_every(1)
        .max_chunk_attempts(2);
    match c.join_node_with(plan) {
        Err(DbError::StreamAborted(_)) => {}
        other => panic!("expected StreamAborted, got {other:?}"),
    }

    assert_eq!(c.topology_epoch(), epoch0, "aborts never bump the epoch");
    assert_eq!(c.ring().members(), &members0[..], "ring unchanged");
    assert_eq!(c.member_count(), 3);
    assert_eq!(c.topology_status().state, "stable");
    assert_eq!(c.topology_stats().aborts(), 1);
    // The failed joiner's slot is retired, never revived.
    let status = c.topology_status();
    let slot = &status.members[3];
    assert!(!slot.in_ring && !slot.up);
    c.bring_node_up(NodeId(3));
    assert!(!c.node(NodeId(3)).is_up(), "retired slots stay down");

    // No spurious invalidation: the pre-join entry is still valid.
    let hits0 = c.block_cache_stats().hits();
    let inval0 = c.block_cache_stats().invalidations();
    assert_eq!(read(), warm);
    assert_eq!(c.block_cache_stats().hits(), hits0 + 1);
    assert_eq!(c.block_cache_stats().invalidations(), inval0);

    // The cluster is not wedged: a clean retry joins fine and bumps once.
    let report = c.join_node().unwrap();
    assert_eq!(report.epoch, epoch0 + 1);
    assert_eq!(c.member_count(), 4);
}

#[test]
fn decommission_reroutes_pending_hints_to_new_owners() {
    let c = cluster(5, 3);
    for h in 0..8i64 {
        put(&c, h, 0, h as i32);
    }
    // Writes while the future leaver is down queue hints for it.
    let leaver = NodeId(4);
    c.take_node_down(leaver);
    for h in 0..8i64 {
        put(&c, h, 1, (h + 500) as i32);
    }
    assert!(c.pending_hints(leaver) > 0, "test needs queued hints");

    let report = c.decommission_node(leaver).unwrap();
    assert!(
        report.hints_rerouted > 0,
        "hints for the leaver must move to new owners"
    );
    assert_eq!(
        c.coordinator_stats().hints_rerouted(),
        report.hints_rerouted
    );
    assert_eq!(c.pending_hints(leaver), 0, "leaver's queue drains");
    assert_eq!(c.member_count(), 4);
    assert_eq!(c.topology_stats().decommissions(), 1);

    // Zero loss at the strongest consistency: both rounds of writes —
    // including the hinted ones — are readable on the shrunk ring.
    for h in 0..8i64 {
        let rows = c
            .select("t")
            .partition(vec![Value::BigInt(h)])
            .run(Consistency::All)
            .unwrap();
        assert_eq!(rows.len(), 2, "hour {h}");
    }
}

#[test]
fn admin_guards_reject_bad_decommissions() {
    let c = cluster(3, 2);
    match c.decommission_node(NodeId(9)) {
        Err(DbError::BadQuery(m)) => assert!(m.contains("not a ring member"), "{m}"),
        other => panic!("{other:?}"),
    }
    // 3 members at rf 2: one decommission is fine, the next would leave
    // rf > members and must refuse.
    c.decommission_node(NodeId(2)).unwrap();
    match c.decommission_node(NodeId(1)) {
        Err(DbError::BadQuery(m)) => assert!(m.contains("replication factor"), "{m}"),
        other => panic!("{other:?}"),
    }
}

/// Writes racing the stream land in the double-write window: the
/// coordinator writes both old and new owners while the transition is in
/// flight, so nothing depends on the stream catching them.
#[test]
fn writes_during_join_are_never_lost() {
    let c = Arc::new(cluster(3, 2));
    // Data across many partitions so the joiner is certain to gain ranges
    // worth streaming; the racing writes below all target hour 0, which
    // may or may not be among them — zero loss must hold either way.
    for h in 0..16i64 {
        for ts in 0..16i64 {
            put(&c, h, ts, ts as i32);
        }
    }
    for ts in 16..64i64 {
        put(&c, 0, ts, ts as i32);
    }
    c.set_stream_chunk_rows(4);
    let plan = TopologyFaultPlan::none().slow_chunk_every(1, Duration::from_millis(5));
    let join = {
        let c = Arc::clone(&c);
        std::thread::spawn(move || c.join_node_with(plan).unwrap())
    };
    // Keep writing while the join streams; some of these land mid-window.
    for ts in 64..256i64 {
        put(&c, 0, ts, ts as i32);
    }
    let report = join.join().unwrap();
    assert!(report.chunks_streamed > 0);

    let rows = c
        .select("t")
        .partition(vec![Value::BigInt(0)])
        .run(Consistency::All)
        .unwrap();
    assert_eq!(rows.len(), 256, "every write must survive the join");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.cell("v"), Some(&Value::Int(i as i32)), "row {i}");
    }
}

#[derive(Debug, Clone)]
enum ChurnOp {
    Write {
        hour: i64,
        ts: i64,
        v: i32,
    },
    Join {
        drop_every: u64,
        corrupt_every: u64,
        joiner_crash: u64,
    },
    Leave {
        pick: usize,
        drop_every: u64,
    },
}

fn arb_churn() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        10 => (0..6i64, 0..64i64, any::<i32>())
            .prop_map(|(hour, ts, v)| ChurnOp::Write { hour, ts, v }),
        1 => (0..4u64, 0..4u64, 0..3u64).prop_map(|(drop_every, corrupt_every, joiner_crash)| {
            ChurnOp::Join { drop_every, corrupt_every, joiner_crash }
        }),
        1 => (0..8usize, 0..4u64).prop_map(|(pick, drop_every)| {
            ChurnOp::Leave { pick, drop_every }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random join/leave schedules interleaved with QUORUM writes and
    /// injected stream faults lose nothing: the churned cluster's
    /// full-table scan is identical to a churn-free control cluster fed
    /// the same writes (same logical clock order, so identical LWW state).
    #[test]
    fn churn_schedule_loses_nothing_vs_control(ops in prop::collection::vec(arb_churn(), 1..40)) {
        let churn = cluster(4, 3);
        churn.set_stream_chunk_rows(4);
        let control = cluster(4, 3);
        let mut model: BTreeMap<(i64, i64), i32> = BTreeMap::new();

        for op in &ops {
            match op {
                ChurnOp::Write { hour, ts, v } => {
                    put(&churn, *hour, *ts, *v);
                    put(&control, *hour, *ts, *v);
                    model.insert((*hour, *ts), *v);
                }
                ChurnOp::Join { drop_every, corrupt_every, joiner_crash } => {
                    let plan = TopologyFaultPlan::none()
                        .drop_chunk_every(*drop_every)
                        .corrupt_chunk_every(*corrupt_every)
                        .joiner_crash_at(*joiner_crash);
                    match churn.join_node_with(plan) {
                        Ok(_) | Err(DbError::StreamAborted(_)) => {}
                        Err(e) => panic!("join: {e}"),
                    }
                }
                ChurnOp::Leave { pick, drop_every } => {
                    let members = churn.ring().members().to_vec();
                    if members.len() <= churn.ring().replication_factor() {
                        continue;
                    }
                    let id = members[pick % members.len()];
                    let plan = TopologyFaultPlan::none().drop_chunk_every(*drop_every);
                    match churn.decommission_node_with(id, plan) {
                        Ok(_) | Err(DbError::StreamAborted(_)) => {}
                        Err(e) => panic!("leave: {e}"),
                    }
                }
            }
        }

        // Identical logical clocks on both sides: the scans must agree
        // row-for-row, cell-for-cell.
        let got = scan(&churn, 6);
        let want = scan(&control, 6);
        prop_assert_eq!(got, want);

        // And both agree with the plain map model.
        let flat: Vec<(i64, i64, i32)> = scan(&churn, 6)
            .iter()
            .enumerate()
            .flat_map(|(h, rows)| {
                rows.iter().map(move |r| {
                    let ts = r.clustering.0[0].as_i64().unwrap();
                    let v = match r.cell("v") {
                        Some(Value::Int(v)) => *v,
                        other => panic!("bad cell {other:?}"),
                    };
                    (h as i64, ts, v)
                })
            })
            .collect();
        let want_flat: Vec<(i64, i64, i32)> =
            model.iter().map(|((h, ts), v)| (*h, *ts, *v)).collect();
        prop_assert_eq!(flat, want_flat);
    }
}
