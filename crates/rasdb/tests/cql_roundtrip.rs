//! Property tests for the CQL text path: inserts and range selects issued
//! as text must behave exactly like the typed API / a BTreeMap model.

use proptest::prelude::*;
use rasdb::cluster::{Cluster, ClusterConfig, ExecResult};
use rasdb::query::Consistency;
use std::collections::BTreeMap;

fn cluster() -> Cluster {
    let c = Cluster::new(ClusterConfig {
        nodes: 3,
        replication_factor: 2,
        vnodes: 8,
    });
    let create = "CREATE TABLE ev (hour bigint, type text, ts timestamp, source text, \
                  amount int, PRIMARY KEY ((hour, type), ts))";
    match c.execute(create, Consistency::Quorum).unwrap() {
        ExecResult::Applied => c,
        other => panic!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_inserts_equal_model_range_scans(
        rows in prop::collection::vec((0i64..3, 0i64..500, 0i32..100), 0..60),
        lo in 0i64..500,
        width in 1i64..300,
    ) {
        let c = cluster();
        let mut model: BTreeMap<(i64, i64), i32> = BTreeMap::new();
        for (hour, ts, amount) in &rows {
            let stmt = format!(
                "INSERT INTO ev (hour, type, ts, source, amount) \
                 VALUES ({hour}, 'MCE', {ts}, 'c0-0c0s0n0', {amount})"
            );
            c.execute(&stmt, Consistency::Quorum).unwrap();
            model.insert((*hour, *ts), *amount);
        }
        let hi = lo + width;
        for hour in 0..3i64 {
            let q = format!(
                "SELECT * FROM ev WHERE hour = {hour} AND type = 'MCE' \
                 AND ts >= {lo} AND ts < {hi}"
            );
            let got = match c.execute(&q, Consistency::Quorum).unwrap() {
                ExecResult::Rows(rows) => rows,
                other => panic!("{other:?}"),
            };
            let want: Vec<(i64, i32)> = model
                .range((hour, lo)..(hour, hi))
                .map(|((_, ts), a)| (*ts, *a))
                .collect();
            let got_pairs: Vec<(i64, i32)> = got
                .iter()
                .map(|r| {
                    let ts = r.clustering.0[0].as_i64().unwrap();
                    let a = r.cell("amount").unwrap().as_i64().unwrap() as i32;
                    (ts, a)
                })
                .collect();
            prop_assert_eq!(got_pairs, want, "hour {}", hour);
        }
    }

    #[test]
    fn limit_and_order_by_desc_agree_with_model(
        ts_values in prop::collection::btree_set(0i64..1000, 1..40),
        limit in 1usize..20,
    ) {
        let c = cluster();
        for ts in &ts_values {
            c.execute(
                &format!(
                    "INSERT INTO ev (hour, type, ts, source, amount) \
                     VALUES (0, 'MCE', {ts}, 'n', 1)"
                ),
                Consistency::Quorum,
            )
            .unwrap();
        }
        let q = format!(
            "SELECT * FROM ev WHERE hour = 0 AND type = 'MCE' ORDER BY ts DESC LIMIT {limit}"
        );
        let got = match c.execute(&q, Consistency::Quorum).unwrap() {
            ExecResult::Rows(rows) => rows,
            other => panic!("{other:?}"),
        };
        let want: Vec<i64> = ts_values.iter().rev().take(limit).copied().collect();
        let got_ts: Vec<i64> = got.iter().map(|r| r.clustering.0[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got_ts, want);
    }

    #[test]
    fn delete_via_text_removes_exactly_one_row(
        ts_values in prop::collection::btree_set(0i64..100, 2..20),
    ) {
        let c = cluster();
        for ts in &ts_values {
            c.execute(
                &format!(
                    "INSERT INTO ev (hour, type, ts, source, amount) \
                     VALUES (0, 'MCE', {ts}, 'n', 1)"
                ),
                Consistency::Quorum,
            )
            .unwrap();
        }
        let victim = *ts_values.iter().next().unwrap();
        c.execute(
            &format!("DELETE FROM ev WHERE hour = 0 AND type = 'MCE' AND ts = {victim}"),
            Consistency::Quorum,
        )
        .unwrap();
        let got = match c
            .execute("SELECT * FROM ev WHERE hour = 0 AND type = 'MCE'", Consistency::Quorum)
            .unwrap()
        {
            ExecResult::Rows(rows) => rows,
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(got.len(), ts_values.len() - 1);
        prop_assert!(!got
            .iter()
            .any(|r| r.clustering.0[0].as_i64() == Some(victim)));
    }
}
