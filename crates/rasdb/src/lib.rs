//! `rasdb` — a column-oriented, masterless, distributed NoSQL store.
//!
//! This crate is the Cassandra substitute for the HPC log-analytics
//! framework: the paper stores Titan's logs in Apache Cassandra because of
//! its "masterless ring design", wide partitions "sorted and written
//! sequentially", and retrieval "by row key and range within a row".
//! `rasdb` rebuilds exactly those mechanics from scratch:
//!
//! * **Data model** — tables with composite partition keys and clustering
//!   keys; a partition is a wide row whose entries stay sorted by the
//!   clustering key ([`schema`], [`types`]).
//! * **Placement** — a murmur3 token ring with virtual nodes and
//!   replication ([`partitioner`], [`ring`]).
//! * **Storage engine** — commit log → memtable → immutable SSTables with
//!   bloom filters, merged by size-tiered compaction ([`memtable`],
//!   [`sstable`], [`compaction`], [`node`]).
//! * **Coordination** — any node coordinates reads/writes at a tunable
//!   consistency level (`ONE`/`QUORUM`/`ALL`), with hinted handoff for
//!   down replicas and last-write-wins cell merging ([`cluster`]).
//! * **Query layer** — a CQL-subset text language and a typed query AST
//!   ([`cql`], [`query`]).
//! * **Elasticity** — live node join/decommission: checksummed, resumable
//!   range streaming with deterministic fault injection, a double-write
//!   window so no quorum read misses a row, and a single epoch bump on
//!   commit for atomic cache invalidation ([`topology`], [`cluster`]).
//!
//! The cluster is an in-process, shared-nothing simulation: every node owns
//! its storage exclusively and is reached only through coordinator calls,
//! which preserves the distributed semantics (placement, quorums, failures)
//! while staying deterministic and testable on one machine.
//!
//! # Example
//! ```
//! use rasdb::cluster::{Cluster, ClusterConfig};
//! use rasdb::query::Consistency;
//! use rasdb::schema::{ColumnType, TableSchema};
//! use rasdb::types::Value;
//!
//! let cluster = Cluster::new(ClusterConfig { nodes: 4, replication_factor: 3, vnodes: 8 });
//! cluster
//!     .create_table(
//!         TableSchema::builder("event_by_time")
//!             .partition_key("hour", ColumnType::BigInt)
//!             .partition_key("type", ColumnType::Text)
//!             .clustering_key("ts", ColumnType::Timestamp)
//!             .column("source", ColumnType::Text)
//!             .column("amount", ColumnType::Int)
//!             .build()
//!             .unwrap(),
//!     )
//!     .unwrap();
//!
//! cluster
//!     .insert(
//!         "event_by_time",
//!         vec![
//!             ("hour", Value::BigInt(417_000)),
//!             ("type", Value::text("MCE")),
//!             ("ts", Value::Timestamp(1_501_200_000_123)),
//!             ("source", Value::text("c3-2c1s4n2")),
//!             ("amount", Value::Int(1)),
//!         ],
//!         Consistency::Quorum,
//!     )
//!     .unwrap();
//!
//! let rows = cluster
//!     .select("event_by_time")
//!     .partition(vec![Value::BigInt(417_000), Value::text("MCE")])
//!     .run(Consistency::Quorum)
//!     .unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].cell("source"), Some(&Value::text("c3-2c1s4n2")));
//! ```

pub mod bloom;
pub mod cache;
pub mod cluster;
pub mod commitlog;
pub mod compaction;
pub mod cql;
pub mod error;
pub mod memtable;
pub mod node;
pub mod partitioner;
pub mod query;
pub mod ring;
pub mod schema;
pub mod sstable;
pub mod stats;
pub mod topology;
pub mod types;

pub use cluster::{Cluster, ClusterConfig};
pub use error::DbError;
pub use query::Consistency;
pub use schema::{ColumnType, TableSchema};
pub use topology::{TopologyFaultPlan, TransitionReport};
pub use types::{Row, Value};
